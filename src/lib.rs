//! **Tigris** — algorithm–architecture co-design for 3D point-cloud
//! registration.
//!
//! A from-scratch Rust reproduction of *"Tigris: Architecture and
//! Algorithms for 3D Perception in Point Clouds"* (Xu, Tian, Zhu —
//! MICRO-52, 2019). This facade crate re-exports the workspace:
//!
//! * [`geom`] — vectors, rigid transforms, eigen/SVD, point clouds.
//! * [`core`] — the canonical KD-tree, the **two-stage KD-tree**, and the
//!   **approximate leader/follower search** (the paper's Sec. 4).
//! * [`data`] — a synthetic LiDAR dataset substrate (KITTI stand-in).
//! * [`pipeline`] — the configurable two-phase registration pipeline
//!   (Sec. 3): normal estimation → key-points → descriptors → KPCE →
//!   rejection → ICP fine-tuning.
//! * [`map`] — the incremental mapping subsystem (Sec. 2.2's 3D
//!   reconstruction as a long-running service): dynamic map index,
//!   pose-tagged submaps, descriptor-retrieved loop closure and
//!   Gauss–Newton pose-graph optimization.
//! * [`serve`] — the shared-map localization service: frozen
//!   `Arc`-shared map snapshots, cold-start relocalization and
//!   multi-session serving with admission control and latency metering.
//! * [`accel`] — the cycle-level accelerator model (Sec. 5): recursion-unit
//!   front-end, search-unit back-end, node cache, energy and area models.
//! * [`obs`] — the observability layer: hierarchical spans and structured
//!   events, a counters/gauges/histograms metrics registry, and Chrome
//!   trace-event / JSONL / summary exporters. Enable with
//!   `TIGRIS_TRACE=chrome` and load the written file in Perfetto.
//!
//! # Quickstart
//!
//! ```no_run
//! use tigris::data::{Sequence, SequenceConfig};
//! use tigris::pipeline::{register, RegistrationConfig};
//!
//! // Generate two synthetic LiDAR frames and register them.
//! let seq = Sequence::generate(&SequenceConfig::tiny(), 42);
//! let result = register(seq.frame(1), seq.frame(0), &RegistrationConfig::default()).unwrap();
//! println!("estimated motion: {}", result.transform);
//! println!("KD-tree search fraction: {:.0}%", result.profile.kd_search_fraction() * 100.0);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench/src/bin/figures.rs` for the harness regenerating every
//! table and figure of the paper's evaluation.

pub use tigris_accel as accel;
pub use tigris_core as core;
pub use tigris_data as data;
pub use tigris_geom as geom;
pub use tigris_map as map;
pub use tigris_obs as obs;
pub use tigris_pipeline as pipeline;
pub use tigris_serve as serve;

/// The workspace version.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        let v = crate::geom::Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.norm_squared(), 14.0);
        assert!(!crate::VERSION.is_empty());
    }
}

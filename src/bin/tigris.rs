//! The `tigris` command-line tool: run the registration pipeline on KITTI
//! Velodyne scans (or synthetic data) without writing any code.
//!
//! ```text
//! tigris register <source.bin> <target.bin>     # one pair → transform
//! tigris odometry <scan dir> [--out poses.txt]  # whole sequence → poses
//! tigris generate <out dir> --frames N          # synthetic scans + poses
//! tigris info <scan.bin|scan.xyz>               # cloud statistics
//! ```
//!
//! Scans may be KITTI `.bin` (f32 x y z intensity) or plain `.xyz` text.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tigris::data::{
    read_velodyne_bin, read_xyz, write_poses, write_velodyne_bin, Sequence, SequenceConfig,
};
use tigris::geom::{PointCloud, RigidTransform};
use tigris::pipeline::{DesignPoint, Odometer, RegistrationConfig};

fn main() -> ExitCode {
    // TIGRIS_TRACE=chrome|jsonl|summary turns tracing on for any command.
    tigris::obs::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "register" => cmd_register(rest),
        "odometry" => cmd_odometry(rest),
        "generate" => cmd_generate(rest),
        "info" => cmd_info(rest),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match tigris::obs::flush() {
        Ok(Some(path)) => eprintln!("trace written to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("warning: failed to write trace: {e}"),
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "tigris — point-cloud registration (Tigris reproduction)

usage:
  tigris register <source> <target> [--profile dp4|dp7|default]
  tigris odometry <scan dir> [--out poses.txt] [--profile dp4|dp7|default]
  tigris generate <out dir> [--frames N] [--seed N]
  tigris info <scan>

scans: KITTI .bin (f32 x y z intensity) or .xyz text";

fn load_cloud(path: &Path) -> Result<PointCloud, String> {
    let cloud = match path.extension().and_then(|e| e.to_str()) {
        Some("bin") => read_velodyne_bin(path),
        Some("xyz") | Some("txt") => read_xyz(path),
        _ => return Err(format!("{}: unknown scan extension (want .bin or .xyz)", path.display())),
    }
    .map_err(|e| format!("{}: {e}", path.display()))?;
    if cloud.is_empty() {
        return Err(format!("{}: empty cloud", path.display()));
    }
    Ok(cloud)
}

fn parse_profile(args: &[String]) -> Result<RegistrationConfig, String> {
    match flag_value(args, "--profile").unwrap_or("default") {
        "default" => Ok(RegistrationConfig::default()),
        "dp4" => Ok(DesignPoint::Dp4.config()),
        "dp7" => Ok(DesignPoint::Dp7.config()),
        other => Err(format!("unknown profile '{other}' (want dp4, dp7 or default)")),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn positional(args: &[String], n: usize) -> Option<&String> {
    args.iter()
        .scan(false, |skip, a| {
            let keep = if *skip {
                *skip = false;
                false
            } else if a.starts_with("--") {
                *skip = true;
                false
            } else {
                true
            };
            Some((keep, a))
        })
        .filter(|(keep, _)| *keep)
        .map(|(_, a)| a)
        .nth(n)
}

fn cmd_register(args: &[String]) -> Result<(), String> {
    let src_path = positional(args, 0).ok_or("register needs <source> <target>")?;
    let tgt_path = positional(args, 1).ok_or("register needs <source> <target>")?;
    let cfg = parse_profile(args)?;
    let source = load_cloud(Path::new(src_path))?;
    let target = load_cloud(Path::new(tgt_path))?;
    eprintln!("source: {} points, target: {} points", source.len(), target.len());

    let result = tigris::pipeline::register(&source, &target, &cfg)
        .map_err(|e| format!("registration failed: {e}"))?;
    eprintln!(
        "key-points {}/{}, {} inliers, {} ICP iterations, kd-search {:.0}%",
        result.keypoints.0,
        result.keypoints.1,
        result.inlier_correspondences,
        result.icp_iterations,
        result.profile.kd_search_fraction() * 100.0
    );
    // Machine-readable result on stdout: one KITTI pose line.
    println!("{}", tigris::data::kitti_io::pose_to_line(&result.transform));
    Ok(())
}

fn cmd_odometry(args: &[String]) -> Result<(), String> {
    let dir = positional(args, 0).ok_or("odometry needs <scan dir>")?;
    let cfg = parse_profile(args)?;
    let mut scans: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| matches!(p.extension().and_then(|e| e.to_str()), Some("bin") | Some("xyz")))
        .collect();
    scans.sort();
    if scans.len() < 2 {
        return Err(format!("{dir}: need at least 2 scans, found {}", scans.len()));
    }
    eprintln!("{} scans", scans.len());

    let mut odo = Odometer::new(cfg);
    let mut poses = vec![RigidTransform::IDENTITY];
    for (i, path) in scans.iter().enumerate() {
        let cloud = load_cloud(path)?;
        match odo.push(&cloud) {
            Ok(None) => eprintln!("[{i}] {} (origin)", path.display()),
            Ok(Some(step)) => {
                eprintln!(
                    "[{i}] {}: |t| = {:.3} m, {} iters",
                    path.display(),
                    step.relative.translation_norm(),
                    step.registration.icp_iterations
                );
                poses.push(step.pose);
            }
            Err(e) => return Err(format!("{}: {e}", path.display())),
        }
    }

    if let Some(out) = flag_value(args, "--out") {
        write_poses(out, &poses).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("poses written to {out}");
    } else {
        for pose in &poses {
            println!("{}", tigris::data::kitti_io::pose_to_line(pose));
        }
    }
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let dir = positional(args, 0).ok_or("generate needs <out dir>")?;
    let frames: usize = flag_value(args, "--frames")
        .map(|v| v.parse().map_err(|e| format!("--frames: {e}")))
        .transpose()?
        .unwrap_or(5);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;

    let mut cfg = SequenceConfig::medium();
    cfg.frames = frames;
    eprintln!("generating {frames} synthetic frames (seed {seed})...");
    let seq = Sequence::generate(&cfg, seed);
    for i in 0..seq.len() {
        let path = Path::new(dir).join(format!("{i:06}.bin"));
        write_velodyne_bin(&path, seq.frame(i)).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    let poses_path = Path::new(dir).join("poses.txt");
    write_poses(&poses_path, seq.poses()).map_err(|e| format!("{}: {e}", poses_path.display()))?;
    eprintln!("wrote {} scans + ground-truth {}", seq.len(), poses_path.display());
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let path = positional(args, 0).ok_or("info needs <scan>")?;
    let cloud = load_cloud(Path::new(path))?;
    let bbox = cloud.bounding_box().expect("non-empty");
    let centroid = cloud.centroid().expect("non-empty");
    println!("points:   {}", cloud.len());
    println!("centroid: {centroid}");
    println!("bbox min: {}", bbox.min);
    println!("bbox max: {}", bbox.max);
    let downsampled = cloud.voxel_downsample(0.25);
    println!("voxel 0.25 m: {} points", downsampled.len());
    Ok(())
}

//! Operational-tier acceptance: an induced latency anomaly must trip a
//! declared SLO, the resulting post-mortem bundle must contain the
//! complete connected span tree of the offending request, the tail
//! sampler must keep exactly the requests worth keeping, and none of
//! it may change a pose bit.
//!
//! What must hold:
//!
//! * a `serve.latency_us:p99<=…` spec breached by real served requests
//!   makes [`OpsMonitor::tick`] write a bundle whose `trace.json`
//!   parses as balanced Chrome JSON and whose retained tail traces are
//!   each one connected tree under the request's `serve.localize`
//!   root;
//! * the tail sampler retains slow and failed requests and drops fast
//!   healthy ones — decided after the outcome is known;
//! * poses are **bit-identical** with the recorder, sampler and SLO
//!   engine on versus everything off.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use tigris::data::{LidarConfig, Sequence, SequenceConfig};
use tigris::geom::PointCloud;
use tigris::map::{Mapper, MapperConfig};
use tigris::obs::json::Json;
use tigris::obs::ops::{OpsConfig, OpsMonitor};
use tigris::obs::sampler::TailDecision;
use tigris::obs::slo::parse_specs;
use tigris::obs::{self, RecordKind};
use tigris::serve::{LocalizationService, MapSnapshot, ServeConfig, SessionStep};

/// Tests here toggle the process-global recorder, read/write the
/// sampler's environment knobs and drain shared state; they must not
/// interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The serving fixture of `observability.rs`: a ~66-frame, 60 m closed
/// circuit at the low-resolution scanner, built once with every sink
/// off.
fn fixture() -> &'static (Sequence, Arc<MapSnapshot>) {
    static FIXTURE: OnceLock<(Sequence, Arc<MapSnapshot>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut cfg = SequenceConfig::loop_circuit(60.0, 6);
        cfg.lidar = LidarConfig::tiny();
        let seq = Sequence::generate(&cfg, 7);
        let mut mapper = Mapper::new(MapperConfig::serving());
        // Mapper::new's init_from_env defaults the recorder on; these
        // tests manage the sinks explicitly.
        obs::set_recorder(false);
        obs::set_enabled(false);
        for i in 0..seq.len() {
            mapper.push(seq.frame(i)).unwrap_or_else(|e| panic!("map frame {i} failed: {e}"));
        }
        let snapshot = Arc::new(MapSnapshot::freeze(mapper).expect("freeze must succeed"));
        (seq, snapshot)
    })
}

/// A service whose tail sampler uses a fixed cutoff of `slow_us`
/// microseconds (0 retains everything), built under the serial lock so
/// the environment round-trip cannot interleave.
fn service_with_cutoff(snapshot: &Arc<MapSnapshot>, slow_us: u64) -> LocalizationService {
    std::env::set_var("TIGRIS_TAIL_SLOW_US", slow_us.to_string());
    let service = LocalizationService::new(Arc::clone(snapshot), ServeConfig::default());
    std::env::remove_var("TIGRIS_TAIL_SLOW_US");
    service
}

/// A monitor writing bundles into a unique throwaway directory.
fn monitor(tag: &str, specs: &str) -> OpsMonitor {
    let dir = std::env::temp_dir().join(format!("tigris-ops-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    OpsMonitor::new(OpsConfig {
        dir,
        specs: parse_specs(specs).expect("test specs must parse"),
        window: Duration::ZERO,
    })
}

/// Asserts every `B` has its matching `E` on the same thread in LIFO
/// order, walking the Chrome trace's event array; returns the names of
/// the `B` events seen.
fn assert_chrome_balanced(json: &Json) -> Vec<String> {
    let events = json.as_arr().expect("chrome trace must be an event array");
    let mut stacks: std::collections::HashMap<i64, Vec<String>> = std::collections::HashMap::new();
    let mut begins = Vec::new();
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("every event has ph");
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as i64;
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("").to_string();
        match ph {
            "B" => {
                begins.push(name.clone());
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                let top = stacks.get_mut(&tid).and_then(Vec::pop);
                assert_eq!(top.as_deref(), Some(name.as_str()), "E must close the innermost B");
            }
            _ => {}
        }
    }
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "thread {tid} left spans open: {stack:?}");
    }
    begins
}

#[test]
fn slo_breach_writes_postmortem_with_the_offending_request_tree() {
    let _guard = serial();
    let (seq, snapshot) = fixture();
    obs::set_recorder(true);
    obs::recorder::reset();

    // Cutoff 0: every request is "slow" — each one is an induced
    // anomaly whose tree the sampler must keep.
    let service = service_with_cutoff(snapshot, 0);
    let ops = monitor("breach", "serve.latency_us:p99<=1us");
    ops.register("serve", service.registry(), Some(service.sampler()));

    let mut session = service.open_session().expect("session admission");
    for i in [3usize, 4] {
        session.localize(seq.frame(i)).expect("fixture frames must localize");
    }

    // No request finishes in ≤1 µs: the spec must breach and the tick
    // must dump exactly one bundle for the one registered service.
    let bundles = ops.tick();
    obs::set_recorder(false);
    assert_eq!(bundles.len(), 1, "one breached service, one bundle");
    let dir = &bundles[0];

    // The bundle's flight-recorder window: balanced Chrome JSON with
    // the served requests in it.
    let trace_json = std::fs::read_to_string(dir.join("trace.json")).expect("trace.json written");
    let parsed = Json::parse(&trace_json).expect("trace.json must parse");
    let begins = assert_chrome_balanced(&parsed);
    assert!(
        begins.iter().filter(|n| n.as_str() == "serve.localize").count() >= 2,
        "the window must contain both served requests"
    );

    // The verdicts name the breached spec.
    let verdicts = std::fs::read_to_string(dir.join("verdicts.json")).expect("verdicts written");
    assert!(verdicts.contains("serve.latency_us:p99<=1us"));
    assert!(verdicts.contains("\"breached\""));

    // The retained tail traces survive into the bundle too.
    let retained_json =
        std::fs::read_to_string(dir.join("retained.json")).expect("retained.json written");
    let retained_parsed = Json::parse(&retained_json).expect("retained.json must parse");
    assert_eq!(
        retained_parsed.as_arr().map(<[Json]>::len),
        Some(2),
        "both anomalous requests must be retained"
    );

    // The acceptance core: each retained trace is the *complete
    // connected* span tree of its request — rooted at serve.localize,
    // every record ancestrally connected to that root, pipeline layers
    // included, and nothing from any other request mixed in.
    let retained = service.sampler().retained();
    assert_eq!(retained.len(), 2);
    for (which, kept) in retained.iter().enumerate() {
        assert_eq!(kept.decision, TailDecision::RetainedSlow);
        assert_ne!(kept.root, 0, "the root span id must have been captured");
        let root =
            kept.trace.records.iter().find(|r| r.id == kept.root).unwrap_or_else(|| {
                panic!("retained trace {which} must contain its own root record")
            });
        assert_eq!(root.name, "serve.localize");
        assert_eq!(
            kept.trace.find(RecordKind::Begin, "serve.localize").len(),
            1,
            "exactly one request root — no other request's tree mixed in"
        );
        for r in &kept.trace.records {
            if r.kind == RecordKind::End || r.id == kept.root {
                continue;
            }
            assert!(
                kept.trace.has_ancestor(r.id, kept.root),
                "record '{}' (id {}) in retained trace {which} is not connected to the root",
                r.name,
                r.id
            );
        }
        // Depth: the tree must reach through the serving layer into the
        // pipeline, not just hold the root.
        let inner = if which == 0 { "serve.cold_start" } else { "serve.track" };
        for name in [inner, "pipeline.match"] {
            assert!(
                kept.trace
                    .find(RecordKind::Begin, name)
                    .iter()
                    .any(|r| kept.trace.has_ancestor(r.id, kept.root)),
                "retained trace {which} must contain '{name}' under its root"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&ops.config().dir);
}

#[test]
fn tail_sampler_retains_slow_and_failed_and_drops_fast() {
    let _guard = serial();
    let (seq, snapshot) = fixture();
    obs::set_recorder(true);
    obs::recorder::reset();

    // One-hour cutoff: healthy requests are all "fast".
    let service = service_with_cutoff(snapshot, 3_600_000_000);
    let mut session = service.open_session().expect("session admission");
    for i in [3usize, 4] {
        session.localize(seq.frame(i)).expect("fixture frames must localize");
    }
    let stats = service.sampler().stats();
    assert_eq!(stats.observed, 2);
    assert_eq!(stats.dropped_fast, 2, "fast healthy requests must not be retained");
    assert_eq!(stats.retained, 0);

    // An empty frame fails to localize — failure is retained however
    // fast it was, with its own connected tree.
    session.localize(&PointCloud::new()).expect_err("an empty frame cannot localize");
    let stats = service.sampler().stats();
    assert_eq!(stats.observed, 3);
    assert_eq!(stats.retained, 1, "a failed request must be retained");
    let retained = service.sampler().take_retained();
    assert_eq!(retained.len(), 1);
    assert_eq!(retained[0].decision, TailDecision::RetainedFailed);
    assert_ne!(retained[0].root, 0);
    assert!(
        retained[0]
            .trace
            .records
            .iter()
            .any(|r| r.kind == RecordKind::Begin && r.name == "serve.localize"),
        "the failed request's tree must be captured"
    );

    // Cutoff 0 flips the same workload to all-retained-slow.
    let eager = service_with_cutoff(snapshot, 0);
    let mut session = eager.open_session().expect("session admission");
    session.localize(seq.frame(3)).expect("fixture frame must localize");
    let stats = eager.sampler().stats();
    assert_eq!((stats.observed, stats.retained, stats.dropped_fast), (1, 1, 0));
    assert_eq!(eager.sampler().retained()[0].decision, TailDecision::RetainedSlow);

    obs::set_recorder(false);
}

#[test]
fn poses_are_bit_identical_with_the_operational_tier_on_and_off() {
    let _guard = serial();
    let (seq, snapshot) = fixture();

    let run = |service: &LocalizationService, tick: Option<&OpsMonitor>| -> Vec<SessionStep> {
        let mut session = service.open_session().expect("session admission");
        [3usize, 4, 5]
            .iter()
            .map(|&i| {
                let step = session.localize(seq.frame(i)).expect("fixture frames must localize");
                if let Some(ops) = tick {
                    ops.tick();
                }
                step
            })
            .collect()
    };

    // Baseline: recorder off, sampler at the default threshold (which
    // retains nothing this early), no SLO evaluation.
    obs::set_recorder(false);
    obs::set_enabled(false);
    let baseline =
        run(&LocalizationService::new(Arc::clone(snapshot), ServeConfig::default()), None);

    // Everything on: flight recorder, retain-everything sampler, and an
    // SLO engine evaluated after every request (breaching, so bundle
    // writes happen mid-stream too).
    obs::set_recorder(true);
    obs::recorder::reset();
    let service = service_with_cutoff(snapshot, 0);
    let ops = monitor("identity", "serve.latency_us:p99<=1us");
    ops.register("serve", service.registry(), Some(service.sampler()));
    let observed = run(&service, Some(&ops));
    obs::set_recorder(false);

    assert!(service.sampler().stats().retained > 0, "the operational tier must have engaged");
    assert_eq!(baseline.len(), observed.len());
    for (a, b) in baseline.iter().zip(&observed) {
        assert_eq!(a.pose, b.pose, "the operational tier must not change a single pose bit");
    }

    let _ = std::fs::remove_dir_all(&ops.config().dir);
}

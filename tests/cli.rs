//! Smoke tests for the `tigris` CLI binary: generate → info → register →
//! odometry round trip on a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn tigris_bin() -> &'static str {
    env!("CARGO_BIN_EXE_tigris")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tigris_cli_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_and_unknown_command() {
    let out = Command::new(tigris_bin()).arg("--help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("usage"));

    let out = Command::new(tigris_bin()).arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = Command::new(tigris_bin()).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn generate_info_register_odometry_round_trip() {
    let dir = temp_dir("roundtrip");
    // Generate a tiny sequence. (Frames are full 64-beam scans; keep it to 3.)
    let out = Command::new(tigris_bin())
        .args(["generate", dir.to_str().unwrap(), "--frames", "3", "--seed", "9"])
        .output()
        .unwrap();
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("000000.bin").exists());
    assert!(dir.join("000002.bin").exists());
    assert!(dir.join("poses.txt").exists());

    // Info on a generated scan.
    let out = Command::new(tigris_bin())
        .args(["info", dir.join("000000.bin").to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("points:"));

    // Register frame 1 onto frame 0: stdout is one KITTI pose line whose
    // translation is ~1 m (the generator's vehicle speed / frame rate).
    let out = Command::new(tigris_bin())
        .args([
            "register",
            dir.join("000001.bin").to_str().unwrap(),
            dir.join("000000.bin").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "register failed: {}", String::from_utf8_lossy(&out.stderr));
    let line = String::from_utf8_lossy(&out.stdout);
    let pose = tigris::data::kitti_io::pose_from_line(line.trim()).unwrap();
    let t = pose.translation_norm();
    assert!(t > 0.5 && t < 2.0, "|t| = {t}");

    // Odometry over the directory, poses to a file.
    let poses_out = dir.join("est_poses.txt");
    let out = Command::new(tigris_bin())
        .args(["odometry", dir.to_str().unwrap(), "--out", poses_out.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "odometry failed: {}", String::from_utf8_lossy(&out.stderr));
    let est = tigris::data::read_poses(&poses_out).unwrap();
    let gt = tigris::data::read_poses(dir.join("poses.txt")).unwrap();
    assert_eq!(est.len(), gt.len());
    // End-pose agreement within 20 cm over ~2 m of travel.
    let drift = (est.last().unwrap().translation - gt.last().unwrap().translation).norm();
    assert!(drift < 0.2, "drift {drift} m");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn register_rejects_bad_paths() {
    let out = Command::new(tigris_bin())
        .args(["register", "/nonexistent/a.bin", "/nonexistent/b.bin"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let out = Command::new(tigris_bin()).args(["register", "/tmp", "/tmp"]).output().unwrap();
    assert!(!out.status.success());
}

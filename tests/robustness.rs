//! Robustness tests: pathological inputs through the full public API.
//! A production library must degrade gracefully — defined errors or sane
//! fallbacks, never panics or garbage — on inputs real LiDAR systems
//! produce (degenerate geometry, duplicates, extreme coordinates, tiny
//! clouds).

use tigris::core::{ApproxConfig, ApproxSearcher, KdTree, TwoStageKdTree};
use tigris::geom::{PointCloud, RigidTransform, Vec3};
use tigris::pipeline::{register, RegistrationConfig, RegistrationError};

fn fast_config() -> RegistrationConfig {
    RegistrationConfig {
        voxel_size: 0.0,
        keypoint: tigris::pipeline::KeypointAlgorithm::Uniform { voxel: 1.0 },
        ..RegistrationConfig::default()
    }
}

#[test]
fn all_identical_points() {
    let pts = vec![Vec3::new(1.0, 2.0, 3.0); 100];
    let classic = KdTree::build(&pts);
    assert_eq!(classic.nn(Vec3::ZERO).unwrap().index, 0);
    assert_eq!(classic.radius(Vec3::new(1.0, 2.0, 3.0), 0.01).len(), 100);

    let two_stage = TwoStageKdTree::build(&pts, 4);
    assert_eq!(two_stage.radius(Vec3::new(1.0, 2.0, 3.0), 0.01).len(), 100);

    let mut approx = ApproxSearcher::new(&two_stage, ApproxConfig::default());
    assert!(approx.nn(Vec3::ZERO).is_some());
}

#[test]
fn collinear_and_coplanar_clouds() {
    // Registration on degenerate geometry must not panic; it may fail with
    // a defined error or produce a (possibly wrong) transform.
    let line: Vec<Vec3> = (0..200).map(|i| Vec3::new(i as f64 * 0.1, 0.0, 0.0)).collect();
    let line_cloud = PointCloud::from_points(line);
    let result = register(&line_cloud, &line_cloud, &fast_config());
    if let Ok(r) = result {
        assert!(r.transform.translation.is_finite());
        assert!(r.transform.rotation.is_rotation(1e-6));
    }

    let plane: Vec<Vec3> =
        (0..400).map(|i| Vec3::new((i % 20) as f64 * 0.2, (i / 20) as f64 * 0.2, 0.0)).collect();
    let plane_cloud = PointCloud::from_points(plane);
    let result = register(&plane_cloud, &plane_cloud, &fast_config());
    if let Ok(r) = result {
        // Self-registration of a plane: the in-plane component is
        // unobservable but the result must still be a valid transform.
        assert!(r.transform.rotation.is_rotation(1e-6));
        assert!(r.transform.translation.norm() < 10.0);
    }
}

#[test]
fn single_point_and_two_point_clouds() {
    let one = PointCloud::from_points(vec![Vec3::ZERO]);
    let two = PointCloud::from_points(vec![Vec3::ZERO, Vec3::X]);
    for (a, b) in [(&one, &one), (&one, &two), (&two, &one)] {
        match register(a, b, &fast_config()) {
            Ok(r) => assert!(r.transform.translation.is_finite()),
            Err(RegistrationError::EmptyCloud | RegistrationError::IcpStarved) => {}
            Err(
                e @ (RegistrationError::UnknownBackend(_) | RegistrationError::PreparationMismatch),
            ) => {
                // register() prepares both frames under the one config
                // with a built-in backend; neither error is reachable.
                panic!("impossible for register() with a built-in backend: {e}")
            }
        }
    }
}

#[test]
fn extreme_coordinates() {
    // Kilometer-scale offsets (bad GPS init, map-frame clouds).
    let offset = Vec3::new(1.0e5, -2.0e5, 50.0);
    let base: Vec<Vec3> = (0..300)
        .map(|i| {
            offset
                + Vec3::new(
                    (i % 20) as f64 * 0.3,
                    (i / 20) as f64 * 0.3,
                    ((i % 7) as f64 * 0.2).sin(),
                )
        })
        .collect();
    let tree = KdTree::build(&base);
    let n = tree.nn(offset).unwrap();
    assert!(n.distance() < 1.0);
    let two = TwoStageKdTree::build(&base, 4);
    assert_eq!(two.nn(offset).unwrap().index, n.index);
}

#[test]
fn duplicated_frame_registration_is_identity() {
    // Registering a frame against itself must return ~identity.
    let pts: Vec<Vec3> = (0..900)
        .map(|i| {
            Vec3::new(
                (i % 30) as f64 * 0.2,
                (i / 30) as f64 * 0.2,
                (((i % 30) as f64 * 0.7).sin() + ((i / 30) as f64 * 0.9).cos()) * 0.5,
            )
        })
        .collect();
    let cloud = PointCloud::from_points(pts);
    let r = register(&cloud, &cloud, &fast_config()).unwrap();
    assert!(r.transform.is_identity(1e-3), "self-registration gave {}", r.transform);
}

#[test]
fn zero_radius_searches() {
    let pts: Vec<Vec3> = (0..50).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
    let tree = KdTree::build(&pts);
    assert_eq!(tree.radius(Vec3::new(7.0, 0.0, 0.0), 0.0).len(), 1);
    assert!(tree.radius(Vec3::new(7.5, 0.0, 0.0), 0.0).is_empty());
}

#[test]
fn tiny_leaf_budget_two_stage() {
    // Heights far beyond log2(n): every leaf is empty or singleton.
    let pts: Vec<Vec3> = (0..30).map(|i| Vec3::new(i as f64, (i % 3) as f64, 0.0)).collect();
    let tree = TwoStageKdTree::build(&pts, 20);
    for &p in &pts {
        assert_eq!(tree.nn(p).unwrap().distance_squared, 0.0);
    }
}

#[test]
fn accelerator_on_degenerate_trees() {
    use tigris::accel::{AcceleratorConfig, AcceleratorSim, SearchKind};
    // Single-leaf tree (height 0) and single-point tree.
    for pts in
        [vec![Vec3::ZERO], (0..64).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect::<Vec<_>>()]
    {
        let tree = TwoStageKdTree::build(&pts, 0);
        let mut sim = AcceleratorSim::new(&tree, AcceleratorConfig::paper());
        let queries = vec![Vec3::new(0.4, 0.0, 0.0); 8];
        let report = sim.run(&queries, SearchKind::Nn);
        for r in &report.nn_results {
            assert_eq!(r.unwrap().index, tree.nn(queries[0]).unwrap().index);
        }
        assert!(report.cycles > 0);
    }
}

#[test]
fn voxel_downsample_extreme_sizes() {
    let pts: Vec<Vec3> = (0..100).map(|i| Vec3::new(i as f64 * 0.01, 0.0, 0.0)).collect();
    let cloud = PointCloud::from_points(pts);
    // Huge voxel: one point survives.
    assert_eq!(cloud.voxel_downsample(1000.0).len(), 1);
    // Tiny voxel: all points survive.
    assert_eq!(cloud.voxel_downsample(1e-6).len(), 100);
}

#[test]
fn metrics_on_stationary_ground_truth() {
    use tigris::data::sequence_error;
    // All ground-truth motion below the 1 cm gate: no pairs scored, no NaNs.
    let tiny = vec![RigidTransform::from_translation(Vec3::new(1e-4, 0.0, 0.0)); 5];
    let err = sequence_error(&tiny, &tiny);
    assert_eq!(err.pairs, 0);
    assert!(err.translational_percent.is_finite());
}

//! The `SearchIndex` seam, exercised end-to-end: `register()` must run
//! with **every** `SearchBackendConfig` variant — including the
//! brute-force oracle and the registry-resolved accelerator backend — and
//! exact backends must land on bit-identical results, because the
//! pipeline above the seam consumes only the (identical) search answers.

use tigris::accel::register_accelerator_backend;
use tigris::core::ApproxConfig;
use tigris::geom::{PointCloud, RigidTransform, Vec3};
use tigris::pipeline::config::SearchBackendConfig;
use tigris::pipeline::odometry::Odometer;
use tigris::pipeline::{register, KeypointAlgorithm, RegistrationConfig, Searcher3};

/// A structured synthetic scene with distinctive geometry.
fn scene_cloud() -> PointCloud {
    let mut pts = Vec::new();
    let step = 0.15;
    for i in 0..40 {
        for j in 0..40 {
            pts.push(Vec3::new(i as f64 * step, j as f64 * step, 0.0));
        }
    }
    for i in 0..40 {
        for k in 1..15 {
            pts.push(Vec3::new(i as f64 * step, 6.0, k as f64 * step));
        }
    }
    for j in 0..20 {
        for k in 1..15 {
            pts.push(Vec3::new(6.0, j as f64 * step, k as f64 * step));
        }
    }
    for i in 0..12 {
        for k in 0..6 {
            pts.push(Vec3::new(2.0 + i as f64 * 0.1, 3.0, k as f64 * 0.15));
            pts.push(Vec3::new(2.0 + i as f64 * 0.1, 3.8, k as f64 * 0.15));
        }
    }
    PointCloud::from_points(pts)
}

fn fast_config() -> RegistrationConfig {
    RegistrationConfig {
        voxel_size: 0.0,
        normal_radius: 0.5,
        keypoint: KeypointAlgorithm::Uniform { voxel: 1.0 },
        max_correspondence_distance: 1.5,
        ..RegistrationConfig::default()
    }
}

#[test]
fn register_runs_on_every_backend_variant() {
    register_accelerator_backend();
    let target = scene_cloud();
    let gt = RigidTransform::from_axis_angle(Vec3::Z, 0.03, Vec3::new(0.25, -0.1, 0.02));
    let source = target.transformed(&gt.inverse());

    let backends = [
        SearchBackendConfig::Classic,
        SearchBackendConfig::TwoStage { top_height: 6 },
        SearchBackendConfig::TwoStageApprox { top_height: 6, approx: ApproxConfig::default() },
        SearchBackendConfig::BruteForce,
        SearchBackendConfig::Custom { name: "dynamic" },
        SearchBackendConfig::Custom { name: "accelerator" },
    ];
    for backend in backends {
        let mut cfg = fast_config();
        cfg.backend = backend;
        let result = register(&source, &target, &cfg)
            .unwrap_or_else(|e| panic!("register() failed on {backend:?}: {e}"));
        assert!(
            (result.transform.translation - gt.translation).norm() < 0.1,
            "{backend:?} diverged: {} vs {}",
            result.transform.translation,
            gt.translation
        );
    }
}

#[test]
fn accelerator_exact_mode_matches_two_stage_software_through_register() {
    // Exact search answers are bit-identical across exact backends, and the
    // pipeline is deterministic in its inputs — so the *entire registration
    // output* must match bitwise between two-stage software and the
    // accelerator serving the same pipeline.
    register_accelerator_backend();
    let target = scene_cloud();
    let gt = RigidTransform::from_translation(Vec3::new(0.2, -0.08, 0.01));
    let source = target.transformed(&gt.inverse());

    let mut sw_cfg = fast_config();
    sw_cfg.backend = SearchBackendConfig::TwoStage { top_height: 6 };
    let sw = register(&source, &target, &sw_cfg).unwrap();

    let mut hw_cfg = fast_config();
    hw_cfg.backend = SearchBackendConfig::Custom { name: "accelerator" };
    let hw = register(&source, &target, &hw_cfg).unwrap();

    assert_eq!(
        sw.transform.translation, hw.transform.translation,
        "accelerator transform must be bit-identical to two-stage software"
    );
    assert_eq!(sw.transform.rotation, hw.transform.rotation);
    assert_eq!(sw.initial_transform.translation, hw.initial_transform.translation);
    assert_eq!(sw.icp_iterations, hw.icp_iterations);
    assert_eq!(sw.keypoints, hw.keypoints);
    assert_eq!(sw.inlier_correspondences, hw.inlier_correspondences);
}

#[test]
fn accelerator_searcher_matches_two_stage_searcher_query_by_query() {
    register_accelerator_backend();
    let pts: Vec<Vec3> = scene_cloud().points().to_vec();
    let mut hw =
        Searcher3::from_config(&pts, &SearchBackendConfig::Custom { name: "accelerator" }).unwrap();
    let mut sw = Searcher3::two_stage(&pts, 6);
    assert_eq!(hw.backend_name(), "accelerator");
    for i in 0..60 {
        let q = Vec3::new((i % 8) as f64 * 0.7 + 0.21, (i / 8) as f64 * 0.6, 0.4);
        assert_eq!(hw.nn(q), sw.nn(q), "NN diverged at {q}");
        assert_eq!(hw.radius(q, 1.2), sw.radius(q, 1.2), "radius diverged at {q}");
        assert_eq!(hw.knn(q, 5), sw.knn(q, 5), "knn diverged at {q}");
    }
}

#[test]
fn odometer_runs_on_the_accelerator() {
    register_accelerator_backend();
    let world = scene_cloud();
    let delta = RigidTransform::from_translation(Vec3::new(0.05, 0.02, 0.0));
    let mut cfg = fast_config();
    cfg.backend = SearchBackendConfig::Custom { name: "accelerator" };
    let mut odo = Odometer::new(cfg);
    odo.push(&world).unwrap();
    let step = odo.push(&world.transformed(&delta.inverse())).unwrap().expect("second frame steps");
    assert!(
        (step.relative.translation - delta.translation).norm() < 0.05,
        "accelerator odometry drifted: {}",
        step.relative.translation
    );
}

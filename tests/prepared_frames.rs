//! The prepare/match reuse seam, exercised end-to-end: `register()` must
//! be exactly prepare + prepare + match, the streaming odometer must
//! produce bit-identical poses to a recompute-everything baseline while
//! running each frame's front end exactly once, and a long synthetic
//! sequence must stay within drift bounds under the KITTI-style metrics.

use tigris::data::{sequence_error, Sequence, SequenceConfig};
use tigris::geom::RigidTransform;
use tigris::pipeline::{
    prepare_frame, register, register_prepared, register_prepared_with_prior, Odometer,
    RegistrationConfig, RegistrationResult,
};

/// A small but realistic sequence (shared across tests to amortize the
/// LiDAR ray casting).
fn test_sequence() -> &'static Sequence {
    use std::sync::OnceLock;
    static SEQ: OnceLock<Sequence> = OnceLock::new();
    SEQ.get_or_init(|| {
        let mut cfg = SequenceConfig::medium();
        cfg.frames = 4;
        Sequence::generate(&cfg, 42)
    })
}

fn assert_same_registration(a: &RegistrationResult, b: &RegistrationResult, what: &str) {
    // Bitwise equality: these are the same floating-point computations in
    // the same order, so not even an ULP may differ.
    assert_eq!(a.transform, b.transform, "{what}: transform");
    assert_eq!(a.initial_transform, b.initial_transform, "{what}: initial transform");
    assert_eq!(a.keypoints, b.keypoints, "{what}: keypoint counts");
    assert_eq!(
        a.inlier_correspondences, b.inlier_correspondences,
        "{what}: inlier correspondences"
    );
    assert_eq!(a.icp_iterations, b.icp_iterations, "{what}: ICP iterations");
    // Profile *stats* are intentionally not compared here: a profile only
    // bills a frame's preparation once, so a result that reused a frame
    // reports fewer queries than one that paid for the preparation.
}

#[test]
fn register_is_exactly_prepare_prepare_match() {
    let seq = test_sequence();
    let cfg = RegistrationConfig::default();

    let monolithic = register(seq.frame(1), seq.frame(0), &cfg).expect("register failed");

    let mut source = prepare_frame(seq.frame(1), &cfg).expect("source prepare failed");
    let mut target = prepare_frame(seq.frame(0), &cfg).expect("target prepare failed");
    let layered =
        register_prepared(&mut source, &mut target, &cfg).expect("layered registration failed");

    assert_same_registration(&monolithic, &layered, "register vs prepare+prepare+match");
    // Both paths prepared both frames fresh, so here even the search
    // accounting must agree exactly.
    assert_eq!(
        monolithic.profile.search_stats.queries, layered.profile.search_stats.queries,
        "search query count"
    );
    assert_eq!(
        monolithic.profile.search_stats.tree_nodes_visited,
        layered.profile.search_stats.tree_nodes_visited,
        "tree nodes visited"
    );
    // Both paths billed exactly two fresh preparations and no reuses.
    for r in [&monolithic, &layered] {
        assert_eq!(r.profile.frames_prepared, 2);
        assert_eq!(r.profile.frames_reused, 0);
        assert!(r.profile.prepare_time > std::time::Duration::ZERO);
        assert!(r.profile.match_time > std::time::Duration::ZERO);
    }
}

#[test]
fn rematching_prepared_frames_is_stable_and_counted_as_reuse() {
    let seq = test_sequence();
    let cfg = RegistrationConfig::default();

    let mut source = prepare_frame(seq.frame(1), &cfg).unwrap();
    let mut target = prepare_frame(seq.frame(0), &cfg).unwrap();
    let first = register_prepared(&mut source, &mut target, &cfg).unwrap();
    let second = register_prepared(&mut source, &mut target, &cfg).unwrap();

    // Matching is deterministic, so a re-match over the same artifacts
    // lands on the same answer…
    assert_same_registration(&first, &second, "first vs second match");
    // …but the second run reused both preparations.
    assert_eq!(second.profile.frames_prepared, 0);
    assert_eq!(second.profile.frames_reused, 2);
    assert_eq!(second.profile.prepare_time, std::time::Duration::ZERO);
}

#[test]
fn streaming_odometer_matches_recompute_baseline_bitwise() {
    let seq = test_sequence();
    let cfg = RegistrationConfig::default();

    // Reuse path: the odometer carries each frame's preparation forward.
    let mut odo = Odometer::new(cfg.clone());
    let mut odo_steps = Vec::new();
    let mut total_prepared = 0;
    let mut total_reused = 0;
    for i in 0..seq.len() {
        if let Some(step) = odo.push(seq.frame(i)).expect("odometer push failed") {
            total_prepared += step.registration.profile.frames_prepared;
            total_reused += step.registration.profile.frames_reused;
            odo_steps.push(step);
        }
    }

    // Recompute-everything baseline: same motion-prior logic, but both
    // frames of every pair prepared from scratch.
    let mut baseline_poses = Vec::new();
    let mut pose = RigidTransform::IDENTITY;
    let mut velocity: Option<RigidTransform> = None;
    for i in 1..seq.len() {
        let mut source = prepare_frame(seq.frame(i), &cfg).unwrap();
        let mut target = prepare_frame(seq.frame(i - 1), &cfg).unwrap();
        let result =
            register_prepared_with_prior(&mut source, &mut target, &cfg, velocity.as_ref())
                .expect("baseline registration failed");
        velocity = Some(result.transform);
        pose = pose * result.transform;
        baseline_poses.push((result, pose));
    }

    assert_eq!(odo_steps.len(), baseline_poses.len());
    for (i, (step, (baseline, baseline_pose))) in odo_steps.iter().zip(&baseline_poses).enumerate()
    {
        assert_same_registration(&step.registration, baseline, &format!("pair {i}"));
        assert_eq!(step.relative, baseline.transform, "pair {i}: relative");
        assert_eq!(step.pose, *baseline_pose, "pair {i}: accumulated pose");
    }

    // Every frame's front end ran exactly once across the whole stream;
    // every interior frame served twice (once as source, once as target).
    assert_eq!(total_prepared, seq.len());
    assert_eq!(total_reused, seq.len() - 2);
}

#[test]
fn velocity_prior_slack_constants_are_pinned() {
    // The odometer's velocity-prior gate and the recompute baseline above
    // must widen their search windows by the *same* slack, or the streams
    // silently diverge while each looks individually plausible. These are
    // re-exported from one definition site (`pipeline.rs`); pin the values
    // so a "harmless" retune screams here instead of as a one-ULP pose
    // drift three tests away.
    use tigris::pipeline::{PRIOR_ROTATION_SLACK, PRIOR_TRANSLATION_SLACK};
    assert_eq!(PRIOR_TRANSLATION_SLACK, 2.0, "translation slack (meters)");
    assert_eq!(PRIOR_ROTATION_SLACK, 0.2, "rotation slack (radians)");
}

#[test]
fn recompute_baseline_survives_the_soa_layout_swap() {
    // The search backends now bank leaf points as structure-of-arrays and
    // scan them with SIMD kernels. The kernels are bit-identical to the
    // scalar reference, so a freshly prepared frame must still register
    // bit-identically against itself under a motion prior — the exact
    // computation `streaming_odometer_matches_recompute_baseline_bitwise`
    // assumes when it compares reuse against recompute.
    let seq = test_sequence();
    let cfg = RegistrationConfig::default();

    let mut s1 = prepare_frame(seq.frame(2), &cfg).unwrap();
    let mut t1 = prepare_frame(seq.frame(1), &cfg).unwrap();
    let first = register_prepared(&mut s1, &mut t1, &cfg).unwrap();

    let prior = first.transform;
    let mut s2 = prepare_frame(seq.frame(2), &cfg).unwrap();
    let mut t2 = prepare_frame(seq.frame(1), &cfg).unwrap();
    let with_prior = register_prepared_with_prior(&mut s2, &mut t2, &cfg, Some(&prior)).unwrap();
    let mut s3 = prepare_frame(seq.frame(2), &cfg).unwrap();
    let mut t3 = prepare_frame(seq.frame(1), &cfg).unwrap();
    let again = register_prepared_with_prior(&mut s3, &mut t3, &cfg, Some(&prior)).unwrap();

    // Same artifacts, same prior → bitwise-identical everything.
    assert_same_registration(&with_prior, &again, "prior-gated recompute determinism");
    assert_eq!(
        with_prior.profile.search_stats, again.profile.search_stats,
        "search accounting must be deterministic under the SoA layout"
    );
}

#[test]
fn long_sequence_drift_stays_bounded() {
    // A longer, lower-resolution stream: the odometer must stay within
    // KITTI-style error bounds over the whole trajectory, proving reuse
    // does not degrade accuracy as frames chain (source one step, target
    // the next).
    let mut cfg = SequenceConfig::medium();
    cfg.frames = 8;
    let seq = Sequence::generate(&cfg, 7);

    let mut odo = Odometer::new(RegistrationConfig::default());
    let mut estimates = Vec::new();
    let mut gts = Vec::new();
    for i in 0..seq.len() {
        if let Some(step) = odo.push(seq.frame(i)).expect("push failed") {
            estimates.push(step.relative);
            gts.push(seq.ground_truth_relative(i - 1));
        }
    }
    assert_eq!(estimates.len(), seq.len() - 1);

    // Relative-pose error (KITTI / RPE): percent of distance traveled.
    let err = sequence_error(&estimates, &gts);
    assert!(err.translational_percent < 12.0, "translational drift {err} exceeds bound");
    assert!(err.rotational_deg_per_m < 1.0, "rotational drift {err} exceeds bound");

    // Absolute trajectory error (ATE) at the end point, normalized by
    // distance traveled (trajectories start at the origin, so the
    // accumulated pose is directly comparable to the last ground-truth
    // pose).
    let gt_end = seq.pose(seq.len() - 1).translation;
    let drift = (odo.pose().translation - gt_end).norm();
    let traveled = gt_end.norm().max(0.01);
    assert!(drift / traveled < 0.15, "end-point drift {drift:.3} m over {traveled:.1} m traveled");
}

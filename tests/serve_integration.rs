//! End-to-end serving acceptance: a map built once by the `Mapper` is
//! frozen into an `Arc`-shared [`MapSnapshot`] and served to several
//! concurrent localization sessions.
//!
//! What must hold:
//!
//! * every cold-start relocalization in the drift-corrected region lands
//!   within **1.0 m / 5° of ground truth** (and a held-out query frame —
//!   same scene, novel pose, fresh sensor noise — does too);
//! * cold starts *anywhere* on the map are **map-consistent**: within
//!   1.0 m / 5° of the frozen map's own pose for that place (a
//!   localization service cannot beat its map's residual drift, and must
//!   not add to it);
//! * results are **bit-identical** no matter how many sessions share the
//!   snapshot or how requests interleave;
//! * the snapshot answers map queries exactly like the mapper it was
//!   frozen from, serially and batched;
//! * admission control rejects typed beyond the session/in-flight
//!   budgets, and failures are typed and recoverable.

use std::sync::{Arc, OnceLock};

use tigris::data::{LidarConfig, Sequence, SequenceConfig};
use tigris::geom::{RigidTransform, Vec3};
use tigris::map::{MapNeighbor, Mapper, MapperConfig};
use tigris::serve::{
    relocalize_prepared, LocalizationService, MapSnapshot, ServeConfig, ServeError, SessionStep,
    StepKind,
};

/// The mapping fixture of `mapping_integration.rs`: a ~66-frame, 60 m
/// closed circuit at the low-resolution scanner, small enough for
/// debug-mode CI.
fn fixture_config() -> SequenceConfig {
    let mut cfg = SequenceConfig::loop_circuit(60.0, 6);
    cfg.lidar = LidarConfig::tiny();
    cfg
}

/// The mapping sequence, the frozen snapshot, and map-query answers
/// recorded from the mapper *before* freezing (for parity checks) —
/// built once and shared by every test in this file.
struct Fixture {
    seq: Sequence,
    snapshot: Arc<MapSnapshot>,
    /// `(probe, radius, answers)` recorded from `Mapper::query`.
    mapper_answers: Vec<(Vec3, f64, Vec<MapNeighbor>)>,
    mapper_points: usize,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let seq = Sequence::generate(&fixture_config(), 7);
        // The serving profile: submap anchors (= stored keyframes, the
        // verification targets) every 6 m, dense loop closures.
        let mut mapper = Mapper::new(MapperConfig::serving());
        for i in 0..seq.len() {
            mapper.push(seq.frame(i)).unwrap_or_else(|e| panic!("map frame {i} failed: {e}"));
        }
        assert!(
            mapper.stats().closures_accepted >= 1,
            "fixture must close its loop ({} attempted)",
            mapper.stats().closures_attempted
        );
        // Record map-query answers before the mapper is consumed.
        let probes: Vec<(Vec3, f64)> = (0..seq.len())
            .step_by(9)
            .map(|i| (mapper.poses()[i].translation + Vec3::new(0.0, 0.0, -1.0), 2.0))
            .collect();
        let mapper_answers = probes.iter().map(|&(p, r)| (p, r, mapper.query(p, r))).collect();
        let mapper_points = mapper.total_points();
        let snapshot = Arc::new(MapSnapshot::freeze(mapper).expect("freeze must succeed"));
        Fixture { seq, snapshot, mapper_answers, mapper_points }
    })
}

/// Tracked frames following each script's cold start.
const TRACK_STEPS: usize = 2;

/// Session scripts in the drift-corrected region (the loop seam, where
/// the closures pinned the map to ground truth): each session
/// cold-starts on its first frame, then tracks the following ones.
fn session_scripts() -> Vec<Vec<usize>> {
    [2usize, 58, 61, 63].iter().map(|&start| (start..=start + TRACK_STEPS).collect()).collect()
}

/// Runs each script in its own session, `workers` scripts concurrently
/// (each worker thread drives its share of the scripts one session at a
/// time), returning per-script steps. With `workers == 1` this is fully
/// serial serving of the same requests — the bit-identity baseline.
fn run_sessions(
    snapshot: &Arc<MapSnapshot>,
    seq: &Sequence,
    scripts: &[Vec<usize>],
    workers: usize,
) -> (Vec<Vec<SessionStep>>, LocalizationService) {
    let service = LocalizationService::new(Arc::clone(snapshot), ServeConfig::default());
    let mut results: Vec<Vec<SessionStep>> = vec![Vec::new(); scripts.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..workers {
            let service = &service;
            let scripts_for_worker: Vec<(usize, &Vec<usize>)> =
                scripts.iter().enumerate().filter(|(i, _)| i % workers == worker).collect();
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, Vec<SessionStep>)> = Vec::new();
                for (script_id, script) in scripts_for_worker {
                    let mut session = service.open_session().expect("session admission");
                    let mut steps = Vec::new();
                    for &frame in script.iter() {
                        steps.push(
                            session
                                .localize(seq.frame(frame))
                                .unwrap_or_else(|e| panic!("frame {frame} failed: {e}")),
                        );
                    }
                    out.push((script_id, steps));
                }
                out
            }));
        }
        for handle in handles {
            for (script_id, steps) in handle.join().expect("session thread panicked") {
                results[script_id] = steps;
            }
        }
    });
    (results, service)
}

fn pose_errors(reference: &RigidTransform, est: &RigidTransform) -> (f64, f64) {
    let delta = reference.inverse() * *est;
    (delta.translation_norm(), delta.rotation_angle().to_degrees())
}

#[test]
fn frozen_map_serves_concurrent_sessions_within_tolerance() {
    let fx = fixture();
    let scripts = session_scripts();
    assert!(fx.snapshot.verifiable_submaps() >= 2);

    // Serve the same scripts with 1 worker and with 4 concurrent ones.
    let (serial_steps, _service) = run_sessions(&fx.snapshot, &fx.seq, &scripts, 1);
    let (concurrent_steps, service) = run_sessions(&fx.snapshot, &fx.seq, &scripts, 4);

    for (script, steps) in scripts.iter().zip(&concurrent_steps) {
        assert_eq!(steps.len(), script.len());
        // First step of each script is a cold start; the rest track.
        for (k, (&frame, step)) in script.iter().zip(steps).enumerate() {
            let (t_err, r_err) = pose_errors(fx.seq.pose(frame), &step.pose);
            let kind = match step.kind {
                StepKind::Relocalized(r) => {
                    assert!(r.confidence > 0.0 && r.confidence < 1.0);
                    assert!(r.inliers >= ServeConfig::default().reloc.min_inliers);
                    assert!(
                        r.structure_overlap >= ServeConfig::default().reloc.min_structure_overlap
                    );
                    "reloc"
                }
                StepKind::Tracked { .. } => "track",
            };
            eprintln!("frame {frame} ({kind}): err {t_err:.3} m / {r_err:.2} deg");
            if k == 0 {
                assert!(
                    matches!(step.kind, StepKind::Relocalized(_)),
                    "script head must cold-start"
                );
                // The acceptance bound: cold starts within 1 m / 5 deg
                // of ground truth.
                assert!(t_err <= 1.0, "frame {frame} cold start {t_err:.3} m off");
                assert!(r_err <= 5.0, "frame {frame} cold start {r_err:.2} deg off");
            } else {
                assert!(matches!(step.kind, StepKind::Tracked { .. }), "script tail must track");
                assert!(t_err <= 1.5, "frame {frame} tracked {t_err:.3} m off");
            }
        }
    }

    // Bit-identical across session counts: same scripts, same answers.
    for (a, b) in serial_steps.iter().flatten().zip(concurrent_steps.iter().flatten()) {
        assert_eq!(a.frame, b.frame);
        assert_eq!(a.pose.translation, b.pose.translation, "poses must be bit-identical");
        assert_eq!(a.pose.rotation, b.pose.rotation);
    }

    // Service-wide accounting.
    let stats = service.stats();
    eprintln!("{stats:?}");
    assert_eq!(stats.sessions_admitted, scripts.len());
    assert_eq!(stats.sessions_active, 0, "sessions release their slots on drop");
    assert_eq!(stats.frames, scripts.iter().map(Vec::len).sum::<usize>());
    assert_eq!(stats.relocalizations_succeeded, scripts.len());
    assert_eq!(stats.frames_tracked, scripts.len() * TRACK_STEPS);
    assert_eq!(stats.latency.count, stats.frames);
    assert!(stats.latency.p50 > std::time::Duration::ZERO);
    assert!(stats.latency.p99 >= stats.latency.p50);
}

#[test]
fn held_out_queries_relocalize_within_tolerance() {
    let fx = fixture();
    // Novel poses near the corrected region: the mapped pose nudged
    // sideways and in heading, scanned with a fresh noise stream — a
    // query the map has never seen, with exact ground truth.
    let nudge =
        RigidTransform::from_axis_angle(Vec3::Z, 3.0_f64.to_radians(), Vec3::new(0.25, -0.2, 0.0));
    let poses: Vec<RigidTransform> =
        [3usize, 60].iter().map(|&i| *fx.seq.pose(i) * nudge).collect();
    let queries = Sequence::scan_at(&fixture_config(), 7, &poses);

    let service = LocalizationService::new(Arc::clone(&fx.snapshot), ServeConfig::default());
    for i in 0..queries.len() {
        let mut session = service.open_session().unwrap();
        let step = session
            .localize(queries.frame(i))
            .unwrap_or_else(|e| panic!("held-out query {i} failed: {e}"));
        assert!(matches!(step.kind, StepKind::Relocalized(_)));
        let (t_err, r_err) = pose_errors(queries.pose(i), &step.pose);
        eprintln!("held-out query {i}: err {t_err:.3} m / {r_err:.2} deg");
        assert!(t_err <= 1.0, "held-out query {i}: {t_err:.3} m off");
        assert!(r_err <= 5.0, "held-out query {i}: {r_err:.2} deg off");
    }
}

#[test]
fn mid_loop_cold_starts_are_map_consistent() {
    let fx = fixture();
    // Queries right next to mid-loop keyframes, where the frozen map
    // still carries meters of residual odometry drift relative to ground
    // truth. A localization service cannot beat its map — but it must
    // agree with it: the relocalized pose must match the map's own pose
    // chain for that frame to within the verification tolerance.
    let reloc_cfg = ServeConfig::default().reloc;
    let mut verified = 0usize;
    for submap in fx.snapshot.submaps() {
        let query_frame = submap.anchor_frame() + 1;
        if query_frame >= fx.seq.len() {
            continue;
        }
        let mut prepared = tigris::pipeline::prepare_frame(
            fx.seq.frame(query_frame),
            fx.snapshot.registration_config(),
        )
        .unwrap();
        let Ok(reloc) = relocalize_prepared(&*fx.snapshot, &mut prepared, &reloc_cfg) else {
            // Not every mid-loop frame must relocalize (retrieval is
            // single-frame); the ones that do must be map-consistent.
            continue;
        };
        let map_pose = fx.snapshot.poses()[query_frame];
        let (t_err, r_err) = pose_errors(&map_pose, &reloc.pose);
        eprintln!(
            "frame {query_frame} via submap {}: map-relative err {t_err:.3} m / {r_err:.2} deg",
            reloc.submap
        );
        assert!(t_err <= 1.0, "frame {query_frame}: {t_err:.3} m from the map's own pose");
        assert!(r_err <= 5.0, "frame {query_frame}: {r_err:.2} deg from the map's own pose");
        verified += 1;
    }
    assert!(verified >= 3, "only {verified} mid-loop cold starts verified");
}

#[test]
fn snapshot_queries_match_the_mapper_and_batch_bitwise() {
    let fx = fixture();
    // Zero-copy freeze: every mapped point is served.
    assert_eq!(fx.snapshot.total_points(), fx.mapper_points);

    // The snapshot answers map queries exactly like the live mapper did…
    for (probe, radius, expected) in &fx.mapper_answers {
        let got = fx.snapshot.query(*probe, *radius);
        assert_eq!(&got, expected, "snapshot disagrees with mapper at {probe}");
    }

    // …and the cross-session batched path answers exactly like the
    // serial one.
    let service = LocalizationService::new(Arc::clone(&fx.snapshot), ServeConfig::default());
    let queries: Vec<Vec3> = fx.mapper_answers.iter().map(|&(p, _, _)| p).collect();
    let batched = service.query_batch(&queries, 2.0);
    for ((_, _, expected), got) in fx.mapper_answers.iter().zip(&batched) {
        assert_eq!(got, expected, "batched map query diverged");
    }
}

#[test]
fn admission_control_rejects_typed_beyond_budgets() {
    let fx = fixture();
    let config = ServeConfig { max_sessions: 2, max_inflight: 0, ..ServeConfig::default() };
    let service = LocalizationService::new(Arc::clone(&fx.snapshot), config);

    let s1 = service.open_session().unwrap();
    let mut s2 = service.open_session().unwrap();
    assert_eq!(
        service.open_session().unwrap_err(),
        ServeError::SessionsExhausted { limit: 2 },
        "third session must be rejected"
    );
    assert_eq!(service.active_sessions(), 2);

    // Zero in-flight budget: every localize is shed before any work.
    assert_eq!(s2.localize(fx.seq.frame(0)).unwrap_err(), ServeError::Saturated { limit: 0 });

    // Dropping a session frees its slot.
    drop(s1);
    assert_eq!(service.active_sessions(), 1);
    let _s3 = service.open_session().expect("slot must be reusable after drop");

    let stats = service.stats();
    assert_eq!(stats.sessions_rejected, 1);
    assert_eq!(stats.frames_rejected, 1);
    assert_eq!(stats.frames, 0, "rejected frames never count as served");
}

#[test]
fn session_slots_release_on_abnormal_teardown() {
    let fx = fixture();
    let config = ServeConfig { max_sessions: 1, ..ServeConfig::default() };
    let service = LocalizationService::new(Arc::clone(&fx.snapshot), config);

    // A session thread that dies mid-stream: the unwind still runs the
    // session's `Drop`, so the only slot must come back.
    let result = std::thread::scope(|scope| {
        scope
            .spawn(|| {
                let mut session = service.open_session().expect("first admission");
                session.localize(fx.seq.frame(2)).expect("cold start");
                panic!("session thread dies with the session live");
            })
            .join()
    });
    assert!(result.is_err(), "the session thread must have panicked");
    assert_eq!(service.active_sessions(), 0, "panic teardown must release the slot");

    // Re-admission succeeds and the service still serves.
    let mut session = service.open_session().expect("slot must be re-admittable after a panic");
    let step = session.localize(fx.seq.frame(2)).expect("service must still localize");
    assert!(matches!(step.kind, StepKind::Relocalized(_)));

    let stats = service.stats();
    assert_eq!(stats.sessions_admitted, 2);
    assert_eq!(stats.sessions_active, 1);
    assert_eq!(stats.frames, 2, "the pre-panic frame still counts as served");
}

#[test]
fn relocalization_failure_is_typed_and_recoverable() {
    let fx = fixture();
    let service = LocalizationService::new(Arc::clone(&fx.snapshot), ServeConfig::default());
    let mut session = service.open_session().unwrap();

    // A structured frame that matches nothing in the map: far-away box.
    let mut pts = Vec::new();
    for i in 0..30 {
        for k in 0..12 {
            pts.push(Vec3::new(500.0 + i as f64 * 0.3, 500.0, k as f64 * 0.3));
            pts.push(Vec3::new(500.0, 500.0 + i as f64 * 0.3, k as f64 * 0.3));
        }
    }
    let alien = tigris::geom::PointCloud::from_points(pts);
    let err = session.localize(&alien).unwrap_err();
    assert!(
        matches!(err, ServeError::RelocalizationFailed { .. }),
        "expected typed relocalization failure, got {err}"
    );
    assert_eq!(session.phase(), tigris::serve::SessionPhase::ColdStart);

    // An empty frame is a typed registration error, not a crash.
    assert!(matches!(
        session.localize(&tigris::geom::PointCloud::new()).unwrap_err(),
        ServeError::Registration(_)
    ));

    // The session recovers: a real frame cold-starts fine afterwards.
    let step = session.localize(fx.seq.frame(2)).expect("recovery cold start");
    assert!(matches!(step.kind, StepKind::Relocalized(_)));
    assert_eq!(session.phase(), tigris::serve::SessionPhase::Tracking);
    assert!(session.pose().is_some());
    let stats = session.stats();
    assert_eq!(stats.relocalizations_attempted, 2);
    assert_eq!(stats.relocalizations_succeeded, 1);
}

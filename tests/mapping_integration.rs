//! End-to-end mapping acceptance: on a closed-circuit sequence the
//! [`Mapper`] must detect the revisit, close the loop, and cut the
//! absolute trajectory error well below raw odometry's — while running
//! every streamed frame's front end exactly once.

use tigris::data::{absolute_trajectory_error, LidarConfig, Sequence, SequenceConfig};
use tigris::geom::Vec3;
use tigris::map::{Mapper, MapperConfig};

/// A closed loop small enough for debug-mode CI: ~66 frames of a 60 m
/// circuit at the low-resolution scanner.
fn loop_fixture() -> (Sequence, MapperConfig) {
    let mut cfg = SequenceConfig::loop_circuit(60.0, 6);
    cfg.lidar = LidarConfig::tiny();
    let seq = Sequence::generate(&cfg, 7);
    let mapper_cfg = MapperConfig::default();
    (seq, mapper_cfg)
}

#[test]
fn loop_closure_halves_the_trajectory_error() {
    let (seq, cfg) = loop_fixture();
    let mut mapper = Mapper::new(cfg);
    for i in 0..seq.len() {
        let step = mapper.push(seq.frame(i)).unwrap_or_else(|e| {
            panic!("frame {i} failed: {e}");
        });
        if let Some(closure) = step.closure {
            eprintln!(
                "frame {i}: closed against submap {} (frame {}), {} inliers, error {:.3} -> {:.3}",
                closure.submap,
                closure.matched_frame,
                closure.inliers,
                closure.report.initial_error,
                closure.report.final_error
            );
        }
    }

    let stats = mapper.stats();
    eprintln!("stats: {stats:?}");
    // Every streamed frame's front end ran exactly once (failure-free
    // stream: preparations billed == frames pushed).
    assert_eq!(stats.frames, seq.len());
    assert_eq!(stats.breaks, 0);
    assert_eq!(stats.frames_prepared, seq.len(), "front end must run once per frame");

    // The revisit must be detected.
    assert!(
        stats.closures_accepted >= 1,
        "no loop closure detected ({} attempted)",
        stats.closures_attempted
    );

    // Drift: the optimized trajectory must beat raw odometry by 2x ATE.
    let gt = seq.poses();
    let raw_ate = absolute_trajectory_error(mapper.raw_poses(), gt);
    let opt_ate = absolute_trajectory_error(mapper.poses(), gt);
    eprintln!("ATE raw {raw_ate:.3} m, optimized {opt_ate:.3} m");
    assert!(raw_ate > 0.0, "raw odometry with zero drift is not a meaningful fixture");
    assert!(
        opt_ate <= 0.5 * raw_ate,
        "post-optimization ATE {opt_ate:.3} m must be <= half of raw {raw_ate:.3} m"
    );
}

#[test]
fn mapper_query_serves_the_global_map() {
    let (seq, cfg) = loop_fixture();
    let mut mapper = Mapper::new(cfg);
    // A prefix of the circuit is enough to exercise multi-submap queries.
    for i in 0..20.min(seq.len()) {
        mapper.push(seq.frame(i)).unwrap();
    }
    assert!(mapper.submaps().len() >= 2, "{} submaps", mapper.submaps().len());
    assert!(mapper.total_points() > 1000);

    // Query around an early pose: ground/wall structure must be there.
    let probe = mapper.poses()[2].translation + Vec3::new(0.0, 0.0, -1.0);
    let hits = mapper.query(probe, 2.0);
    assert!(!hits.is_empty(), "no map points near an observed pose");
    for pair in hits.windows(2) {
        assert!(pair[0].distance_squared <= pair[1].distance_squared, "unsorted query result");
    }
    // Each hit's point really is within the radius.
    for h in &hits {
        assert!((h.point - probe).norm() <= 2.0 + 1e-9);
    }
    // The global cloud matches the per-submap sum.
    assert_eq!(mapper.global_cloud().len(), mapper.total_points());
}

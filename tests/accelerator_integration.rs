//! Integration tests spanning the data substrate, the KD-tree structures
//! and the accelerator model: the simulated hardware must agree with the
//! software searches, and the paper's qualitative architecture claims must
//! hold on realistic LiDAR workloads.

use tigris::accel::{AcceleratorConfig, AcceleratorSim, BackendPolicy, SearchKind};
use tigris::core::{ApproxConfig, TwoStageKdTree};
use tigris::data::{Lidar, LidarConfig, Scene, SceneConfig};
use tigris::geom::{RigidTransform, Vec3};

fn lidar_workload() -> (Vec<Vec3>, Vec<Vec3>) {
    let scene = Scene::generate(&SceneConfig::tiny(), 5);
    let mut lidar = Lidar::new(LidarConfig::tiny(), 5);
    let target = lidar
        .scan(&scene, &RigidTransform::from_translation(Vec3::new(20.0, 0.0, 0.0)))
        .points()
        .to_vec();
    let queries = lidar
        .scan(&scene, &RigidTransform::from_translation(Vec3::new(21.0, 0.0, 0.0)))
        .points()
        .to_vec();
    (target, queries)
}

#[test]
fn accelerator_results_are_bit_identical_to_software() {
    let (target, queries) = lidar_workload();
    let tree = TwoStageKdTree::build(&target, 6);
    let mut sim = AcceleratorSim::new(&tree, AcceleratorConfig::paper());

    let nn_report = sim.run(&queries, SearchKind::Nn);
    for (q, hw) in queries.iter().zip(&nn_report.nn_results) {
        let sw = tree.nn(*q).unwrap();
        let hw = hw.expect("accelerator missed a result");
        assert_eq!(hw.index, sw.index);
        assert_eq!(hw.distance_squared, sw.distance_squared);
    }

    sim.reset_leaders();
    let rad_report = sim.run(&queries, SearchKind::Radius(0.8));
    for (q, &count) in queries.iter().zip(&rad_report.radius_result_counts) {
        assert_eq!(count, tree.radius(*q, 0.8).len());
    }
}

#[test]
fn two_stage_beats_classic_tree_on_the_accelerator() {
    // The paper's co-design claim: the accelerator on the original KD-tree
    // (leaf sets ≈ 1) is front-end-bound and much slower than on the
    // two-stage structure.
    let (target, queries) = lidar_workload();
    let co_designed = TwoStageKdTree::build(&target, 7);
    let deep = TwoStageKdTree::build(&target, 14); // ≈ classic

    let mut sim_good = AcceleratorSim::new(&co_designed, AcceleratorConfig::paper());
    let good = sim_good.run(&queries, SearchKind::Nn);
    let mut sim_deep = AcceleratorSim::new(&deep, AcceleratorConfig::paper());
    let acc_kd = sim_deep.run(&queries, SearchKind::Nn);

    assert!(good.cycles < acc_kd.cycles, "Acc-2SKD {} !< Acc-KD {}", good.cycles, acc_kd.cycles);
    assert!(acc_kd.fe_cycles >= acc_kd.be_cycles, "Acc-KD must be FE-bound");
}

#[test]
fn ru_optimizations_and_backend_policies_order_correctly() {
    let (target, queries) = lidar_workload();
    let tree = TwoStageKdTree::build(&target, 9);
    let run = |cfg: AcceleratorConfig| {
        let mut sim = AcceleratorSim::new(&tree, cfg);
        sim.run(&queries, SearchKind::Nn)
    };

    let no_opt = run(AcceleratorConfig {
        forwarding: false,
        bypassing: false,
        ..AcceleratorConfig::paper()
    });
    let bypass =
        run(AcceleratorConfig { forwarding: false, bypassing: true, ..AcceleratorConfig::paper() });
    let full = run(AcceleratorConfig::paper());
    assert!(bypass.fe_cycles <= no_opt.fe_cycles);
    assert!(full.fe_cycles < bypass.fe_cycles);

    let mqmn =
        run(AcceleratorConfig { backend: BackendPolicy::Mqmn, ..AcceleratorConfig::paper() });
    assert!(
        mqmn.traffic.points_buffer >= full.traffic.points_buffer,
        "MQMN must stream at least as many node sets"
    );
}

#[test]
fn approximation_reduces_work_and_stays_sound() {
    let (target, queries) = lidar_workload();
    let tree = TwoStageKdTree::build(&target, 6);

    let mut exact_sim = AcceleratorSim::new(&tree, AcceleratorConfig::paper());
    let exact = exact_sim.run(&queries, SearchKind::Nn);

    let cfg =
        AcceleratorConfig { approx: Some(ApproxConfig::default()), ..AcceleratorConfig::paper() };
    let mut approx_sim = AcceleratorSim::new(&tree, cfg);
    // Two passes: the second models an ICP iteration re-querying the frame.
    let _first = approx_sim.run(&queries, SearchKind::Nn);
    let second = approx_sim.run(&queries, SearchKind::Nn);

    assert!(second.follower_hits > 0, "no followers in the repeat pass");
    assert!(
        second.leaf_points_scanned < exact.leaf_points_scanned / 2,
        "repeat pass should scan far less: {} vs {}",
        second.leaf_points_scanned,
        exact.leaf_points_scanned
    );
    // Follower results stay within the triangle-inequality envelope.
    for (e, a) in exact.nn_results.iter().zip(&second.nn_results) {
        let (e, a) = (e.unwrap(), a.unwrap());
        assert!(a.distance() <= e.distance() + 2.0 * 1.2 + 1e-9);
    }
}

#[test]
fn energy_and_traffic_are_consistent() {
    let (target, queries) = lidar_workload();
    let tree = TwoStageKdTree::build(&target, 6);
    let mut sim = AcceleratorSim::new(&tree, AcceleratorConfig::paper());
    let report = sim.run(&queries, SearchKind::Nn);

    // Energy categories all populated, power in a sane hardware envelope.
    assert!(report.energy.total_joules() > 0.0);
    let (pe, rd, wr, leak, dram) = report.energy.fractions();
    assert!(pe > 0.0 && rd > 0.0 && wr > 0.0 && leak > 0.0 && dram > 0.0);
    let power = report.power_watts();
    assert!(power > 0.5 && power < 100.0, "power {power} W");

    // Conservation: every leaf scan's bytes land in exactly one of points
    // buffer / node cache / result buffer.
    assert!(report.traffic.points_buffer + report.traffic.node_cache > 0);
}

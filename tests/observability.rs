//! Observability acceptance: one served request yields one connected
//! trace tree, the Chrome export is valid and balanced, and tracing
//! changes no result.
//!
//! What must hold:
//!
//! * a cold-start relocalization followed by a tracked frame produces
//!   spans from the serve entry point (`serve.localize`) down through
//!   the relocalization gates (`serve.reloc`), the pipeline layers
//!   (`pipeline.prepare`, `pipeline.match`, their stage children) —
//!   all ancestrally connected to the request's root span;
//! * the sharded request path additionally connects `tile.load` and
//!   the KD-tree rebuild (`core.index_build`) under the same root,
//!   and epoch publish/install are visible as spans/events;
//! * the Chrome trace-event export parses as JSON and every `B` event
//!   has its matching `E` on the same thread (Perfetto-loadable);
//! * poses are **bit-identical** with tracing on and off.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use tigris::data::{LidarConfig, Sequence, SequenceConfig};
use tigris::map::{Mapper, MapperConfig};
use tigris::obs::json::Json;
use tigris::obs::{self, RecordKind, Trace};
use tigris::serve::shard::{EpochPublisher, ShardConfig, ShardService};
use tigris::serve::{LocalizationService, MapSnapshot, ServeConfig, SessionStep};

/// Tests in this file toggle the process-global tracing switch and
/// drain the shared collectors; they must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The serving fixture of `serve_integration.rs`: a ~66-frame, 60 m
/// closed circuit at the low-resolution scanner.
fn fixture_config() -> SequenceConfig {
    let mut cfg = SequenceConfig::loop_circuit(60.0, 6);
    cfg.lidar = LidarConfig::tiny();
    cfg
}

struct Fixture {
    seq: Sequence,
    snapshot: Arc<MapSnapshot>,
}

/// Built once, with tracing disabled, so fixture work never pollutes a
/// test's drained trace.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        assert!(!obs::enabled(), "fixture must build untraced");
        let seq = Sequence::generate(&fixture_config(), 7);
        let mut mapper = Mapper::new(MapperConfig::serving());
        for i in 0..seq.len() {
            mapper.push(seq.frame(i)).unwrap_or_else(|e| panic!("map frame {i} failed: {e}"));
        }
        let snapshot = Arc::new(MapSnapshot::freeze(mapper).expect("freeze must succeed"));
        Fixture { seq, snapshot }
    })
}

/// One cold start (frame 3) and one tracked frame (frame 4) through a
/// fresh whole-snapshot session.
fn serve_two_frames(fx: &Fixture) -> Vec<SessionStep> {
    let service = LocalizationService::new(Arc::clone(&fx.snapshot), ServeConfig::default());
    let mut session = service.open_session().expect("session admission");
    [3, 4]
        .iter()
        .map(|&i| session.localize(fx.seq.frame(i)).expect("fixture frames must localize"))
        .collect()
}

/// Asserts every `B` has its matching `E` on the same thread in LIFO
/// order, walking the Chrome trace's event array.
fn assert_chrome_balanced(json: &Json) {
    // The exporter uses the Chrome "JSON Array Format": a bare array.
    let events = json.as_arr().expect("chrome trace must be an event array");
    let mut stacks: std::collections::HashMap<i64, Vec<String>> = std::collections::HashMap::new();
    let mut b = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("every event has ph");
        let tid = ev.get("tid").and_then(Json::as_f64).unwrap_or(0.0) as i64;
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("").to_string();
        match ph {
            "B" => {
                b += 1;
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                let top = stacks.get_mut(&tid).and_then(Vec::pop);
                assert_eq!(top.as_deref(), Some(name.as_str()), "E must close the innermost B");
            }
            _ => {}
        }
    }
    assert!(b > 0, "trace must contain spans");
    for (tid, stack) in stacks {
        assert!(stack.is_empty(), "thread {tid} left spans open: {stack:?}");
    }
}

/// The ids of every `Begin` of `name` in the trace.
fn begin_ids(trace: &Trace, name: &str) -> Vec<u64> {
    trace.find(RecordKind::Begin, name).iter().map(|r| r.id).collect()
}

/// Asserts at least one `Begin` of `name` descends from `root`.
fn assert_descends(trace: &Trace, name: &str, root: u64) {
    let ids = begin_ids(trace, name);
    assert!(!ids.is_empty(), "expected at least one '{name}' span");
    assert!(
        ids.iter().any(|&id| trace.has_ancestor(id, root)),
        "no '{name}' span descends from the request root"
    );
}

#[test]
fn serve_request_yields_one_connected_trace_tree() {
    let _guard = serial();
    let fx = fixture();

    // Baseline: the same two frames with tracing off.
    let baseline = serve_two_frames(fx);

    obs::drain(); // discard anything earlier tests left behind
    obs::set_enabled(true);
    let traced = serve_two_frames(fx);
    obs::set_enabled(false);
    let trace = obs::drain();

    // Tracing observes; it must not change a single bit of any pose.
    assert_eq!(baseline.len(), traced.len());
    for (a, b) in baseline.iter().zip(&traced) {
        assert_eq!(a.pose, b.pose, "poses must be bit-identical with tracing on");
    }
    assert_eq!(trace.dropped, 0, "two frames must fit the default ring");

    // One root per request: frame 3 cold-starts, frame 4 tracks.
    let roots = begin_ids(&trace, "serve.localize");
    assert_eq!(roots.len(), 2, "one serve.localize root per request");
    let cold_root = roots[0];
    let track_root = roots[1];

    // The cold start's tree: serve → reloc gates → pipeline → stages.
    for name in [
        "serve.cold_start",
        "serve.reloc",
        "pipeline.prepare",
        "prepare.normals",
        "pipeline.match",
        "match.icp",
    ] {
        assert_descends(&trace, name, cold_root);
    }
    // The relocalization gate values arrive as structured events under
    // the same root (satellite: the old TIGRIS_SERVE_DEBUG eprintlns).
    let accepts = trace.find(RecordKind::Instant, "reloc.accept");
    assert!(!accepts.is_empty(), "the cold start must record reloc.accept");
    assert!(trace.has_ancestor(accepts[0].id, cold_root));
    assert!(
        accepts[0].fields.iter().any(|(k, _)| *k == "inliers"),
        "reloc.accept must carry its gate values"
    );

    // The tracked frame's tree: serve → track → pipeline.match.
    assert_descends(&trace, "serve.track", track_root);
    let match_ids = begin_ids(&trace, "pipeline.match");
    assert!(
        match_ids.iter().any(|&id| trace.has_ancestor(id, track_root)),
        "the tracked frame's registration must nest under its root"
    );

    // Every span and event in this trace belongs to one of the two
    // request trees — the "one connected trace tree" acceptance.
    for r in &trace.records {
        if r.kind == RecordKind::End || r.id == cold_root || r.id == track_root {
            continue;
        }
        assert!(
            trace.has_ancestor(r.id, cold_root) || trace.has_ancestor(r.id, track_root),
            "record '{}' (id {}) is orphaned from both request roots",
            r.name,
            r.id
        );
    }

    // The export is valid JSON with balanced, per-thread-nested spans.
    let chrome = obs::export::chrome_trace_json(&trace);
    let parsed = Json::parse(&chrome).expect("chrome export must parse as JSON");
    assert_chrome_balanced(&parsed);
}

#[test]
fn sharded_request_connects_tiles_and_index_builds_under_the_root() {
    let _guard = serial();
    let fx = fixture();

    // Publish an epoch from a fresh mapper over the same sequence, with
    // tracing on: epoch.publish must span the archive work.
    obs::drain();
    let mut mapper = Mapper::new(MapperConfig::serving());
    for i in 0..fx.seq.len() {
        mapper.push(fx.seq.frame(i)).unwrap_or_else(|e| panic!("map frame {i} failed: {e}"));
    }
    obs::set_enabled(true);
    let mut publisher = EpochPublisher::new();
    let epoch = publisher.publish(&mapper).expect("publish must succeed");
    let service = ShardService::with_epoch(epoch, ShardConfig::default());
    let mut session = service.open_session().expect("session admission");
    let cold = session.localize(fx.seq.frame(3)).expect("cold start must localize");
    let tracked = session.localize(fx.seq.frame(4)).expect("tracked frame must localize");
    obs::set_enabled(false);
    let trace = obs::drain();

    assert!(begin_ids(&trace, "epoch.publish").len() == 1, "the publish must be spanned");
    assert!(
        !trace.find(RecordKind::Instant, "epoch.install").is_empty(),
        "the hot-swap must record epoch.install"
    );

    let roots = begin_ids(&trace, "serve.localize");
    assert_eq!(roots.len(), 2);
    let cold_root = roots[0];

    // The sharded cold start reaches structure overlap through a lazy
    // tile load, which rebuilds that tile's KD-trees: the full
    // serve → shard → core chain under one root.
    assert_descends(&trace, "serve.reloc", cold_root);
    assert_descends(&trace, "tile.load", cold_root);
    let builds = begin_ids(&trace, "core.index_build");
    assert!(
        builds.iter().any(|&id| trace.has_ancestor(id, cold_root)),
        "the tile's index rebuild must nest under the request root"
    );

    // Sharded answers equal whole-snapshot answers — tracing does not
    // change that either (the deeper equivalence is shard_integration's
    // job; here we pin the traced path).
    let baseline = serve_two_frames(fx);
    assert_eq!(cold.pose, baseline[0].pose);
    assert_eq!(tracked.pose, baseline[1].pose);

    // Tile residency counters and the trace agree on load activity.
    let stats = service.stats();
    assert!(stats.tiles.loads >= 1, "the cold start must have loaded a tile");

    let chrome = obs::export::chrome_trace_json(&trace);
    assert_chrome_balanced(&Json::parse(&chrome).expect("chrome export must parse"));
}

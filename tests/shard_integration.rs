//! Sharded serving acceptance: spatially tiled queries, lazy tile
//! residency under a byte budget, and versioned copy-on-write epoch
//! hot-swap over a live map.
//!
//! What must hold:
//!
//! * epoch publishing is **copy-on-write at submap granularity**: a
//!   re-publish after more mapping shares every unchanged submap's
//!   payload by `Arc` and re-archives only changed ones;
//! * tile-routed map queries (serial and batched) are **bit-identical**
//!   to the whole-snapshot fan-out over the same map;
//! * sharded localization sessions produce **bit-identical pose
//!   streams** to frozen-snapshot sessions over the same map — the two
//!   front ends share their state machine and gate pipeline
//!   structurally, and this test pins it end to end;
//! * the tile byte budget **bounds resident rebuilt-index bytes**, with
//!   eviction churn visible in the stats and no effect on results;
//! * an epoch hot-swap mid-stream **drops no session and diverges no
//!   pose**: in-flight sessions drain on their pinned epoch, new
//!   sessions pin the new one, and a retired epoch's tiles are purged
//!   when its last session unpins.
//!
//! The release-scale version of this scenario (a ≥10× map, 4 threads,
//! budget far below the map) lives in `crates/bench/tests/shard_bounds.rs`.

use std::sync::{Arc, OnceLock};

use tigris::data::{LidarConfig, Sequence, SequenceConfig};
use tigris::geom::Vec3;
use tigris::map::{Mapper, MapperConfig};
use tigris::serve::shard::{
    EpochPublisher, EpochView, ShardConfig, ShardService, SnapshotEpoch, TilingConfig,
};
use tigris::serve::{
    LocalizationService, MapSnapshot, ServeConfig, ServeError, SessionStep, StepKind,
};

/// The serving fixture: the 60 m closed circuit at the low-resolution
/// scanner (identical to `serve_integration.rs`).
fn fixture_config() -> SequenceConfig {
    let mut cfg = SequenceConfig::loop_circuit(60.0, 6);
    cfg.lidar = LidarConfig::tiny();
    cfg
}

/// Frames held back from the first publish, mapped afterwards to make
/// epoch 2 a genuine content change.
const EPOCH2_FRAMES: usize = 3;

struct Fixture {
    seq: Sequence,
    /// Epoch 1: published from the live mapper after `prefix` frames.
    epoch1: Arc<SnapshotEpoch>,
    /// Epoch 2: published after mapping the remaining frames.
    epoch2: Arc<SnapshotEpoch>,
    /// Payloads shared / copied by the epoch-2 publish.
    epoch2_shared: usize,
    epoch2_copied: usize,
    /// Whole-map oracle: an identical map built from the same prefix,
    /// frozen the whole-snapshot way.
    snapshot: Arc<MapSnapshot>,
    /// Rebuilt-index bytes of the whole prefix map — the "everything
    /// resident" baseline the tile budget is set against.
    whole_map_bytes: usize,
}

fn build_prefix_mapper(seq: &Sequence, prefix: usize) -> Mapper {
    let mut mapper = Mapper::new(MapperConfig::serving());
    for i in 0..prefix {
        mapper.push(seq.frame(i)).unwrap_or_else(|e| panic!("map frame {i} failed: {e}"));
    }
    mapper
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let seq = Sequence::generate(&fixture_config(), 7);
        let prefix = seq.len() - EPOCH2_FRAMES;

        // The live mapper: publish epoch 1 mid-stream, keep mapping,
        // publish epoch 2.
        let mut live = build_prefix_mapper(&seq, prefix);
        assert!(live.stats().closures_accepted >= 1, "the prefix map must already close its loop");
        let mut publisher = EpochPublisher::new();
        let epoch1 = publisher.publish(&live).expect("epoch 1 publish");
        for i in prefix..seq.len() {
            live.push(seq.frame(i)).unwrap_or_else(|e| panic!("map frame {i} failed: {e}"));
        }
        let shared_before = publisher.payloads_shared();
        let copied_before = publisher.payloads_copied();
        let epoch2 = publisher.publish(&live).expect("epoch 2 publish");

        // The oracle: the same deterministic prefix build, frozen whole.
        let oracle = build_prefix_mapper(&seq, prefix);
        let whole_map_bytes = oracle.submaps().iter().map(|s| s.memory_bytes()).sum();
        let snapshot = Arc::new(MapSnapshot::freeze(oracle).expect("freeze"));

        Fixture {
            seq,
            epoch1,
            epoch2,
            epoch2_shared: publisher.payloads_shared() - shared_before,
            epoch2_copied: publisher.payloads_copied() - copied_before,
            snapshot,
            whole_map_bytes,
        }
    })
}

/// Map probes along the mapped trajectory (the same scheme the serving
/// integration test uses against the mapper).
fn probes(fx: &Fixture) -> Vec<Vec3> {
    (0..fx.seq.len())
        .step_by(5)
        .map(|i| {
            fx.snapshot.poses()[i.min(fx.snapshot.poses().len() - 1)].translation
                + Vec3::new(0.0, 0.0, -1.0)
        })
        .collect()
}

#[test]
fn epoch_publish_is_copy_on_write_at_submap_granularity() {
    let fx = fixture();
    assert_eq!(fx.epoch1.version(), 1);
    assert_eq!(fx.epoch2.version(), 2);
    assert!(fx.epoch2.payloads().len() >= fx.epoch1.payloads().len());
    assert!(fx.epoch2.total_points() > fx.epoch1.total_points());

    // Every payload of epoch 2 whose submap content did not move is the
    // *same allocation* as epoch 1's; only touched submaps re-archive.
    let shared_ptrs = fx
        .epoch1
        .payloads()
        .iter()
        .zip(fx.epoch2.payloads())
        .filter(|(a, b)| Arc::ptr_eq(a, b))
        .count();
    assert_eq!(shared_ptrs, fx.epoch2_shared, "publisher counters must match reality");
    assert!(
        fx.epoch2_shared > fx.epoch2_copied,
        "{} shared vs {} copied: a few trailing frames must not re-archive the whole map",
        fx.epoch2_shared,
        fx.epoch2_copied
    );
    // Shared payloads still verify against the very same keyframe locks.
    for (a, b) in fx.epoch1.payloads().iter().zip(fx.epoch2.payloads()) {
        if Arc::ptr_eq(a, b) {
            assert_eq!(a.revision(), b.revision());
        }
    }
}

#[test]
fn tile_routed_queries_match_the_whole_snapshot_bitwise() {
    let fx = fixture();
    let service = ShardService::with_epoch(Arc::clone(&fx.epoch1), ShardConfig::default());
    let probes = probes(fx);

    // At this fixture's scale the scanner out-ranges the whole circuit,
    // so every submap's bounds overlap every on-map probe and routing is
    // conservative-but-total; *selectivity* (probes covering a strict
    // subset of tiles) is asserted on the 10× map in
    // `crates/bench/tests/shard_bounds.rs`, where the map finally
    // outgrows the sensor. Here the routing gate must still partition
    // and must still exclude what it can.
    let view = EpochView::new(Arc::clone(&fx.epoch1), &TilingConfig::default());
    assert!(view.router().tiles().len() >= 3, "fixture must cut into several tiles");
    let far = Vec3::new(1.0e3, 1.0e3, 0.0);
    assert!(view.router().covering(far, 1.0).is_empty(), "off-map probes route nowhere");
    assert_eq!(service.query(far, 1.0).unwrap(), fx.snapshot.query(far, 1.0));

    for &p in &probes {
        let expected = fx.snapshot.query(p, 2.0);
        assert!(!expected.is_empty() || fx.snapshot.query(p, 8.0).is_empty());
        assert_eq!(service.query(p, 2.0).unwrap(), expected, "tile-routed query diverged at {p}");
    }
    let batched = service.query_batch(&probes, 2.0).unwrap();
    for (&p, got) in probes.iter().zip(&batched) {
        assert_eq!(got, &fx.snapshot.query(p, 2.0), "batched tile-routed query diverged at {p}");
    }

    let tiles = service.stats().tiles;
    assert!(tiles.loads > 0 && tiles.hits > 0, "repeat probes must hit resident tiles");
    assert_eq!(tiles.evictions, 0, "unlimited budget must never evict");
}

/// Session scripts in the drift-corrected loop-seam region (cold-start
/// heads proven by the serving integration test; tails track).
fn session_scripts() -> Vec<Vec<usize>> {
    [2usize, 58, 61].iter().map(|&start| (start..start + 3).collect()).collect()
}

fn run_frozen(fx: &Fixture, scripts: &[Vec<usize>]) -> Vec<Vec<SessionStep>> {
    let service = LocalizationService::new(Arc::clone(&fx.snapshot), ServeConfig::default());
    scripts
        .iter()
        .map(|script| {
            let mut session = service.open_session().expect("admission");
            script
                .iter()
                .map(|&f| session.localize(fx.seq.frame(f)).expect("frozen localize"))
                .collect()
        })
        .collect()
}

fn run_sharded(
    fx: &Fixture,
    scripts: &[Vec<usize>],
    config: ShardConfig,
) -> (Vec<Vec<SessionStep>>, ShardService) {
    let service = ShardService::with_epoch(Arc::clone(&fx.epoch1), config);
    let steps = scripts
        .iter()
        .map(|script| {
            let mut session = service.open_session().expect("admission");
            script
                .iter()
                .map(|&f| session.localize(fx.seq.frame(f)).expect("sharded localize"))
                .collect()
        })
        .collect();
    (steps, service)
}

#[test]
fn sharded_sessions_match_frozen_sessions_bitwise() {
    let fx = fixture();
    let scripts = session_scripts();
    let frozen = run_frozen(fx, &scripts);

    // A budget around a third of the map forces real eviction churn
    // while the sessions run — results must not notice.
    let config = ShardConfig { tile_budget_bytes: fx.whole_map_bytes / 3, ..Default::default() };
    let (sharded, service) = run_sharded(fx, &scripts, config);

    let mut cold_starts = 0;
    for (script, (f_steps, s_steps)) in scripts.iter().zip(frozen.iter().zip(&sharded)) {
        for (&frame, (f, s)) in script.iter().zip(f_steps.iter().zip(s_steps)) {
            assert_eq!(f.frame, s.frame);
            assert_eq!(
                f.pose.translation, s.pose.translation,
                "frame {frame}: sharded pose diverged from frozen"
            );
            assert_eq!(f.pose.rotation, s.pose.rotation, "frame {frame}: rotation diverged");
            match (&f.kind, &s.kind) {
                (StepKind::Relocalized(a), StepKind::Relocalized(b)) => {
                    cold_starts += 1;
                    assert_eq!(a.submap, b.submap);
                    assert_eq!(a.inliers, b.inliers);
                    assert_eq!(a.structure_overlap, b.structure_overlap);
                    assert_eq!(a.confidence, b.confidence);
                }
                (StepKind::Tracked { .. }, StepKind::Tracked { .. }) => {}
                (a, b) => panic!("frame {frame}: step kinds diverged ({a:?} vs {b:?})"),
            }
        }
    }
    assert!(cold_starts >= scripts.len(), "every script head must cold-start on both paths");

    let stats = service.stats();
    assert_eq!(stats.frames, scripts.iter().map(Vec::len).sum::<usize>());
    assert_eq!(stats.relocalizations_succeeded, scripts.len());
    assert!(stats.tiles.loads > 0, "cold starts must touch tiles");
}

#[test]
fn tile_budget_bounds_resident_bytes_without_changing_answers() {
    let fx = fixture();
    let budget = fx.whole_map_bytes / 4;
    let config = ShardConfig { tile_budget_bytes: budget, ..Default::default() };
    let service = ShardService::with_epoch(Arc::clone(&fx.epoch1), config);

    // Roam the whole circuit twice: far more map than the budget admits.
    for lap in 0..2 {
        for &p in &probes(fx) {
            let got = service.query(p, 2.0).unwrap();
            assert_eq!(got, fx.snapshot.query(p, 2.0), "lap {lap}: eviction changed an answer");
            let tiles = service.stats().tiles;
            assert!(
                tiles.resident_bytes <= budget || tiles.resident_tiles == 1,
                "resident {} bytes exceeds budget {budget} with {} tiles resident",
                tiles.resident_bytes,
                tiles.resident_tiles
            );
        }
    }

    let tiles = service.stats().tiles;
    assert!(tiles.evictions > 0, "a quarter-map budget must evict while roaming");
    assert!(tiles.loads > tiles.evictions, "something must stay resident");
    // No hit assertion here: with every probe covering every tile (the
    // sensor out-ranges this fixture) and a budget below the working
    // set, LRU degenerates to the sequential-scan worst case — which is
    // exactly the churn this test wants. Hits are asserted under the
    // unlimited budget above and on the selective 10× map.
    assert!(
        tiles.peak_resident_bytes < fx.whole_map_bytes,
        "peak residency must stay below the everything-resident baseline"
    );
}

#[test]
fn epoch_hot_swap_drains_pinned_sessions_and_serves_new_ones() {
    let fx = fixture();
    let service = ShardService::with_epoch(Arc::clone(&fx.epoch1), ShardConfig::default());

    // Control: the same script served by a service that never swaps.
    let control: Vec<SessionStep> = {
        let ctrl = ShardService::with_epoch(Arc::clone(&fx.epoch1), ShardConfig::default());
        let mut session = ctrl.open_session().unwrap();
        [2usize, 3, 4]
            .iter()
            .map(|&f| session.localize(fx.seq.frame(f)).expect("control localize"))
            .collect()
    };

    // Session A starts on epoch 1 and stays pinned there.
    let mut a = service.open_session().unwrap();
    assert_eq!(a.epoch_version(), 1);
    let step0 = a.localize(fx.seq.frame(2)).expect("pre-swap cold start");

    // Hot-swap mid-stream.
    service.install_epoch(Arc::clone(&fx.epoch2));
    assert_eq!(service.current_epoch().unwrap().version(), 2);

    // A keeps draining on epoch 1 — not dropped, not migrated, and its
    // poses are exactly the never-swapped control's.
    let step1 = a.localize(fx.seq.frame(3)).expect("post-swap track");
    let step2 = a.localize(fx.seq.frame(4)).expect("post-swap track");
    assert_eq!(a.epoch_version(), 1, "in-flight sessions drain on their pinned epoch");
    for (got, want) in [&step0, &step1, &step2].into_iter().zip(&control) {
        assert_eq!(got.pose.translation, want.pose.translation, "hot swap diverged a pose");
        assert_eq!(got.pose.rotation, want.pose.rotation);
    }

    // New sessions pin the new epoch and see the extended map.
    let mut b = service.open_session().unwrap();
    assert_eq!(b.epoch_version(), 2);
    b.localize(fx.seq.frame(2)).expect("cold start on epoch 2");

    // Retiring epoch 1: dropping its last session purges its tiles.
    let resident_before = service.stats().tiles.resident_tiles;
    drop(a);
    let resident_after = service.stats().tiles.resident_tiles;
    assert!(
        resident_after < resident_before,
        "purge must drop epoch 1 tiles ({resident_before} -> {resident_after})"
    );
    assert_eq!(service.active_sessions(), 1);
    drop(b);
    assert_eq!(service.active_sessions(), 0);
}

#[test]
fn shard_admission_is_typed_and_slots_release_on_abnormal_teardown() {
    let fx = fixture();

    // No epoch yet: both sessions and queries reject typed.
    let empty = ShardService::new(ShardConfig::default());
    assert_eq!(empty.open_session().unwrap_err(), ServeError::NoEpoch);
    assert_eq!(empty.query(Vec3::ZERO, 1.0).unwrap_err(), ServeError::NoEpoch);

    let config = ShardConfig {
        serve: ServeConfig { max_sessions: 1, ..ServeConfig::default() },
        ..ShardConfig::default()
    };
    let service = ShardService::with_epoch(Arc::clone(&fx.epoch1), config);
    {
        let _held = service.open_session().unwrap();
        assert_eq!(service.open_session().unwrap_err(), ServeError::SessionsExhausted { limit: 1 });
    }

    // A panicking session thread still releases its slot and its epoch
    // pin through `Drop`.
    let result = std::thread::scope(|scope| {
        scope
            .spawn(|| {
                let mut session = service.open_session().expect("admission");
                session.localize(fx.seq.frame(2)).expect("cold start");
                panic!("session thread dies with the session live");
            })
            .join()
    });
    assert!(result.is_err(), "the session thread must have panicked");
    assert_eq!(service.active_sessions(), 0, "panic teardown must release the slot");
    let mut session = service.open_session().expect("slot re-admittable after panic");
    session.localize(fx.seq.frame(2)).expect("service still serves");
}

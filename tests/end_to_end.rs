//! Cross-crate integration tests: synthetic data → registration pipeline →
//! KITTI metrics, exercising the full public API the way a downstream user
//! would.

use tigris::data::{relative_pose_error, sequence_error, Sequence, SequenceConfig};
use tigris::geom::{RigidTransform, Vec3};
use tigris::pipeline::{register, DesignPoint, RegistrationConfig};

/// A small but realistic sequence (shared across tests to amortize the
/// LiDAR ray casting).
fn test_sequence() -> &'static Sequence {
    use std::sync::OnceLock;
    static SEQ: OnceLock<Sequence> = OnceLock::new();
    SEQ.get_or_init(|| {
        let mut cfg = SequenceConfig::medium();
        cfg.frames = 3;
        Sequence::generate(&cfg, 42)
    })
}

#[test]
fn registration_recovers_ground_truth_motion() {
    let seq = test_sequence();
    let result = register(seq.frame(1), seq.frame(0), &RegistrationConfig::default())
        .expect("registration failed");
    let gt = seq.ground_truth_relative(0);
    let (t_err, r_err) = relative_pose_error(&result.transform, &gt);
    assert!(t_err < 0.10, "translation error {t_err} m on ~1 m motion");
    assert!(r_err.to_degrees() < 0.5, "rotation error {}°", r_err.to_degrees());
}

#[test]
fn odometry_over_sequence_has_low_drift() {
    let seq = test_sequence();
    let cfg = RegistrationConfig::default();
    let mut estimates = Vec::new();
    let mut gts = Vec::new();
    for i in 0..seq.len() - 1 {
        let r = register(seq.frame(i + 1), seq.frame(i), &cfg).expect("pair failed");
        estimates.push(r.transform);
        gts.push(seq.ground_truth_relative(i));
    }
    let err = sequence_error(&estimates, &gts);
    assert_eq!(err.pairs, 2);
    assert!(err.translational_percent < 10.0, "translational error {}%", err.translational_percent);
    assert!(err.rotational_deg_per_m < 0.5, "rotational error {} °/m", err.rotational_deg_per_m);
}

#[test]
fn kd_search_dominates_registration_time() {
    // The paper's central characterization claim (Fig. 4b): KD-tree search
    // is 50-85% of registration time. Allow slack on the lower bound for
    // host variance.
    let seq = test_sequence();
    let result = register(seq.frame(1), seq.frame(0), &RegistrationConfig::default())
        .expect("registration failed");
    let f = result.profile.kd_search_fraction();
    assert!(f > 0.35, "kd search fraction {f}");
    assert!(f < 1.0);
}

#[test]
fn design_points_trade_accuracy_for_time() {
    // DP4 (performance) must run fewer ICP iterations and search less than
    // DP7 (accuracy).
    let seq = test_sequence();
    let dp4 = register(seq.frame(1), seq.frame(0), &DesignPoint::Dp4.config()).unwrap();
    let dp7 = register(seq.frame(1), seq.frame(0), &DesignPoint::Dp7.config()).unwrap();
    assert!(
        dp4.profile.search_stats.total_nodes_visited()
            < dp7.profile.search_stats.total_nodes_visited(),
        "DP4 searched more than DP7"
    );
}

#[test]
fn two_stage_backend_preserves_registration_quality() {
    use tigris::pipeline::config::SearchBackendConfig;
    let seq = test_sequence();
    let gt = seq.ground_truth_relative(0);

    let classic = register(seq.frame(1), seq.frame(0), &RegistrationConfig::default()).unwrap();
    let cfg = RegistrationConfig {
        backend: SearchBackendConfig::TwoStage { top_height: 8 },
        ..RegistrationConfig::default()
    };
    let two_stage = register(seq.frame(1), seq.frame(0), &cfg).unwrap();

    let (t_classic, _) = relative_pose_error(&classic.transform, &gt);
    let (t_two, _) = relative_pose_error(&two_stage.transform, &gt);
    // Exact two-stage search: equal results up to float noise.
    assert!((t_classic - t_two).abs() < 1e-6, "classic {t_classic} vs two-stage {t_two}");
}

#[test]
fn approximate_backend_keeps_error_small() {
    use tigris::core::ApproxConfig;
    use tigris::pipeline::config::SearchBackendConfig;
    let seq = test_sequence();
    let gt = seq.ground_truth_relative(0);

    let cfg = RegistrationConfig {
        backend: SearchBackendConfig::TwoStageApprox {
            top_height: 8,
            approx: ApproxConfig::default(),
        },
        ..RegistrationConfig::default()
    };
    let result = register(seq.frame(1), seq.frame(0), &cfg).unwrap();
    let (t_err, r_err) = relative_pose_error(&result.transform, &gt);
    // The paper: approximate search costs no translational accuracy and
    // ≤0.05 °/m rotational. Allow a loose envelope.
    assert!(t_err < 0.15, "translation error {t_err} m under approximation");
    assert!(r_err.to_degrees() < 1.0);
    assert!(result.profile.search_stats.follower_hits > 0, "approximation never engaged");
}

#[test]
fn register_is_deterministic() {
    let seq = test_sequence();
    let cfg = RegistrationConfig::default();
    let a = register(seq.frame(1), seq.frame(0), &cfg).unwrap();
    let b = register(seq.frame(1), seq.frame(0), &cfg).unwrap();
    assert_eq!(a.transform.translation, b.transform.translation);
    assert_eq!(a.keypoints, b.keypoints);
    assert_eq!(a.inlier_correspondences, b.inlier_correspondences);
}

#[test]
fn facade_reexports_compose() {
    // The facade crate's re-exports interoperate (types are the same).
    let v = tigris::geom::Vec3::new(1.0, 0.0, 0.0);
    let t = RigidTransform::from_translation(Vec3::Y);
    let cloud = tigris::geom::PointCloud::from_points(vec![v]);
    let moved = cloud.transformed(&t);
    let tree = tigris::core::KdTree::build(moved.points());
    assert_eq!(tree.nn(Vec3::new(1.0, 1.0, 0.0)).unwrap().distance_squared, 0.0);
}

//! Property-based tests for the geometry substrate.

use proptest::prelude::*;
use tigris_geom::{solve_ldlt6, svd3, symmetric_eigen3, Aabb, Mat3, RigidTransform, Vec3};

fn finite_coord() -> impl Strategy<Value = f64> {
    -100.0f64..100.0
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (finite_coord(), finite_coord(), finite_coord()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_vec3() -> impl Strategy<Value = Vec3> {
    vec3().prop_filter_map("non-degenerate axis", |v| v.normalized())
}

fn rigid() -> impl Strategy<Value = RigidTransform> {
    (unit_vec3(), -3.0f64..3.0, vec3())
        .prop_map(|(axis, angle, t)| RigidTransform::from_axis_angle(axis, angle, t))
}

proptest! {
    #[test]
    fn cross_is_perpendicular(a in vec3(), b in vec3()) {
        let c = a.cross(b);
        let scale = a.norm() * b.norm();
        prop_assert!(c.dot(a).abs() <= 1e-9 * scale.max(1.0) * a.norm().max(1.0));
        prop_assert!(c.dot(b).abs() <= 1e-9 * scale.max(1.0) * b.norm().max(1.0));
    }

    #[test]
    fn triangle_inequality(a in vec3(), b in vec3(), c in vec3()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn rigid_transform_preserves_distances(t in rigid(), p in vec3(), q in vec3()) {
        let d0 = p.distance(q);
        let d1 = t.apply(p).distance(t.apply(q));
        prop_assert!((d0 - d1).abs() < 1e-8 * d0.max(1.0));
    }

    #[test]
    fn rigid_inverse_round_trips(t in rigid(), p in vec3()) {
        let back = t.inverse().apply(t.apply(p));
        prop_assert!((back - p).norm() < 1e-8 * p.norm().max(1.0));
    }

    #[test]
    fn rigid_composition_associates(a in rigid(), b in rigid(), c in rigid(), p in vec3()) {
        let lhs = ((a * b) * c).apply(p);
        let rhs = (a * (b * c)).apply(p);
        prop_assert!((lhs - rhs).norm() < 1e-6 * p.norm().max(1.0));
    }

    #[test]
    fn rotations_stay_rotations(axis in unit_vec3(), angle in -6.0f64..6.0) {
        let r = Mat3::from_axis_angle(axis, angle);
        prop_assert!(r.is_rotation(1e-9));
    }

    #[test]
    fn eigen_reconstructs(
        a in finite_coord(), b in finite_coord(), c in finite_coord(),
        d in finite_coord(), e in finite_coord(), f in finite_coord(),
    ) {
        // Random symmetric matrix from 6 free entries.
        let m = Mat3::from_rows([a, b, c], [b, d, e], [c, e, f]);
        let eig = symmetric_eigen3(&m);
        let scale = m.frobenius_norm().max(1.0);
        for i in 0..3 {
            let v = eig.vectors.col(i);
            let residual = (m * v - v * eig.values[i]).norm();
            prop_assert!(residual < 1e-9 * scale, "residual {residual} at {i}");
        }
        // Eigenvalues ordered.
        prop_assert!(eig.values[0] <= eig.values[1] && eig.values[1] <= eig.values[2]);
    }

    #[test]
    fn svd_reconstructs_and_is_orthogonal(
        r0 in vec3(), r1 in vec3(), r2 in vec3(),
    ) {
        let a = Mat3::from_rows(r0.to_array(), r1.to_array(), r2.to_array());
        let s = svd3(&a);
        let scale = a.frobenius_norm().max(1.0);
        prop_assert!((s.reconstruct() - a).frobenius_norm() < 1e-7 * scale);
        prop_assert!((s.u * s.u.transpose() - Mat3::IDENTITY).frobenius_norm() < 1e-8);
        prop_assert!((s.v * s.v.transpose() - Mat3::IDENTITY).frobenius_norm() < 1e-8);
        prop_assert!(s.singular_values[0] >= s.singular_values[1]);
        prop_assert!(s.singular_values[1] >= s.singular_values[2]);
        prop_assert!(s.singular_values[2] >= 0.0);
    }

    #[test]
    fn polar_rotation_is_proper(r0 in vec3(), r1 in vec3(), r2 in vec3()) {
        let a = Mat3::from_rows(r0.to_array(), r1.to_array(), r2.to_array());
        let r = svd3(&a).polar_rotation();
        prop_assert!(r.is_rotation(1e-7));
    }

    #[test]
    fn aabb_distance_is_lower_bound(points in prop::collection::vec(vec3(), 1..32), q in vec3()) {
        let b = Aabb::from_points(points.iter().copied()).unwrap();
        let box_d2 = b.distance_squared_to(q);
        for &p in &points {
            prop_assert!(box_d2 <= q.distance_squared(p) + 1e-9);
        }
    }

    #[test]
    fn ldlt_solves_spd_systems(
        rows in prop::collection::vec(prop::collection::vec(-2.0f64..2.0, 6), 6),
        x_true in prop::collection::vec(-5.0f64..5.0, 6),
    ) {
        // A = MᵀM + I is always SPD.
        let mut a = [[0.0f64; 6]; 6];
        for i in 0..6 {
            for j in 0..6 {
                for row in &rows {
                    a[i][j] += row[i] * row[j];
                }
            }
            a[i][i] += 1.0;
        }
        let mut b = [0.0f64; 6];
        for i in 0..6 {
            for j in 0..6 {
                b[i] += a[i][j] * x_true[j];
            }
        }
        let x = solve_ldlt6(&a, &b).unwrap();
        for i in 0..6 {
            prop_assert!((x[i] - x_true[i]).abs() < 1e-6, "x[{i}]");
        }
    }

    #[test]
    fn kabsch_recovers_known_rotation(t in rigid(), pts in prop::collection::vec(vec3(), 4..16)) {
        // Degenerate (collinear/coplanar-with-small-spread) sets are fine:
        // Kabsch still returns *a* rotation mapping src to dst; we check the
        // alignment residual instead of the matrix itself.
        let src_centroid = pts.iter().fold(Vec3::ZERO, |a, &p| a + p) / pts.len() as f64;
        let dst: Vec<Vec3> = pts.iter().map(|&p| t.apply(p)).collect();
        let dst_centroid = dst.iter().fold(Vec3::ZERO, |a, &p| a + p) / pts.len() as f64;
        let mut h = Mat3::ZERO;
        for (s, d) in pts.iter().zip(&dst) {
            h = h + Mat3::outer(*s - src_centroid, *d - dst_centroid);
        }
        // H = Σ (s-s̄)(d-d̄)ᵀ = U Σ Vᵀ  ⇒  R = V D Uᵀ, which equals the
        // polar rotation of Hᵀ = V Σ Uᵀ.
        let r = svd3(&h.transpose()).polar_rotation();
        // r maps centered src onto centered dst... verify alignment.
        for (s, d) in pts.iter().zip(&dst) {
            let aligned = r * (*s - src_centroid) + dst_centroid;
            let spread = pts.iter().map(|p| (*p - src_centroid).norm()).fold(0.0, f64::max);
            prop_assert!((aligned - *d).norm() < 1e-6 * spread.max(1.0) + 1e-6);
        }
    }
}

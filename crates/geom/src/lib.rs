//! Geometry and small linear-algebra substrate for the Tigris point-cloud
//! registration system.
//!
//! This crate provides the numeric foundation every other Tigris crate builds
//! on: 3-vectors and 3×3 matrices, rigid-body transforms (the 4×4
//! `[R | t]` matrices the paper estimates), axis-aligned bounding boxes used
//! for KD-tree pruning, symmetric eigen-decomposition and SVD used by normal
//! estimation and the Kabsch solver, a small dense linear solver used by the
//! point-to-plane and Levenberg–Marquardt solvers, the SE(3) twist
//! parameterization ([`RigidTransform::log`]/[`RigidTransform::exp`]) with
//! the Gauss–Newton pose-graph solver built on it ([`posegraph`], the
//! mapping back end's drift redistribution), and the [`PointCloud`]
//! container itself.
//!
//! Everything is implemented from scratch on `f64`; no external linear
//! algebra dependency is used.
//!
//! # Example
//!
//! ```
//! use tigris_geom::{Vec3, RigidTransform};
//!
//! let t = RigidTransform::from_axis_angle(
//!     Vec3::new(0.0, 0.0, 1.0), 0.5, Vec3::new(1.0, 2.0, 0.0));
//! let p = Vec3::new(1.0, 0.0, 0.0);
//! let q = t.apply(p);
//! let back = t.inverse().apply(q);
//! assert!((p - back).norm() < 1e-12);
//! ```

pub mod aabb;
pub mod eigen;
pub mod mat3;
pub mod pointcloud;
pub mod posegraph;
pub mod rigid;
pub mod solve;
pub mod svd3;
pub mod vec3;

pub use aabb::Aabb;
pub use eigen::{symmetric_eigen3, SymmetricEigen3};
pub use mat3::Mat3;
pub use pointcloud::PointCloud;
pub use posegraph::{OptimizeReport, PoseGraph, PoseGraphEdge};
pub use rigid::RigidTransform;
pub use solve::{solve_dense, solve_ldlt6};
pub use svd3::{svd3, Svd3};
pub use vec3::Vec3;

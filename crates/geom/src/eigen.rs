//! Symmetric 3×3 eigen-decomposition via cyclic Jacobi rotations.
//!
//! Normal estimation (paper Sec. 3.1, stage 1) computes the covariance of a
//! point's neighborhood and takes the eigenvector of the smallest eigenvalue
//! as the surface normal; this module provides that decomposition.

use crate::{Mat3, Vec3};

/// The result of a symmetric 3×3 eigen-decomposition.
///
/// Eigenvalues are sorted ascending (`values[0]` smallest) and `vectors.col(i)`
/// is the unit eigenvector for `values[i]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymmetricEigen3 {
    /// Eigenvalues in ascending order.
    pub values: [f64; 3],
    /// Matrix whose columns are the corresponding unit eigenvectors.
    pub vectors: Mat3,
}

impl SymmetricEigen3 {
    /// The eigenvector for the smallest eigenvalue — the surface-normal
    /// direction when decomposing a neighborhood covariance.
    pub fn smallest_vector(&self) -> Vec3 {
        self.vectors.col(0)
    }

    /// Surface *curvature* estimate `λ₀ / (λ₀ + λ₁ + λ₂)`, used by
    /// key-point detectors; 0 for a perfect plane.
    pub fn curvature(&self) -> f64 {
        let sum = self.values.iter().sum::<f64>();
        if sum.abs() < 1e-30 {
            0.0
        } else {
            self.values[0] / sum
        }
    }
}

/// Computes the eigen-decomposition of a symmetric 3×3 matrix using the
/// cyclic Jacobi method.
///
/// Only the upper triangle of `a` is read; the matrix is assumed symmetric.
/// Convergence for 3×3 symmetric matrices takes a handful of sweeps; we cap
/// at 32 sweeps and stop once the off-diagonal norm falls below `1e-14`
/// relative to the Frobenius norm.
///
/// # Example
///
/// ```
/// use tigris_geom::{symmetric_eigen3, Mat3};
/// let a = Mat3::from_rows([2.0, 0.0, 0.0], [0.0, 5.0, 0.0], [0.0, 0.0, 3.0]);
/// let e = symmetric_eigen3(&a);
/// assert!((e.values[0] - 2.0).abs() < 1e-12);
/// assert!((e.values[2] - 5.0).abs() < 1e-12);
/// ```
pub fn symmetric_eigen3(a: &Mat3) -> SymmetricEigen3 {
    let mut d = *a;
    // Symmetrize defensively: callers build covariance matrices that are
    // symmetric up to round-off.
    for r in 0..3 {
        for c in (r + 1)..3 {
            let avg = 0.5 * (d.m[r][c] + d.m[c][r]);
            d.m[r][c] = avg;
            d.m[c][r] = avg;
        }
    }
    let mut v = Mat3::IDENTITY;
    let scale = d.frobenius_norm().max(1e-300);

    for _sweep in 0..32 {
        let off = (d.m[0][1] * d.m[0][1] + d.m[0][2] * d.m[0][2] + d.m[1][2] * d.m[1][2]).sqrt();
        if off / scale < 1e-14 {
            break;
        }
        for (p, q) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let apq = d.m[p][q];
            if apq.abs() < 1e-300 {
                continue;
            }
            let app = d.m[p][p];
            let aqq = d.m[q][q];
            // Classic Jacobi rotation that zeroes d[p][q].
            let theta = (aqq - app) / (2.0 * apq);
            let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
            let c = 1.0 / (t * t + 1.0).sqrt();
            let s = t * c;

            // Apply G(p,q,θ)ᵀ D G(p,q,θ) in place.
            for k in 0..3 {
                let dkp = d.m[k][p];
                let dkq = d.m[k][q];
                d.m[k][p] = c * dkp - s * dkq;
                d.m[k][q] = s * dkp + c * dkq;
            }
            for k in 0..3 {
                let dpk = d.m[p][k];
                let dqk = d.m[q][k];
                d.m[p][k] = c * dpk - s * dqk;
                d.m[q][k] = s * dpk + c * dqk;
            }
            // Accumulate the rotation into the eigenvector matrix.
            for k in 0..3 {
                let vkp = v.m[k][p];
                let vkq = v.m[k][q];
                v.m[k][p] = c * vkp - s * vkq;
                v.m[k][q] = s * vkp + c * vkq;
            }
        }
    }

    // Sort eigenvalues (with their vectors) ascending.
    let mut order = [0usize, 1, 2];
    order.sort_by(|&i, &j| d.m[i][i].partial_cmp(&d.m[j][j]).unwrap());
    let values = [d.m[order[0]][order[0]], d.m[order[1]][order[1]], d.m[order[2]][order[2]]];
    let vectors = Mat3::from_cols(v.col(order[0]), v.col(order[1]), v.col(order[2]));
    SymmetricEigen3 { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &Mat3, tol: f64) {
        let e = symmetric_eigen3(a);
        assert!(e.values[0] <= e.values[1] && e.values[1] <= e.values[2]);
        for i in 0..3 {
            let v = e.vectors.col(i);
            assert!((v.norm() - 1.0).abs() < tol, "eigenvector {i} not unit");
            let av = *a * v;
            let lv = v * e.values[i];
            assert!((av - lv).norm() < tol * a.frobenius_norm().max(1.0), "A v != λ v for {i}");
        }
        // Eigenvectors are mutually orthogonal.
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(e.vectors.col(i).dot(e.vectors.col(j)).abs() < tol);
            }
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = Mat3::from_rows([2.0, 0.0, 0.0], [0.0, 5.0, 0.0], [0.0, 0.0, 3.0]);
        let e = symmetric_eigen3(&a);
        assert!((e.values[0] - 2.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
        assert!((e.values[2] - 5.0).abs() < 1e-12);
        check_decomposition(&a, 1e-10);
    }

    #[test]
    fn dense_symmetric_matrix() {
        let a = Mat3::from_rows([4.0, 1.0, -2.0], [1.0, 3.0, 0.5], [-2.0, 0.5, 6.0]);
        check_decomposition(&a, 1e-9);
        // Trace and determinant are preserved by similarity.
        let e = symmetric_eigen3(&a);
        assert!((e.values.iter().sum::<f64>() - a.trace()).abs() < 1e-9);
        assert!((e.values.iter().product::<f64>() - a.determinant()).abs() < 1e-8);
    }

    #[test]
    fn repeated_eigenvalues() {
        let a = Mat3::IDENTITY.scale(3.0);
        let e = symmetric_eigen3(&a);
        for v in e.values {
            assert!((v - 3.0).abs() < 1e-12);
        }
        check_decomposition(&a, 1e-10);
    }

    #[test]
    fn rank_deficient_plane_covariance() {
        // Covariance of points scattered on the z=0 plane: smallest
        // eigenvector must be ±Z (the plane normal).
        let a = Mat3::from_rows([2.0, 0.3, 0.0], [0.3, 1.5, 0.0], [0.0, 0.0, 1e-9]);
        let e = symmetric_eigen3(&a);
        let n = e.smallest_vector();
        assert!(n.z.abs() > 0.999, "normal should align with z, got {n}");
        assert!(e.curvature() < 1e-6);
    }

    #[test]
    fn curvature_of_isotropic_spread() {
        let a = Mat3::IDENTITY;
        let e = symmetric_eigen3(&a);
        assert!((e.curvature() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_matrix() {
        let e = symmetric_eigen3(&Mat3::ZERO);
        assert_eq!(e.values, [0.0; 3]);
        assert_eq!(e.curvature(), 0.0);
    }

    #[test]
    fn negative_eigenvalues_sorted() {
        let a = Mat3::from_rows([-5.0, 0.0, 0.0], [0.0, 2.0, 0.0], [0.0, 0.0, -1.0]);
        let e = symmetric_eigen3(&a);
        assert!((e.values[0] + 5.0).abs() < 1e-12);
        assert!((e.values[1] + 1.0).abs() < 1e-12);
        assert!((e.values[2] - 2.0).abs() < 1e-12);
    }
}

//! Rigid-body transforms — the 4×4 `[R | t]` matrices that point cloud
//! registration estimates (Eq. 1 of the paper).

use std::fmt;
use std::ops::Mul;

use crate::{Mat3, Vec3};

/// A rigid-body (SE(3)) transform: a rotation followed by a translation.
///
/// Registration's goal (paper Sec. 2.2) is to estimate the transform `M`
/// that maps a source cloud onto a target cloud; `M` consists of a 3×3
/// rotation `R` and a 3×1 translation `t`, acting on homogeneous points as
/// `x' = R x + t`.
///
/// # Example
///
/// ```
/// use tigris_geom::{RigidTransform, Vec3};
///
/// let m = RigidTransform::from_axis_angle(Vec3::Z, 0.1, Vec3::new(1.0, 0.0, 0.0));
/// let composed = m * m.inverse();
/// assert!(composed.is_identity(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigidTransform {
    /// The rotation component `R`.
    pub rotation: Mat3,
    /// The translation component `t`.
    pub translation: Vec3,
}

impl RigidTransform {
    /// The identity transform.
    pub const IDENTITY: RigidTransform = RigidTransform {
        rotation: Mat3::IDENTITY,
        translation: Vec3::ZERO,
    };

    /// Creates a transform from a rotation and translation.
    #[inline]
    pub fn new(rotation: Mat3, translation: Vec3) -> Self {
        RigidTransform { rotation, translation }
    }

    /// A pure translation.
    #[inline]
    pub fn from_translation(translation: Vec3) -> Self {
        RigidTransform::new(Mat3::IDENTITY, translation)
    }

    /// A pure rotation.
    #[inline]
    pub fn from_rotation(rotation: Mat3) -> Self {
        RigidTransform::new(rotation, Vec3::ZERO)
    }

    /// Rotation of `angle` radians about `axis`, followed by `translation`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` has (near-)zero length.
    pub fn from_axis_angle(axis: Vec3, angle: f64, translation: Vec3) -> Self {
        RigidTransform::new(Mat3::from_axis_angle(axis, angle), translation)
    }

    /// Builds a transform from small Euler angles and a translation, the
    /// parameterization used by the point-to-plane and LM solvers
    /// (`[α, β, γ, tx, ty, tz]`, rotations applied Z·Y·X).
    pub fn from_euler_xyz(alpha: f64, beta: f64, gamma: f64, translation: Vec3) -> Self {
        let rotation = Mat3::rotation_z(gamma) * Mat3::rotation_y(beta) * Mat3::rotation_x(alpha);
        RigidTransform::new(rotation, translation)
    }

    /// Applies the transform to a point: `R p + t`.
    #[inline]
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.translation
    }

    /// Applies only the rotation — correct for directions such as surface
    /// normals, which must not be translated.
    #[inline]
    pub fn apply_direction(&self, d: Vec3) -> Vec3 {
        self.rotation * d
    }

    /// The inverse transform.
    ///
    /// Because `R` is orthonormal the inverse is `Rᵀ (p - t)`.
    pub fn inverse(&self) -> RigidTransform {
        let rt = self.rotation.transpose();
        RigidTransform::new(rt, -(rt * self.translation))
    }

    /// Returns this transform as a row-major 4×4 homogeneous matrix, the
    /// paper's Eq. 1 representation.
    pub fn to_matrix4(&self) -> [[f64; 4]; 4] {
        let r = &self.rotation.m;
        let t = self.translation;
        [
            [r[0][0], r[0][1], r[0][2], t.x],
            [r[1][0], r[1][1], r[1][2], t.y],
            [r[2][0], r[2][1], r[2][2], t.z],
            [0.0, 0.0, 0.0, 1.0],
        ]
    }

    /// Returns `true` when rotation and translation are within `tol` of the
    /// identity.
    pub fn is_identity(&self, tol: f64) -> bool {
        (self.rotation - Mat3::IDENTITY).frobenius_norm() <= tol
            && self.translation.norm() <= tol
    }

    /// The rotation angle of the transform in radians (geodesic distance of
    /// `R` from the identity).
    pub fn rotation_angle(&self) -> f64 {
        self.rotation.rotation_angle()
    }

    /// The translation magnitude of the transform.
    pub fn translation_norm(&self) -> f64 {
        self.translation.norm()
    }

    /// Relative transform taking `self` to `other`: `other ∘ self⁻¹`.
    ///
    /// Used by the KITTI metrics to compare an estimated pose change against
    /// the ground-truth pose change.
    pub fn delta_to(&self, other: &RigidTransform) -> RigidTransform {
        *other * self.inverse()
    }
}

impl Default for RigidTransform {
    fn default() -> Self {
        RigidTransform::IDENTITY
    }
}

/// Composition: `(a * b).apply(p) == a.apply(b.apply(p))`.
impl Mul for RigidTransform {
    type Output = RigidTransform;
    fn mul(self, o: RigidTransform) -> RigidTransform {
        RigidTransform {
            rotation: self.rotation * o.rotation,
            translation: self.rotation * o.translation + self.translation,
        }
    }
}

impl fmt::Display for RigidTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RigidTransform {{ angle: {:.4} rad, t: {} }}",
            self.rotation_angle(),
            self.translation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_application() {
        let p = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(RigidTransform::IDENTITY.apply(p), p);
        assert!(RigidTransform::default().is_identity(0.0));
    }

    #[test]
    fn composition_matches_sequential_application() {
        let a = RigidTransform::from_axis_angle(Vec3::Z, 0.3, Vec3::new(1.0, 0.0, 0.0));
        let b = RigidTransform::from_axis_angle(Vec3::X, -0.7, Vec3::new(0.0, 2.0, 0.5));
        let p = Vec3::new(0.4, 0.5, 0.6);
        let via_compose = (a * b).apply(p);
        let via_seq = a.apply(b.apply(p));
        assert!((via_compose - via_seq).norm() < 1e-12);
    }

    #[test]
    fn inverse_round_trip() {
        let t = RigidTransform::from_axis_angle(Vec3::new(1.0, 1.0, 0.2), 1.2, Vec3::new(3.0, -1.0, 0.5));
        let p = Vec3::new(0.1, 0.2, 0.3);
        assert!((t.inverse().apply(t.apply(p)) - p).norm() < 1e-12);
        assert!((t * t.inverse()).is_identity(1e-12));
        assert!((t.inverse() * t).is_identity(1e-12));
    }

    #[test]
    fn preserves_distances() {
        let t = RigidTransform::from_axis_angle(Vec3::new(0.3, 0.5, 1.0), 0.9, Vec3::new(5.0, 6.0, 7.0));
        let p = Vec3::new(1.0, 2.0, 3.0);
        let q = Vec3::new(-1.0, 0.5, 2.0);
        assert!((t.apply(p).distance(t.apply(q)) - p.distance(q)).abs() < 1e-12);
    }

    #[test]
    fn direction_ignores_translation() {
        let t = RigidTransform::from_translation(Vec3::new(10.0, 0.0, 0.0));
        assert_eq!(t.apply_direction(Vec3::X), Vec3::X);
        assert_eq!(t.apply(Vec3::X), Vec3::new(11.0, 0.0, 0.0));
    }

    #[test]
    fn matrix4_layout() {
        let t = RigidTransform::from_translation(Vec3::new(1.0, 2.0, 3.0));
        let m = t.to_matrix4();
        assert_eq!(m[0][3], 1.0);
        assert_eq!(m[1][3], 2.0);
        assert_eq!(m[2][3], 3.0);
        assert_eq!(m[3], [0.0, 0.0, 0.0, 1.0]);
        assert_eq!(m[0][0], 1.0);
    }

    #[test]
    fn euler_small_angle_composition() {
        let t = RigidTransform::from_euler_xyz(0.01, -0.02, 0.03, Vec3::ZERO);
        assert!(t.rotation.is_rotation(1e-10));
        // Small-angle rotation angle is close to the Euler vector magnitude.
        let approx = (0.01f64.powi(2) + 0.02f64.powi(2) + 0.03f64.powi(2)).sqrt();
        assert!((t.rotation_angle() - approx).abs() < 1e-3);
    }

    #[test]
    fn delta_to_recovers_relative_motion() {
        let a = RigidTransform::from_axis_angle(Vec3::Z, 0.2, Vec3::new(1.0, 0.0, 0.0));
        let d = RigidTransform::from_axis_angle(Vec3::Y, 0.1, Vec3::new(0.0, 0.5, 0.0));
        let b = d * a;
        let rec = a.delta_to(&b);
        assert!((rec.rotation - d.rotation).frobenius_norm() < 1e-12);
        assert!((rec.translation - d.translation).norm() < 1e-12);
    }

    #[test]
    fn magnitudes() {
        let t = RigidTransform::from_axis_angle(Vec3::Z, 0.4, Vec3::new(3.0, 4.0, 0.0));
        assert!((t.rotation_angle() - 0.4).abs() < 1e-12);
        assert!((t.translation_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", RigidTransform::IDENTITY).is_empty());
    }
}

//! Rigid-body transforms — the 4×4 `[R | t]` matrices that point cloud
//! registration estimates (Eq. 1 of the paper).

use std::fmt;
use std::ops::Mul;

use crate::{Mat3, Vec3};

/// A rigid-body (SE(3)) transform: a rotation followed by a translation.
///
/// Registration's goal (paper Sec. 2.2) is to estimate the transform `M`
/// that maps a source cloud onto a target cloud; `M` consists of a 3×3
/// rotation `R` and a 3×1 translation `t`, acting on homogeneous points as
/// `x' = R x + t`.
///
/// # Example
///
/// ```
/// use tigris_geom::{RigidTransform, Vec3};
///
/// let m = RigidTransform::from_axis_angle(Vec3::Z, 0.1, Vec3::new(1.0, 0.0, 0.0));
/// let composed = m * m.inverse();
/// assert!(composed.is_identity(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RigidTransform {
    /// The rotation component `R`.
    pub rotation: Mat3,
    /// The translation component `t`.
    pub translation: Vec3,
}

impl RigidTransform {
    /// The identity transform.
    pub const IDENTITY: RigidTransform =
        RigidTransform { rotation: Mat3::IDENTITY, translation: Vec3::ZERO };

    /// Creates a transform from a rotation and translation.
    #[inline]
    pub fn new(rotation: Mat3, translation: Vec3) -> Self {
        RigidTransform { rotation, translation }
    }

    /// A pure translation.
    #[inline]
    pub fn from_translation(translation: Vec3) -> Self {
        RigidTransform::new(Mat3::IDENTITY, translation)
    }

    /// A pure rotation.
    #[inline]
    pub fn from_rotation(rotation: Mat3) -> Self {
        RigidTransform::new(rotation, Vec3::ZERO)
    }

    /// Rotation of `angle` radians about `axis`, followed by `translation`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` has (near-)zero length.
    pub fn from_axis_angle(axis: Vec3, angle: f64, translation: Vec3) -> Self {
        RigidTransform::new(Mat3::from_axis_angle(axis, angle), translation)
    }

    /// Builds a transform from small Euler angles and a translation, the
    /// parameterization used by the point-to-plane and LM solvers
    /// (`[α, β, γ, tx, ty, tz]`, rotations applied Z·Y·X).
    pub fn from_euler_xyz(alpha: f64, beta: f64, gamma: f64, translation: Vec3) -> Self {
        let rotation = Mat3::rotation_z(gamma) * Mat3::rotation_y(beta) * Mat3::rotation_x(alpha);
        RigidTransform::new(rotation, translation)
    }

    /// Applies the transform to a point: `R p + t`.
    #[inline]
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.rotation * p + self.translation
    }

    /// Applies only the rotation — correct for directions such as surface
    /// normals, which must not be translated.
    #[inline]
    pub fn apply_direction(&self, d: Vec3) -> Vec3 {
        self.rotation * d
    }

    /// The inverse transform.
    ///
    /// Because `R` is orthonormal the inverse is `Rᵀ (p - t)`.
    pub fn inverse(&self) -> RigidTransform {
        let rt = self.rotation.transpose();
        RigidTransform::new(rt, -(rt * self.translation))
    }

    /// Returns this transform as a row-major 4×4 homogeneous matrix, the
    /// paper's Eq. 1 representation.
    pub fn to_matrix4(&self) -> [[f64; 4]; 4] {
        let r = &self.rotation.m;
        let t = self.translation;
        [
            [r[0][0], r[0][1], r[0][2], t.x],
            [r[1][0], r[1][1], r[1][2], t.y],
            [r[2][0], r[2][1], r[2][2], t.z],
            [0.0, 0.0, 0.0, 1.0],
        ]
    }

    /// Returns `true` when rotation and translation are within `tol` of the
    /// identity.
    pub fn is_identity(&self, tol: f64) -> bool {
        (self.rotation - Mat3::IDENTITY).frobenius_norm() <= tol && self.translation.norm() <= tol
    }

    /// The rotation angle of the transform in radians (geodesic distance of
    /// `R` from the identity).
    pub fn rotation_angle(&self) -> f64 {
        self.rotation.rotation_angle()
    }

    /// The translation magnitude of the transform.
    pub fn translation_norm(&self) -> f64 {
        self.translation.norm()
    }

    /// Relative transform taking `self` to `other`: `other ∘ self⁻¹`.
    ///
    /// Used by the KITTI metrics to compare an estimated pose change against
    /// the ground-truth pose change.
    pub fn delta_to(&self, other: &RigidTransform) -> RigidTransform {
        *other * self.inverse()
    }

    /// The SE(3) logarithm: the twist `ξ = [ω, ρ]` (rotation vector then
    /// translation part, each 3 components) such that
    /// [`RigidTransform::exp`]`(ξ)` recovers this transform.
    ///
    /// This is the minimal 6-DoF parameterization the pose-graph solver
    /// ([`crate::posegraph`]) linearizes in: residuals between poses are
    /// `log(expected⁻¹ · actual)`, and updates re-enter the manifold via
    /// `exp`. The rotation branch handles the small-angle limit (first-order
    /// skew extraction) and the near-π branch (axis from the symmetric
    /// part) explicitly; at exactly π the sign of `ω` is an arbitrary but
    /// deterministic choice (both are valid logarithms).
    pub fn log(&self) -> [f64; 6] {
        let omega = so3_log(&self.rotation);
        let theta = omega.norm();
        let hat = hat3(omega);
        let hat2 = hat * hat;
        // V⁻¹ = I − ½[ω]× + c·[ω]×², with the numerically stable
        // c = (1 − A/(2B))/θ² (A = sinθ/θ, B = (1−cosθ)/θ²).
        let c = if theta < 1e-4 {
            1.0 / 12.0 + theta * theta / 720.0
        } else {
            let a = theta.sin() / theta;
            let b = (1.0 - theta.cos()) / (theta * theta);
            (1.0 - a / (2.0 * b)) / (theta * theta)
        };
        let v_inv = Mat3::IDENTITY - hat.scale(0.5) + hat2.scale(c);
        let rho = v_inv * self.translation;
        [omega.x, omega.y, omega.z, rho.x, rho.y, rho.z]
    }

    /// The SE(3) exponential: builds the transform whose logarithm is the
    /// twist `ξ = [ω, ρ]`. Inverse of [`RigidTransform::log`]:
    ///
    /// ```
    /// use tigris_geom::{RigidTransform, Vec3};
    /// let t = RigidTransform::from_axis_angle(Vec3::Z, 0.7, Vec3::new(1.0, -2.0, 0.5));
    /// let back = RigidTransform::exp(t.log());
    /// assert!((back.translation - t.translation).norm() < 1e-12);
    /// ```
    pub fn exp(xi: [f64; 6]) -> RigidTransform {
        let omega = Vec3::new(xi[0], xi[1], xi[2]);
        let rho = Vec3::new(xi[3], xi[4], xi[5]);
        let theta = omega.norm();
        let hat = hat3(omega);
        let hat2 = hat * hat;
        // R = I + A[ω]× + B[ω]×², V = I + B[ω]× + C[ω]×².
        let (a, b, c) = if theta < 1e-10 {
            // Second-order Taylor around θ = 0.
            (1.0, 0.5, 1.0 / 6.0)
        } else {
            let t2 = theta * theta;
            (theta.sin() / theta, (1.0 - theta.cos()) / t2, (theta - theta.sin()) / (t2 * theta))
        };
        let rotation = Mat3::IDENTITY + hat.scale(a) + hat2.scale(b);
        let v = Mat3::IDENTITY + hat.scale(b) + hat2.scale(c);
        RigidTransform::new(rotation, v * rho)
    }
}

/// The skew-symmetric (cross-product) matrix of `w`: `hat3(w) * v == w × v`.
fn hat3(w: Vec3) -> Mat3 {
    Mat3::from_rows([0.0, -w.z, w.y], [w.z, 0.0, -w.x], [-w.y, w.x, 0.0])
}

/// SO(3) logarithm: the rotation vector (axis · angle) of `r`.
fn so3_log(r: &Mat3) -> Vec3 {
    let theta = r.rotation_angle();
    // The skew part's vee: 2 sinθ · axis.
    let vee = Vec3::new(r.m[2][1] - r.m[1][2], r.m[0][2] - r.m[2][0], r.m[1][0] - r.m[0][1]);
    if theta < 1e-10 {
        // First order: R ≈ I + [ω]×.
        return vee * 0.5;
    }
    if theta < std::f64::consts::PI - 1e-6 {
        return vee * (theta / (2.0 * theta.sin()));
    }
    // Near π the skew part vanishes; recover the axis from the symmetric
    // part instead: R = cosθ·I + sinθ·[u]× + (1−cosθ)·uuᵀ, so the diagonal
    // gives u_i² and row k gives the products u_k·u_j.
    let cos = theta.cos();
    let one_minus = 1.0 - cos;
    let diag = [r.m[0][0], r.m[1][1], r.m[2][2]];
    let k = (0..3).max_by(|&a, &b| diag[a].total_cmp(&diag[b])).unwrap();
    let uk = (((diag[k] - cos) / one_minus).max(0.0)).sqrt().max(1e-12);
    let mut u = [0.0f64; 3];
    u[k] = uk;
    for (j, uj) in u.iter_mut().enumerate() {
        if j != k {
            *uj = (r.m[k][j] + r.m[j][k]) / (2.0 * one_minus * uk);
        }
    }
    let mut axis = Vec3::new(u[0], u[1], u[2]);
    axis = axis.normalized().unwrap_or(Vec3::X);
    // Disambiguate the sign with whatever skew part remains (below π the
    // logarithm is unique); at exactly π either sign is a valid answer.
    if vee.dot(axis) < 0.0 {
        axis = -axis;
    }
    axis * theta
}

impl Default for RigidTransform {
    fn default() -> Self {
        RigidTransform::IDENTITY
    }
}

/// Composition: `(a * b).apply(p) == a.apply(b.apply(p))`.
impl Mul for RigidTransform {
    type Output = RigidTransform;
    fn mul(self, o: RigidTransform) -> RigidTransform {
        RigidTransform {
            rotation: self.rotation * o.rotation,
            translation: self.rotation * o.translation + self.translation,
        }
    }
}

impl fmt::Display for RigidTransform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RigidTransform {{ angle: {:.4} rad, t: {} }}",
            self.rotation_angle(),
            self.translation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_application() {
        let p = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(RigidTransform::IDENTITY.apply(p), p);
        assert!(RigidTransform::default().is_identity(0.0));
    }

    #[test]
    fn composition_matches_sequential_application() {
        let a = RigidTransform::from_axis_angle(Vec3::Z, 0.3, Vec3::new(1.0, 0.0, 0.0));
        let b = RigidTransform::from_axis_angle(Vec3::X, -0.7, Vec3::new(0.0, 2.0, 0.5));
        let p = Vec3::new(0.4, 0.5, 0.6);
        let via_compose = (a * b).apply(p);
        let via_seq = a.apply(b.apply(p));
        assert!((via_compose - via_seq).norm() < 1e-12);
    }

    #[test]
    fn inverse_round_trip() {
        let t = RigidTransform::from_axis_angle(
            Vec3::new(1.0, 1.0, 0.2),
            1.2,
            Vec3::new(3.0, -1.0, 0.5),
        );
        let p = Vec3::new(0.1, 0.2, 0.3);
        assert!((t.inverse().apply(t.apply(p)) - p).norm() < 1e-12);
        assert!((t * t.inverse()).is_identity(1e-12));
        assert!((t.inverse() * t).is_identity(1e-12));
    }

    #[test]
    fn preserves_distances() {
        let t = RigidTransform::from_axis_angle(
            Vec3::new(0.3, 0.5, 1.0),
            0.9,
            Vec3::new(5.0, 6.0, 7.0),
        );
        let p = Vec3::new(1.0, 2.0, 3.0);
        let q = Vec3::new(-1.0, 0.5, 2.0);
        assert!((t.apply(p).distance(t.apply(q)) - p.distance(q)).abs() < 1e-12);
    }

    #[test]
    fn direction_ignores_translation() {
        let t = RigidTransform::from_translation(Vec3::new(10.0, 0.0, 0.0));
        assert_eq!(t.apply_direction(Vec3::X), Vec3::X);
        assert_eq!(t.apply(Vec3::X), Vec3::new(11.0, 0.0, 0.0));
    }

    #[test]
    fn matrix4_layout() {
        let t = RigidTransform::from_translation(Vec3::new(1.0, 2.0, 3.0));
        let m = t.to_matrix4();
        assert_eq!(m[0][3], 1.0);
        assert_eq!(m[1][3], 2.0);
        assert_eq!(m[2][3], 3.0);
        assert_eq!(m[3], [0.0, 0.0, 0.0, 1.0]);
        assert_eq!(m[0][0], 1.0);
    }

    #[test]
    fn euler_small_angle_composition() {
        let t = RigidTransform::from_euler_xyz(0.01, -0.02, 0.03, Vec3::ZERO);
        assert!(t.rotation.is_rotation(1e-10));
        // Small-angle rotation angle is close to the Euler vector magnitude.
        let approx = (0.01f64.powi(2) + 0.02f64.powi(2) + 0.03f64.powi(2)).sqrt();
        assert!((t.rotation_angle() - approx).abs() < 1e-3);
    }

    #[test]
    fn delta_to_recovers_relative_motion() {
        let a = RigidTransform::from_axis_angle(Vec3::Z, 0.2, Vec3::new(1.0, 0.0, 0.0));
        let d = RigidTransform::from_axis_angle(Vec3::Y, 0.1, Vec3::new(0.0, 0.5, 0.0));
        let b = d * a;
        let rec = a.delta_to(&b);
        assert!((rec.rotation - d.rotation).frobenius_norm() < 1e-12);
        assert!((rec.translation - d.translation).norm() < 1e-12);
    }

    #[test]
    fn magnitudes() {
        let t = RigidTransform::from_axis_angle(Vec3::Z, 0.4, Vec3::new(3.0, 4.0, 0.0));
        assert!((t.rotation_angle() - 0.4).abs() < 1e-12);
        assert!((t.translation_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", RigidTransform::IDENTITY).is_empty());
    }

    #[test]
    fn log_exp_round_trips_generic_transforms() {
        let cases = [
            RigidTransform::IDENTITY,
            RigidTransform::from_translation(Vec3::new(3.0, -1.0, 0.5)),
            RigidTransform::from_axis_angle(Vec3::Z, 0.3, Vec3::new(1.0, 2.0, 3.0)),
            RigidTransform::from_axis_angle(
                Vec3::new(1.0, -0.4, 0.7),
                1.9,
                Vec3::new(-5.0, 0.1, 2.0),
            ),
            RigidTransform::from_axis_angle(
                Vec3::new(0.2, 1.0, 0.1),
                3.0,
                Vec3::new(0.0, -2.0, 4.0),
            ),
        ];
        for t in cases {
            let back = RigidTransform::exp(t.log());
            assert!((back.rotation - t.rotation).frobenius_norm() < 1e-9, "rotation drifted: {t}");
            assert!((back.translation - t.translation).norm() < 1e-9, "translation drifted: {t}");
        }
    }

    #[test]
    fn exp_log_round_trips_twists() {
        let cases = [
            [0.0; 6],
            [0.01, -0.02, 0.03, 1.0, 2.0, 3.0],
            [1.2, 0.4, -0.8, -3.0, 0.5, 10.0],
            [0.0, 0.0, 2.8, 4.0, 4.0, 0.0],
        ];
        for xi in cases {
            let back = RigidTransform::exp(xi).log();
            for (a, b) in xi.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "{xi:?} -> {back:?}");
            }
        }
    }

    #[test]
    fn log_handles_rotations_at_and_near_pi() {
        use std::f64::consts::PI;
        for angle in [PI - 1e-8, PI] {
            let t = RigidTransform::from_axis_angle(Vec3::new(0.3, -1.0, 0.5), angle, Vec3::ZERO);
            let xi = t.log();
            let back = RigidTransform::exp(xi);
            // At exactly π both ±ω are valid logs; the rotation must match
            // either way.
            assert!(
                (back.rotation - t.rotation).frobenius_norm() < 1e-6,
                "angle {angle}: frobenius {}",
                (back.rotation - t.rotation).frobenius_norm()
            );
            let norm = (xi[0] * xi[0] + xi[1] * xi[1] + xi[2] * xi[2]).sqrt();
            assert!((norm - angle).abs() < 1e-6, "rotation-vector norm {norm} vs {angle}");
        }
    }

    #[test]
    fn log_magnitude_matches_transform_magnitudes() {
        let t = RigidTransform::from_axis_angle(Vec3::Z, 0.5, Vec3::ZERO);
        let xi = t.log();
        assert!((xi[2] - 0.5).abs() < 1e-12);
        assert!(xi[3].abs() + xi[4].abs() + xi[5].abs() < 1e-12);
        // Pure translations log to themselves.
        let t = RigidTransform::from_translation(Vec3::new(1.0, 2.0, 3.0));
        let xi = t.log();
        assert_eq!(&xi[..3], &[0.0, 0.0, 0.0]);
        assert!((xi[3] - 1.0).abs() < 1e-12 && (xi[5] - 3.0).abs() < 1e-12);
    }
}

//! The point cloud container: a collection of 3D points, optionally with
//! per-point surface normals (paper Sec. 2.1).

use crate::{Aabb, RigidTransform, Vec3};

/// A point cloud: points in a 3D Cartesian frame, with optional per-point
/// normals attached by the normal-estimation stage.
///
/// # Example
///
/// ```
/// use tigris_geom::{PointCloud, RigidTransform, Vec3};
///
/// let mut cloud = PointCloud::from_points(vec![Vec3::ZERO, Vec3::X]);
/// let moved = cloud.transformed(&RigidTransform::from_translation(Vec3::Y));
/// assert_eq!(moved.points()[0], Vec3::Y);
/// assert_eq!(cloud.len(), 2);
/// cloud.push(Vec3::Z);
/// assert_eq!(cloud.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PointCloud {
    points: Vec<Vec3>,
    /// Parallel to `points` when present (set by normal estimation).
    normals: Option<Vec<Vec3>>,
}

impl PointCloud {
    /// Creates an empty cloud.
    pub fn new() -> Self {
        PointCloud::default()
    }

    /// Creates a cloud from points, without normals.
    pub fn from_points(points: Vec<Vec3>) -> Self {
        PointCloud { points, normals: None }
    }

    /// Creates a cloud with per-point normals.
    ///
    /// # Panics
    ///
    /// Panics when `normals.len() != points.len()`.
    pub fn with_normals(points: Vec<Vec3>, normals: Vec<Vec3>) -> Self {
        assert_eq!(points.len(), normals.len(), "normals must be parallel to points");
        PointCloud { points, normals: Some(normals) }
    }

    /// The points.
    #[inline]
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// The normals, when normal estimation has run.
    #[inline]
    pub fn normals(&self) -> Option<&[Vec3]> {
        self.normals.as_deref()
    }

    /// Attaches normals (parallel to the point array).
    ///
    /// # Panics
    ///
    /// Panics when lengths disagree.
    pub fn set_normals(&mut self, normals: Vec<Vec3>) {
        assert_eq!(self.points.len(), normals.len(), "normals must be parallel to points");
        self.normals = Some(normals);
    }

    /// Drops any attached normals.
    pub fn clear_normals(&mut self) {
        self.normals = None;
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the cloud holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Appends a point (invalidates normals, which are no longer parallel).
    pub fn push(&mut self, p: Vec3) {
        self.points.push(p);
        self.normals = None;
    }

    /// Iterator over the points.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec3> {
        self.points.iter()
    }

    /// The centroid, or `None` for an empty cloud.
    pub fn centroid(&self) -> Option<Vec3> {
        if self.points.is_empty() {
            return None;
        }
        let sum = self.points.iter().fold(Vec3::ZERO, |acc, &p| acc + p);
        Some(sum / self.points.len() as f64)
    }

    /// The tight bounding box, or `None` for an empty cloud.
    pub fn bounding_box(&self) -> Option<Aabb> {
        Aabb::from_points(self.points.iter().copied())
    }

    /// Applies a rigid transform in place: points get `R p + t`, normals (if
    /// any) get only the rotation.
    pub fn transform(&mut self, t: &RigidTransform) {
        for p in &mut self.points {
            *p = t.apply(*p);
        }
        if let Some(normals) = &mut self.normals {
            for n in normals {
                *n = t.apply_direction(*n);
            }
        }
    }

    /// Returns a transformed copy (paper's `S → S′` step).
    pub fn transformed(&self, t: &RigidTransform) -> PointCloud {
        let mut out = self.clone();
        out.transform(t);
        out
    }

    /// Returns a sub-cloud of the points at `indices` (normals carried along
    /// when present). Used to materialize key-point sets.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> PointCloud {
        let points = indices.iter().map(|&i| self.points[i]).collect();
        let normals = self.normals.as_ref().map(|ns| indices.iter().map(|&i| ns[i]).collect());
        PointCloud { points, normals }
    }

    /// Voxel-grid downsample: partitions space into cubes of edge
    /// `voxel_size` and keeps each occupied cube's point centroid.
    ///
    /// The standard pre-processing step for dense LiDAR frames; determinism
    /// is guaranteed by sorting voxels by their grid coordinates.
    ///
    /// # Panics
    ///
    /// Panics when `voxel_size` is not strictly positive.
    pub fn voxel_downsample(&self, voxel_size: f64) -> PointCloud {
        assert!(voxel_size > 0.0, "voxel size must be positive");
        use std::collections::HashMap;
        let mut cells: HashMap<(i64, i64, i64), (Vec3, usize)> = HashMap::new();
        for &p in &self.points {
            let key = (
                (p.x / voxel_size).floor() as i64,
                (p.y / voxel_size).floor() as i64,
                (p.z / voxel_size).floor() as i64,
            );
            let e = cells.entry(key).or_insert((Vec3::ZERO, 0));
            e.0 += p;
            e.1 += 1;
        }
        let mut entries: Vec<_> = cells.into_iter().collect();
        entries.sort_by_key(|(k, _)| *k);
        let points = entries.into_iter().map(|(_, (sum, n))| sum / n as f64).collect();
        PointCloud::from_points(points)
    }
}

impl FromIterator<Vec3> for PointCloud {
    fn from_iter<I: IntoIterator<Item = Vec3>>(iter: I) -> Self {
        PointCloud::from_points(iter.into_iter().collect())
    }
}

impl Extend<Vec3> for PointCloud {
    fn extend<I: IntoIterator<Item = Vec3>>(&mut self, iter: I) {
        self.points.extend(iter);
        self.normals = None;
    }
}

impl<'a> IntoIterator for &'a PointCloud {
    type Item = &'a Vec3;
    type IntoIter = std::slice::Iter<'a, Vec3>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mat3;

    fn sample_cloud() -> PointCloud {
        PointCloud::from_points(vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(0.0, 2.0, 0.0),
            Vec3::new(0.0, 0.0, 2.0),
        ])
    }

    #[test]
    fn construction_and_len() {
        let c = sample_cloud();
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert!(PointCloud::new().is_empty());
    }

    #[test]
    fn centroid_and_bbox() {
        let c = sample_cloud();
        assert_eq!(c.centroid().unwrap(), Vec3::splat(0.5));
        let b = c.bounding_box().unwrap();
        assert_eq!(b.min, Vec3::ZERO);
        assert_eq!(b.max, Vec3::splat(2.0));
        assert!(PointCloud::new().centroid().is_none());
        assert!(PointCloud::new().bounding_box().is_none());
    }

    #[test]
    fn transform_moves_points_and_rotates_normals() {
        let mut c = PointCloud::with_normals(vec![Vec3::X], vec![Vec3::Z]);
        let t = RigidTransform::new(
            Mat3::rotation_x(std::f64::consts::FRAC_PI_2),
            Vec3::new(0.0, 0.0, 5.0),
        );
        c.transform(&t);
        assert!((c.points()[0] - Vec3::new(1.0, 0.0, 5.0)).norm() < 1e-12);
        // Normal rotated (Z → -Y under +90° about X... actually Z→-Y? check:
        // rotation_x(π/2): Y→Z, Z→-Y) and NOT translated.
        assert!((c.normals().unwrap()[0] - Vec3::new(0.0, -1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn transformed_leaves_original() {
        let c = sample_cloud();
        let t = RigidTransform::from_translation(Vec3::X);
        let moved = c.transformed(&t);
        assert_eq!(c.points()[0], Vec3::ZERO);
        assert_eq!(moved.points()[0], Vec3::X);
    }

    #[test]
    fn select_subsets() {
        let mut c = sample_cloud();
        c.set_normals(vec![Vec3::X, Vec3::Y, Vec3::Z, Vec3::X]);
        let s = c.select(&[1, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.points()[0], Vec3::new(2.0, 0.0, 0.0));
        assert_eq!(s.normals().unwrap()[1], Vec3::X);
    }

    #[test]
    fn push_invalidates_normals() {
        let mut c = PointCloud::with_normals(vec![Vec3::X], vec![Vec3::Z]);
        c.push(Vec3::Y);
        assert!(c.normals().is_none());
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_normals_panic() {
        PointCloud::with_normals(vec![Vec3::X], vec![]);
    }

    #[test]
    fn voxel_downsample_merges_cells() {
        // Two clusters far apart; each collapses to its centroid.
        let c = PointCloud::from_points(vec![
            Vec3::new(0.01, 0.01, 0.01),
            Vec3::new(0.02, 0.02, 0.02),
            Vec3::new(10.0, 10.0, 10.0),
        ]);
        let d = c.voxel_downsample(1.0);
        assert_eq!(d.len(), 2);
        assert!((d.points()[0] - Vec3::splat(0.015)).norm() < 1e-12);
    }

    #[test]
    fn voxel_downsample_is_deterministic() {
        let c = sample_cloud();
        assert_eq!(c.voxel_downsample(0.5), c.voxel_downsample(0.5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn voxel_downsample_rejects_zero_size() {
        sample_cloud().voxel_downsample(0.0);
    }

    #[test]
    fn iteration_and_collection() {
        let c: PointCloud = [Vec3::X, Vec3::Y].into_iter().collect();
        assert_eq!(c.len(), 2);
        let total: Vec3 = c.iter().fold(Vec3::ZERO, |a, &p| a + p);
        assert_eq!(total, Vec3::new(1.0, 1.0, 0.0));
        let mut c2 = c.clone();
        c2.extend([Vec3::Z]);
        assert_eq!(c2.len(), 3);
        let borrowed_sum: Vec3 = (&c).into_iter().fold(Vec3::ZERO, |a, &p| a + p);
        assert_eq!(borrowed_sum, total);
    }
}

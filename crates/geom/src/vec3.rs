//! 3-dimensional vectors, the representation of every point, normal and
//! translation in Tigris.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A 3-dimensional vector of `f64` components.
///
/// `Vec3` doubles as the point type of the library: a point cloud is a
/// collection of `Vec3` (see [`crate::PointCloud`]), matching the paper's
/// definition of a point cloud as `<x, y, z>` coordinates.
///
/// # Example
///
/// ```
/// use tigris_geom::Vec3;
/// let a = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(a.norm(), 3.0);
/// assert_eq!(a.dot(Vec3::X), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// The unit X axis.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// The unit Y axis.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// The unit Z axis.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from its three components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product with `other`.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Squared Euclidean norm. Cheaper than [`Vec3::norm`]; this is the
    /// quantity the accelerator's distance datapath computes (`CD` stage).
    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_squared(self, other: Vec3) -> f64 {
        (self - other).norm_squared()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Returns the vector scaled to unit length, or `None` if its norm is
    /// below `1e-12` (direction undefined).
    #[inline]
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Returns `true` when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns the component along dimension `axis` (0 = x, 1 = y, 2 = z).
    ///
    /// KD-tree construction and traversal address coordinates by split axis,
    /// hence this accessor.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= 3`.
    #[inline]
    pub fn axis(self, axis: usize) -> f64 {
        match axis {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("Vec3 axis index out of range: {axis}"),
        }
    }

    /// Linear interpolation: `self + t * (other - self)`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Returns the components as an array `[x, y, z]`.
    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }
}

impl From<[f64; 3]> for Vec3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Vec3::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f64; 3] {
    #[inline]
    fn from(v: Vec3) -> Self {
        v.to_array()
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;

    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.6}, {:.6}, {:.6})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_constants() {
        assert_eq!(Vec3::new(1.0, 2.0, 3.0).to_array(), [1.0, 2.0, 3.0]);
        assert_eq!(Vec3::splat(2.0), Vec3::new(2.0, 2.0, 2.0));
        assert_eq!(Vec3::ZERO + Vec3::X + Vec3::Y + Vec3::Z, Vec3::splat(1.0));
        assert_eq!(Vec3::default(), Vec3::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::splat(3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn dot_and_cross() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
        // Cross product is perpendicular to both inputs.
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn norms_and_distances() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(v.norm_squared(), 25.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.distance(Vec3::ZERO), 5.0);
        assert_eq!(v.distance_squared(Vec3::new(3.0, 0.0, 0.0)), 16.0);
    }

    #[test]
    fn normalization() {
        let v = Vec3::new(0.0, 3.0, 4.0).normalized().unwrap();
        assert!((v.norm() - 1.0).abs() < 1e-15);
        assert!(Vec3::ZERO.normalized().is_none());
        assert!(Vec3::splat(1e-13).normalized().is_none());
    }

    #[test]
    fn axis_access() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.axis(0), 1.0);
        assert_eq!(v.axis(1), 2.0);
        assert_eq!(v.axis(2), 3.0);
        assert_eq!(v[0], 1.0);
        let mut m = v;
        m[2] = 9.0;
        assert_eq!(m.z, 9.0);
    }

    #[test]
    #[should_panic(expected = "axis index out of range")]
    fn axis_out_of_range_panics() {
        Vec3::ZERO.axis(3);
    }

    #[test]
    fn min_max_abs() {
        let a = Vec3::new(1.0, -5.0, 3.0);
        let b = Vec3::new(-2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Vec3::new(-2.0, -5.0, 3.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 4.0, 3.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 3.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::ZERO;
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn finite_check() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn conversions() {
        let v: Vec3 = [1.0, 2.0, 3.0].into();
        let a: [f64; 3] = v.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec3::ZERO).is_empty());
    }
}

//! 3×3 matrices: rotations, covariance matrices and the cross-covariance
//! accumulations used by the Kabsch transformation solver.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::Vec3;

/// A 3×3 matrix of `f64`, stored row-major.
///
/// # Example
///
/// ```
/// use tigris_geom::{Mat3, Vec3};
/// let r = Mat3::rotation_z(std::f64::consts::FRAC_PI_2);
/// let v = r * Vec3::X;
/// assert!((v - Vec3::Y).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Rows of the matrix; `m[r][c]` addresses row `r`, column `c`.
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// The zero matrix.
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };

    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 { m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]] };

    /// Creates a matrix from rows.
    #[inline]
    pub const fn from_rows(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Self {
        Mat3 { m: [r0, r1, r2] }
    }

    /// Creates a matrix whose columns are the given vectors.
    #[inline]
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3 { m: [[c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z]] }
    }

    /// Returns column `c` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= 3`.
    #[inline]
    pub fn col(&self, c: usize) -> Vec3 {
        Vec3::new(self.m[0][c], self.m[1][c], self.m[2][c])
    }

    /// Returns row `r` as a vector.
    ///
    /// # Panics
    ///
    /// Panics if `r >= 3`.
    #[inline]
    pub fn row(&self, r: usize) -> Vec3 {
        Vec3::new(self.m[r][0], self.m[r][1], self.m[r][2])
    }

    /// The outer product `a * bᵀ`, the building block of cross-covariance
    /// accumulation in the Kabsch solver.
    pub fn outer(a: Vec3, b: Vec3) -> Mat3 {
        Mat3 {
            m: [
                [a.x * b.x, a.x * b.y, a.x * b.z],
                [a.y * b.x, a.y * b.y, a.y * b.z],
                [a.z * b.x, a.z * b.y, a.z * b.z],
            ],
        }
    }

    /// Rotation of `angle` radians about the X axis.
    pub fn rotation_x(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c])
    }

    /// Rotation of `angle` radians about the Y axis.
    pub fn rotation_y(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c])
    }

    /// Rotation of `angle` radians about the Z axis.
    pub fn rotation_z(angle: f64) -> Mat3 {
        let (s, c) = angle.sin_cos();
        Mat3::from_rows([c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0])
    }

    /// Rotation of `angle` radians about an arbitrary `axis` (Rodrigues'
    /// formula). The axis is normalized internally.
    ///
    /// # Panics
    ///
    /// Panics if `axis` has (near-)zero length.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Mat3 {
        let u = axis.normalized().expect("rotation axis must have non-zero length");
        let (s, c) = angle.sin_cos();
        let t = 1.0 - c;
        Mat3::from_rows(
            [c + u.x * u.x * t, u.x * u.y * t - u.z * s, u.x * u.z * t + u.y * s],
            [u.y * u.x * t + u.z * s, c + u.y * u.y * t, u.y * u.z * t - u.x * s],
            [u.z * u.x * t - u.y * s, u.z * u.y * t + u.x * s, c + u.z * u.z * t],
        )
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat3 {
        let m = &self.m;
        Mat3::from_rows(
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        )
    }

    /// Determinant.
    pub fn determinant(&self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Trace (sum of diagonal entries).
    pub fn trace(&self) -> f64 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Matrix inverse, or `None` if the determinant magnitude is below
    /// `1e-12`.
    pub fn inverse(&self) -> Option<Mat3> {
        let det = self.determinant();
        if det.abs() < 1e-12 {
            return None;
        }
        let m = &self.m;
        let inv_det = 1.0 / det;
        // Adjugate / determinant.
        Some(Mat3::from_rows(
            [
                (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_det,
                (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_det,
                (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_det,
            ],
            [
                (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_det,
                (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_det,
                (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_det,
            ],
            [
                (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_det,
                (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_det,
                (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_det,
            ],
        ))
    }

    /// Returns `true` when the matrix is a proper rotation: orthonormal with
    /// determinant +1, within `tol`.
    pub fn is_rotation(&self, tol: f64) -> bool {
        let should_be_identity = *self * self.transpose();
        let mut err: f64 = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                err = err.max((should_be_identity.m[r][c] - Mat3::IDENTITY.m[r][c]).abs());
            }
        }
        err <= tol && (self.determinant() - 1.0).abs() <= tol
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.m.iter().flatten().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Mat3 {
        let mut out = *self;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] *= s;
            }
        }
        out
    }

    /// The rotation angle (radians, in `[0, π]`) of a rotation matrix.
    ///
    /// Used by the KITTI rotational-error metric. Clamps the trace to the
    /// valid `acos` domain to be robust against round-off.
    pub fn rotation_angle(&self) -> f64 {
        (((self.trace() - 1.0) / 2.0).clamp(-1.0, 1.0)).acos()
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Index<(usize, usize)> for Mat3 {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.m[r][c]
    }
}

impl IndexMut<(usize, usize)> for Mat3 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.m[r][c]
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = (0..3).map(|k| self.m[r][k] * o.m[k][c]).sum();
            }
        }
        out
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] + o.m[r][c];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                out.m[r][c] = self.m[r][c] - o.m[r][c];
            }
        }
        out
    }
}

impl fmt::Display for Mat3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..3 {
            writeln!(f, "[{:.6} {:.6} {:.6}]", self.m[r][0], self.m[r][1], self.m[r][2])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn assert_mat_close(a: Mat3, b: Mat3, tol: f64) {
        for r in 0..3 {
            for c in 0..3 {
                assert!(
                    (a.m[r][c] - b.m[r][c]).abs() < tol,
                    "mismatch at ({r},{c}): {} vs {}",
                    a.m[r][c],
                    b.m[r][c]
                );
            }
        }
    }

    #[test]
    fn identity_behaves() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Mat3::IDENTITY * v, v);
        assert_eq!(Mat3::IDENTITY * Mat3::IDENTITY, Mat3::IDENTITY);
        assert_eq!(Mat3::default(), Mat3::IDENTITY);
        assert_eq!(Mat3::IDENTITY.determinant(), 1.0);
        assert_eq!(Mat3::IDENTITY.trace(), 3.0);
    }

    #[test]
    fn axis_rotations_rotate_basis_vectors() {
        let quarter = std::f64::consts::FRAC_PI_2;
        assert!((Mat3::rotation_z(quarter) * Vec3::X - Vec3::Y).norm() < EPS);
        assert!((Mat3::rotation_x(quarter) * Vec3::Y - Vec3::Z).norm() < EPS);
        assert!((Mat3::rotation_y(quarter) * Vec3::Z - Vec3::X).norm() < EPS);
    }

    #[test]
    fn axis_angle_matches_dedicated_constructors() {
        for angle in [-1.0, 0.2, 1.7] {
            assert_mat_close(Mat3::from_axis_angle(Vec3::Z, angle), Mat3::rotation_z(angle), EPS);
            assert_mat_close(Mat3::from_axis_angle(Vec3::X, angle), Mat3::rotation_x(angle), EPS);
        }
    }

    #[test]
    fn rotations_are_rotations() {
        let r = Mat3::from_axis_angle(Vec3::new(1.0, 2.0, -0.5), 0.83);
        assert!(r.is_rotation(1e-10));
        assert!((r.determinant() - 1.0).abs() < 1e-10);
        // Rotation preserves norms.
        let v = Vec3::new(-2.0, 0.3, 4.0);
        assert!(((r * v).norm() - v.norm()).abs() < 1e-10);
    }

    #[test]
    fn rotation_angle_recovers_angle() {
        for angle in [0.0, 0.3, 1.2, 3.0] {
            let r = Mat3::from_axis_angle(Vec3::new(0.3, -1.0, 0.2), angle);
            assert!((r.rotation_angle() - angle).abs() < 1e-10);
        }
    }

    #[test]
    fn inverse_of_rotation_is_transpose() {
        let r = Mat3::from_axis_angle(Vec3::new(0.1, 0.5, 0.7), 1.1);
        assert_mat_close(r.inverse().unwrap(), r.transpose(), 1e-10);
    }

    #[test]
    fn inverse_round_trip() {
        let a = Mat3::from_rows([2.0, 1.0, 0.0], [0.0, 3.0, 1.0], [1.0, 0.0, 2.0]);
        let inv = a.inverse().unwrap();
        assert_mat_close(a * inv, Mat3::IDENTITY, 1e-10);
        assert_mat_close(inv * a, Mat3::IDENTITY, 1e-10);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 0.0]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn outer_product() {
        let m = Mat3::outer(Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(m.m[0], [4.0, 5.0, 6.0]);
        assert_eq!(m.m[1], [8.0, 10.0, 12.0]);
        assert_eq!(m.m[2], [12.0, 15.0, 18.0]);
    }

    #[test]
    fn rows_cols_and_construction() {
        let m = Mat3::from_cols(Vec3::X, Vec3::Y, Vec3::Z);
        assert_eq!(m, Mat3::IDENTITY);
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(m.row(1), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(m.col(2), Vec3::new(3.0, 6.0, 9.0));
        assert_eq!(m[(2, 0)], 7.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Mat3::IDENTITY;
        let b = a.scale(2.0);
        assert_eq!((b - a), a);
        assert_eq!((a + a), b);
        assert!((b.frobenius_norm() - (12.0f64).sqrt()).abs() < EPS);
    }

    #[test]
    fn transpose_involution() {
        let m = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Mat3::IDENTITY).is_empty());
    }
}

//! Gauss–Newton pose-graph optimization over SE(3).
//!
//! A pose graph holds one node per trajectory pose and one edge per
//! relative-pose *measurement*: consecutive odometry estimates, plus the
//! long-range constraints loop closure produces. When a loop closes, the
//! accumulated drift concentrates in the single closing edge's residual;
//! optimizing the graph redistributes it along the whole trajectory —
//! the back-end half of the mapping subsystem (tigris-map).
//!
//! The solver is a damped Gauss–Newton iteration on the manifold: each
//! edge `(i, j, z)` contributes the residual `r = log(z⁻¹ · Tᵢ⁻¹ · Tⱼ)`
//! ([`RigidTransform::log`]), Jacobians are taken numerically by central
//! differences in the right-multiplied tangent (`T · exp(δ)`), the normal
//! equations are solved densely ([`crate::solve_dense`]) and updates
//! re-enter SE(3) via [`RigidTransform::exp`]. Node 0 is held fixed as
//! the gauge. Graph sizes here are trajectory-scale (tens to a few
//! hundred nodes), where the dense solve and numeric differentiation are
//! both comfortably cheap and free of hand-derived-Jacobian bugs.
//!
//! # Example
//!
//! ```
//! use tigris_geom::posegraph::{PoseGraph, PoseGraphEdge};
//! use tigris_geom::{RigidTransform, Vec3};
//!
//! // Three poses along +X, odometry overshooting by 10%…
//! let step = RigidTransform::from_translation(Vec3::new(1.1, 0.0, 0.0));
//! let nodes = vec![
//!     RigidTransform::IDENTITY,
//!     step,
//!     step * step,
//! ];
//! let mut graph = PoseGraph::new(nodes);
//! graph.add_edge(PoseGraphEdge::new(0, 1, step));
//! graph.add_edge(PoseGraphEdge::new(1, 2, step));
//! // …and a loop-closure style absolute constraint pinning node 2 at 2 m.
//! graph.add_edge(PoseGraphEdge::new(
//!     0, 2, RigidTransform::from_translation(Vec3::new(2.0, 0.0, 0.0))));
//! let report = graph.optimize(20);
//! assert!(report.final_error < report.initial_error);
//! ```

use crate::solve::solve_dense;
use crate::RigidTransform;

/// A relative-pose measurement between two nodes: `relative` is the
/// expected value of `Tᵢ⁻¹ · Tⱼ` (node `to`'s pose expressed in node
/// `from`'s frame) — the convention both the odometer's relative
/// transforms and `register(source, target)` results follow directly.
#[derive(Debug, Clone, Copy)]
pub struct PoseGraphEdge {
    /// Index of the reference node `i`.
    pub from: usize,
    /// Index of the constrained node `j`.
    pub to: usize,
    /// Measured `Tᵢ⁻¹ · Tⱼ`.
    pub relative: RigidTransform,
    /// Scalar information weight (1.0 = nominal; lower for weak priors).
    pub weight: f64,
}

impl PoseGraphEdge {
    /// An edge with nominal weight 1.
    pub fn new(from: usize, to: usize, relative: RigidTransform) -> Self {
        PoseGraphEdge { from, to, relative, weight: 1.0 }
    }

    /// An edge with an explicit information weight.
    pub fn weighted(from: usize, to: usize, relative: RigidTransform, weight: f64) -> Self {
        PoseGraphEdge { from, to, relative, weight }
    }
}

/// What one [`PoseGraph::optimize`] call did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizeReport {
    /// Gauss–Newton iterations actually run.
    pub iterations: usize,
    /// Total weighted squared residual before the first iteration.
    pub initial_error: f64,
    /// Total weighted squared residual after the last iteration.
    pub final_error: f64,
}

/// A pose graph: SE(3) nodes plus relative-pose constraint edges.
#[derive(Debug, Clone)]
pub struct PoseGraph {
    nodes: Vec<RigidTransform>,
    edges: Vec<PoseGraphEdge>,
}

/// Half step used by the central-difference Jacobians.
const JACOBIAN_EPS: f64 = 1e-6;

/// Tikhonov damping added to the normal equations' diagonal — keeps the
/// system solvable when a node participates in no (or degenerate) edges.
const DAMPING: f64 = 1e-8;

impl PoseGraph {
    /// A graph over the given initial node poses, with no edges yet.
    pub fn new(nodes: Vec<RigidTransform>) -> Self {
        PoseGraph { nodes, edges: Vec::new() }
    }

    /// The current node poses.
    pub fn nodes(&self) -> &[RigidTransform] {
        &self.nodes
    }

    /// Consumes the graph, returning the node poses.
    pub fn into_nodes(self) -> Vec<RigidTransform> {
        self.nodes
    }

    /// The constraint edges.
    pub fn edges(&self) -> &[PoseGraphEdge] {
        &self.edges
    }

    /// Adds a constraint edge.
    ///
    /// # Panics
    ///
    /// Panics when an endpoint is out of range, the endpoints coincide, or
    /// the weight is not a positive finite number.
    pub fn add_edge(&mut self, edge: PoseGraphEdge) {
        assert!(
            edge.from < self.nodes.len() && edge.to < self.nodes.len(),
            "edge ({}, {}) references a node outside 0..{}",
            edge.from,
            edge.to,
            self.nodes.len()
        );
        assert_ne!(edge.from, edge.to, "self-edges constrain nothing");
        assert!(
            edge.weight.is_finite() && edge.weight > 0.0,
            "edge weight must be positive and finite, got {}",
            edge.weight
        );
        self.edges.push(edge);
    }

    /// The residual twist of one edge under the current nodes:
    /// `log(z⁻¹ · Tᵢ⁻¹ · Tⱼ)`.
    fn residual(&self, edge: &PoseGraphEdge) -> [f64; 6] {
        (edge.relative.inverse() * self.nodes[edge.from].inverse() * self.nodes[edge.to]).log()
    }

    /// Total weighted squared residual over all edges.
    pub fn total_error(&self) -> f64 {
        self.edges
            .iter()
            .map(|e| {
                let r = self.residual(e);
                e.weight * r.iter().map(|v| v * v).sum::<f64>()
            })
            .sum()
    }

    /// Runs up to `max_iterations` damped Gauss–Newton steps, holding node
    /// 0 fixed as the gauge, and returns the error before/after.
    ///
    /// Iteration stops early when the error stops improving or the update
    /// norm becomes negligible. With fewer than two nodes or no edges this
    /// is a no-op.
    pub fn optimize(&mut self, max_iterations: usize) -> OptimizeReport {
        let initial_error = self.total_error();
        let n_vars = 6 * self.nodes.len().saturating_sub(1);
        if n_vars == 0 || self.edges.is_empty() || max_iterations == 0 {
            return OptimizeReport { iterations: 0, initial_error, final_error: initial_error };
        }

        let mut error = initial_error;
        let mut iterations = 0;
        for _ in 0..max_iterations {
            let Some(delta) = self.gauss_newton_step(n_vars) else {
                break;
            };
            // Apply T ← T · exp(δ) per free node.
            let mut candidate = self.clone();
            let mut step_norm2 = 0.0;
            for (i, node) in candidate.nodes.iter_mut().enumerate().skip(1) {
                let mut xi = [0.0f64; 6];
                xi.copy_from_slice(&delta[6 * (i - 1)..6 * i]);
                step_norm2 += xi.iter().map(|v| v * v).sum::<f64>();
                *node = *node * RigidTransform::exp(xi);
            }
            let new_error = candidate.total_error();
            iterations += 1;
            if new_error.is_finite() && new_error <= error {
                self.nodes = candidate.nodes;
                let improved = error - new_error;
                error = new_error;
                if improved <= 1e-14 * error.max(1.0) || step_norm2 < 1e-20 {
                    break;
                }
            } else {
                // A full Gauss–Newton step overshot; stop at the best
                // iterate rather than oscillating.
                break;
            }
        }
        OptimizeReport { iterations, initial_error, final_error: error }
    }

    /// Builds and solves the damped normal equations `(H + λI) δ = −b` for
    /// one Gauss–Newton step over the free nodes (all but node 0).
    /// Returns `None` when the dense solve fails.
    fn gauss_newton_step(&self, n_vars: usize) -> Option<Vec<f64>> {
        let mut h = vec![0.0f64; n_vars * n_vars];
        let mut b = vec![0.0f64; n_vars];

        let mut scratch = self.clone();
        for edge in &self.edges {
            let r = self.residual(edge);
            // Numeric Jacobian blocks for each free endpoint.
            let endpoints = [edge.from, edge.to];
            let mut jac: Vec<(usize, [[f64; 6]; 6])> = Vec::with_capacity(2);
            for &node in &endpoints {
                if node == 0 {
                    continue;
                }
                let mut block = [[0.0f64; 6]; 6]; // block[row][var]
                let base = self.nodes[node];
                for var in 0..6 {
                    let mut xi = [0.0f64; 6];
                    xi[var] = JACOBIAN_EPS;
                    scratch.nodes[node] = base * RigidTransform::exp(xi);
                    let plus = scratch.residual(edge);
                    xi[var] = -JACOBIAN_EPS;
                    scratch.nodes[node] = base * RigidTransform::exp(xi);
                    let minus = scratch.residual(edge);
                    for row in 0..6 {
                        block[row][var] = (plus[row] - minus[row]) / (2.0 * JACOBIAN_EPS);
                    }
                }
                scratch.nodes[node] = base;
                jac.push((node, block));
            }

            // Accumulate H += w·JᵀJ and b += w·Jᵀr over the edge's blocks.
            for &(ni, ji) in &jac {
                let oi = 6 * (ni - 1);
                for vi in 0..6 {
                    let mut bi = 0.0;
                    for row in 0..6 {
                        bi += ji[row][vi] * r[row];
                    }
                    b[oi + vi] += edge.weight * bi;
                    for &(nj, jj) in &jac {
                        let oj = 6 * (nj - 1);
                        for vj in 0..6 {
                            let mut hij = 0.0;
                            for row in 0..6 {
                                hij += ji[row][vi] * jj[row][vj];
                            }
                            h[(oi + vi) * n_vars + (oj + vj)] += edge.weight * hij;
                        }
                    }
                }
            }
        }

        let scale = h.iter().fold(0.0f64, |acc, v| acc.max(v.abs())).max(1.0);
        for i in 0..n_vars {
            h[i * n_vars + i] += DAMPING * scale;
        }
        let neg_b: Vec<f64> = b.iter().map(|v| -v).collect();
        solve_dense(&h, &neg_b, n_vars).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec3;

    fn t(x: f64, y: f64) -> RigidTransform {
        RigidTransform::from_translation(Vec3::new(x, y, 0.0))
    }

    #[test]
    fn consistent_graph_has_zero_error_and_is_a_fixed_point() {
        let step = RigidTransform::from_axis_angle(Vec3::Z, 0.1, Vec3::new(1.0, 0.0, 0.0));
        let nodes = vec![RigidTransform::IDENTITY, step, step * step];
        let mut g = PoseGraph::new(nodes.clone());
        g.add_edge(PoseGraphEdge::new(0, 1, step));
        g.add_edge(PoseGraphEdge::new(1, 2, step));
        assert!(g.total_error() < 1e-20);
        let report = g.optimize(5);
        assert!(report.final_error < 1e-16);
        for (a, b) in g.nodes().iter().zip(&nodes) {
            assert!((a.translation - b.translation).norm() < 1e-6);
        }
    }

    #[test]
    fn loop_closure_redistributes_drift() {
        // A 4-step square whose odometry overshoots each side by 8%; the
        // loop-closing edge says "you are back at the start".
        let side = 5.0;
        let drift = 1.08;
        let turn =
            RigidTransform::from_axis_angle(Vec3::Z, std::f64::consts::FRAC_PI_2, Vec3::ZERO);
        let odo_step = RigidTransform::from_translation(Vec3::new(side * drift, 0.0, 0.0)) * turn;
        let gt_step = RigidTransform::from_translation(Vec3::new(side, 0.0, 0.0)) * turn;

        // Integrate the drifted odometry into initial node guesses.
        let mut nodes = vec![RigidTransform::IDENTITY];
        for _ in 0..4 {
            nodes.push(*nodes.last().unwrap() * odo_step);
        }
        let mut g = PoseGraph::new(nodes);
        for i in 0..4 {
            g.add_edge(PoseGraphEdge::new(i, i + 1, odo_step));
        }
        // Ground truth: after 4 sides the vehicle is back at the start.
        g.add_edge(PoseGraphEdge::new(0, 4, RigidTransform::IDENTITY));

        let before_end_error = g.nodes()[4].translation.norm();
        let report = g.optimize(25);
        assert!(report.iterations >= 1);
        assert!(
            report.final_error < report.initial_error * 0.1,
            "error {} -> {}",
            report.initial_error,
            report.final_error
        );
        // The closing node lands (nearly) back at the origin…
        let after_end_error = g.nodes()[4].translation.norm();
        assert!(
            after_end_error < before_end_error * 0.2,
            "end error {before_end_error} -> {after_end_error}"
        );
        // …and interior nodes move toward the true square's corners
        // (drift redistributed, not dumped on the last node).
        let mut gt_nodes = vec![RigidTransform::IDENTITY];
        for _ in 0..4 {
            gt_nodes.push(*gt_nodes.last().unwrap() * gt_step);
        }
        for (i, (est, gt)) in g.nodes().iter().zip(&gt_nodes).enumerate() {
            let err = (est.translation - gt.translation).norm();
            assert!(err < side * drift, "node {i}: {err}");
        }
    }

    #[test]
    fn multi_loop_graph_converges_and_redistributes() {
        // Two laps of the same 4-side square with 6% odometry overshoot
        // per side — the multi-loop shape the mapping and serving layers
        // both depend on. Two independent loop-closure constraints: each
        // lap's end is pinned back to the start. The solver must satisfy
        // both closures at once, gauge-fixed at node 0, with the total
        // residual dropping at least 10x.
        let side = 4.0;
        let drift = 1.06;
        let turn =
            RigidTransform::from_axis_angle(Vec3::Z, std::f64::consts::FRAC_PI_2, Vec3::ZERO);
        let odo_step = RigidTransform::from_translation(Vec3::new(side * drift, 0.0, 0.0)) * turn;
        let gt_step = RigidTransform::from_translation(Vec3::new(side, 0.0, 0.0)) * turn;

        let mut nodes = vec![RigidTransform::IDENTITY];
        for _ in 0..8 {
            nodes.push(*nodes.last().unwrap() * odo_step);
        }
        let mut g = PoseGraph::new(nodes);
        for i in 0..8 {
            g.add_edge(PoseGraphEdge::new(i, i + 1, odo_step));
        }
        // Closure 1: lap one returns to the start. Closure 2: lap two
        // returns there as well.
        g.add_edge(PoseGraphEdge::new(0, 4, RigidTransform::IDENTITY));
        g.add_edge(PoseGraphEdge::new(0, 8, RigidTransform::IDENTITY));

        let report = g.optimize(40);
        assert!(report.iterations >= 1);
        assert!(
            report.final_error <= report.initial_error * 0.1,
            "residual must drop >=10x: {} -> {}",
            report.initial_error,
            report.final_error
        );
        // The gauge never moves.
        assert!(g.nodes()[0].is_identity(1e-12));
        // Both closing nodes land (nearly) back at the origin.
        for closing in [4usize, 8] {
            let err = g.nodes()[closing].translation.norm();
            assert!(err < 0.3, "node {closing} still {err} m from the start");
        }
        // Interior nodes approach the true square corners: the drift is
        // redistributed across both laps, not dumped on the closures.
        let mut gt_nodes = vec![RigidTransform::IDENTITY];
        for _ in 0..8 {
            gt_nodes.push(*gt_nodes.last().unwrap() * gt_step);
        }
        for (i, (est, gt)) in g.nodes().iter().zip(&gt_nodes).enumerate() {
            let err = (est.translation - gt.translation).norm();
            assert!(err < side * (drift - 1.0) * 2.0, "node {i}: {err} m from truth");
        }
    }

    #[test]
    fn gauge_node_never_moves() {
        let mut g = PoseGraph::new(vec![t(0.0, 0.0), t(1.3, 0.0)]);
        g.add_edge(PoseGraphEdge::new(0, 1, t(1.0, 0.0)));
        g.optimize(10);
        assert!(g.nodes()[0].is_identity(1e-12));
        assert!((g.nodes()[1].translation.x - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weights_bias_conflicting_constraints() {
        // Two absolute constraints on the same node disagree; the heavier
        // one wins proportionally.
        let mut g = PoseGraph::new(vec![t(0.0, 0.0), t(1.5, 0.0)]);
        g.add_edge(PoseGraphEdge::weighted(0, 1, t(1.0, 0.0), 9.0));
        g.add_edge(PoseGraphEdge::weighted(0, 1, t(2.0, 0.0), 1.0));
        g.optimize(20);
        let x = g.nodes()[1].translation.x;
        assert!((x - 1.1).abs() < 1e-3, "weighted mean should be 1.1, got {x}");
    }

    #[test]
    fn empty_and_trivial_graphs_are_no_ops() {
        let mut g = PoseGraph::new(vec![]);
        let r = g.optimize(5);
        assert_eq!(r.iterations, 0);
        let mut g = PoseGraph::new(vec![t(0.0, 0.0), t(1.0, 0.0)]);
        let r = g.optimize(5); // no edges
        assert_eq!(r.iterations, 0);
        assert_eq!(r.initial_error, 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_edges_panic() {
        let mut g = PoseGraph::new(vec![t(0.0, 0.0)]);
        g.add_edge(PoseGraphEdge::new(0, 3, RigidTransform::IDENTITY));
    }

    #[test]
    #[should_panic(expected = "self-edges")]
    fn self_edges_panic() {
        let mut g = PoseGraph::new(vec![t(0.0, 0.0), t(1.0, 0.0)]);
        g.add_edge(PoseGraphEdge::new(1, 1, RigidTransform::IDENTITY));
    }

    #[test]
    fn report_and_accessors_expose_graph_state() {
        let mut g = PoseGraph::new(vec![t(0.0, 0.0), t(1.0, 0.0)]);
        g.add_edge(PoseGraphEdge::new(0, 1, t(1.0, 0.0)));
        assert_eq!(g.edges().len(), 1);
        assert_eq!(g.nodes().len(), 2);
        let r = g.optimize(3);
        assert!(r.final_error <= r.initial_error);
        let nodes = g.into_nodes();
        assert_eq!(nodes.len(), 2);
    }
}

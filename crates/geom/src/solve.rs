//! Small dense linear solvers used by the transformation-estimation stage.
//!
//! The point-to-plane error metric linearizes to a 6×6 normal-equation system
//! `(JᵀJ) x = Jᵀr`; Levenberg–Marquardt adds a damped diagonal. Both are
//! solved here with an LDLᵀ factorization ([`solve_ldlt6`]). A general
//! partial-pivoting Gaussian elimination ([`solve_dense`]) backs arbitrary
//! sizes (e.g. validation and tests).

/// Error returned when a linear system cannot be solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The matrix is singular (a pivot magnitude fell below tolerance).
    Singular,
    /// Input dimensions disagree (matrix rows vs. rhs length).
    DimensionMismatch,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular to working precision"),
            SolveError::DimensionMismatch => {
                write!(f, "matrix and right-hand side dimensions disagree")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves the symmetric positive-(semi)definite 6×6 system `A x = b` via an
/// LDLᵀ factorization without pivoting.
///
/// This is the solver behind the point-to-plane / LM Gauss-Newton step.
/// Only the lower triangle of `a` is read.
///
/// # Errors
///
/// Returns [`SolveError::Singular`] when a diagonal pivot falls below
/// `1e-12` times the largest diagonal entry.
///
/// # Example
///
/// ```
/// use tigris_geom::solve_ldlt6;
/// let mut a = [[0.0; 6]; 6];
/// for i in 0..6 { a[i][i] = (i + 1) as f64; }
/// let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
/// let x = solve_ldlt6(&a, &b).unwrap();
/// for v in x { assert!((v - 1.0).abs() < 1e-12); }
/// ```
pub fn solve_ldlt6(a: &[[f64; 6]; 6], b: &[f64; 6]) -> Result<[f64; 6], SolveError> {
    let mut l = [[0.0f64; 6]; 6];
    let mut d = [0.0f64; 6];
    let max_diag = (0..6).map(|i| a[i][i].abs()).fold(0.0f64, f64::max).max(1e-300);

    for j in 0..6 {
        let mut dj = a[j][j];
        for k in 0..j {
            dj -= l[j][k] * l[j][k] * d[k];
        }
        if dj.abs() < 1e-12 * max_diag {
            return Err(SolveError::Singular);
        }
        d[j] = dj;
        l[j][j] = 1.0;
        for i in (j + 1)..6 {
            let mut v = a[i][j];
            for k in 0..j {
                v -= l[i][k] * l[j][k] * d[k];
            }
            l[i][j] = v / dj;
        }
    }

    // Forward substitution: L y = b.
    let mut y = *b;
    for i in 0..6 {
        for k in 0..i {
            y[i] -= l[i][k] * y[k];
        }
    }
    // Diagonal: D z = y.
    for i in 0..6 {
        y[i] /= d[i];
    }
    // Back substitution: Lᵀ x = z.
    let mut x = y;
    for i in (0..6).rev() {
        for k in (i + 1)..6 {
            x[i] -= l[k][i] * x[k];
        }
    }
    Ok(x)
}

/// Solves a general `n×n` dense system `A x = b` with partial-pivoting
/// Gaussian elimination.
///
/// `a` is row-major, `a.len() == n * n`, `b.len() == n`.
///
/// # Errors
///
/// [`SolveError::DimensionMismatch`] when shapes disagree;
/// [`SolveError::Singular`] when elimination meets a vanishing pivot.
pub fn solve_dense(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>, SolveError> {
    if a.len() != n * n || b.len() != n {
        return Err(SolveError::DimensionMismatch);
    }
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    let scale = a.iter().fold(0.0f64, |acc, v| acc.max(v.abs())).max(1e-300);

    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n)
            .max_by(|&i, &j| m[i * n + col].abs().partial_cmp(&m[j * n + col].abs()).unwrap())
            .unwrap();
        if m[pivot_row * n + col].abs() < 1e-13 * scale {
            return Err(SolveError::Singular);
        }
        if pivot_row != col {
            for k in 0..n {
                m.swap(col * n + k, pivot_row * n + k);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m[col * n + col];
        for row in (col + 1)..n {
            let factor = m[row * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }

    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut v = rhs[row];
        for k in (row + 1)..n {
            v -= m[row * n + k] * x[k];
        }
        x[row] = v / m[row * n + row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat6_vec_mul(a: &[[f64; 6]; 6], x: &[f64; 6]) -> [f64; 6] {
        let mut out = [0.0; 6];
        for i in 0..6 {
            for j in 0..6 {
                out[i] += a[i][j] * x[j];
            }
        }
        out
    }

    #[test]
    fn ldlt_diagonal_system() {
        let mut a = [[0.0; 6]; 6];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = (i + 1) as f64;
        }
        let b = [2.0, 4.0, 6.0, 8.0, 10.0, 12.0];
        let x = solve_ldlt6(&a, &b).unwrap();
        for v in x {
            assert!((v - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn ldlt_spd_system_round_trip() {
        // Build an SPD matrix A = MᵀM + I.
        let m: [[f64; 6]; 6] = [
            [1.0, 2.0, 0.0, 1.0, 0.5, -1.0],
            [0.0, 1.0, 3.0, 0.0, 1.0, 0.2],
            [2.0, 0.0, 1.0, 1.0, 0.0, 0.0],
            [0.5, 1.0, 0.0, 2.0, 1.0, 0.3],
            [0.0, 0.0, 1.0, 0.0, 1.0, 1.0],
            [1.0, 0.5, 0.0, 0.0, 2.0, 1.0],
        ];
        let mut a = [[0.0; 6]; 6];
        for i in 0..6 {
            for j in 0..6 {
                for row in &m {
                    a[i][j] += row[i] * row[j];
                }
            }
            a[i][i] += 1.0;
        }
        let x_true = [1.0, -2.0, 3.0, 0.5, -0.25, 2.0];
        let b = mat6_vec_mul(&a, &x_true);
        let x = solve_ldlt6(&a, &b).unwrap();
        for i in 0..6 {
            assert!((x[i] - x_true[i]).abs() < 1e-9, "x[{i}] = {}", x[i]);
        }
    }

    #[test]
    fn ldlt_rejects_singular() {
        let a = [[0.0; 6]; 6];
        let b = [1.0; 6];
        assert_eq!(solve_ldlt6(&a, &b), Err(SolveError::Singular));
    }

    #[test]
    fn dense_matches_known_solution() {
        // 3x3 system with known solution (1, 2, 3).
        let a = [2.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0];
        let x_true = [1.0, 2.0, 3.0];
        let b: Vec<f64> = (0..3).map(|i| (0..3).map(|j| a[i * 3 + j] * x_true[j]).sum()).collect();
        let x = solve_dense(&a, &b, 3).unwrap();
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn dense_needs_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = [0.0, 1.0, 1.0, 0.0];
        let b = [2.0, 3.0];
        let x = solve_dense(&a, &b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dense_rejects_singular() {
        let a = [1.0, 2.0, 2.0, 4.0];
        assert_eq!(solve_dense(&a, &[1.0, 2.0], 2), Err(SolveError::Singular));
    }

    #[test]
    fn dense_rejects_dimension_mismatch() {
        assert_eq!(solve_dense(&[1.0, 2.0], &[1.0], 2), Err(SolveError::DimensionMismatch));
        assert_eq!(
            solve_dense(&[1.0, 0.0, 0.0, 1.0], &[1.0], 2),
            Err(SolveError::DimensionMismatch)
        );
    }

    #[test]
    fn errors_display() {
        assert!(!SolveError::Singular.to_string().is_empty());
        assert!(!SolveError::DimensionMismatch.to_string().is_empty());
    }
}

//! Singular value decomposition of 3×3 matrices, the core of the Kabsch /
//! Umeyama transformation solver (paper Tbl. 1, "Solver: SVD").
//!
//! Built on the symmetric Jacobi eigen-decomposition of `AᵀA`: if
//! `AᵀA = V Σ² Vᵀ` then `A = U Σ Vᵀ` with `U = A V Σ⁻¹` (columns for
//! near-zero singular values are completed via cross products).

use crate::{symmetric_eigen3, Mat3, Vec3};

/// The decomposition `A = U Σ Vᵀ` with `U`, `V` orthogonal and
/// `Σ = diag(singular_values)`, singular values sorted descending.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Svd3 {
    /// Left singular vectors (orthogonal).
    pub u: Mat3,
    /// Singular values, descending, all non-negative.
    pub singular_values: [f64; 3],
    /// Right singular vectors (orthogonal).
    pub v: Mat3,
}

impl Svd3 {
    /// Reconstructs `U Σ Vᵀ`; useful for validation.
    pub fn reconstruct(&self) -> Mat3 {
        let s = self.singular_values;
        let sigma = Mat3::from_rows([s[0], 0.0, 0.0], [0.0, s[1], 0.0], [0.0, 0.0, s[2]]);
        self.u * sigma * self.v.transpose()
    }

    /// The rotation `R = U D Vᵀ` that best aligns in the Kabsch sense, where
    /// `D = diag(1, 1, det(U Vᵀ))` corrects an improper rotation
    /// (reflection) into a proper one.
    pub fn polar_rotation(&self) -> Mat3 {
        let d = (self.u * self.v.transpose()).determinant();
        let sign = if d < 0.0 { -1.0 } else { 1.0 };
        let correction = Mat3::from_rows([1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, sign]);
        self.u * correction * self.v.transpose()
    }
}

/// Computes the SVD of an arbitrary 3×3 matrix.
///
/// Robust to rank-deficient inputs: missing singular directions are
/// completed with cross products so `U` and `V` are always orthogonal.
///
/// # Example
///
/// ```
/// use tigris_geom::{svd3, Mat3};
/// let a = Mat3::from_rows([3.0, 1.0, 0.0], [1.0, 3.0, 0.0], [0.0, 0.0, 2.0]);
/// let s = svd3(&a);
/// assert!((s.reconstruct() - a).frobenius_norm() < 1e-9);
/// ```
pub fn svd3(a: &Mat3) -> Svd3 {
    // Eigen-decompose AᵀA = V Σ² Vᵀ. Eigenvalues ascend, we want descending.
    let ata = a.transpose() * *a;
    let eig = symmetric_eigen3(&ata);
    let order = [2usize, 1, 0];
    let mut v_cols = [Vec3::ZERO; 3];
    let mut s = [0.0f64; 3];
    for (i, &src) in order.iter().enumerate() {
        v_cols[i] = eig.vectors.col(src);
        s[i] = eig.values[src].max(0.0).sqrt();
    }

    // Keep V right-handed so downstream determinant logic sees a rotation
    // whenever possible.
    if Mat3::from_cols(v_cols[0], v_cols[1], v_cols[2]).determinant() < 0.0 {
        v_cols[2] = -v_cols[2];
    }
    let v = Mat3::from_cols(v_cols[0], v_cols[1], v_cols[2]);

    // U columns: u_i = A v_i / σ_i where σ_i is well-conditioned. The
    // eigen-decomposition resolves eigenvalues to ~1e-14 of the matrix
    // scale, so singular values below ~1e-6 of σ₀ are indistinguishable
    // from zero and their direction is noise — treat them as missing.
    let scale = s[0].max(1e-300);
    let mut u_cols = [Vec3::ZERO; 3];
    let mut valid = [false; 3];
    for i in 0..3 {
        if s[i] / scale > 1e-6 {
            let mut u = *a * v_cols[i] / s[i];
            // Gram-Schmidt against previously accepted columns for numerical
            // orthogonality.
            for j in 0..i {
                if valid[j] {
                    u -= u_cols[j] * u.dot(u_cols[j]);
                }
            }
            if let Some(u) = u.normalized() {
                u_cols[i] = u;
                valid[i] = true;
            }
        }
    }
    // Complete missing columns orthogonally.
    complete_orthonormal(&mut u_cols, &valid);
    let u = Mat3::from_cols(u_cols[0], u_cols[1], u_cols[2]);

    Svd3 { u, singular_values: s, v }
}

/// Fills the columns flagged invalid so the triple is orthonormal.
fn complete_orthonormal(cols: &mut [Vec3; 3], valid: &[bool; 3]) {
    let n_valid = valid.iter().filter(|&&b| b).count();
    match n_valid {
        3 => {}
        2 => {
            let (a, b, missing) = if !valid[0] {
                (cols[1], cols[2], 0)
            } else if !valid[1] {
                (cols[2], cols[0], 1)
            } else {
                (cols[0], cols[1], 2)
            };
            cols[missing] = a.cross(b).normalized().unwrap_or(Vec3::Z);
        }
        1 => {
            let base_idx = valid.iter().position(|&b| b).unwrap();
            let base = cols[base_idx];
            // Any vector not parallel to base.
            let helper = if base.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
            let second = base.cross(helper).normalized().unwrap_or(Vec3::Y);
            let third = base.cross(second);
            let others: [usize; 2] = match base_idx {
                0 => [1, 2],
                1 => [2, 0],
                _ => [0, 1],
            };
            cols[others[0]] = second;
            cols[others[1]] = third;
        }
        _ => {
            cols[0] = Vec3::X;
            cols[1] = Vec3::Y;
            cols[2] = Vec3::Z;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_orthogonal(m: &Mat3, tol: f64) {
        let i = *m * m.transpose();
        assert!((i - Mat3::IDENTITY).frobenius_norm() < tol, "not orthogonal: {i}");
    }

    fn check_svd(a: &Mat3, tol: f64) {
        let s = svd3(a);
        assert_orthogonal(&s.u, tol);
        assert_orthogonal(&s.v, tol);
        assert!(s.singular_values[0] >= s.singular_values[1]);
        assert!(s.singular_values[1] >= s.singular_values[2]);
        assert!(s.singular_values[2] >= 0.0);
        let err = (s.reconstruct() - *a).frobenius_norm();
        assert!(err < tol * a.frobenius_norm().max(1.0), "reconstruction error {err}");
    }

    #[test]
    fn identity() {
        let s = svd3(&Mat3::IDENTITY);
        for v in s.singular_values {
            assert!((v - 1.0).abs() < 1e-12);
        }
        check_svd(&Mat3::IDENTITY, 1e-10);
    }

    #[test]
    fn full_rank_matrix() {
        let a = Mat3::from_rows([3.0, 1.0, -1.0], [0.5, 2.0, 0.2], [0.1, -0.4, 1.5]);
        check_svd(&a, 1e-8);
    }

    #[test]
    fn rotation_has_unit_singular_values() {
        let r = Mat3::from_axis_angle(Vec3::new(1.0, 0.3, -0.7), 1.234);
        let s = svd3(&r);
        for v in s.singular_values {
            assert!((v - 1.0).abs() < 1e-9);
        }
        check_svd(&r, 1e-9);
    }

    #[test]
    fn rank_two_matrix() {
        // Third column = first + second → rank 2.
        let a = Mat3::from_cols(
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
        );
        let s = svd3(&a);
        // Near-zero singular values are accurate to sqrt(eigen tolerance),
        // so compare relative to the dominant singular value.
        assert!(s.singular_values[2] < 1e-5 * s.singular_values[0]);
        check_svd(&a, 1e-8);
    }

    #[test]
    fn rank_one_matrix() {
        let a = Mat3::outer(Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0));
        let s = svd3(&a);
        assert!(s.singular_values[1] < 1e-5 * s.singular_values[0]);
        assert!(s.singular_values[2] < 1e-5 * s.singular_values[0]);
        check_svd(&a, 1e-8);
    }

    #[test]
    fn zero_matrix() {
        let s = svd3(&Mat3::ZERO);
        assert_eq!(s.singular_values, [0.0; 3]);
        assert_orthogonal(&s.u, 1e-12);
        assert_orthogonal(&s.v, 1e-12);
    }

    #[test]
    fn polar_rotation_of_rotation_is_itself() {
        let r = Mat3::from_axis_angle(Vec3::new(0.2, 1.0, 0.5), 0.7);
        let s = svd3(&r);
        assert!((s.polar_rotation() - r).frobenius_norm() < 1e-9);
    }

    #[test]
    fn polar_rotation_fixes_reflection() {
        // A pure reflection must still yield a proper rotation.
        let refl = Mat3::from_rows([1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, -1.0]);
        let s = svd3(&refl);
        let r = s.polar_rotation();
        assert!(r.is_rotation(1e-9));
    }

    #[test]
    fn scaled_matrix_scales_singular_values() {
        let a = Mat3::from_rows([1.0, 2.0, 0.0], [0.0, 1.0, 1.0], [1.0, 0.0, 1.0]);
        let s1 = svd3(&a);
        let s2 = svd3(&a.scale(3.0));
        for i in 0..3 {
            assert!((s2.singular_values[i] - 3.0 * s1.singular_values[i]).abs() < 1e-8);
        }
    }
}

//! Axis-aligned bounding boxes, the pruning primitive of KD-tree search.
//!
//! Every KD-tree sub-tree corresponds to a bounding box; a sub-tree can be
//! skipped when its box does not intersect the hypersphere around the query
//! (paper Sec. 4.1).

use crate::Vec3;

/// An axis-aligned bounding box in 3D.
///
/// # Example
///
/// ```
/// use tigris_geom::{Aabb, Vec3};
/// let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
/// assert!(b.contains(Vec3::splat(0.5)));
/// assert_eq!(b.distance_squared_to(Vec3::new(2.0, 0.5, 0.5)), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from its corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when any `min` component exceeds the matching
    /// `max` component.
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb min must not exceed max"
        );
        Aabb { min, max }
    }

    /// An "empty" box that any point can extend: `min = +∞`, `max = -∞`.
    pub fn empty() -> Self {
        Aabb { min: Vec3::splat(f64::INFINITY), max: Vec3::splat(f64::NEG_INFINITY) }
    }

    /// The tightest box around a set of points, or `None` when the iterator
    /// is empty.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = Aabb { min: first, max: first };
        for p in it {
            b.extend(p);
        }
        Some(b)
    }

    /// Grows the box to include `p`.
    #[inline]
    pub fn extend(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Squared distance from `p` to the closest point of the box
    /// (0 when `p` is inside).
    ///
    /// This is the KD-tree pruning test: a sub-tree whose box satisfies
    /// `distance_squared_to(query) > d²` cannot contain any result closer
    /// than the current best distance `d`.
    #[inline]
    pub fn distance_squared_to(&self, p: Vec3) -> f64 {
        let mut d2 = 0.0;
        for a in 0..3 {
            let v = p.axis(a);
            let lo = self.min.axis(a);
            let hi = self.max.axis(a);
            let d = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            d2 += d * d;
        }
        d2
    }

    /// Returns `true` when the sphere of radius `radius` centred at `center`
    /// intersects the box.
    #[inline]
    pub fn intersects_sphere(&self, center: Vec3, radius: f64) -> bool {
        self.distance_squared_to(center) <= radius * radius
    }

    /// Centre of the box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths of the box.
    #[inline]
    pub fn extents(&self) -> Vec3 {
        self.max - self.min
    }

    /// The axis with the largest extent (0, 1 or 2) — the classic KD-tree
    /// split-axis heuristic.
    pub fn longest_axis(&self) -> usize {
        let e = self.extents();
        if e.x >= e.y && e.x >= e.z {
            0
        } else if e.y >= e.z {
            1
        } else {
            2
        }
    }

    /// Splits the box along `axis` at coordinate `value`, producing the
    /// (low, high) halves.
    pub fn split(&self, axis: usize, value: f64) -> (Aabb, Aabb) {
        let mut lo = *self;
        let mut hi = *self;
        lo.max[axis] = value;
        hi.min[axis] = value;
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_is_tight() {
        let pts = [Vec3::new(1.0, 5.0, -2.0), Vec3::new(-1.0, 2.0, 0.0), Vec3::new(0.0, 7.0, 3.0)];
        let b = Aabb::from_points(pts).unwrap();
        assert_eq!(b.min, Vec3::new(-1.0, 2.0, -2.0));
        assert_eq!(b.max, Vec3::new(1.0, 7.0, 3.0));
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn contains_boundary_and_interior() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        assert!(b.contains(Vec3::splat(1.0)));
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::splat(2.0)));
        assert!(!b.contains(Vec3::new(2.1, 1.0, 1.0)));
        assert!(!b.contains(Vec3::new(1.0, -0.1, 1.0)));
    }

    #[test]
    fn distance_inside_is_zero() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(b.distance_squared_to(Vec3::splat(0.5)), 0.0);
    }

    #[test]
    fn distance_to_face_edge_corner() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        // Face.
        assert_eq!(b.distance_squared_to(Vec3::new(2.0, 0.5, 0.5)), 1.0);
        // Edge.
        assert_eq!(b.distance_squared_to(Vec3::new(2.0, 2.0, 0.5)), 2.0);
        // Corner.
        assert_eq!(b.distance_squared_to(Vec3::new(2.0, 2.0, 2.0)), 3.0);
    }

    #[test]
    fn sphere_intersection() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert!(b.intersects_sphere(Vec3::new(2.0, 0.5, 0.5), 1.0));
        assert!(!b.intersects_sphere(Vec3::new(2.0, 0.5, 0.5), 0.99));
        assert!(b.intersects_sphere(Vec3::splat(0.5), 0.01));
    }

    #[test]
    fn extend_grows() {
        let mut b = Aabb::empty();
        b.extend(Vec3::new(1.0, 1.0, 1.0));
        b.extend(Vec3::new(-1.0, 2.0, 0.0));
        assert_eq!(b.min, Vec3::new(-1.0, 1.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 2.0, 1.0));
    }

    #[test]
    fn geometry_accessors() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(4.0, 2.0, 1.0));
        assert_eq!(b.center(), Vec3::new(2.0, 1.0, 0.5));
        assert_eq!(b.extents(), Vec3::new(4.0, 2.0, 1.0));
        assert_eq!(b.longest_axis(), 0);
        assert_eq!(Aabb::new(Vec3::ZERO, Vec3::new(1.0, 3.0, 2.0)).longest_axis(), 1);
        assert_eq!(Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0)).longest_axis(), 2);
    }

    #[test]
    fn split_partitions() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let (lo, hi) = b.split(0, 0.5);
        assert_eq!(lo.max.x, 0.5);
        assert_eq!(hi.min.x, 0.5);
        assert_eq!(lo.min, b.min);
        assert_eq!(hi.max, b.max);
    }
}

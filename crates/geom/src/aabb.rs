//! Axis-aligned bounding boxes, the pruning primitive of KD-tree search.
//!
//! Every KD-tree sub-tree corresponds to a bounding box; a sub-tree can be
//! skipped when its box does not intersect the hypersphere around the query
//! (paper Sec. 4.1).

use crate::Vec3;

/// An axis-aligned bounding box in 3D.
///
/// # Example
///
/// ```
/// use tigris_geom::{Aabb, Vec3};
/// let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
/// assert!(b.contains(Vec3::splat(0.5)));
/// assert_eq!(b.distance_squared_to(Vec3::new(2.0, 0.5, 0.5)), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from its corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when any `min` component exceeds the matching
    /// `max` component.
    #[inline]
    pub fn new(min: Vec3, max: Vec3) -> Self {
        debug_assert!(
            min.x <= max.x && min.y <= max.y && min.z <= max.z,
            "Aabb min must not exceed max"
        );
        Aabb { min, max }
    }

    /// An "empty" box that any point can extend: `min = +∞`, `max = -∞`.
    pub fn empty() -> Self {
        Aabb { min: Vec3::splat(f64::INFINITY), max: Vec3::splat(f64::NEG_INFINITY) }
    }

    /// The tightest box around a set of points, or `None` when the iterator
    /// is empty.
    pub fn from_points<I: IntoIterator<Item = Vec3>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut b = Aabb { min: first, max: first };
        for p in it {
            b.extend(p);
        }
        Some(b)
    }

    /// Grows the box to include `p`.
    #[inline]
    pub fn extend(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Returns `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Squared distance from `p` to the closest point of the box
    /// (0 when `p` is inside).
    ///
    /// This is the KD-tree pruning test: a sub-tree whose box satisfies
    /// `distance_squared_to(query) > d²` cannot contain any result closer
    /// than the current best distance `d`.
    #[inline]
    pub fn distance_squared_to(&self, p: Vec3) -> f64 {
        let mut d2 = 0.0;
        for a in 0..3 {
            let v = p.axis(a);
            let lo = self.min.axis(a);
            let hi = self.max.axis(a);
            let d = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            d2 += d * d;
        }
        d2
    }

    /// Returns `true` when the sphere of radius `radius` centred at `center`
    /// intersects the box.
    #[inline]
    pub fn intersects_sphere(&self, center: Vec3, radius: f64) -> bool {
        self.distance_squared_to(center) <= radius * radius
    }

    /// Centre of the box.
    #[inline]
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Edge lengths of the box.
    #[inline]
    pub fn extents(&self) -> Vec3 {
        self.max - self.min
    }

    /// The axis with the largest extent (0, 1 or 2) — the classic KD-tree
    /// split-axis heuristic.
    pub fn longest_axis(&self) -> usize {
        let e = self.extents();
        if e.x >= e.y && e.x >= e.z {
            0
        } else if e.y >= e.z {
            1
        } else {
            2
        }
    }

    /// Splits the box along `axis` at coordinate `value`, producing the
    /// (low, high) halves.
    pub fn split(&self, axis: usize, value: f64) -> (Aabb, Aabb) {
        let mut lo = *self;
        let mut hi = *self;
        lo.max[axis] = value;
        hi.min[axis] = value;
        (lo, hi)
    }

    /// The axis-aligned box of this box's eight corners under `transform`.
    ///
    /// The result is a *superset* of the transformed point set (a rotated
    /// box rarely stays axis-aligned), which is exactly what conservative
    /// spatial routing needs: any sphere that intersects the true
    /// transformed geometry intersects the returned box.
    pub fn transformed(&self, transform: &crate::RigidTransform) -> Aabb {
        let corners = (0..8).map(|i| {
            transform.apply(Vec3::new(
                if i & 1 == 0 { self.min.x } else { self.max.x },
                if i & 2 == 0 { self.min.y } else { self.max.y },
                if i & 4 == 0 { self.min.z } else { self.max.z },
            ))
        });
        Aabb::from_points(corners).expect("eight corners are never empty")
    }

    /// Grows the box to cover `other` entirely.
    pub fn union(&mut self, other: &Aabb) {
        self.extend(other.min);
        self.extend(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_is_tight() {
        let pts = [Vec3::new(1.0, 5.0, -2.0), Vec3::new(-1.0, 2.0, 0.0), Vec3::new(0.0, 7.0, 3.0)];
        let b = Aabb::from_points(pts).unwrap();
        assert_eq!(b.min, Vec3::new(-1.0, 2.0, -2.0));
        assert_eq!(b.max, Vec3::new(1.0, 7.0, 3.0));
        assert!(Aabb::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn contains_boundary_and_interior() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        assert!(b.contains(Vec3::splat(1.0)));
        assert!(b.contains(Vec3::ZERO));
        assert!(b.contains(Vec3::splat(2.0)));
        assert!(!b.contains(Vec3::new(2.1, 1.0, 1.0)));
        assert!(!b.contains(Vec3::new(1.0, -0.1, 1.0)));
    }

    #[test]
    fn distance_inside_is_zero() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert_eq!(b.distance_squared_to(Vec3::splat(0.5)), 0.0);
    }

    #[test]
    fn distance_to_face_edge_corner() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        // Face.
        assert_eq!(b.distance_squared_to(Vec3::new(2.0, 0.5, 0.5)), 1.0);
        // Edge.
        assert_eq!(b.distance_squared_to(Vec3::new(2.0, 2.0, 0.5)), 2.0);
        // Corner.
        assert_eq!(b.distance_squared_to(Vec3::new(2.0, 2.0, 2.0)), 3.0);
    }

    #[test]
    fn sphere_intersection() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert!(b.intersects_sphere(Vec3::new(2.0, 0.5, 0.5), 1.0));
        assert!(!b.intersects_sphere(Vec3::new(2.0, 0.5, 0.5), 0.99));
        assert!(b.intersects_sphere(Vec3::splat(0.5), 0.01));
    }

    #[test]
    fn extend_grows() {
        let mut b = Aabb::empty();
        b.extend(Vec3::new(1.0, 1.0, 1.0));
        b.extend(Vec3::new(-1.0, 2.0, 0.0));
        assert_eq!(b.min, Vec3::new(-1.0, 1.0, 0.0));
        assert_eq!(b.max, Vec3::new(1.0, 2.0, 1.0));
    }

    #[test]
    fn geometry_accessors() {
        let b = Aabb::new(Vec3::ZERO, Vec3::new(4.0, 2.0, 1.0));
        assert_eq!(b.center(), Vec3::new(2.0, 1.0, 0.5));
        assert_eq!(b.extents(), Vec3::new(4.0, 2.0, 1.0));
        assert_eq!(b.longest_axis(), 0);
        assert_eq!(Aabb::new(Vec3::ZERO, Vec3::new(1.0, 3.0, 2.0)).longest_axis(), 1);
        assert_eq!(Aabb::new(Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0)).longest_axis(), 2);
    }

    #[test]
    fn transformed_covers_the_rotated_box() {
        use crate::RigidTransform;
        let b = Aabb::new(Vec3::new(-1.0, -2.0, 0.0), Vec3::new(3.0, 1.0, 2.0));
        let t = RigidTransform::from_axis_angle(Vec3::Z, 0.9, Vec3::new(5.0, -1.0, 0.5));
        let world = b.transformed(&t);
        // Every point of the box (sampled on a grid) maps inside.
        for i in 0..=4 {
            for j in 0..=4 {
                for k in 0..=4 {
                    let p = Vec3::new(
                        b.min.x + (b.max.x - b.min.x) * i as f64 / 4.0,
                        b.min.y + (b.max.y - b.min.y) * j as f64 / 4.0,
                        b.min.z + (b.max.z - b.min.z) * k as f64 / 4.0,
                    );
                    let q = t.apply(p);
                    assert!(world.distance_squared_to(q) < 1e-18, "{q} outside transformed box");
                }
            }
        }
        // Identity transform is exact.
        assert_eq!(b.transformed(&RigidTransform::IDENTITY), b);
    }

    #[test]
    fn union_covers_both() {
        let mut a = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        let b = Aabb::new(Vec3::new(-2.0, 0.5, 0.0), Vec3::new(0.5, 3.0, 0.5));
        a.union(&b);
        assert_eq!(a.min, Vec3::new(-2.0, 0.0, 0.0));
        assert_eq!(a.max, Vec3::new(1.0, 3.0, 1.0));
    }

    #[test]
    fn split_partitions() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let (lo, hi) = b.split(0, 0.5);
        assert_eq!(lo.max.x, 0.5);
        assert_eq!(hi.min.x, 0.5);
        assert_eq!(lo.min, b.min);
        assert_eq!(hi.max, b.max);
    }
}

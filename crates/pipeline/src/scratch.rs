//! Reusable front-end scratch: dense neighborhood tables and per-frame
//! working buffers.
//!
//! `prepare_frame` used to allocate its working state fresh on every
//! frame — one `Vec<Neighbor>` per query point, `HashMap`/`HashSet`
//! bookkeeping for the SPFH phases, and per-chunk copies of the
//! searcher's own points. [`PrepareScratch`] replaces all of that with
//! buffers that live across frames: a streaming odometer or a serving
//! session owns one scratch, hands it to
//! [`crate::prepare_frame_with`] each frame, and once the buffers are
//! warm the whole normal-estimation + FPFH front end runs without a
//! single transient heap allocation (the [`PrepareScratch::bytes_grown`]
//! / [`PrepareScratch::reuses`] counters prove it — they feed
//! `StageProfile` and the serving layer's stats).
//!
//! The central structure is the [`NeighborTable`]: one radius query per
//! row, all hits in one flat lane (CSR layout). It replaces the
//! `Vec<Vec<Neighbor>>` a batched radius search returns — same rows,
//! same `(distance², index)` ordering, one allocation instead of one
//! per query.

use tigris_core::Neighbor;
use tigris_geom::Vec3;

/// Dense rows of radius-search hits: one row per query, all hits stored
/// in a single flat lane (CSR layout).
///
/// Rows are appended in query order and each row keeps the ascending
/// `(distance², index)` ordering of a serial radius search, so
/// `table.row(i)` is bit-identical to the `Vec<Neighbor>` the batched
/// entry points would have returned for query `i`.
///
/// # Example
///
/// ```
/// use tigris_pipeline::NeighborTable;
/// use tigris_core::Neighbor;
///
/// let mut t = NeighborTable::new();
/// t.push_row_from(&[Neighbor::new(3, 0.25)]);
/// t.push_row_from(&[]);
/// assert_eq!(t.rows(), 2);
/// assert_eq!(t.row(0)[0].index, 3);
/// assert!(t.row(1).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct NeighborTable {
    /// `offsets[r]..offsets[r + 1]` spans row `r` in `flat`. Always
    /// non-empty (starts as `[0]`).
    offsets: Vec<u32>,
    flat: Vec<Neighbor>,
}

impl NeighborTable {
    /// An empty table.
    pub fn new() -> Self {
        NeighborTable { offsets: vec![0], flat: Vec::new() }
    }

    /// Removes all rows, keeping the allocations.
    pub fn clear(&mut self) {
        self.offsets.clear();
        self.offsets.push(0);
        self.flat.clear();
    }

    /// Number of rows (completed queries).
    #[inline]
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The hits of row `r`, ascending by `(distance², index)`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= self.rows()`.
    #[inline]
    pub fn row(&self, r: usize) -> &[Neighbor] {
        &self.flat[self.offsets[r] as usize..self.offsets[r + 1] as usize]
    }

    /// Appends one row by letting `fill` push hits onto the flat lane —
    /// the allocation-free seam the searcher's `*_into` entry points
    /// write through.
    #[inline]
    pub fn push_row_with(&mut self, fill: impl FnOnce(&mut Vec<Neighbor>)) {
        fill(&mut self.flat);
        debug_assert!(self.flat.len() <= u32::MAX as usize, "neighbor table overflow");
        self.offsets.push(self.flat.len() as u32);
    }

    /// Appends one row by copying a finished hit slice.
    pub fn push_row_from(&mut self, row: &[Neighbor]) {
        self.push_row_with(|flat| flat.extend_from_slice(row));
    }

    /// Total hits across all rows.
    pub fn total_neighbors(&self) -> usize {
        self.flat.len()
    }

    /// Heap bytes currently reserved by the table (capacity, not
    /// length).
    pub fn capacity_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.flat.capacity() * std::mem::size_of::<Neighbor>()
    }
}

/// Gathered structure-of-arrays coordinate lanes for one neighborhood —
/// the unit the covariance/centroid kernels consume.
#[derive(Debug, Clone, Default)]
pub(crate) struct GatherLanes {
    pub xs: Vec<f64>,
    pub ys: Vec<f64>,
    pub zs: Vec<f64>,
}

impl GatherLanes {
    /// Re-fills the lanes with the points `neighbors` refers to, in row
    /// order.
    pub fn gather(&mut self, points: &[Vec3], neighbors: &[Neighbor]) {
        self.xs.clear();
        self.ys.clear();
        self.zs.clear();
        self.xs.reserve(neighbors.len());
        self.ys.reserve(neighbors.len());
        self.zs.reserve(neighbors.len());
        for n in neighbors {
            let p = points[n.index];
            self.xs.push(p.x);
            self.ys.push(p.y);
            self.zs.push(p.z);
        }
    }

    pub fn capacity_bytes(&self) -> usize {
        (self.xs.capacity() + self.ys.capacity() + self.zs.capacity()) * std::mem::size_of::<f64>()
    }
}

/// Reusable buffers for the spatially-grouped radius fan-out (the
/// serial path of [`crate::Searcher3::radius_batch_into`] and
/// [`crate::Searcher3::self_radius_range_into`]): Morton sort keys and
/// the batch ordering that lay queries along a space-filling curve, the
/// per-member row buffers a grouped traversal fills, and the recorded
/// query → table-row mapping ([`GroupScratch::table_row`]) consumers
/// use to find their rows, since rows land in curve order rather than
/// query order.
#[derive(Debug, Clone, Default)]
pub struct GroupScratch {
    /// Morton key per query of the current batch.
    pub(crate) keys: Vec<u64>,
    /// Query positions of the batch, sorted by key.
    pub(crate) order: Vec<u32>,
    /// Query position → absolute table row of its hits.
    pub(crate) inv: Vec<u32>,
    /// One hit buffer per group member, reused by every group — each
    /// buffer fills from hundreds of rows per frame, so its capacity
    /// saturates at the largest row almost immediately.
    pub(crate) rows: Vec<Vec<Neighbor>>,
}

impl GroupScratch {
    /// The table row that received query `i`'s hits in the last batched
    /// radius search that used this scratch (absolute row index in the
    /// table that search appended to).
    ///
    /// # Panics
    ///
    /// Panics when `i` is not a query position of that search.
    #[inline]
    pub fn table_row(&self, i: usize) -> usize {
        self.inv[i] as usize
    }

    /// Heap bytes currently reserved by the buffers (capacity, not
    /// length).
    pub fn capacity_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u64>()
            + (self.order.capacity() + self.inv.capacity()) * std::mem::size_of::<u32>()
            + self.rows.capacity() * std::mem::size_of::<Vec<Neighbor>>()
            + self
                .rows
                .iter()
                .map(|r| r.capacity() * std::mem::size_of::<Neighbor>())
                .sum::<usize>()
    }
}

/// Reusable working state for the frame-preparation front end.
///
/// One scratch serves any number of frames: every buffer is cleared (not
/// freed) at the start of the stage that uses it, so steady-state
/// preparation re-walks warm allocations. Owned by whoever streams
/// frames — `crate::Odometer` holds one, and each serving session holds
/// one — and threaded through [`crate::prepare_frame_with`]. A
/// fresh scratch per call (what the plain `prepare_frame` does) is
/// always correct, just slower.
///
/// The growth counters make the reuse observable:
/// [`PrepareScratch::bytes_grown`] accumulates every byte of capacity
/// the buffers ever gained, and [`PrepareScratch::reuses`] counts the
/// frames that completed without growing anything — a warmed-up
/// steady state shows `reuses` climbing while `bytes_grown` stays flat.
#[derive(Debug, Clone, Default)]
pub struct PrepareScratch {
    /// Normal-estimation neighborhoods, one chunk at a time.
    pub(crate) ne_table: NeighborTable,
    /// FPFH phase-1 keypoint neighborhoods.
    pub(crate) kp_table: NeighborTable,
    /// FPFH phase-2 neighborhoods of non-keypoint SPFH sources.
    pub(crate) missing_table: NeighborTable,
    /// Gathered query positions for the batched descriptor searches.
    pub(crate) queries: Vec<Vec3>,
    /// Epoch stamps: `stamp[i] == epoch` marks point `i` as seen this
    /// frame without any per-frame clearing.
    pub(crate) stamp: Vec<u32>,
    /// Current stamp epoch (see [`PrepareScratch::next_epoch`]).
    pub(crate) epoch: u32,
    /// Dense remap: for a stamped point `i`, `remap[i]` is its row in
    /// `needed` / `spfh_rows`.
    pub(crate) remap: Vec<u32>,
    /// Point indices needing an SPFH row, in discovery order.
    pub(crate) needed: Vec<u32>,
    /// Per key-point (by position) row in `kp_table` — duplicate
    /// key-points share their first occurrence's row.
    pub(crate) kp_rows: Vec<u32>,
    /// Per `needed` entry: which table row holds its neighborhood
    /// (`kp_table` row, or `missing_table` row with the high bit set).
    pub(crate) needed_src: Vec<u32>,
    /// SPFH histograms, one `FPFH_DIM` row per `needed` entry.
    pub(crate) spfh_rows: Vec<f64>,
    /// Valid-pair counts parallel to the SPFH rows.
    pub(crate) counts: Vec<f64>,
    /// Coordinate lanes for plane-fit gathers (serial path).
    pub(crate) lanes: GatherLanes,
    /// Grouped radius fan-out buffers (serial batched searches).
    pub(crate) groups: GroupScratch,
    capacity_seen: usize,
    bytes_grown: u64,
    reuses: u64,
}

impl PrepareScratch {
    /// A fresh scratch with empty (but reusable) buffers.
    pub fn new() -> Self {
        PrepareScratch { ne_table: NeighborTable::new(), ..Default::default() }
    }

    /// Cumulative heap capacity (bytes) the buffers have gained since
    /// this scratch was created. Flat across frames once warm.
    pub fn bytes_grown(&self) -> u64 {
        self.bytes_grown
    }

    /// Frames that completed without growing any buffer — the proof of
    /// steady-state allocation-free preparation.
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Advances to a fresh stamp epoch covering point ids `0..n`, and
    /// returns it. Stamps only ever compare equal to the *current*
    /// epoch, so this invalidates all previous stamps in O(1); the rare
    /// wrap-around pays one explicit reset instead.
    pub(crate) fn next_epoch(&mut self, n: usize) -> u32 {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.remap.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.fill(0);
                1
            }
        };
        self.epoch
    }

    /// Total heap bytes currently reserved across all buffers. Stable
    /// across calls ⇒ the work between them allocated nothing transient
    /// — what the growth counters summarize per frame, exposed raw so
    /// benchmarks can assert it around individual stages.
    pub fn capacity_bytes(&self) -> usize {
        self.ne_table.capacity_bytes()
            + self.kp_table.capacity_bytes()
            + self.missing_table.capacity_bytes()
            + self.queries.capacity() * std::mem::size_of::<Vec3>()
            + self.stamp.capacity() * std::mem::size_of::<u32>()
            + self.remap.capacity() * std::mem::size_of::<u32>()
            + self.needed.capacity() * std::mem::size_of::<u32>()
            + self.kp_rows.capacity() * std::mem::size_of::<u32>()
            + self.needed_src.capacity() * std::mem::size_of::<u32>()
            + self.spfh_rows.capacity() * std::mem::size_of::<f64>()
            + self.counts.capacity() * std::mem::size_of::<f64>()
            + self.lanes.capacity_bytes()
            + self.groups.capacity_bytes()
    }

    /// Closes out one prepared frame: accounts any capacity growth since
    /// the last close, or records a clean reuse.
    pub(crate) fn note_frame_end(&mut self) {
        let now = self.capacity_bytes();
        if now > self.capacity_seen {
            self.bytes_grown += (now - self.capacity_seen) as u64;
            self.capacity_seen = now;
        } else {
            self.reuses += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_round_trip() {
        let mut t = NeighborTable::new();
        assert_eq!(t.rows(), 0);
        t.push_row_from(&[Neighbor::new(1, 0.5), Neighbor::new(2, 1.0)]);
        t.push_row_from(&[]);
        t.push_row_with(|flat| flat.push(Neighbor::new(7, 0.1)));
        assert_eq!(t.rows(), 3);
        assert_eq!(t.row(0).len(), 2);
        assert_eq!(t.row(0)[1], Neighbor::new(2, 1.0));
        assert!(t.row(1).is_empty());
        assert_eq!(t.row(2), &[Neighbor::new(7, 0.1)]);
        assert_eq!(t.total_neighbors(), 3);
        let bytes = t.capacity_bytes();
        assert!(bytes > 0);
        t.clear();
        assert_eq!(t.rows(), 0);
        assert_eq!(t.total_neighbors(), 0);
        assert_eq!(t.capacity_bytes(), bytes, "clear must keep capacity");
    }

    #[test]
    fn epoch_stamps_invalidate_in_o1() {
        let mut s = PrepareScratch::new();
        let e1 = s.next_epoch(10);
        s.stamp[3] = e1;
        let e2 = s.next_epoch(10);
        assert_ne!(e1, e2);
        assert!(s.stamp.iter().all(|&st| st != e2), "new epoch sees a clean slate");
        // Wrap-around resets explicitly rather than aliasing old stamps.
        s.epoch = u32::MAX;
        s.stamp.fill(u32::MAX);
        let e = s.next_epoch(10);
        assert_eq!(e, 1);
        assert!(s.stamp.iter().all(|&st| st == 0));
    }

    #[test]
    fn growth_counters_separate_growth_from_reuse() {
        let mut s = PrepareScratch::new();
        s.queries.extend_from_slice(&[Vec3::ZERO; 100]);
        s.note_frame_end();
        assert!(s.bytes_grown() > 0);
        assert_eq!(s.reuses(), 0);
        let grown = s.bytes_grown();
        // Same-size workload on warm buffers: no growth, one reuse.
        s.queries.clear();
        s.queries.extend_from_slice(&[Vec3::ZERO; 100]);
        s.note_frame_end();
        assert_eq!(s.bytes_grown(), grown);
        assert_eq!(s.reuses(), 1);
    }

    #[test]
    fn gather_lanes_follow_row_order() {
        let pts =
            vec![Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0), Vec3::new(7.0, 8.0, 9.0)];
        let mut lanes = GatherLanes::default();
        lanes.gather(&pts, &[Neighbor::new(2, 0.0), Neighbor::new(0, 1.0)]);
        assert_eq!(lanes.xs, vec![7.0, 1.0]);
        assert_eq!(lanes.ys, vec![8.0, 2.0]);
        assert_eq!(lanes.zs, vec![9.0, 3.0]);
    }
}

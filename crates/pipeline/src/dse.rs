//! Design-space exploration (paper Sec. 3.2, Fig. 3): sweep the pipeline's
//! algorithmic and parametric knobs, measure accuracy vs. time, and
//! extract the Pareto frontier.

use std::time::Duration;

use tigris_geom::{PointCloud, RigidTransform};

use crate::config::{DesignPoint, RegistrationConfig, SearchBackendConfig};
use crate::pipeline::{prepare_frame, register, register_prepared};
use crate::profile::StageProfile;

/// One evaluated design point: its config label, accuracy and cost.
#[derive(Debug, Clone)]
pub struct DsePoint {
    /// Label (e.g. "DP4" or a knob summary).
    pub label: String,
    /// Mean translational error, percent (KITTI metric).
    pub translational_percent: f64,
    /// Mean rotational error, degrees per meter.
    pub rotational_deg_per_m: f64,
    /// Mean wall-clock per frame pair.
    pub time_per_pair: Duration,
    /// Merged profile across all pairs.
    pub profile: StageProfile,
    /// Frame pairs successfully registered.
    pub pairs: usize,
}

/// Runs `config` over consecutive frame pairs and aggregates accuracy and
/// time. `frames` and `ground_truth_relative` come from a dataset sequence
/// (`tigris-data`'s [`Sequence`](https://docs.rs) or equivalent).
///
/// Pairs that fail to register are skipped (counted out of `pairs`).
pub fn evaluate_config(
    label: &str,
    config: &RegistrationConfig,
    frames: &[PointCloud],
    ground_truth_relative: &[RigidTransform],
) -> DsePoint {
    assert_eq!(
        frames.len().saturating_sub(1),
        ground_truth_relative.len(),
        "need one GT relative transform per consecutive frame pair"
    );
    let mut estimates = Vec::new();
    let mut gts = Vec::new();
    let mut profile = StageProfile::new();
    let mut total_time = Duration::ZERO;

    for i in 0..frames.len().saturating_sub(1) {
        let t0 = std::time::Instant::now();
        // Source = frame i+1, target = frame i: the estimate maps i+1 → i.
        let Ok(result) = register(&frames[i + 1], &frames[i], config) else {
            continue;
        };
        total_time += t0.elapsed();
        profile.merge(&result.profile);
        estimates.push(result.transform);
        gts.push(ground_truth_relative[i]);
    }

    let pairs = estimates.len();
    let (t_err, r_err) = pairwise_errors(&estimates, &gts);

    DsePoint {
        label: label.to_string(),
        translational_percent: t_err,
        rotational_deg_per_m: r_err,
        time_per_pair: if pairs == 0 { Duration::ZERO } else { total_time / pairs as u32 },
        profile,
        pairs,
    }
}

/// Evaluates all eight paper design points (DP1–DP8) on a sequence.
pub fn evaluate_design_points(
    frames: &[PointCloud],
    ground_truth_relative: &[RigidTransform],
) -> Vec<DsePoint> {
    DesignPoint::ALL
        .iter()
        .map(|dp| evaluate_config(dp.name(), &dp.config(), frames, ground_truth_relative))
        .collect()
}

/// Sweeps the parallel-execution knobs of `base` — worker-thread count ×
/// batch chunk size — over the same frame pairs, labeling each point
/// `"{label}/t{threads}/c{chunk}"`.
///
/// Accuracy is invariant across the sweep (batched search is
/// bit-identical to serial); what moves is `time_per_pair`, making this
/// the software scaling curve to put next to the accelerator's (paper
/// Fig. 11's CPU baseline, extended with thread scaling).
pub fn sweep_parallel(
    label: &str,
    base: &RegistrationConfig,
    frames: &[PointCloud],
    ground_truth_relative: &[RigidTransform],
    thread_counts: &[usize],
    chunk_sizes: &[usize],
) -> Vec<DsePoint> {
    let mut out = Vec::with_capacity(thread_counts.len() * chunk_sizes.len());
    for &threads in thread_counts {
        for &min_chunk in chunk_sizes {
            let mut cfg = base.clone();
            cfg.parallel = tigris_core::BatchConfig { threads, min_chunk };
            let point_label = format!("{label}/t{threads}/c{min_chunk}");
            out.push(evaluate_config(&point_label, &cfg, frames, ground_truth_relative));
        }
    }
    out
}

/// Sweeps the *search backend* of `base` over the given configurations on
/// the same frame pairs, labeling each point `"{label}/{backend_name}"`.
///
/// This is the Tigris thesis as an experiment: the pipeline above the
/// `SearchIndex` seam is fixed while the backend swaps — classic vs.
/// two-stage vs. approximate vs. the brute-force oracle vs. any registered
/// custom backend (e.g. `"accelerator"`). Exact backends land on identical
/// accuracy; what moves is time and the search-stats profile. Sweeping the
/// brute-force oracle alongside gives the ground-truth accuracy anchor.
///
/// # Panics
///
/// Panics when a [`SearchBackendConfig::Custom`] name is not registered —
/// an unresolvable backend would otherwise fail *every* pair and surface
/// as an all-NaN data point indistinguishable from a measured one.
/// Register the backend first (e.g. `register_accelerator_backend()`).
pub fn sweep_backends(
    label: &str,
    base: &RegistrationConfig,
    frames: &[PointCloud],
    ground_truth_relative: &[RigidTransform],
    backends: &[SearchBackendConfig],
) -> Vec<DsePoint> {
    for backend in backends {
        if let SearchBackendConfig::Custom { name } = backend {
            assert!(
                tigris_core::backend_names().iter().any(|n| n == name),
                "backend {name:?} is not registered; register it before sweeping \
                 (e.g. tigris_accel::register_accelerator_backend())"
            );
        }
    }
    backends
        .iter()
        .map(|&backend| {
            let mut cfg = base.clone();
            cfg.backend = backend;
            let point_label = format!("{label}/{}", backend.name());
            evaluate_config(&point_label, &cfg, frames, ground_truth_relative)
        })
        .collect()
}

/// A matching-knob sweep evaluated over shared frame preparations: the
/// front end ran **once per frame for the whole sweep**, not once per
/// design point ([`sweep_matching`]).
#[derive(Debug, Clone)]
pub struct MatchingSweep {
    /// Wall-clock spent preparing all frames (paid once, amortized over
    /// every design point).
    pub prepare_time: Duration,
    /// The frames' merged preparation profiles (front-end stage times,
    /// index builds, search meters).
    pub prepare_profile: StageProfile,
    /// One evaluated point per matching configuration. `time_per_pair`
    /// and `profile` cover the matching layer only; add the amortized
    /// share of [`MatchingSweep::prepare_time`] for end-to-end cost.
    pub points: Vec<DsePoint>,
}

/// Sweeps matching/ICP knob variants over the same frame pairs while
/// **reusing each frame's preparation across every design point** — the
/// front end (downsample, index build, NE, key-points, descriptors) runs
/// once per frame for the entire sweep instead of once per frame per
/// design point.
///
/// Every variant must agree with `base` on the front-end knobs
/// ([`RegistrationConfig::same_front_end`]); only matching-layer knobs
/// (KPCE reciprocity/ratio, rejection, error metric, solver,
/// correspondence distance, convergence, motion gates, RPCE injection)
/// may vary. Points are labeled `"{label}/{variant_label}"`.
///
/// Pairs that fail to match are skipped (counted out of `pairs`), same
/// as [`evaluate_config`].
///
/// # Panics
///
/// Panics when a variant changes a front-end knob — its results would
/// silently come from artifacts prepared under different settings — or
/// when `frames`/`ground_truth_relative` lengths disagree.
pub fn sweep_matching(
    label: &str,
    base: &RegistrationConfig,
    variants: &[(&str, RegistrationConfig)],
    frames: &[PointCloud],
    ground_truth_relative: &[RigidTransform],
) -> MatchingSweep {
    assert_eq!(
        frames.len().saturating_sub(1),
        ground_truth_relative.len(),
        "need one GT relative transform per consecutive frame pair"
    );
    for (name, cfg) in variants {
        assert!(
            base.same_front_end(cfg),
            "variant {name:?} changes a front-end knob; sweep_matching reuses \
             preparations, so only matching/ICP knobs may vary"
        );
    }

    // Prepare every frame once, for the whole sweep.
    let t0 = std::time::Instant::now();
    let mut prepared = Vec::with_capacity(frames.len());
    for frame in frames {
        match prepare_frame(frame, base) {
            Ok(p) => prepared.push(Some(p)),
            Err(_) => prepared.push(None), // its pairs are skipped below
        }
    }
    let prepare_time = t0.elapsed();
    let mut prepare_profile = StageProfile::new();
    for frame in prepared.iter_mut().flatten() {
        // Detach the preparation bills up front so every per-pair profile
        // below is a pure matching profile with honest reuse counters.
        if let Some(bill) = frame.consume_preparation() {
            prepare_profile.merge(&bill);
        }
    }

    let points = variants
        .iter()
        .map(|(name, cfg)| {
            let mut estimates = Vec::new();
            let mut gts = Vec::new();
            let mut profile = StageProfile::new();
            let mut total_time = Duration::ZERO;
            for i in 0..frames.len().saturating_sub(1) {
                // Source = frame i+1, target = frame i (estimate maps i+1 → i).
                let (head, tail) = prepared.split_at_mut(i + 1);
                let (Some(target), Some(source)) = (&mut head[i], &mut tail[0]) else {
                    continue;
                };
                let t0 = std::time::Instant::now();
                let Ok(result) = register_prepared(source, target, cfg) else {
                    continue;
                };
                total_time += t0.elapsed();
                profile.merge(&result.profile);
                estimates.push(result.transform);
                gts.push(ground_truth_relative[i]);
            }
            let pairs = estimates.len();
            let (t_err, r_err) = pairwise_errors(&estimates, &gts);
            DsePoint {
                label: format!("{label}/{name}"),
                translational_percent: t_err,
                rotational_deg_per_m: r_err,
                time_per_pair: if pairs == 0 { Duration::ZERO } else { total_time / pairs as u32 },
                profile,
                pairs,
            }
        })
        .collect();

    MatchingSweep { prepare_time, prepare_profile, points }
}

/// KITTI-style mean errors over parallel estimate/GT slices (NaN when
/// empty) — shared by [`evaluate_config`] and [`sweep_matching`].
fn pairwise_errors(estimates: &[RigidTransform], gts: &[RigidTransform]) -> (f64, f64) {
    let pairs = estimates.len();
    if pairs == 0 {
        return (f64::NAN, f64::NAN);
    }
    let mut t_sum = 0.0;
    let mut r_sum = 0.0;
    for (e, g) in estimates.iter().zip(gts) {
        let residual = g.inverse() * *e;
        let dist = g.translation_norm().max(0.01);
        t_sum += residual.translation_norm() / dist * 100.0;
        r_sum += residual.rotation_angle().to_degrees() / dist;
    }
    (t_sum / pairs as f64, r_sum / pairs as f64)
}

/// Indices of the Pareto-optimal points minimizing `(error, time)`.
///
/// A point is Pareto-optimal when no other point is at least as good on
/// both axes and strictly better on one.
pub fn pareto_frontier(points: &[(f64, f64)]) -> Vec<usize> {
    let mut out = Vec::new();
    'outer: for (i, &(e_i, t_i)) in points.iter().enumerate() {
        if !e_i.is_finite() || !t_i.is_finite() {
            continue;
        }
        for (j, &(e_j, t_j)) in points.iter().enumerate() {
            if i == j || !e_j.is_finite() || !t_j.is_finite() {
                continue;
            }
            let as_good = e_j <= e_i && t_j <= t_i;
            let strictly_better = e_j < e_i || t_j < t_i;
            if as_good && strictly_better {
                continue 'outer;
            }
        }
        out.push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigris_geom::Vec3;

    #[test]
    fn pareto_extracts_lower_left_envelope() {
        let pts = vec![
            (1.0, 10.0), // optimal (lowest error)
            (2.0, 5.0),  // optimal (tradeoff)
            (3.0, 2.0),  // optimal (fastest)
            (3.0, 6.0),  // dominated by (2.0, 5.0)
            (5.0, 5.0),  // dominated
        ];
        let frontier = pareto_frontier(&pts);
        assert_eq!(frontier, vec![0, 1, 2]);
    }

    #[test]
    fn pareto_handles_duplicates_and_nan() {
        let pts = vec![(1.0, 1.0), (1.0, 1.0), (f64::NAN, 0.5), (2.0, 2.0)];
        let frontier = pareto_frontier(&pts);
        // Duplicates are mutually non-dominating; NaN is excluded.
        assert_eq!(frontier, vec![0, 1]);
    }

    #[test]
    fn pareto_single_point() {
        assert_eq!(pareto_frontier(&[(1.0, 1.0)]), vec![0]);
        assert!(pareto_frontier(&[]).is_empty());
    }

    #[test]
    fn evaluate_config_runs_a_tiny_sweep() {
        // Build two tiny structured frames with a known relative transform.
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                pts.push(Vec3::new(i as f64 * 0.2, j as f64 * 0.2, 0.0));
                if i == 0 {
                    pts.push(Vec3::new(0.0, j as f64 * 0.2, i as f64 * 0.1 + 0.3));
                }
            }
        }
        for k in 1..20 {
            for j in 0..20 {
                pts.push(Vec3::new(2.0, j as f64 * 0.2, k as f64 * 0.2));
            }
        }
        let target = PointCloud::from_points(pts);
        let gt = RigidTransform::from_translation(Vec3::new(0.15, 0.05, 0.0));
        let source = target.transformed(&gt.inverse());
        let frames = vec![target, source];
        let gts = vec![gt];

        let cfg = RegistrationConfig {
            voxel_size: 0.0,
            keypoint: crate::config::KeypointAlgorithm::Uniform { voxel: 0.8 },
            ..RegistrationConfig::default()
        };
        let point = evaluate_config("test", &cfg, &frames, &gts);
        assert_eq!(point.pairs, 1);
        assert!(point.translational_percent < 30.0, "err = {}%", point.translational_percent);
        assert!(point.time_per_pair > Duration::ZERO);
        assert_eq!(point.label, "test");
    }

    #[test]
    #[should_panic(expected = "per consecutive frame pair")]
    fn evaluate_config_validates_lengths() {
        evaluate_config("x", &RegistrationConfig::default(), &[], &[RigidTransform::IDENTITY]);
    }

    #[test]
    fn backend_sweep_keeps_exact_backends_on_oracle_accuracy() {
        let target = PointCloud::from_points(
            (0..900)
                .map(|i| {
                    Vec3::new(
                        (i % 30) as f64 * 0.2,
                        (i / 30) as f64 * 0.2,
                        ((i % 7) as f64 * 0.1).sin() * 0.3,
                    )
                })
                .collect(),
        );
        let gt = RigidTransform::from_translation(Vec3::new(0.1, 0.05, 0.0));
        let source = target.transformed(&gt.inverse());
        let frames = vec![target, source];
        let gts = vec![gt];

        let cfg = RegistrationConfig {
            voxel_size: 0.0,
            keypoint: crate::config::KeypointAlgorithm::Uniform { voxel: 0.8 },
            ..RegistrationConfig::default()
        };
        let points = sweep_backends(
            "bk",
            &cfg,
            &frames,
            &gts,
            &[
                SearchBackendConfig::Classic,
                SearchBackendConfig::TwoStage { top_height: 5 },
                SearchBackendConfig::BruteForce,
                SearchBackendConfig::Custom { name: "dynamic" },
            ],
        );
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].label, "bk/classic");
        assert_eq!(points[1].label, "bk/two-stage");
        assert_eq!(points[2].label, "bk/brute-force");
        assert_eq!(points[3].label, "bk/dynamic");
        // Exact backends compute the same thing: identical accuracy, with
        // brute force as the ground-truth anchor.
        for p in &points[1..] {
            assert_eq!(p.pairs, points[0].pairs, "{}", p.label);
            assert_eq!(
                p.translational_percent, points[0].translational_percent,
                "{} accuracy drifted from classic",
                p.label
            );
        }
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn backend_sweep_rejects_unregistered_custom_backends() {
        sweep_backends(
            "bad",
            &RegistrationConfig::default(),
            &[],
            &[],
            &[SearchBackendConfig::Custom { name: "definitely-not-registered" }],
        );
    }

    #[test]
    fn matching_sweep_reuses_preparations_and_matches_full_runs() {
        let target = PointCloud::from_points(
            (0..900)
                .map(|i| {
                    Vec3::new(
                        (i % 30) as f64 * 0.2,
                        (i / 30) as f64 * 0.2,
                        ((i % 7) as f64 * 0.1).sin() * 0.3,
                    )
                })
                .collect(),
        );
        let gt = RigidTransform::from_translation(Vec3::new(0.1, 0.05, 0.0));
        let source = target.transformed(&gt.inverse());
        let frames = vec![target, source];
        let gts = vec![gt];

        let base = RegistrationConfig {
            voxel_size: 0.0,
            keypoint: crate::config::KeypointAlgorithm::Uniform { voxel: 0.8 },
            ..RegistrationConfig::default()
        };
        let mut loose = base.clone();
        loose.max_correspondence_distance = 3.0;
        let mut tight = base.clone();
        tight.convergence.max_iterations = 5;

        let sweep = sweep_matching(
            "m",
            &base,
            &[("base", base.clone()), ("loose", loose.clone()), ("tight", tight.clone())],
            &frames,
            &gts,
        );
        assert_eq!(sweep.points.len(), 3);
        assert_eq!(sweep.points[0].label, "m/base");
        // The whole sweep paid exactly one preparation per frame…
        assert_eq!(sweep.prepare_profile.frames_prepared, frames.len());
        assert!(sweep.prepare_time > Duration::ZERO);
        for p in &sweep.points {
            assert_eq!(p.pairs, 1, "{}", p.label);
            // …and every evaluated pair reused both frames' front ends.
            assert_eq!(p.profile.frames_prepared, 0, "{}", p.label);
            assert_eq!(p.profile.frames_reused, 2, "{}", p.label);
        }
        // Accuracy is identical to the recompute-everything path.
        for (p, cfg) in sweep.points.iter().zip([&base, &loose, &tight]) {
            let full = evaluate_config("full", cfg, &frames, &gts);
            assert_eq!(
                p.translational_percent, full.translational_percent,
                "{} drifted from the full run",
                p.label
            );
            assert_eq!(p.rotational_deg_per_m, full.rotational_deg_per_m, "{}", p.label);
        }
    }

    #[test]
    #[should_panic(expected = "front-end knob")]
    fn matching_sweep_rejects_front_end_variants() {
        let base = RegistrationConfig::default();
        let mut bad = base.clone();
        bad.normal_radius += 0.2;
        sweep_matching("bad", &base, &[("bad", bad)], &[], &[]);
    }

    #[test]
    fn parallel_sweep_labels_points_and_preserves_accuracy() {
        let target = PointCloud::from_points(
            (0..900)
                .map(|i| {
                    Vec3::new(
                        (i % 30) as f64 * 0.2,
                        (i / 30) as f64 * 0.2,
                        ((i % 7) as f64 * 0.1).sin() * 0.3,
                    )
                })
                .collect(),
        );
        let gt = RigidTransform::from_translation(Vec3::new(0.1, 0.05, 0.0));
        let source = target.transformed(&gt.inverse());
        let frames = vec![target, source];
        let gts = vec![gt];

        let cfg = RegistrationConfig {
            voxel_size: 0.0,
            keypoint: crate::config::KeypointAlgorithm::Uniform { voxel: 0.8 },
            ..RegistrationConfig::default()
        };
        let points = sweep_parallel("sweep", &cfg, &frames, &gts, &[1, 2], &[64]);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].label, "sweep/t1/c64");
        assert_eq!(points[1].label, "sweep/t2/c64");
        // Parallelism must not change what is computed, only how fast.
        assert_eq!(points[0].pairs, points[1].pairs);
        assert_eq!(points[0].translational_percent, points[1].translational_percent);
        assert_eq!(points[0].rotational_deg_per_m, points[1].rotational_deg_per_m);
    }
}

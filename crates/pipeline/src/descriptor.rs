//! Feature-descriptor calculation (paper Fig. 2, stage 3; Tbl. 1 FPFH /
//! SHOT / 3DSC, key parameter: search radius).
//!
//! A descriptor embeds a key-point's neighborhood into a high-dimensional
//! space where correspondence is a nearest-neighbor query. Implemented:
//!
//! * **FPFH** (Rusu et al.) — full fidelity: 3 Darboux angles × 11 bins =
//!   33-D, assembled from SPFHs weighted by inverse neighbor distance.
//! * **SHOT** (Tombari et al.) — a reduced-bin variant: a weighted-covariance
//!   local reference frame, 16 spatial sectors (2 radial × 2 elevation × 4
//!   azimuth) × 10 cosine bins = 160-D (the full 352-D binning adds nothing
//!   to the pipeline's behaviour at our point densities).
//! * **3DSC** (Frome et al.) — 4 log-radial shells × 3 elevation × 6 azimuth
//!   = 72-D, azimuth fixed by the SHOT-style reference frame instead of the
//!   original's multiple rotations (documented simplification).

use tigris_geom::{symmetric_eigen3, Mat3, Vec3};

use crate::config::DescriptorAlgorithm;
use crate::search::Searcher3;

/// A dense matrix of descriptors: one row of `dim` values per key-point.
#[derive(Debug, Clone, PartialEq)]
pub struct Descriptors {
    /// Dimension of each descriptor.
    pub dim: usize,
    /// Row-major data: `data[i * dim .. (i+1) * dim]` is key-point `i`'s
    /// descriptor.
    pub data: Vec<f64>,
}

impl Descriptors {
    /// Number of descriptors stored.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// `true` when no descriptors are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Descriptor `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

/// Computes descriptors for `keypoints` (indices into `searcher`'s cloud).
///
/// `normals` must be parallel to the cloud. Rows come back in key-point
/// order.
///
/// # Panics
///
/// Panics when `normals.len() != searcher.len()` or a key-point index is
/// out of range.
pub fn compute_descriptors(
    searcher: &mut Searcher3,
    normals: &[Vec3],
    keypoints: &[usize],
    algorithm: DescriptorAlgorithm,
) -> Descriptors {
    assert_eq!(normals.len(), searcher.len(), "descriptors need normals parallel to the cloud");
    match algorithm {
        DescriptorAlgorithm::Fpfh { radius } => fpfh(searcher, normals, keypoints, radius),
        DescriptorAlgorithm::Shot { radius } => shot(searcher, normals, keypoints, radius),
        DescriptorAlgorithm::Sc3d { radius } => sc3d(searcher, normals, keypoints, radius),
    }
}

// --------------------------------------------------------------------------
// FPFH
// --------------------------------------------------------------------------

const FPFH_BINS: usize = 11;
/// FPFH dimension: 3 angles × 11 bins.
pub const FPFH_DIM: usize = 3 * FPFH_BINS;

/// The three Darboux-frame angles (α, φ, θ) between a source point/normal
/// and a target point/normal (Rusu et al., Eq. 1–3).
fn pair_features(ps: Vec3, ns: Vec3, pt: Vec3, nt: Vec3) -> Option<(f64, f64, f64)> {
    let d = pt - ps;
    let dist = d.norm();
    if dist < 1e-9 {
        return None;
    }
    let du = d / dist;
    // Choose source/target so the angle between the source normal and the
    // line is not larger than for the target (the canonical ordering).
    let (p1, n1, _p2, n2, du) = if ns.dot(du).abs() >= nt.dot(-du).abs() {
        (ps, ns, pt, nt, du)
    } else {
        (pt, nt, ps, ns, -du)
    };
    let _ = p1;
    let u = n1;
    let v = du.cross(u).normalized()?;
    let w = u.cross(v);
    let alpha = v.dot(n2); // ∈ [-1, 1]
    let phi = u.dot(du); // ∈ [-1, 1]
    let theta = w.dot(n2).atan2(u.dot(n2)); // ∈ [-π, π]
    Some((alpha, phi, theta))
}

fn bin_index(value: f64, lo: f64, hi: f64) -> usize {
    let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((t * FPFH_BINS as f64) as usize).min(FPFH_BINS - 1)
}

/// Simplified Point Feature Histogram of one point over its neighbors.
fn spfh(points: &[Vec3], normals: &[Vec3], center: usize, neighbors: &[usize]) -> [f64; FPFH_DIM] {
    let mut hist = [0.0f64; FPFH_DIM];
    let mut count = 0.0;
    for &j in neighbors {
        if j == center {
            continue;
        }
        if let Some((alpha, phi, theta)) =
            pair_features(points[center], normals[center], points[j], normals[j])
        {
            hist[bin_index(alpha, -1.0, 1.0)] += 1.0;
            hist[FPFH_BINS + bin_index(phi, -1.0, 1.0)] += 1.0;
            hist[2 * FPFH_BINS + bin_index(theta, -std::f64::consts::PI, std::f64::consts::PI)] +=
                1.0;
            count += 1.0;
        }
    }
    if count > 0.0 {
        for h in &mut hist {
            *h *= 100.0 / count; // percentage normalization, as in PCL
        }
    }
    hist
}

fn fpfh(
    searcher: &mut Searcher3,
    normals: &[Vec3],
    keypoints: &[usize],
    radius: f64,
) -> Descriptors {
    use std::collections::{HashMap, HashSet};
    let parallel = searcher.parallel();

    // Phase 1 — neighborhoods of the key-points, one batched fan-out.
    // (Only query points are copied out; the searcher is mutably borrowed
    // while a batch runs, so the cloud itself is read in place later.)
    let kp_pts: Vec<Vec3> = {
        let pts = searcher.points();
        keypoints.iter().map(|&k| pts[k]).collect()
    };
    let kp_neigh: Vec<Vec<usize>> = searcher
        .radius_batch(&kp_pts, radius)
        .into_iter()
        .map(|ns| ns.into_iter().map(|n| n.index).collect())
        .collect();

    // Phase 2 — SPFH is needed at every key-point and every neighbor of
    // one; fetch the not-yet-known neighborhoods as a second batch.
    let mut needed: Vec<usize> = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    for (&k, neigh) in keypoints.iter().zip(&kp_neigh) {
        if seen.insert(k) {
            needed.push(k);
        }
        for &j in neigh {
            if seen.insert(j) {
                needed.push(j);
            }
        }
    }
    let mut neigh_of: HashMap<usize, Vec<usize>> = HashMap::new();
    for (&k, neigh) in keypoints.iter().zip(&kp_neigh) {
        neigh_of.entry(k).or_insert_with(|| neigh.clone());
    }
    let missing: Vec<usize> =
        needed.iter().copied().filter(|i| !neigh_of.contains_key(i)).collect();
    let missing_pts: Vec<Vec3> = {
        let pts = searcher.points();
        missing.iter().map(|&i| pts[i]).collect()
    };
    let missing_neigh = searcher.radius_batch(&missing_pts, radius);
    for (&i, ns) in missing.iter().zip(missing_neigh) {
        neigh_of.insert(i, ns.into_iter().map(|n| n.index).collect());
    }

    // Phase 3 — SPFH histograms, pure per-point math in parallel.
    let points = searcher.points();
    let spfh_rows = tigris_core::batch::parallel_map(&needed, &parallel, |&i| {
        spfh(points, normals, i, &neigh_of[&i])
    });
    let spfh_of: HashMap<usize, &[f64; FPFH_DIM]> =
        needed.iter().zip(spfh_rows.iter()).map(|(&i, h)| (i, h)).collect();

    // Phase 4 — distance-weighted combination per key-point, in parallel.
    let rows = tigris_core::batch::parallel_map_indexed(keypoints.len(), &parallel, |ki| {
        let k = keypoints[ki];
        let neighbors = &kp_neigh[ki];
        let mut out = *spfh_of[&k];
        let mut weight_total = 0.0;
        let mut acc = [0.0f64; FPFH_DIM];
        for &j in neighbors {
            if j == k {
                continue;
            }
            let d = points[k].distance(points[j]);
            if d < 1e-9 {
                continue;
            }
            let h = spfh_of[&j];
            let w = 1.0 / d;
            for (a, v) in acc.iter_mut().zip(h.iter()) {
                *a += w * v;
            }
            weight_total += w;
        }
        if weight_total > 0.0 {
            for (o, a) in out.iter_mut().zip(acc.iter()) {
                *o += a / weight_total;
            }
        }
        out
    });

    let mut data = Vec::with_capacity(keypoints.len() * FPFH_DIM);
    for row in rows {
        data.extend_from_slice(&row);
    }
    Descriptors { dim: FPFH_DIM, data }
}

// --------------------------------------------------------------------------
// SHOT (reduced binning)
// --------------------------------------------------------------------------

const SHOT_RADIAL: usize = 2;
const SHOT_ELEVATION: usize = 2;
const SHOT_AZIMUTH: usize = 4;
const SHOT_COS_BINS: usize = 10;
/// Reduced SHOT dimension: 16 sectors × 10 cosine bins.
pub const SHOT_DIM: usize = SHOT_RADIAL * SHOT_ELEVATION * SHOT_AZIMUTH * SHOT_COS_BINS;

/// Local reference frame from the distance-weighted neighborhood covariance
/// with SHOT's sign disambiguation (majority of points on the positive
/// side of each axis).
fn local_reference_frame(points: &[Vec3], center: Vec3, neighbors: &[usize], radius: f64) -> Mat3 {
    let mut cov = Mat3::ZERO;
    let mut total = 0.0;
    for &j in neighbors {
        let d = points[j] - center;
        let w = (radius - d.norm()).max(0.0);
        cov = cov + Mat3::outer(d, d).scale(w);
        total += w;
    }
    if total > 0.0 {
        cov = cov.scale(1.0 / total);
    }
    let eig = symmetric_eigen3(&cov);
    // Descending eigenvalues: x = largest, z = smallest.
    let mut x = eig.vectors.col(2);
    let mut z = eig.vectors.col(0);
    // Sign disambiguation.
    let mut x_pos = 0i64;
    let mut z_pos = 0i64;
    for &j in neighbors {
        let d = points[j] - center;
        x_pos += if d.dot(x) >= 0.0 { 1 } else { -1 };
        z_pos += if d.dot(z) >= 0.0 { 1 } else { -1 };
    }
    if x_pos < 0 {
        x = -x;
    }
    if z_pos < 0 {
        z = -z;
    }
    let y = z.cross(x);
    Mat3::from_cols(x, y, z)
}

fn shot(
    searcher: &mut Searcher3,
    normals: &[Vec3],
    keypoints: &[usize],
    radius: f64,
) -> Descriptors {
    let parallel = searcher.parallel();
    // One batched radius fan-out, then pure per-key-point histogram math
    // reading the cloud in place (only the key-points are copied out,
    // since the searcher is mutably borrowed during the batch).
    let kp_pts: Vec<Vec3> = {
        let pts = searcher.points();
        keypoints.iter().map(|&k| pts[k]).collect()
    };
    let neighborhoods = searcher.radius_batch(&kp_pts, radius);
    let points = searcher.points();
    let rows = tigris_core::batch::parallel_map_indexed(keypoints.len(), &parallel, |ki| {
        let k = keypoints[ki];
        let neighbors: Vec<usize> =
            neighborhoods[ki].iter().map(|n| n.index).filter(|&j| j != k).collect();
        let mut hist = vec![0.0f64; SHOT_DIM];
        if neighbors.len() >= 5 {
            let lrf = local_reference_frame(points, points[k], &neighbors, radius);
            let zn = lrf.col(2);
            for &j in &neighbors {
                let d = points[j] - points[k];
                let local = lrf.transpose() * d;
                let r = local.norm();
                if r < 1e-9 {
                    continue;
                }
                let radial = usize::from(r > radius * 0.5).min(SHOT_RADIAL - 1);
                let elevation = usize::from(local.z > 0.0).min(SHOT_ELEVATION - 1);
                let azimuth_angle = local.y.atan2(local.x) + std::f64::consts::PI;
                let azimuth = ((azimuth_angle / std::f64::consts::TAU * SHOT_AZIMUTH as f64)
                    as usize)
                    .min(SHOT_AZIMUTH - 1);
                let cosine = normals[j].dot(zn).clamp(-1.0, 1.0);
                let cos_bin =
                    (((cosine + 1.0) / 2.0 * SHOT_COS_BINS as f64) as usize).min(SHOT_COS_BINS - 1);
                let sector = ((radial * SHOT_ELEVATION + elevation) * SHOT_AZIMUTH + azimuth)
                    * SHOT_COS_BINS;
                hist[sector + cos_bin] += 1.0;
            }
            // L2 normalization (SHOT's signature normalization).
            let norm = hist.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for h in &mut hist {
                    *h /= norm;
                }
            }
        }
        hist
    });
    let mut data = Vec::with_capacity(keypoints.len() * SHOT_DIM);
    for row in rows {
        data.extend_from_slice(&row);
    }
    Descriptors { dim: SHOT_DIM, data }
}

// --------------------------------------------------------------------------
// 3DSC
// --------------------------------------------------------------------------

const SC_RADIAL: usize = 4;
const SC_ELEVATION: usize = 3;
const SC_AZIMUTH: usize = 6;
/// 3DSC dimension.
pub const SC3D_DIM: usize = SC_RADIAL * SC_ELEVATION * SC_AZIMUTH;

fn sc3d(
    searcher: &mut Searcher3,
    normals: &[Vec3],
    keypoints: &[usize],
    radius: f64,
) -> Descriptors {
    let r_min: f64 = (radius * 0.05).max(1e-3);
    let log_span = (radius / r_min).ln();
    let parallel = searcher.parallel();
    let kp_pts: Vec<Vec3> = {
        let pts = searcher.points();
        keypoints.iter().map(|&k| pts[k]).collect()
    };
    let neighborhoods = searcher.radius_batch(&kp_pts, radius);
    let points = searcher.points();
    let rows = tigris_core::batch::parallel_map_indexed(keypoints.len(), &parallel, |ki| {
        let k = keypoints[ki];
        let neighbors: Vec<usize> =
            neighborhoods[ki].iter().map(|n| n.index).filter(|&j| j != k).collect();
        let mut hist = vec![0.0f64; SC3D_DIM];
        if neighbors.len() >= 5 {
            // North pole = the point's normal; azimuth fixed by the LRF.
            let north = normals[k];
            let lrf = local_reference_frame(points, points[k], &neighbors, radius);
            let mut east = lrf.col(0) - north * lrf.col(0).dot(north);
            east = east.normalized().unwrap_or_else(|| {
                // Degenerate LRF: pick any perpendicular.
                let h = if north.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
                north.cross(h).normalized().unwrap_or(Vec3::X)
            });
            let south_east = north.cross(east);

            for &j in &neighbors {
                let d = points[j] - points[k];
                let r = d.norm();
                if r < r_min {
                    continue;
                }
                let radial =
                    (((r / r_min).ln() / log_span * SC_RADIAL as f64) as usize).min(SC_RADIAL - 1);
                let cos_elev = (d.dot(north) / r).clamp(-1.0, 1.0);
                let elevation =
                    (((cos_elev + 1.0) / 2.0 * SC_ELEVATION as f64) as usize).min(SC_ELEVATION - 1);
                let az = d.dot(south_east).atan2(d.dot(east)) + std::f64::consts::PI;
                let azimuth =
                    ((az / std::f64::consts::TAU * SC_AZIMUTH as f64) as usize).min(SC_AZIMUTH - 1);
                hist[(radial * SC_ELEVATION + elevation) * SC_AZIMUTH + azimuth] += 1.0;
            }
            let total: f64 = hist.iter().sum();
            if total > 0.0 {
                for h in &mut hist {
                    *h /= total;
                }
            }
        }
        hist
    });
    let mut data = Vec::with_capacity(keypoints.len() * SC3D_DIM);
    for row in rows {
        data.extend_from_slice(&row);
    }
    Descriptors { dim: SC3D_DIM, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NormalAlgorithm;
    use crate::normal::estimate_normals;

    /// Corner + plane scene with distinctive local geometry.
    fn scene() -> Vec<Vec3> {
        let mut pts = Vec::new();
        for i in 0..25 {
            for j in 0..25 {
                pts.push(Vec3::new(i as f64 * 0.1, j as f64 * 0.1, 0.0));
            }
        }
        for i in 0..25 {
            for k in 1..15 {
                pts.push(Vec3::new(i as f64 * 0.1, 1.2, k as f64 * 0.1));
            }
        }
        pts
    }

    fn with_normals(pts: &[Vec3]) -> (Searcher3, Vec<Vec3>) {
        let mut s = Searcher3::classic(pts);
        let normals = estimate_normals(&mut s, 0.3, NormalAlgorithm::PlaneSvd);
        (s, normals)
    }

    #[test]
    fn fpfh_has_right_shape_and_normalization() {
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        let kps = vec![0, 100, 300];
        let d =
            compute_descriptors(&mut s, &normals, &kps, DescriptorAlgorithm::Fpfh { radius: 0.5 });
        assert_eq!(d.dim, FPFH_DIM);
        assert_eq!(d.len(), 3);
        // Each of the 3 sub-histograms of the SPFH sums to ~100 before the
        // neighbor average; the final FPFH sub-histogram sums to ~200.
        for i in 0..3 {
            let row = d.row(i);
            let s0: f64 = row[..11].iter().sum();
            assert!(s0 > 150.0 && s0 < 250.0, "alpha hist sum = {s0}");
            assert!(row.iter().all(|v| *v >= 0.0));
        }
    }

    #[test]
    fn fpfh_similar_geometry_similar_descriptor() {
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        // Two interior ground points vs. one wall point.
        let ground_a = 12 * 25 + 6; // interior ground
        let ground_b = 13 * 25 + 7;
        let wall = 625 + 12 * 14 + 7; // interior wall
        let d = compute_descriptors(
            &mut s,
            &normals,
            &[ground_a, ground_b, wall],
            DescriptorAlgorithm::Fpfh { radius: 0.45 },
        );
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
        };
        let same = dist(d.row(0), d.row(1));
        let diff = dist(d.row(0), d.row(2));
        assert!(same < diff, "same-geometry distance {same} should be < {diff}");
    }

    #[test]
    fn shot_shape_and_unit_norm() {
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        let d = compute_descriptors(
            &mut s,
            &normals,
            &[100, 200],
            DescriptorAlgorithm::Shot { radius: 0.5 },
        );
        assert_eq!(d.dim, SHOT_DIM);
        for i in 0..2 {
            let norm: f64 = d.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "row {i} norm {norm}");
        }
    }

    #[test]
    fn sc3d_shape_and_simplex_normalization() {
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        let d = compute_descriptors(
            &mut s,
            &normals,
            &[100],
            DescriptorAlgorithm::Sc3d { radius: 0.5 },
        );
        assert_eq!(d.dim, SC3D_DIM);
        let total: f64 = d.row(0).iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_neighborhoods_give_zero_descriptors() {
        let pts = vec![Vec3::ZERO, Vec3::new(50.0, 0.0, 0.0)];
        let normals = vec![Vec3::Z, Vec3::Z];
        let mut s = Searcher3::classic(&pts);
        let d =
            compute_descriptors(&mut s, &normals, &[0], DescriptorAlgorithm::Shot { radius: 0.5 });
        assert!(d.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_keypoints() {
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        let d =
            compute_descriptors(&mut s, &normals, &[], DescriptorAlgorithm::Fpfh { radius: 0.5 });
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_normals_panic() {
        let pts = scene();
        let mut s = Searcher3::classic(&pts);
        compute_descriptors(&mut s, &[], &[0], DescriptorAlgorithm::Fpfh { radius: 0.5 });
    }

    #[test]
    fn pair_features_are_antisymmetric_safe() {
        // Coincident points are rejected.
        assert!(pair_features(Vec3::ZERO, Vec3::Z, Vec3::ZERO, Vec3::Z).is_none());
        // Regular pair produces angles in range.
        let (a, p, t) = pair_features(Vec3::ZERO, Vec3::Z, Vec3::X, Vec3::Y).unwrap();
        assert!((-1.0..=1.0).contains(&a));
        assert!((-1.0..=1.0).contains(&p));
        assert!((-std::f64::consts::PI..=std::f64::consts::PI).contains(&t));
    }

    #[test]
    fn descriptors_row_accessor() {
        let d = Descriptors { dim: 2, data: vec![1.0, 2.0, 3.0, 4.0] };
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
    }
}

//! Feature-descriptor calculation (paper Fig. 2, stage 3; Tbl. 1 FPFH /
//! SHOT / 3DSC, key parameter: search radius).
//!
//! A descriptor embeds a key-point's neighborhood into a high-dimensional
//! space where correspondence is a nearest-neighbor query. Implemented:
//!
//! * **FPFH** (Rusu et al.) — full fidelity: 3 Darboux angles × 11 bins =
//!   33-D, assembled from SPFHs weighted by inverse neighbor distance.
//! * **SHOT** (Tombari et al.) — a reduced-bin variant: a weighted-covariance
//!   local reference frame, 16 spatial sectors (2 radial × 2 elevation × 4
//!   azimuth) × 10 cosine bins = 160-D (the full 352-D binning adds nothing
//!   to the pipeline's behaviour at our point densities).
//! * **3DSC** (Frome et al.) — 4 log-radial shells × 3 elevation × 6 azimuth
//!   = 72-D, azimuth fixed by the SHOT-style reference frame instead of the
//!   original's multiple rotations (documented simplification).
//!
//! The FPFH path runs on dense index-space scratch instead of hash maps:
//! epoch-stamped `seen` vectors and a compact remap give every SPFH
//! source a dense row id, neighborhoods live in flat
//! [`crate::NeighborTable`]s, and the serial path evaluates each
//! symmetric point pair **once**, scattering the Darboux angles into both
//! endpoint histograms through the blocked `tigris_core::simd::bin11`
//! kernel. All of it is bit-identical to the straightforward per-point
//! evaluation (`pipeline/tests/frontend_equivalence.rs` pins this against
//! a frozen copy of the old code): histogram increments are exact
//! `+= 1.0` adds, so accumulation order cannot change the bits, and the
//! canonical source/target ordering of a pair is exactly symmetric except
//! on exact ties — which the shared-pair walk detects and evaluates from
//! both sides, just like two independent SPFH passes would.

use std::f64::consts::PI;

use tigris_core::{simd, Neighbor};
use tigris_geom::{symmetric_eigen3, Mat3, Vec3};

use crate::config::DescriptorAlgorithm;
use crate::scratch::{NeighborTable, PrepareScratch};
use crate::search::Searcher3;

/// A dense matrix of descriptors: one row of `dim` values per key-point.
#[derive(Debug, Clone, PartialEq)]
pub struct Descriptors {
    /// Dimension of each descriptor.
    pub dim: usize,
    /// Row-major data: `data[i * dim .. (i+1) * dim]` is key-point `i`'s
    /// descriptor.
    pub data: Vec<f64>,
}

impl Descriptors {
    /// Number of descriptors stored.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// `true` when no descriptors are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Descriptor `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }
}

/// Computes descriptors for `keypoints` (indices into `searcher`'s cloud).
///
/// `normals` must be parallel to the cloud. Rows come back in key-point
/// order.
///
/// Allocates its working buffers fresh; streaming callers should hold a
/// [`PrepareScratch`] and use [`compute_descriptors_with`].
///
/// # Panics
///
/// Panics when `normals.len() != searcher.len()` or a key-point index is
/// out of range.
pub fn compute_descriptors(
    searcher: &mut Searcher3,
    normals: &[Vec3],
    keypoints: &[usize],
    algorithm: DescriptorAlgorithm,
) -> Descriptors {
    compute_descriptors_with(searcher, normals, keypoints, algorithm, &mut PrepareScratch::new())
}

/// [`compute_descriptors`] with caller-owned scratch: the FPFH phases run
/// entirely in the scratch's dense tables and stamp vectors, so a warm
/// steady-state caller allocates nothing transient beyond the returned
/// [`Descriptors`].
///
/// # Panics
///
/// Panics when `normals.len() != searcher.len()` or a key-point index is
/// out of range.
pub fn compute_descriptors_with(
    searcher: &mut Searcher3,
    normals: &[Vec3],
    keypoints: &[usize],
    algorithm: DescriptorAlgorithm,
    scratch: &mut PrepareScratch,
) -> Descriptors {
    assert_eq!(normals.len(), searcher.len(), "descriptors need normals parallel to the cloud");
    match algorithm {
        DescriptorAlgorithm::Fpfh { radius } => fpfh(searcher, normals, keypoints, radius, scratch),
        DescriptorAlgorithm::Shot { radius } => shot(searcher, normals, keypoints, radius),
        DescriptorAlgorithm::Sc3d { radius } => sc3d(searcher, normals, keypoints, radius),
    }
}

// --------------------------------------------------------------------------
// FPFH
// --------------------------------------------------------------------------

const FPFH_BINS: usize = 11;
/// FPFH dimension: 3 angles × 11 bins.
pub const FPFH_DIM: usize = 3 * FPFH_BINS;

/// The Darboux-frame angles (α, φ, θ) for an already-canonicalized pair:
/// `n1` is the source normal, `n2` the target normal, `du` the unit
/// source→target direction.
fn darboux(n1: Vec3, n2: Vec3, du: Vec3) -> Option<(f64, f64, f64)> {
    let u = n1;
    let v = du.cross(u).normalized()?;
    let w = u.cross(v);
    let alpha = v.dot(n2); // ∈ [-1, 1]
    let phi = u.dot(du); // ∈ [-1, 1]
    let theta = w.dot(n2).atan2(u.dot(n2)); // ∈ [-π, π]
    Some((alpha, phi, theta))
}

/// The three Darboux-frame angles (α, φ, θ) between a source point/normal
/// and a target point/normal (Rusu et al., Eq. 1–3).
fn pair_features(ps: Vec3, ns: Vec3, pt: Vec3, nt: Vec3) -> Option<(f64, f64, f64)> {
    let d = pt - ps;
    let dist = d.norm();
    if dist < 1e-9 {
        return None;
    }
    let du = d / dist;
    // Choose source/target so the angle between the source normal and the
    // line is not larger than for the target (the canonical ordering).
    if ns.dot(du).abs() >= nt.dot(-du).abs() {
        darboux(ns, nt, du)
    } else {
        darboux(nt, ns, -du)
    }
}

fn bin_index(value: f64, lo: f64, hi: f64) -> usize {
    let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((t * FPFH_BINS as f64) as usize).min(FPFH_BINS - 1)
}

/// Simplified Point Feature Histogram of one point over a neighbor row —
/// the row-independent evaluation the parallel fallback uses.
fn spfh_row(
    points: &[Vec3],
    normals: &[Vec3],
    center: usize,
    neighbors: &[Neighbor],
) -> [f64; FPFH_DIM] {
    let mut hist = [0.0f64; FPFH_DIM];
    let mut count = 0.0;
    for nb in neighbors {
        let j = nb.index;
        if j == center {
            continue;
        }
        if let Some((alpha, phi, theta)) =
            pair_features(points[center], normals[center], points[j], normals[j])
        {
            hist[bin_index(alpha, -1.0, 1.0)] += 1.0;
            hist[FPFH_BINS + bin_index(phi, -1.0, 1.0)] += 1.0;
            hist[2 * FPFH_BINS + bin_index(theta, -PI, PI)] += 1.0;
            count += 1.0;
        }
    }
    if count > 0.0 {
        for h in &mut hist {
            *h *= 100.0 / count; // percentage normalization, as in PCL
        }
    }
    hist
}

/// `needed_src` tag: the neighborhood lives in `missing_table` (row in the
/// low bits) rather than `kp_table`.
const MISSING_BIT: u32 = 1 << 31;
/// `needed_src` placeholder during discovery, resolved before use.
const PENDING: u32 = u32::MAX;
/// "No second target row" marker for single-sided scatters.
const NO_ROW: u32 = u32::MAX;

/// Buffered Darboux-angle scatter: features queue up in blocks so the
/// three bin computations run through the blocked `simd::bin11` kernel
/// instead of one scalar conversion per angle.
struct BinScatter {
    alphas: [f64; Self::BLOCK],
    phis: [f64; Self::BLOCK],
    thetas: [f64; Self::BLOCK],
    /// First target row per feature.
    rows_a: [u32; Self::BLOCK],
    /// Second target row ([`NO_ROW`] when the feature is single-sided).
    rows_b: [u32; Self::BLOCK],
    len: usize,
}

impl BinScatter {
    const BLOCK: usize = 64;

    fn new() -> Self {
        BinScatter {
            alphas: [0.0; Self::BLOCK],
            phis: [0.0; Self::BLOCK],
            thetas: [0.0; Self::BLOCK],
            rows_a: [NO_ROW; Self::BLOCK],
            rows_b: [NO_ROW; Self::BLOCK],
            len: 0,
        }
    }

    fn push(
        &mut self,
        feat: (f64, f64, f64),
        row_a: u32,
        row_b: u32,
        hist: &mut [f64],
        counts: &mut [f64],
    ) {
        if self.len == Self::BLOCK {
            self.flush(hist, counts);
        }
        let i = self.len;
        (self.alphas[i], self.phis[i], self.thetas[i]) = feat;
        self.rows_a[i] = row_a;
        self.rows_b[i] = row_b;
        self.len = i + 1;
    }

    fn flush(&mut self, hist: &mut [f64], counts: &mut [f64]) {
        let n = self.len;
        if n == 0 {
            return;
        }
        let mut ba = [0u32; Self::BLOCK];
        let mut bp = [0u32; Self::BLOCK];
        let mut bt = [0u32; Self::BLOCK];
        simd::bin11(&self.alphas[..n], -1.0, 1.0, &mut ba[..n]);
        simd::bin11(&self.phis[..n], -1.0, 1.0, &mut bp[..n]);
        simd::bin11(&self.thetas[..n], -PI, PI, &mut bt[..n]);
        for i in 0..n {
            for r in [self.rows_a[i], self.rows_b[i]] {
                if r == NO_ROW {
                    continue;
                }
                let h = &mut hist[r as usize * FPFH_DIM..][..FPFH_DIM];
                h[ba[i] as usize] += 1.0;
                h[FPFH_BINS + bp[i] as usize] += 1.0;
                h[2 * FPFH_BINS + bt[i] as usize] += 1.0;
                counts[r as usize] += 1.0;
            }
        }
        self.len = 0;
    }
}

/// The neighborhood row `src` points at (see [`MISSING_BIT`]).
fn source_row<'t>(kp: &'t NeighborTable, missing: &'t NeighborTable, src: u32) -> &'t [Neighbor] {
    if src & MISSING_BIT != 0 {
        missing.row((src & !MISSING_BIT) as usize)
    } else {
        kp.row(src as usize)
    }
}

/// Buffered pair pipeline feeding [`BinScatter`]: candidate pairs queue
/// up in blocks so the Darboux-frame arithmetic runs through the blocked
/// [`simd::pair_features_batch`] kernel (distance, canonical ordering,
/// frame axes and dot products in SIMD lanes, `atan2` per lane) instead
/// of one fully scalar evaluation per pair.
struct PairQueue {
    ps: [Vec3; Self::BLOCK],
    ns: [Vec3; Self::BLOCK],
    pt: [Vec3; Self::BLOCK],
    nt: [Vec3; Self::BLOCK],
    /// First target row per pair.
    rows_a: [u32; Self::BLOCK],
    /// Second target row ([`NO_ROW`] for one-sided pairs).
    rows_b: [u32; Self::BLOCK],
    len: usize,
}

impl PairQueue {
    const BLOCK: usize = 64;

    fn new() -> Self {
        PairQueue {
            ps: [Vec3::ZERO; Self::BLOCK],
            ns: [Vec3::ZERO; Self::BLOCK],
            pt: [Vec3::ZERO; Self::BLOCK],
            nt: [Vec3::ZERO; Self::BLOCK],
            rows_a: [NO_ROW; Self::BLOCK],
            rows_b: [NO_ROW; Self::BLOCK],
            len: 0,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        ps: Vec3,
        ns: Vec3,
        pt: Vec3,
        nt: Vec3,
        row_a: u32,
        row_b: u32,
        scatter: &mut BinScatter,
        hist: &mut [f64],
        counts: &mut [f64],
    ) {
        if self.len == Self::BLOCK {
            self.flush(scatter, hist, counts);
        }
        let i = self.len;
        self.ps[i] = ps;
        self.ns[i] = ns;
        self.pt[i] = pt;
        self.nt[i] = nt;
        self.rows_a[i] = row_a;
        self.rows_b[i] = row_b;
        self.len = i + 1;
    }

    fn flush(&mut self, scatter: &mut BinScatter, hist: &mut [f64], counts: &mut [f64]) {
        let n = self.len;
        if n == 0 {
            return;
        }
        let mut alpha = [0.0_f64; Self::BLOCK];
        let mut phi = [0.0_f64; Self::BLOCK];
        let mut theta = [0.0_f64; Self::BLOCK];
        let mut flags = [0_u8; Self::BLOCK];
        simd::pair_features_batch(
            &self.ps[..n],
            &self.ns[..n],
            &self.pt[..n],
            &self.nt[..n],
            &mut alpha[..n],
            &mut phi[..n],
            &mut theta[..n],
            &mut flags[..n],
        );
        for i in 0..n {
            let f = flags[i];
            if f & simd::PAIR_DIST_OK == 0 {
                continue;
            }
            let feat = (alpha[i], phi[i], theta[i]);
            if f & simd::PAIR_TIE != 0 && self.rows_b[i] != NO_ROW {
                // Exact canonical-ordering tie on a shared pair: the
                // kernel's result is the source-side evaluation; the
                // target side keeps its own ordering and is evaluated
                // separately (both may be frame-degenerate on their
                // own).
                if f & simd::PAIR_FRAME_OK != 0 {
                    scatter.push(feat, self.rows_a[i], NO_ROW, hist, counts);
                }
                let d = self.pt[i] - self.ps[i];
                let du = d / d.norm();
                if let Some(rev) = darboux(self.nt[i], self.ns[i], -du) {
                    scatter.push(rev, self.rows_b[i], NO_ROW, hist, counts);
                }
            } else if f & simd::PAIR_FRAME_OK != 0 {
                scatter.push(feat, self.rows_a[i], self.rows_b[i], hist, counts);
            }
        }
        self.len = 0;
    }
}

/// Serial SPFH evaluation over the dense rows, visiting each symmetric
/// pair of SPFH sources once.
///
/// For a pair whose endpoints both need an SPFH, the canonical ordering
/// inside [`pair_features`] is the same seen from either endpoint except
/// on an exact tie of the two angle magnitudes — so one Darboux
/// evaluation serves both histograms, and the tie falls back to the two
/// per-side evaluations. Histogram increments are exact `+= 1.0` adds,
/// so the changed accumulation order leaves the bits untouched.
fn spfh_shared_pairs(points: &[Vec3], normals: &[Vec3], scratch: &mut PrepareScratch, epoch: u32) {
    let needed = &scratch.needed;
    let needed_src = &scratch.needed_src;
    let stamp = &scratch.stamp;
    let remap = &scratch.remap;
    let kp_table = &scratch.kp_table;
    let missing_table = &scratch.missing_table;
    let hist = &mut scratch.spfh_rows;
    let counts = &mut scratch.counts;
    let mut scatter = BinScatter::new();
    let mut pairs = PairQueue::new();
    for di in 0..needed.len() {
        let c = needed[di] as usize;
        let row = source_row(kp_table, missing_table, needed_src[di]);
        let pc = points[c];
        let nc = normals[c];
        for nb in row {
            let j = nb.index;
            if j == c {
                continue;
            }
            if stamp[j] == epoch {
                // Both endpoints need an SPFH: handle the pair once, from
                // the lower dense id.
                let dj = remap[j] as usize;
                if dj < di {
                    continue;
                }
                pairs.push(
                    pc,
                    nc,
                    points[j],
                    normals[j],
                    di as u32,
                    dj as u32,
                    &mut scatter,
                    hist,
                    counts,
                );
            } else {
                pairs.push(
                    pc,
                    nc,
                    points[j],
                    normals[j],
                    di as u32,
                    NO_ROW,
                    &mut scatter,
                    hist,
                    counts,
                );
            }
        }
    }
    pairs.flush(&mut scatter, hist, counts);
    scatter.flush(hist, counts);
    for (r, &count) in counts.iter().enumerate() {
        if count > 0.0 {
            for h in &mut hist[r * FPFH_DIM..(r + 1) * FPFH_DIM] {
                *h *= 100.0 / count; // percentage normalization, as in PCL
            }
        }
    }
}

fn fpfh(
    searcher: &mut Searcher3,
    normals: &[Vec3],
    keypoints: &[usize],
    radius: f64,
    scratch: &mut PrepareScratch,
) -> Descriptors {
    let parallel = searcher.parallel();
    let n = searcher.len();

    // Phase 1 — neighborhoods of the key-points, one batched fan-out over
    // the *unique* key-points: duplicates share their first occurrence's
    // table row instead of paying a second search.
    let epoch = scratch.next_epoch(n);
    scratch.queries.clear();
    scratch.kp_rows.clear();
    {
        let pts = searcher.points();
        for &k in keypoints {
            if scratch.stamp[k] == epoch {
                scratch.kp_rows.push(scratch.remap[k]);
            } else {
                scratch.stamp[k] = epoch;
                let row = scratch.queries.len() as u32;
                scratch.remap[k] = row;
                scratch.kp_rows.push(row);
                scratch.queries.push(pts[k]);
            }
        }
    }
    scratch.kp_table.clear();
    searcher.radius_batch_into(
        &scratch.queries,
        radius,
        &mut scratch.kp_table,
        &mut scratch.groups,
    );
    // The grouped search lays rows out in traversal order; point each
    // key-point at the table row its query's hits landed in.
    for r in &mut scratch.kp_rows {
        *r = scratch.groups.inv[*r as usize];
    }

    // Phase 2 — an SPFH is needed at every key-point and every neighbor
    // of one. A fresh stamp epoch assigns each such point a dense id
    // (its row in `spfh_rows`) and records where its neighborhood lives;
    // the not-yet-known neighborhoods come from a second batched search.
    let epoch = scratch.next_epoch(n);
    scratch.needed.clear();
    scratch.needed_src.clear();
    for (&k, &krow) in keypoints.iter().zip(&scratch.kp_rows) {
        if scratch.stamp[k] == epoch {
            // Already discovered (as an earlier key-point's neighbor, or
            // a duplicate key-point): its neighborhood is the key-point
            // row, no second search needed.
            let dk = scratch.remap[k] as usize;
            if scratch.needed_src[dk] == PENDING {
                scratch.needed_src[dk] = krow;
            }
        } else {
            scratch.stamp[k] = epoch;
            scratch.remap[k] = scratch.needed.len() as u32;
            scratch.needed.push(k as u32);
            scratch.needed_src.push(krow);
        }
        for nb in scratch.kp_table.row(krow as usize) {
            let j = nb.index;
            if scratch.stamp[j] != epoch {
                scratch.stamp[j] = epoch;
                scratch.remap[j] = scratch.needed.len() as u32;
                scratch.needed.push(j as u32);
                scratch.needed_src.push(PENDING);
            }
        }
    }
    scratch.queries.clear();
    {
        let pts = searcher.points();
        for (di, src) in scratch.needed_src.iter_mut().enumerate() {
            if *src == PENDING {
                *src = MISSING_BIT | scratch.queries.len() as u32;
                scratch.queries.push(pts[scratch.needed[di] as usize]);
            }
        }
    }
    scratch.missing_table.clear();
    // These rows feed *only* the SPFH accumulation (phase 3), which is
    // order-independent: histogram increments are exact `+= 1.0` adds
    // and the evaluation side of a shared pair is picked by dense id,
    // not row position. Skipping the canonical within-row sort — the
    // dominant per-row cost of the grouped search on these ~radius³
    // neighborhoods — changes no output bit. The key-point rows of
    // phase 1 stay sorted: phase 4's weighted combine walks them in
    // canonical order.
    searcher.radius_batch_into_unsorted(
        &scratch.queries,
        radius,
        &mut scratch.missing_table,
        &mut scratch.groups,
    );
    // Same row remap as phase 1, for the just-searched missing rows.
    for src in &mut scratch.needed_src {
        if *src & MISSING_BIT != 0 {
            *src = MISSING_BIT | scratch.groups.inv[(*src & !MISSING_BIT) as usize];
        }
    }

    // Phase 3 — SPFH histograms into the dense rows.
    let needed_len = scratch.needed.len();
    scratch.spfh_rows.clear();
    scratch.spfh_rows.resize(needed_len * FPFH_DIM, 0.0);
    scratch.counts.clear();
    scratch.counts.resize(needed_len, 0.0);
    let points = searcher.points();
    if parallel.resolve_threads(needed_len) <= 1 {
        spfh_shared_pairs(points, normals, scratch, epoch);
    } else {
        // Parallel fallback: rows are independent, so evaluate each from
        // its own side (same bits, each pair computed twice).
        let needed = &scratch.needed;
        let needed_src = &scratch.needed_src;
        let kp_table = &scratch.kp_table;
        let missing_table = &scratch.missing_table;
        let rows = tigris_core::batch::parallel_map_indexed(needed_len, &parallel, |di| {
            let row = source_row(kp_table, missing_table, needed_src[di]);
            spfh_row(points, normals, needed[di] as usize, row)
        });
        for (di, row) in rows.iter().enumerate() {
            scratch.spfh_rows[di * FPFH_DIM..][..FPFH_DIM].copy_from_slice(row);
        }
    }

    // Phase 4 — distance-weighted combination per key-point. The
    // neighbor distance is recovered from the stored squared distance
    // (`sqrt` of an exact square — same bits as recomputing the norm).
    let mut data = Vec::with_capacity(keypoints.len() * FPFH_DIM);
    if parallel.resolve_threads(keypoints.len()) <= 1 {
        let mut acc = [0.0f64; FPFH_DIM];
        for (ki, &k) in keypoints.iter().enumerate() {
            let krow = scratch.kp_rows[ki] as usize;
            let dk = scratch.remap[k] as usize;
            let start = data.len();
            data.extend_from_slice(&scratch.spfh_rows[dk * FPFH_DIM..][..FPFH_DIM]);
            acc.fill(0.0);
            let mut weight_total = 0.0;
            for nb in scratch.kp_table.row(krow) {
                let j = nb.index;
                if j == k {
                    continue;
                }
                let d = nb.distance_squared.sqrt();
                if d < 1e-9 {
                    continue;
                }
                let w = 1.0 / d;
                let h = &scratch.spfh_rows[scratch.remap[j] as usize * FPFH_DIM..][..FPFH_DIM];
                simd::axpy(&mut acc, w, h);
                weight_total += w;
            }
            if weight_total > 0.0 {
                for (o, a) in data[start..].iter_mut().zip(acc.iter()) {
                    *o += a / weight_total;
                }
            }
        }
    } else {
        let kp_rows = &scratch.kp_rows;
        let remap = &scratch.remap;
        let kp_table = &scratch.kp_table;
        let spfh_rows = &scratch.spfh_rows;
        let rows = tigris_core::batch::parallel_map_indexed(keypoints.len(), &parallel, |ki| {
            let k = keypoints[ki];
            let krow = kp_rows[ki] as usize;
            let mut out = [0.0f64; FPFH_DIM];
            out.copy_from_slice(&spfh_rows[remap[k] as usize * FPFH_DIM..][..FPFH_DIM]);
            let mut acc = [0.0f64; FPFH_DIM];
            let mut weight_total = 0.0;
            for nb in kp_table.row(krow) {
                let j = nb.index;
                if j == k {
                    continue;
                }
                let d = nb.distance_squared.sqrt();
                if d < 1e-9 {
                    continue;
                }
                let w = 1.0 / d;
                let h = &spfh_rows[remap[j] as usize * FPFH_DIM..][..FPFH_DIM];
                simd::axpy(&mut acc, w, h);
                weight_total += w;
            }
            if weight_total > 0.0 {
                for (o, a) in out.iter_mut().zip(acc.iter()) {
                    *o += a / weight_total;
                }
            }
            out
        });
        for row in rows {
            data.extend_from_slice(&row);
        }
    }
    Descriptors { dim: FPFH_DIM, data }
}

// --------------------------------------------------------------------------
// SHOT (reduced binning)
// --------------------------------------------------------------------------

const SHOT_RADIAL: usize = 2;
const SHOT_ELEVATION: usize = 2;
const SHOT_AZIMUTH: usize = 4;
const SHOT_COS_BINS: usize = 10;
/// Reduced SHOT dimension: 16 sectors × 10 cosine bins.
pub const SHOT_DIM: usize = SHOT_RADIAL * SHOT_ELEVATION * SHOT_AZIMUTH * SHOT_COS_BINS;

/// Local reference frame from the distance-weighted neighborhood covariance
/// with SHOT's sign disambiguation (majority of points on the positive
/// side of each axis).
fn local_reference_frame(points: &[Vec3], center: Vec3, neighbors: &[usize], radius: f64) -> Mat3 {
    let mut cov = Mat3::ZERO;
    let mut total = 0.0;
    for &j in neighbors {
        let d = points[j] - center;
        let w = (radius - d.norm()).max(0.0);
        cov = cov + Mat3::outer(d, d).scale(w);
        total += w;
    }
    if total > 0.0 {
        cov = cov.scale(1.0 / total);
    }
    let eig = symmetric_eigen3(&cov);
    // Descending eigenvalues: x = largest, z = smallest.
    let mut x = eig.vectors.col(2);
    let mut z = eig.vectors.col(0);
    // Sign disambiguation.
    let mut x_pos = 0i64;
    let mut z_pos = 0i64;
    for &j in neighbors {
        let d = points[j] - center;
        x_pos += if d.dot(x) >= 0.0 { 1 } else { -1 };
        z_pos += if d.dot(z) >= 0.0 { 1 } else { -1 };
    }
    if x_pos < 0 {
        x = -x;
    }
    if z_pos < 0 {
        z = -z;
    }
    let y = z.cross(x);
    Mat3::from_cols(x, y, z)
}

fn shot(
    searcher: &mut Searcher3,
    normals: &[Vec3],
    keypoints: &[usize],
    radius: f64,
) -> Descriptors {
    let parallel = searcher.parallel();
    // One batched radius fan-out, then pure per-key-point histogram math
    // reading the cloud in place (only the key-points are copied out,
    // since the searcher is mutably borrowed during the batch).
    let kp_pts: Vec<Vec3> = {
        let pts = searcher.points();
        keypoints.iter().map(|&k| pts[k]).collect()
    };
    let neighborhoods = searcher.radius_batch(&kp_pts, radius);
    let points = searcher.points();
    let rows = tigris_core::batch::parallel_map_indexed(keypoints.len(), &parallel, |ki| {
        let k = keypoints[ki];
        let neighbors: Vec<usize> =
            neighborhoods[ki].iter().map(|n| n.index).filter(|&j| j != k).collect();
        let mut hist = vec![0.0f64; SHOT_DIM];
        if neighbors.len() >= 5 {
            let lrf = local_reference_frame(points, points[k], &neighbors, radius);
            let zn = lrf.col(2);
            for &j in &neighbors {
                let d = points[j] - points[k];
                let local = lrf.transpose() * d;
                let r = local.norm();
                if r < 1e-9 {
                    continue;
                }
                let radial = usize::from(r > radius * 0.5).min(SHOT_RADIAL - 1);
                let elevation = usize::from(local.z > 0.0).min(SHOT_ELEVATION - 1);
                let azimuth_angle = local.y.atan2(local.x) + std::f64::consts::PI;
                let azimuth = ((azimuth_angle / std::f64::consts::TAU * SHOT_AZIMUTH as f64)
                    as usize)
                    .min(SHOT_AZIMUTH - 1);
                let cosine = normals[j].dot(zn).clamp(-1.0, 1.0);
                let cos_bin =
                    (((cosine + 1.0) / 2.0 * SHOT_COS_BINS as f64) as usize).min(SHOT_COS_BINS - 1);
                let sector = ((radial * SHOT_ELEVATION + elevation) * SHOT_AZIMUTH + azimuth)
                    * SHOT_COS_BINS;
                hist[sector + cos_bin] += 1.0;
            }
            // L2 normalization (SHOT's signature normalization).
            let norm = hist.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 0.0 {
                for h in &mut hist {
                    *h /= norm;
                }
            }
        }
        hist
    });
    let mut data = Vec::with_capacity(keypoints.len() * SHOT_DIM);
    for row in rows {
        data.extend_from_slice(&row);
    }
    Descriptors { dim: SHOT_DIM, data }
}

// --------------------------------------------------------------------------
// 3DSC
// --------------------------------------------------------------------------

const SC_RADIAL: usize = 4;
const SC_ELEVATION: usize = 3;
const SC_AZIMUTH: usize = 6;
/// 3DSC dimension.
pub const SC3D_DIM: usize = SC_RADIAL * SC_ELEVATION * SC_AZIMUTH;

fn sc3d(
    searcher: &mut Searcher3,
    normals: &[Vec3],
    keypoints: &[usize],
    radius: f64,
) -> Descriptors {
    let r_min: f64 = (radius * 0.05).max(1e-3);
    let log_span = (radius / r_min).ln();
    let parallel = searcher.parallel();
    let kp_pts: Vec<Vec3> = {
        let pts = searcher.points();
        keypoints.iter().map(|&k| pts[k]).collect()
    };
    let neighborhoods = searcher.radius_batch(&kp_pts, radius);
    let points = searcher.points();
    let rows = tigris_core::batch::parallel_map_indexed(keypoints.len(), &parallel, |ki| {
        let k = keypoints[ki];
        let neighbors: Vec<usize> =
            neighborhoods[ki].iter().map(|n| n.index).filter(|&j| j != k).collect();
        let mut hist = vec![0.0f64; SC3D_DIM];
        if neighbors.len() >= 5 {
            // North pole = the point's normal; azimuth fixed by the LRF.
            let north = normals[k];
            let lrf = local_reference_frame(points, points[k], &neighbors, radius);
            let mut east = lrf.col(0) - north * lrf.col(0).dot(north);
            east = east.normalized().unwrap_or_else(|| {
                // Degenerate LRF: pick any perpendicular.
                let h = if north.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
                north.cross(h).normalized().unwrap_or(Vec3::X)
            });
            let south_east = north.cross(east);

            for &j in &neighbors {
                let d = points[j] - points[k];
                let r = d.norm();
                if r < r_min {
                    continue;
                }
                let radial =
                    (((r / r_min).ln() / log_span * SC_RADIAL as f64) as usize).min(SC_RADIAL - 1);
                let cos_elev = (d.dot(north) / r).clamp(-1.0, 1.0);
                let elevation =
                    (((cos_elev + 1.0) / 2.0 * SC_ELEVATION as f64) as usize).min(SC_ELEVATION - 1);
                let az = d.dot(south_east).atan2(d.dot(east)) + std::f64::consts::PI;
                let azimuth =
                    ((az / std::f64::consts::TAU * SC_AZIMUTH as f64) as usize).min(SC_AZIMUTH - 1);
                hist[(radial * SC_ELEVATION + elevation) * SC_AZIMUTH + azimuth] += 1.0;
            }
            let total: f64 = hist.iter().sum();
            if total > 0.0 {
                for h in &mut hist {
                    *h /= total;
                }
            }
        }
        hist
    });
    let mut data = Vec::with_capacity(keypoints.len() * SC3D_DIM);
    for row in rows {
        data.extend_from_slice(&row);
    }
    Descriptors { dim: SC3D_DIM, data }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NormalAlgorithm;
    use crate::normal::estimate_normals;
    use tigris_core::BatchConfig;

    /// Corner + plane scene with distinctive local geometry.
    fn scene() -> Vec<Vec3> {
        let mut pts = Vec::new();
        for i in 0..25 {
            for j in 0..25 {
                pts.push(Vec3::new(i as f64 * 0.1, j as f64 * 0.1, 0.0));
            }
        }
        for i in 0..25 {
            for k in 1..15 {
                pts.push(Vec3::new(i as f64 * 0.1, 1.2, k as f64 * 0.1));
            }
        }
        pts
    }

    fn with_normals(pts: &[Vec3]) -> (Searcher3, Vec<Vec3>) {
        let mut s = Searcher3::classic(pts);
        let normals = estimate_normals(&mut s, 0.3, NormalAlgorithm::PlaneSvd);
        (s, normals)
    }

    #[test]
    fn fpfh_has_right_shape_and_normalization() {
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        let kps = vec![0, 100, 300];
        let d =
            compute_descriptors(&mut s, &normals, &kps, DescriptorAlgorithm::Fpfh { radius: 0.5 });
        assert_eq!(d.dim, FPFH_DIM);
        assert_eq!(d.len(), 3);
        // Each of the 3 sub-histograms of the SPFH sums to ~100 before the
        // neighbor average; the final FPFH sub-histogram sums to ~200.
        for i in 0..3 {
            let row = d.row(i);
            let s0: f64 = row[..11].iter().sum();
            assert!(s0 > 150.0 && s0 < 250.0, "alpha hist sum = {s0}");
            assert!(row.iter().all(|v| *v >= 0.0));
        }
    }

    #[test]
    fn fpfh_similar_geometry_similar_descriptor() {
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        // Two interior ground points vs. one wall point.
        let ground_a = 12 * 25 + 6; // interior ground
        let ground_b = 13 * 25 + 7;
        let wall = 625 + 12 * 14 + 7; // interior wall
        let d = compute_descriptors(
            &mut s,
            &normals,
            &[ground_a, ground_b, wall],
            DescriptorAlgorithm::Fpfh { radius: 0.45 },
        );
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
        };
        let same = dist(d.row(0), d.row(1));
        let diff = dist(d.row(0), d.row(2));
        assert!(same < diff, "same-geometry distance {same} should be < {diff}");
    }

    #[test]
    fn fpfh_parallel_matches_serial_bitwise() {
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        let kps = vec![0, 100, 300, 412, 700];
        let serial =
            compute_descriptors(&mut s, &normals, &kps, DescriptorAlgorithm::Fpfh { radius: 0.5 });
        let mut sp = Searcher3::classic(&pts);
        sp.set_parallel(BatchConfig { threads: 4, min_chunk: 2 });
        let parallel =
            compute_descriptors(&mut sp, &normals, &kps, DescriptorAlgorithm::Fpfh { radius: 0.5 });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn duplicate_keypoints_share_rows() {
        // Duplicates are fetched once but still get their own (identical)
        // output rows.
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        let d = compute_descriptors(
            &mut s,
            &normals,
            &[100, 100, 300],
            DescriptorAlgorithm::Fpfh { radius: 0.5 },
        );
        assert_eq!(d.len(), 3);
        assert_eq!(d.row(0), d.row(1));
        assert_ne!(d.row(0), d.row(2));
    }

    #[test]
    fn warm_scratch_fpfh_reuses_buffers() {
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        let kps = vec![0, 100, 300];
        let mut scratch = PrepareScratch::new();
        let first = compute_descriptors_with(
            &mut s,
            &normals,
            &kps,
            DescriptorAlgorithm::Fpfh { radius: 0.5 },
            &mut scratch,
        );
        scratch.note_frame_end();
        let grown = scratch.bytes_grown();
        let second = compute_descriptors_with(
            &mut s,
            &normals,
            &kps,
            DescriptorAlgorithm::Fpfh { radius: 0.5 },
            &mut scratch,
        );
        scratch.note_frame_end();
        assert_eq!(first, second);
        assert_eq!(scratch.bytes_grown(), grown, "warm frame must not grow scratch");
        assert_eq!(scratch.reuses(), 1);
    }

    #[test]
    fn shot_shape_and_unit_norm() {
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        let d = compute_descriptors(
            &mut s,
            &normals,
            &[100, 200],
            DescriptorAlgorithm::Shot { radius: 0.5 },
        );
        assert_eq!(d.dim, SHOT_DIM);
        for i in 0..2 {
            let norm: f64 = d.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9, "row {i} norm {norm}");
        }
    }

    #[test]
    fn sc3d_shape_and_simplex_normalization() {
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        let d = compute_descriptors(
            &mut s,
            &normals,
            &[100],
            DescriptorAlgorithm::Sc3d { radius: 0.5 },
        );
        assert_eq!(d.dim, SC3D_DIM);
        let total: f64 = d.row(0).iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sparse_neighborhoods_give_zero_descriptors() {
        let pts = vec![Vec3::ZERO, Vec3::new(50.0, 0.0, 0.0)];
        let normals = vec![Vec3::Z, Vec3::Z];
        let mut s = Searcher3::classic(&pts);
        let d =
            compute_descriptors(&mut s, &normals, &[0], DescriptorAlgorithm::Shot { radius: 0.5 });
        assert!(d.row(0).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn empty_keypoints() {
        let pts = scene();
        let (mut s, normals) = with_normals(&pts);
        let d =
            compute_descriptors(&mut s, &normals, &[], DescriptorAlgorithm::Fpfh { radius: 0.5 });
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn mismatched_normals_panic() {
        let pts = scene();
        let mut s = Searcher3::classic(&pts);
        compute_descriptors(&mut s, &[], &[0], DescriptorAlgorithm::Fpfh { radius: 0.5 });
    }

    #[test]
    fn pair_features_are_antisymmetric_safe() {
        // Coincident points are rejected.
        assert!(pair_features(Vec3::ZERO, Vec3::Z, Vec3::ZERO, Vec3::Z).is_none());
        // Regular pair produces angles in range.
        let (a, p, t) = pair_features(Vec3::ZERO, Vec3::Z, Vec3::X, Vec3::Y).unwrap();
        assert!((-1.0..=1.0).contains(&a));
        assert!((-1.0..=1.0).contains(&p));
        assert!((-std::f64::consts::PI..=std::f64::consts::PI).contains(&t));
    }

    #[test]
    fn descriptors_row_accessor() {
        let d = Descriptors { dim: 2, data: vec![1.0, 2.0, 3.0, 4.0] };
        assert_eq!(d.len(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
    }
}

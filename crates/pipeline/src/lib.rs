//! The configurable point-cloud registration pipeline (paper Sec. 3,
//! Fig. 2, Tbl. 1).
//!
//! The pipeline has two phases. **Initial estimation** matches sparse
//! salient points: normal estimation → key-point detection → descriptor
//! calculation → key-point correspondence estimation (KPCE) →
//! correspondence rejection → initial transform. **Fine-tuning** runs
//! Iterative Closest Point over the dense clouds: raw-point correspondence
//! estimation (RPCE) → transformation estimation, iterated to convergence.
//!
//! Execution is layered around per-frame artifacts: [`prepare_frame`]
//! turns one cloud into a [`PreparedFrame`] (downsampled points behind an
//! owned searcher, normals, key-points, descriptors) and
//! [`register_prepared`] matches two prepared frames; [`register`] is
//! exactly prepare + prepare + match. Streaming consumers — the
//! [`Odometer`], matching-knob DSE sweeps ([`dse::sweep_matching`]) —
//! reuse preparations so no frame's front end ever runs twice.
//!
//! Every algorithmic and parametric knob of the paper's Tbl. 1 is exposed
//! through [`RegistrationConfig`]; the design-space exploration of Fig. 3
//! sweeps them via [`dse`].
//!
//! All neighbor searches go through [`search::Searcher3`], a metering /
//! injection / logging wrapper over the pluggable
//! `tigris_core::SearchIndex` seam: the classic KD-tree, the two-stage
//! tree, approximate leader/follower search, the brute-force oracle, and
//! registry-resolved custom backends (e.g. `tigris-accel`'s online
//! accelerator model) all serve the identical pipeline. Configurations are
//! checked up front by [`RegistrationConfig::builder`], which rejects
//! invalid knobs with a typed [`config::ConfigError`].
//!
//! # Example
//!
//! ```no_run
//! use tigris_pipeline::{register, RegistrationConfig};
//! use tigris_data::{Sequence, SequenceConfig};
//!
//! let seq = Sequence::generate(&SequenceConfig::tiny(), 1);
//! let cfg = RegistrationConfig::default();
//! let result = register(seq.frame(1), seq.frame(0), &cfg).unwrap();
//! println!("estimated transform: {}", result.transform);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod correspond;
pub mod descriptor;
pub mod dse;
pub mod icp;
pub mod keypoint;
pub mod normal;
pub mod odometry;
pub mod pipeline;
pub mod profile;
pub mod reject;
pub mod scratch;
pub mod search;
pub mod transform;

pub use config::{
    ConfigError, ConvergenceCriteria, DescriptorAlgorithm, DesignPoint, ErrorMetric,
    KeypointAlgorithm, NormalAlgorithm, RegistrationConfig, RegistrationConfigBuilder,
    RejectionAlgorithm, SearchBackendConfig, SolverAlgorithm,
};
pub use correspond::Correspondence;
pub use icp::IcpResult;
pub use odometry::{Odometer, OdometryStep};
pub use pipeline::prepare_frame_with;
pub use pipeline::{
    prepare_frame, prepare_frame_from_searcher, register, register_prepared,
    register_prepared_with_prior, register_with_searchers, PreparedFrame, RegistrationError,
    RegistrationResult, PRIOR_ROTATION_SLACK, PRIOR_TRANSLATION_SLACK,
};
pub use profile::{Stage, StageProfile};
pub use scratch::{GroupScratch, NeighborTable, PrepareScratch};
pub use search::{Injection, Searcher3};

//! Sequential LiDAR odometry on top of pairwise registration — the paper's
//! primary motivating application (Sec. 2.2: "a mobile robot estimates its
//! real-time position and orientation (a.k.a., odometry) by aligning two
//! consecutive frames").
//!
//! The [`Odometer`] consumes frames one at a time, registers each against
//! its predecessor, and chains the relative transforms into world poses.
//! A constant-velocity *motion prior* seeds each registration's fine-tuning
//! with the previous inter-frame motion — the standard odometry trick that
//! both accelerates ICP convergence and suppresses symmetric-scene
//! mismatches.
//!
//! Streaming is where the pipeline's prepare/match split pays off: every
//! frame is first a registration *source* and one step later the
//! *target*, so the odometer runs [`prepare_frame`](crate::prepare_frame) exactly once per
//! frame and hands the [`PreparedFrame`] forward — normals, key-points,
//! descriptors and the KD-tree are all computed once, and each step pays
//! only one frame preparation plus the pairwise match
//! (`profile.frames_reused` counts the savings).

use tigris_geom::{PointCloud, RigidTransform};

use crate::config::RegistrationConfig;
use crate::pipeline::{
    prepare_frame_with, register_prepared_with_prior, PreparedFrame, RegistrationError,
    RegistrationResult,
};
use crate::scratch::PrepareScratch;

/// Per-frame odometry output.
#[derive(Debug, Clone)]
pub struct OdometryStep {
    /// Relative transform mapping this frame into the previous frame.
    pub relative: RigidTransform,
    /// Accumulated world pose of this frame.
    pub pose: RigidTransform,
    /// The underlying registration result.
    pub registration: RegistrationResult,
}

/// Sequential odometer.
///
/// # Example
///
/// ```no_run
/// use tigris_data::{Sequence, SequenceConfig};
/// use tigris_pipeline::odometry::Odometer;
/// use tigris_pipeline::RegistrationConfig;
///
/// let seq = Sequence::generate(&SequenceConfig::tiny(), 1);
/// let mut odo = Odometer::new(RegistrationConfig::default());
/// for i in 0..seq.len() {
///     if let Some(step) = odo.push(seq.frame(i)).unwrap() {
///         println!("frame {i}: pose {}", step.pose);
///     }
/// }
/// ```
#[derive(Debug)]
pub struct Odometer {
    config: RegistrationConfig,
    /// The previous frame's full preparation (downsampled points, index,
    /// normals, key-points, descriptors) — reused as the target of the
    /// next registration so each frame's entire front end runs exactly
    /// once.
    prev: Option<PreparedFrame>,
    pose: RigidTransform,
    /// Constant-velocity prior: the last estimated relative motion.
    velocity: Option<RigidTransform>,
    frames_processed: usize,
    /// Front-end working buffers, reused across every streamed frame so
    /// steady-state preparation allocates nothing transient.
    scratch: PrepareScratch,
}

impl Odometer {
    /// Creates an odometer with the given registration configuration.
    pub fn new(config: RegistrationConfig) -> Self {
        Odometer {
            config,
            prev: None,
            pose: RigidTransform::IDENTITY,
            velocity: None,
            frames_processed: 0,
            scratch: PrepareScratch::new(),
        }
    }

    /// Current accumulated world pose (identity until the first frame).
    pub fn pose(&self) -> &RigidTransform {
        &self.pose
    }

    /// Frames consumed so far.
    pub fn frames_processed(&self) -> usize {
        self.frames_processed
    }

    /// The configuration in use.
    pub fn config(&self) -> &RegistrationConfig {
        &self.config
    }

    /// The retained reference frame — the preparation of the most recently
    /// pushed frame, which the *next* push will register against. `None`
    /// before the first successful preparation.
    ///
    /// Consumers layered on top of the odometer (the mapping subsystem's
    /// `Mapper`) read the current frame's points, descriptors and key-points
    /// from here instead of re-running any front-end stage.
    pub fn reference_frame(&self) -> Option<&PreparedFrame> {
        self.prev.as_ref()
    }

    /// Mutable access to the retained reference frame, for layered
    /// consumers that need to *match against* it (loop-closure
    /// verification registers the current frame against a stored keyframe
    /// via `register_prepared`, which meters both searchers).
    pub fn reference_frame_mut(&mut self) -> Option<&mut PreparedFrame> {
        self.prev.as_mut()
    }

    /// Consumes the next frame. Returns `Ok(None)` for the very first frame
    /// (nothing to register against) and `Ok(Some(step))` afterwards.
    ///
    /// The frame is prepared exactly once (front end + index build) and
    /// kept as the target of the *next* push; only the pairwise-matching
    /// layer runs against the previous frame's retained preparation.
    ///
    /// The constant-velocity prior is passed straight to the matching
    /// layer: when the previous step estimated motion `v`, the
    /// initial-estimate gates tighten to `v`'s magnitude plus
    /// [`crate::pipeline::PRIOR_TRANSLATION_SLACK`] /
    /// [`crate::pipeline::PRIOR_ROTATION_SLACK`], discarding front-end
    /// estimates that disagree wildly with the expected motion.
    ///
    /// # Errors
    ///
    /// Propagates [`RegistrationError`] from frame preparation or pairwise
    /// matching, including [`RegistrationError::UnknownBackend`] for an
    /// unresolvable `Custom` backend. A frame that fails to prepare is
    /// *not* counted in [`Odometer::frames_processed`]. When a prepared
    /// frame fails to *match* its predecessor, the new frame replaces the
    /// predecessor as the reference (so the stream keeps going, minus the
    /// failed pair's motion) and the velocity prior resets. A reference
    /// frame discarded this way without ever matching successfully keeps
    /// its preparation cost out of every result profile, so summed
    /// `frames_prepared` counts only hold exactly on failure-free
    /// streams.
    pub fn push(&mut self, frame: &PointCloud) -> Result<Option<OdometryStep>, RegistrationError> {
        self.push_retiring(frame).map(|(step, _retired)| step)
    }

    /// [`Odometer::push`], additionally handing back the *retired*
    /// reference frame — the preparation the new frame displaced, whose
    /// full front end (points, normals, key-points, descriptors, index)
    /// remains valid and reusable.
    ///
    /// This is the hand-off the mapping subsystem builds on: each streamed
    /// frame is prepared exactly once, serves as the odometer's reference
    /// for one step, and is then surrendered to the caller (e.g. stored as
    /// a submap keyframe for loop-closure verification) instead of being
    /// dropped. The retired slot is `None` for the first frame (nothing
    /// displaced) and on errors (a failed *match* keeps the old reference
    /// handling of [`Odometer::push`]: the freshly prepared frame replaces
    /// it, and the displaced frame is dropped with the error).
    ///
    /// # Errors
    ///
    /// As [`Odometer::push`].
    pub fn push_retiring(
        &mut self,
        frame: &PointCloud,
    ) -> Result<(Option<OdometryStep>, Option<PreparedFrame>), RegistrationError> {
        let mut source = prepare_frame_with(frame, &self.config, &mut self.scratch)?;
        // Count the frame only once it actually prepared — an empty or
        // backend-less frame must not inflate the processed tally.
        self.frames_processed += 1;
        let Some(mut target) = self.prev.take() else {
            self.prev = Some(source);
            return Ok((None, None));
        };

        let matched = register_prepared_with_prior(
            &mut source,
            &mut target,
            &self.config,
            self.velocity.as_ref(),
        );
        let result = match matched {
            Ok(result) => result,
            Err(err) => {
                // The pair failed to match (e.g. starved on a degraded
                // frame), but the new frame prepared fine — keep it as
                // the reference so the stream continues instead of
                // silently resetting. The failed pair's motion is simply
                // absent from the pose chain, and the now-unreliable
                // velocity prior is dropped.
                self.prev = Some(source);
                self.velocity = None;
                return Err(err);
            }
        };

        self.velocity = Some(result.transform);
        self.pose = self.pose * result.transform;
        self.prev = Some(source);
        Ok((
            Some(OdometryStep {
                relative: result.transform,
                pose: self.pose,
                registration: result,
            }),
            Some(target),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigris_geom::Vec3;

    /// A structured scene cloud reused across "frames" with known motion.
    fn scene_cloud() -> PointCloud {
        let mut pts = Vec::new();
        let step = 0.15;
        for i in 0..30 {
            for j in 0..30 {
                pts.push(Vec3::new(i as f64 * step, j as f64 * step, 0.0));
            }
        }
        for i in 0..30 {
            for k in 1..12 {
                pts.push(Vec3::new(i as f64 * step, 4.0, k as f64 * step));
            }
        }
        for j in 0..14 {
            for k in 1..12 {
                pts.push(Vec3::new(4.2, j as f64 * step, k as f64 * step));
            }
        }
        // Clutter for distinctiveness.
        for i in 0..8 {
            for k in 0..5 {
                pts.push(Vec3::new(
                    1.0 + 0.1 * i as f64,
                    2.0 + 0.07 * k as f64,
                    0.4 + 0.1 * k as f64,
                ));
            }
        }
        PointCloud::from_points(pts)
    }

    fn fast_config() -> RegistrationConfig {
        RegistrationConfig {
            voxel_size: 0.0,
            keypoint: crate::config::KeypointAlgorithm::Uniform { voxel: 0.9 },
            max_correspondence_distance: 1.0,
            ..RegistrationConfig::default()
        }
    }

    #[test]
    fn first_frame_yields_no_step() {
        let mut odo = Odometer::new(fast_config());
        let out = odo.push(&scene_cloud()).unwrap();
        assert!(out.is_none());
        assert_eq!(odo.frames_processed(), 1);
        assert!(odo.pose().is_identity(0.0));
    }

    #[test]
    fn tracks_constant_motion() {
        // The sensor moves backwards relative to the (static) scene, so each
        // frame sees the scene shifted by -delta.
        let world = scene_cloud();
        let delta = RigidTransform::from_translation(Vec3::new(0.05, 0.02, 0.0));
        let mut odo = Odometer::new(fast_config());
        let mut expected = RigidTransform::IDENTITY;
        let mut last_pose = RigidTransform::IDENTITY;
        for _ in 0..4 {
            // Frame i = world seen from pose delta^i: cloud = (delta^i)^-1(world).
            let frame = world.transformed(&expected.inverse());
            if let Some(step) = odo.push(&frame).unwrap() {
                last_pose = step.pose;
            }
            expected = expected * delta;
        }
        // After 4 frames the pose should approximate delta^3.
        let gt = RigidTransform::from_translation(Vec3::new(0.15, 0.06, 0.0));
        assert!(
            (last_pose.translation - gt.translation).norm() < 0.05,
            "pose {} vs gt {}",
            last_pose.translation,
            gt.translation
        );
    }

    #[test]
    fn velocity_prior_engages_after_first_pair() {
        let world = scene_cloud();
        let delta = RigidTransform::from_translation(Vec3::new(0.06, 0.0, 0.0));
        let mut odo = Odometer::new(fast_config());
        odo.push(&world).unwrap();
        let s1 = odo.push(&world.transformed(&delta.inverse())).unwrap().unwrap();
        assert!(odo.velocity.is_some());
        // Second pair: the prior is available and convergence is at least
        // as fast.
        let two = world.transformed(&(delta * delta).inverse());
        let s2 = odo.push(&two).unwrap().unwrap();
        assert!(s2.registration.icp_iterations <= s1.registration.icp_iterations + 2);
    }

    #[test]
    fn odometer_runs_on_the_brute_force_oracle() {
        let world = scene_cloud();
        let mut cfg = fast_config();
        cfg.backend = crate::config::SearchBackendConfig::BruteForce;
        let delta = RigidTransform::from_translation(Vec3::new(0.05, 0.0, 0.0));
        let mut odo = Odometer::new(cfg);
        odo.push(&world).unwrap();
        let step = odo.push(&world.transformed(&delta.inverse())).unwrap().unwrap();
        assert!(
            (step.relative.translation - delta.translation).norm() < 0.05,
            "oracle odometry drifted: {}",
            step.relative.translation
        );
    }

    #[test]
    fn kd_trees_are_built_once_per_frame() {
        let world = scene_cloud();
        let mut odo = Odometer::new(fast_config());
        odo.push(&world).unwrap();
        let step = odo
            .push(&world.transformed(
                &RigidTransform::from_translation(Vec3::new(0.05, 0.0, 0.0)).inverse(),
            ))
            .unwrap()
            .unwrap();
        // The pair's profile contains exactly the two trees' build time
        // (smoke check: nonzero but sane).
        assert!(step.registration.profile.kd_build_time > std::time::Duration::ZERO);
    }

    #[test]
    fn failed_frames_are_not_counted_as_processed() {
        let mut odo = Odometer::new(fast_config());
        assert_eq!(odo.push(&PointCloud::new()).unwrap_err(), RegistrationError::EmptyCloud);
        assert_eq!(odo.frames_processed(), 0);
        // A good frame afterwards is counted normally.
        odo.push(&scene_cloud()).unwrap();
        assert_eq!(odo.frames_processed(), 1);
    }

    #[test]
    fn matching_failure_keeps_the_new_frame_as_reference() {
        let world = scene_cloud();
        let mut odo = Odometer::new(fast_config());
        odo.push(&world).unwrap();
        // A translated copy 500 m away: descriptors match, but the gated
        // initial estimate collapses to identity and RPCE finds nothing
        // within range → the pair starves.
        let far = world.transformed(&RigidTransform::from_translation(Vec3::new(500.0, 0.0, 0.0)));
        assert_eq!(odo.push(&far).unwrap_err(), RegistrationError::IcpStarved);
        // The frame prepared fine, so it counts — and becomes the new
        // reference instead of silently resetting the stream.
        assert_eq!(odo.frames_processed(), 2);
        let delta = RigidTransform::from_translation(Vec3::new(0.05, 0.0, 0.0));
        let step = odo
            .push(&far.transformed(&delta.inverse()))
            .unwrap()
            .expect("the push after a failed pair must register against the retained frame");
        assert!(
            (step.relative.translation - delta.translation).norm() < 0.05,
            "relative {} vs {}",
            step.relative.translation,
            delta.translation
        );
        // The retained frame's preparation was still unbilled (its first
        // match failed), so this pair bills both preparations.
        assert_eq!(step.registration.profile.frames_prepared, 2);
    }

    #[test]
    fn push_retiring_hands_back_the_displaced_preparation() {
        let world = scene_cloud();
        let delta = RigidTransform::from_translation(Vec3::new(0.05, 0.0, 0.0));
        let mut odo = Odometer::new(fast_config());
        assert!(odo.reference_frame().is_none());
        // First frame: nothing displaced, reference retained.
        let (step, retired) = odo.push_retiring(&world).unwrap();
        assert!(step.is_none() && retired.is_none());
        let ref_len = odo.reference_frame().unwrap().len();
        assert!(ref_len > 0);
        // Second frame: the first frame's preparation is retired intact
        // and already billed to the pair's result.
        let (step, retired) = odo.push_retiring(&world.transformed(&delta.inverse())).unwrap();
        assert!(step.is_some());
        let retired = retired.expect("the first frame must be retired");
        assert_eq!(retired.len(), ref_len);
        assert!(!retired.descriptors().is_empty());
        // The new reference is the just-pushed frame, mutably reachable.
        assert!(odo.reference_frame_mut().is_some());
    }

    #[test]
    fn streamed_frames_prepare_once_and_reuse_afterwards() {
        let world = scene_cloud();
        let delta = RigidTransform::from_translation(Vec3::new(0.04, 0.01, 0.0));
        let mut odo = Odometer::new(fast_config());
        let mut motion = RigidTransform::IDENTITY;
        let mut prepared = 0;
        let mut reused = 0;
        let frames = 5;
        for i in 0..frames {
            if let Some(step) = odo.push(&world.transformed(&motion.inverse())).unwrap() {
                let p = &step.registration.profile;
                if i == 1 {
                    // First pair bills both frames' preparations.
                    assert_eq!(p.frames_prepared, 2, "step {i}");
                    assert_eq!(p.frames_reused, 0, "step {i}");
                } else {
                    // Later steps prepare the new frame and reuse the old.
                    assert_eq!(p.frames_prepared, 1, "step {i}");
                    assert_eq!(p.frames_reused, 1, "step {i}");
                    assert!(p.prepare_time > std::time::Duration::ZERO);
                }
                assert!(p.match_time > std::time::Duration::ZERO);
                prepared += p.frames_prepared;
                reused += p.frames_reused;
            }
            motion = motion * delta;
        }
        // Across the whole run: every frame's front end ran exactly once,
        // and every interior frame served a second registration for free.
        assert_eq!(prepared, frames);
        assert_eq!(reused, frames - 2);
    }

    #[test]
    fn steady_state_preparation_is_allocation_free() {
        // The odometer owns one PrepareScratch across all frames: once the
        // buffers warmed up on the first frames, later preparations must
        // complete without growing anything.
        let world = scene_cloud();
        let delta = RigidTransform::from_translation(Vec3::new(0.04, 0.01, 0.0));
        let mut odo = Odometer::new(fast_config());
        let mut motion = RigidTransform::IDENTITY;
        let mut last = None;
        for _ in 0..5 {
            if let Some(step) = odo.push(&world.transformed(&motion.inverse())).unwrap() {
                last = Some(step);
            }
            motion = motion * delta;
        }
        let p = &last.unwrap().registration.profile;
        assert_eq!(p.scratch_bytes_grown, 0, "warm frames must not grow the scratch");
        assert_eq!(p.scratch_reuses, 1, "the warm preparation must count as a scratch reuse");
    }
}

//! Sequential LiDAR odometry on top of pairwise registration — the paper's
//! primary motivating application (Sec. 2.2: "a mobile robot estimates its
//! real-time position and orientation (a.k.a., odometry) by aligning two
//! consecutive frames").
//!
//! The [`Odometer`] consumes frames one at a time, registers each against
//! its predecessor, and chains the relative transforms into world poses.
//! A constant-velocity *motion prior* seeds each registration's fine-tuning
//! with the previous inter-frame motion — the standard odometry trick that
//! both accelerates ICP convergence and suppresses symmetric-scene
//! mismatches.

use tigris_geom::{PointCloud, RigidTransform};

use crate::config::RegistrationConfig;
use crate::pipeline::{register_with_searchers, RegistrationError, RegistrationResult};
use crate::search::Searcher3;

/// Per-frame odometry output.
#[derive(Debug, Clone)]
pub struct OdometryStep {
    /// Relative transform mapping this frame into the previous frame.
    pub relative: RigidTransform,
    /// Accumulated world pose of this frame.
    pub pose: RigidTransform,
    /// The underlying registration result.
    pub registration: RegistrationResult,
}

/// Sequential odometer.
///
/// # Example
///
/// ```no_run
/// use tigris_data::{Sequence, SequenceConfig};
/// use tigris_pipeline::odometry::Odometer;
/// use tigris_pipeline::RegistrationConfig;
///
/// let seq = Sequence::generate(&SequenceConfig::tiny(), 1);
/// let mut odo = Odometer::new(RegistrationConfig::default());
/// for i in 0..seq.len() {
///     if let Some(step) = odo.push(seq.frame(i)).unwrap() {
///         println!("frame {i}: pose {}", step.pose);
///     }
/// }
/// ```
#[derive(Debug)]
pub struct Odometer {
    config: RegistrationConfig,
    /// Searcher over the previous (downsampled) frame — reused as the
    /// target of the next registration so each frame's KD-tree is built
    /// exactly once.
    prev: Option<Searcher3>,
    pose: RigidTransform,
    /// Constant-velocity prior: the last estimated relative motion.
    velocity: Option<RigidTransform>,
    frames_processed: usize,
}

impl Odometer {
    /// Creates an odometer with the given registration configuration.
    pub fn new(config: RegistrationConfig) -> Self {
        Odometer {
            config,
            prev: None,
            pose: RigidTransform::IDENTITY,
            velocity: None,
            frames_processed: 0,
        }
    }

    /// Current accumulated world pose (identity until the first frame).
    pub fn pose(&self) -> &RigidTransform {
        &self.pose
    }

    /// Frames consumed so far.
    pub fn frames_processed(&self) -> usize {
        self.frames_processed
    }

    /// The configuration in use.
    pub fn config(&self) -> &RegistrationConfig {
        &self.config
    }

    fn build_searcher(&self, cloud: &PointCloud) -> Result<Searcher3, RegistrationError> {
        let pts = if self.config.voxel_size > 0.0 {
            cloud.voxel_downsample(self.config.voxel_size).points().to_vec()
        } else {
            cloud.points().to_vec()
        };
        // The same seam `register()` uses: any backend config — including
        // brute force and registry-resolved customs like the accelerator —
        // serves the odometer.
        crate::pipeline::build_searcher(&pts, &self.config.backend)
    }

    /// Consumes the next frame. Returns `Ok(None)` for the very first frame
    /// (nothing to register against) and `Ok(Some(step))` afterwards.
    ///
    /// The constant-velocity prior seeds fine-tuning: when the previous
    /// step estimated motion `v`, the new registration starts from `v`
    /// instead of the front-end estimate whenever the front-end estimate
    /// disagrees wildly with `v` (beyond 2 m or 0.2 rad).
    ///
    /// # Errors
    ///
    /// Propagates [`RegistrationError`] from the pairwise registration,
    /// including [`RegistrationError::UnknownBackend`] for an unresolvable
    /// `Custom` backend.
    pub fn push(&mut self, frame: &PointCloud) -> Result<Option<OdometryStep>, RegistrationError> {
        self.frames_processed += 1;
        let mut source = self.build_searcher(frame)?;
        let Some(mut target) = self.prev.take() else {
            self.prev = Some(source);
            return Ok(None);
        };

        let mut cfg = self.config.clone();
        if let Some(v) = self.velocity {
            // Tighten the motion-prior gate around the expected motion.
            cfg.max_initial_translation = cfg
                .max_initial_translation
                .min(v.translation_norm() + 2.0);
            cfg.max_initial_rotation = cfg.max_initial_rotation.min(v.rotation_angle() + 0.2);
        }
        let result = register_with_searchers(&mut source, &mut target, &cfg)?;

        self.velocity = Some(result.transform);
        self.pose = self.pose * result.transform;
        self.prev = Some(source);
        Ok(Some(OdometryStep {
            relative: result.transform,
            pose: self.pose,
            registration: result,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigris_geom::Vec3;

    /// A structured scene cloud reused across "frames" with known motion.
    fn scene_cloud() -> PointCloud {
        let mut pts = Vec::new();
        let step = 0.15;
        for i in 0..30 {
            for j in 0..30 {
                pts.push(Vec3::new(i as f64 * step, j as f64 * step, 0.0));
            }
        }
        for i in 0..30 {
            for k in 1..12 {
                pts.push(Vec3::new(i as f64 * step, 4.0, k as f64 * step));
            }
        }
        for j in 0..14 {
            for k in 1..12 {
                pts.push(Vec3::new(4.2, j as f64 * step, k as f64 * step));
            }
        }
        // Clutter for distinctiveness.
        for i in 0..8 {
            for k in 0..5 {
                pts.push(Vec3::new(1.0 + 0.1 * i as f64, 2.0 + 0.07 * k as f64, 0.4 + 0.1 * k as f64));
            }
        }
        PointCloud::from_points(pts)
    }

    fn fast_config() -> RegistrationConfig {
        RegistrationConfig {
            voxel_size: 0.0,
            keypoint: crate::config::KeypointAlgorithm::Uniform { voxel: 0.9 },
            max_correspondence_distance: 1.0,
            ..RegistrationConfig::default()
        }
    }

    #[test]
    fn first_frame_yields_no_step() {
        let mut odo = Odometer::new(fast_config());
        let out = odo.push(&scene_cloud()).unwrap();
        assert!(out.is_none());
        assert_eq!(odo.frames_processed(), 1);
        assert!(odo.pose().is_identity(0.0));
    }

    #[test]
    fn tracks_constant_motion() {
        // The sensor moves backwards relative to the (static) scene, so each
        // frame sees the scene shifted by -delta.
        let world = scene_cloud();
        let delta = RigidTransform::from_translation(Vec3::new(0.05, 0.02, 0.0));
        let mut odo = Odometer::new(fast_config());
        let mut expected = RigidTransform::IDENTITY;
        let mut last_pose = RigidTransform::IDENTITY;
        for _ in 0..4 {
            // Frame i = world seen from pose delta^i: cloud = (delta^i)^-1(world).
            let frame = world.transformed(&expected.inverse());
            if let Some(step) = odo.push(&frame).unwrap() {
                last_pose = step.pose;
            }
            expected = expected * delta;
        }
        // After 4 frames the pose should approximate delta^3.
        let gt = RigidTransform::from_translation(Vec3::new(0.15, 0.06, 0.0));
        assert!(
            (last_pose.translation - gt.translation).norm() < 0.05,
            "pose {} vs gt {}",
            last_pose.translation,
            gt.translation
        );
    }

    #[test]
    fn velocity_prior_engages_after_first_pair() {
        let world = scene_cloud();
        let delta = RigidTransform::from_translation(Vec3::new(0.06, 0.0, 0.0));
        let mut odo = Odometer::new(fast_config());
        odo.push(&world).unwrap();
        let s1 = odo.push(&world.transformed(&delta.inverse())).unwrap().unwrap();
        assert!(odo.velocity.is_some());
        // Second pair: the prior is available and convergence is at least
        // as fast.
        let two = world.transformed(&(delta * delta).inverse());
        let s2 = odo.push(&two).unwrap().unwrap();
        assert!(s2.registration.icp_iterations <= s1.registration.icp_iterations + 2);
    }

    #[test]
    fn odometer_runs_on_the_brute_force_oracle() {
        let world = scene_cloud();
        let mut cfg = fast_config();
        cfg.backend = crate::config::SearchBackendConfig::BruteForce;
        let delta = RigidTransform::from_translation(Vec3::new(0.05, 0.0, 0.0));
        let mut odo = Odometer::new(cfg);
        odo.push(&world).unwrap();
        let step = odo.push(&world.transformed(&delta.inverse())).unwrap().unwrap();
        assert!(
            (step.relative.translation - delta.translation).norm() < 0.05,
            "oracle odometry drifted: {}",
            step.relative.translation
        );
    }

    #[test]
    fn kd_trees_are_built_once_per_frame() {
        let world = scene_cloud();
        let mut odo = Odometer::new(fast_config());
        odo.push(&world).unwrap();
        let step = odo
            .push(&world.transformed(&RigidTransform::from_translation(Vec3::new(0.05, 0.0, 0.0)).inverse()))
            .unwrap()
            .unwrap();
        // The pair's profile contains exactly the two trees' build time
        // (smoke check: nonzero but sane).
        assert!(step.registration.profile.kd_build_time > std::time::Duration::ZERO);
    }
}

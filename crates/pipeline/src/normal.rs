//! Normal estimation (paper Fig. 2, stage 1; Tbl. 1 algorithms PlaneSVD
//! and AreaWeighted; key parameter: search radius).
//!
//! A point's normal is the direction perpendicular to the local tangent
//! plane, estimated from the point's neighborhood (a radius search — the
//! dominant KD-tree consumer of the front-end).

use tigris_geom::{symmetric_eigen3, Mat3, Vec3};

use crate::config::NormalAlgorithm;
use crate::search::Searcher3;

/// Estimates per-point surface normals for every point in `searcher`'s
/// cloud, using neighborhoods of `radius`.
///
/// Points whose neighborhood is too small to define a plane (fewer than 3
/// points including the point itself) get the up vector `+Z` — LiDAR
/// ground-heavy scenes make this the least-wrong default.
///
/// Normals are consistently oriented toward the sensor origin (the
/// viewpoint), the standard disambiguation for LiDAR frames centered on the
/// scanner.
///
/// # Panics
///
/// Panics when `radius` is not strictly positive.
pub fn estimate_normals(
    searcher: &mut Searcher3,
    radius: f64,
    algorithm: NormalAlgorithm,
) -> Vec<Vec3> {
    assert!(radius > 0.0, "normal-estimation radius must be positive");
    let n = searcher.len();
    let parallel = searcher.parallel();
    // One radius query per point — the front-end's dominant KD-tree
    // fan-out, issued batched so the searcher's configured parallelism
    // applies. Batches run per fixed-size chunk: dense scenes have
    // hundreds of neighbors per point, and holding every neighborhood of
    // a 100k-point frame at once would cost O(total neighbors) peak
    // memory for no extra parallelism. Only the current chunk's queries
    // are copied out (the searcher is mutably borrowed during the batch);
    // the plane fits that follow read the cloud in place and parallelize
    // with the same knob.
    const CHUNK: usize = 16 * 1024;
    let mut normals = Vec::with_capacity(n);
    let mut start = 0;
    while start < n {
        let end = (start + CHUNK).min(n);
        let chunk: Vec<Vec3> = searcher.points()[start..end].to_vec();
        let neighborhoods = searcher.radius_batch(&chunk, radius);
        let points = searcher.points();
        normals.extend(tigris_core::batch::parallel_map_indexed(chunk.len(), &parallel, |i| {
            let p = chunk[i];
            let neighbors = &neighborhoods[i];
            let normal = match algorithm {
                NormalAlgorithm::PlaneSvd => plane_svd_normal(points, neighbors, p),
                NormalAlgorithm::AreaWeighted => area_weighted_normal(points, neighbors, p),
            };
            // Orient toward the viewpoint (sensor at the origin).
            if normal.dot(-p) < 0.0 {
                -normal
            } else {
                normal
            }
        }));
        start = end;
    }
    normals
}

/// PlaneSVD: the eigenvector of the smallest eigenvalue of the neighborhood
/// covariance (total least squares plane fit).
fn plane_svd_normal(
    points: &[Vec3],
    neighbors: &[tigris_core::Neighbor],
    fallback_at: Vec3,
) -> Vec3 {
    if neighbors.len() < 3 {
        return fallback_normal(fallback_at);
    }
    let mut centroid = Vec3::ZERO;
    for n in neighbors {
        centroid += points[n.index];
    }
    centroid = centroid / neighbors.len() as f64;
    let mut cov = Mat3::ZERO;
    for n in neighbors {
        let d = points[n.index] - centroid;
        cov = cov + Mat3::outer(d, d);
    }
    let eig = symmetric_eigen3(&cov);
    eig.smallest_vector().normalized().unwrap_or(Vec3::Z)
}

/// AreaWeighted: average of the normals of triangles formed by the query
/// point and consecutive neighbor pairs, each weighted by triangle area
/// (Klasing et al.'s AreaWeighted variant).
fn area_weighted_normal(points: &[Vec3], neighbors: &[tigris_core::Neighbor], at: Vec3) -> Vec3 {
    if neighbors.len() < 3 {
        return fallback_normal(at);
    }
    // Order neighbors by angle in the tangent plane of a rough PlaneSVD
    // estimate so consecutive pairs form a fan around the point.
    let rough = plane_svd_normal(points, neighbors, at);
    let u = pick_perpendicular(rough);
    let v = rough.cross(u);
    let mut ordered: Vec<Vec3> = neighbors.iter().map(|n| points[n.index]).collect();
    ordered.sort_by(|a, b| {
        let da = *a - at;
        let db = *b - at;
        let ang_a = da.dot(v).atan2(da.dot(u));
        let ang_b = db.dot(v).atan2(db.dot(u));
        ang_a.partial_cmp(&ang_b).unwrap()
    });

    let mut acc = Vec3::ZERO;
    for i in 0..ordered.len() {
        let a = ordered[i] - at;
        let b = ordered[(i + 1) % ordered.len()] - at;
        // Cross product magnitude = 2 × triangle area: weighting is built in.
        let n = a.cross(b);
        // Keep the fan consistent with the rough normal's hemisphere.
        acc += if n.dot(rough) < 0.0 { -n } else { n };
    }
    acc.normalized().unwrap_or(rough)
}

fn fallback_normal(_at: Vec3) -> Vec3 {
    Vec3::Z
}

/// Any unit vector perpendicular to `n`.
fn pick_perpendicular(n: Vec3) -> Vec3 {
    let helper = if n.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
    n.cross(helper).normalized().unwrap_or(Vec3::X)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A flat grid on z = 5 (away from origin so viewpoint orientation is
    /// meaningful).
    fn plane_cloud() -> Vec<Vec3> {
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                pts.push(Vec3::new(i as f64 * 0.1, j as f64 * 0.1, 5.0));
            }
        }
        pts
    }

    #[test]
    fn plane_svd_recovers_plane_normal() {
        let pts = plane_cloud();
        let mut s = Searcher3::classic(&pts);
        let normals = estimate_normals(&mut s, 0.35, NormalAlgorithm::PlaneSvd);
        assert_eq!(normals.len(), pts.len());
        for n in &normals {
            assert!(n.z.abs() > 0.99, "normal {n} should be ±Z");
            assert!((n.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn normals_point_toward_sensor() {
        // Plane at z = 5, sensor at origin: normals must have negative z.
        let pts = plane_cloud();
        let mut s = Searcher3::classic(&pts);
        let normals = estimate_normals(&mut s, 0.35, NormalAlgorithm::PlaneSvd);
        for n in &normals {
            assert!(n.z < 0.0, "normal should face the origin, got {n}");
        }
    }

    #[test]
    fn area_weighted_agrees_on_planes() {
        let pts = plane_cloud();
        let mut s = Searcher3::classic(&pts);
        let a = estimate_normals(&mut s, 0.35, NormalAlgorithm::PlaneSvd);
        let mut s2 = Searcher3::classic(&pts);
        let b = estimate_normals(&mut s2, 0.35, NormalAlgorithm::AreaWeighted);
        for (x, y) in a.iter().zip(&b) {
            assert!(x.dot(*y) > 0.95, "{x} vs {y}");
        }
    }

    #[test]
    fn sphere_normals_are_radial() {
        // Points on a sphere of radius 3 centered at (10, 0, 0).
        let center = Vec3::new(10.0, 0.0, 0.0);
        let mut pts = Vec::new();
        let n_lat = 24;
        let n_lon = 48;
        for i in 1..n_lat {
            let theta = std::f64::consts::PI * i as f64 / n_lat as f64;
            for j in 0..n_lon {
                let phi = std::f64::consts::TAU * j as f64 / n_lon as f64;
                pts.push(
                    center
                        + Vec3::new(
                            3.0 * theta.sin() * phi.cos(),
                            3.0 * theta.sin() * phi.sin(),
                            3.0 * theta.cos(),
                        ),
                );
            }
        }
        let mut s = Searcher3::classic(&pts);
        let normals = estimate_normals(&mut s, 0.8, NormalAlgorithm::PlaneSvd);
        let mut good = 0;
        for (p, n) in pts.iter().zip(&normals) {
            let radial = (*p - center).normalized().unwrap();
            if n.dot(radial).abs() > 0.9 {
                good += 1;
            }
        }
        assert!(good as f64 / pts.len() as f64 > 0.9, "only {good}/{} radial", pts.len());
    }

    #[test]
    fn isolated_points_get_fallback() {
        let pts = vec![Vec3::new(0.0, 0.0, 1.0), Vec3::new(100.0, 0.0, 1.0)];
        let mut s = Searcher3::classic(&pts);
        let normals = estimate_normals(&mut s, 0.5, NormalAlgorithm::PlaneSvd);
        // Fallback is ±Z (possibly flipped toward the sensor).
        assert!(normals[0].z.abs() > 0.99);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_radius_panics() {
        let pts = plane_cloud();
        let mut s = Searcher3::classic(&pts);
        estimate_normals(&mut s, 0.0, NormalAlgorithm::PlaneSvd);
    }

    #[test]
    fn search_time_is_attributed() {
        let pts = plane_cloud();
        let mut s = Searcher3::classic(&pts);
        estimate_normals(&mut s, 0.35, NormalAlgorithm::PlaneSvd);
        assert!(s.search_time() > std::time::Duration::ZERO);
        assert_eq!(s.stats().queries as usize, pts.len());
    }
}

//! Normal estimation (paper Fig. 2, stage 1; Tbl. 1 algorithms PlaneSVD
//! and AreaWeighted; key parameter: search radius).
//!
//! A point's normal is the direction perpendicular to the local tangent
//! plane, estimated from the point's neighborhood (a radius search — the
//! dominant KD-tree consumer of the front-end).
//!
//! The plane fits run on the SoA front-end kernels
//! (`tigris_core::simd::lane_sums` / `cov_upper`): each neighborhood is
//! gathered into coordinate lanes once, then the centroid and the six
//! unique covariance entries come out of blocked kernels that keep the
//! scalar reference's accumulation order — so the fitted normals are
//! bit-identical to the naive `Vec3`/`Mat3` loop they replaced
//! (`pipeline/tests/frontend_equivalence.rs` pins this against a frozen
//! copy of the old code).

use tigris_core::soa::SoaView;
use tigris_core::{simd, Neighbor};
use tigris_geom::{symmetric_eigen3, Mat3, Vec3};

use crate::config::NormalAlgorithm;
use crate::scratch::{GatherLanes, PrepareScratch};
use crate::search::Searcher3;

/// Estimates per-point surface normals for every point in `searcher`'s
/// cloud, using neighborhoods of `radius`.
///
/// Points whose neighborhood is too small to define a plane (fewer than 3
/// points including the point itself) get the up vector `+Z` — LiDAR
/// ground-heavy scenes make this the least-wrong default.
///
/// Normals are consistently oriented toward the sensor origin (the
/// viewpoint), the standard disambiguation for LiDAR frames centered on the
/// scanner.
///
/// Allocates its working buffers fresh; streaming callers should hold a
/// [`PrepareScratch`] and use [`estimate_normals_with`].
///
/// # Panics
///
/// Panics when `radius` is not strictly positive.
pub fn estimate_normals(
    searcher: &mut Searcher3,
    radius: f64,
    algorithm: NormalAlgorithm,
) -> Vec<Vec3> {
    estimate_normals_with(searcher, radius, algorithm, &mut PrepareScratch::new())
}

/// [`estimate_normals`] with caller-owned scratch: neighborhoods land in
/// the scratch's reusable table and the plane fits gather through its
/// warm coordinate lanes, so a steady-state caller allocates nothing
/// transient (the returned normals are the only fresh allocation).
///
/// # Panics
///
/// Panics when `radius` is not strictly positive.
pub fn estimate_normals_with(
    searcher: &mut Searcher3,
    radius: f64,
    algorithm: NormalAlgorithm,
    scratch: &mut PrepareScratch,
) -> Vec<Vec3> {
    assert!(radius > 0.0, "normal-estimation radius must be positive");
    let n = searcher.len();
    let parallel = searcher.parallel();
    // One radius query per point — the front-end's dominant KD-tree
    // fan-out. Batches run per fixed-size chunk: dense scenes have
    // hundreds of neighbors per point, and holding every neighborhood of
    // a 100k-point frame at once would cost O(total neighbors) peak
    // memory for no extra parallelism. The queries are the searcher's own
    // points, read in place through the shared-read entry point — no
    // per-chunk staging copy.
    const CHUNK: usize = 16 * 1024;
    let mut normals = Vec::with_capacity(n);
    let mut start = 0;
    while start < n {
        let end = (start + CHUNK).min(n);
        scratch.ne_table.clear();
        searcher.self_radius_range_into(
            start..end,
            radius,
            &mut scratch.ne_table,
            &mut scratch.groups,
        );
        let points = searcher.points();
        // The grouped search lays rows out in traversal order — each
        // point finds its own through the recorded mapping.
        let table = &scratch.ne_table;
        let rows = &scratch.groups;
        if parallel.resolve_threads(end - start) <= 1 {
            // Serial: fits reuse the scratch's gather lanes.
            let lanes = &mut scratch.lanes;
            for i in 0..end - start {
                let p = points[start + i];
                let neighbors = table.row(rows.table_row(i));
                let normal = match algorithm {
                    NormalAlgorithm::PlaneSvd => plane_svd_normal_with(points, neighbors, lanes),
                    NormalAlgorithm::AreaWeighted => area_weighted_normal(points, neighbors, p),
                };
                normals.push(orient_toward_sensor(normal, p));
            }
        } else {
            // Parallel: per-fit stack gathers (workers cannot share the
            // scratch lanes), same kernels, same bits.
            normals.extend(tigris_core::batch::parallel_map_indexed(end - start, &parallel, |i| {
                let p = points[start + i];
                let neighbors = table.row(rows.table_row(i));
                let normal = match algorithm {
                    NormalAlgorithm::PlaneSvd => plane_svd_normal(points, neighbors),
                    NormalAlgorithm::AreaWeighted => area_weighted_normal(points, neighbors, p),
                };
                orient_toward_sensor(normal, p)
            }));
        }
        start = end;
    }
    normals
}

/// Orients `normal` toward the viewpoint (sensor at the origin).
#[inline]
fn orient_toward_sensor(normal: Vec3, p: Vec3) -> Vec3 {
    if normal.dot(-p) < 0.0 {
        -normal
    } else {
        normal
    }
}

/// Total-least-squares plane fit over gathered coordinate lanes: centroid
/// and the six unique covariance entries from the blocked kernels, then
/// the smallest eigenvector. The kernels keep the scalar scan-order
/// accumulation chains, so this is bit-identical to summing
/// `Mat3::outer(p - centroid, p - centroid)` point by point.
fn fit_plane_normal(xs: &[f64], ys: &[f64], zs: &[f64]) -> Vec3 {
    let view = SoaView { xs, ys, zs };
    let len = xs.len() as f64;
    let sums = simd::lane_sums(view);
    let centroid = [sums[0] / len, sums[1] / len, sums[2] / len];
    let c = simd::cov_upper(view, centroid);
    // Mirror the upper triangle; the mirrored products are bitwise equal
    // by IEEE multiply commutativity.
    let cov = Mat3 { m: [[c[0], c[1], c[2]], [c[1], c[3], c[4]], [c[2], c[4], c[5]]] };
    let eig = symmetric_eigen3(&cov);
    eig.smallest_vector().normalized().unwrap_or(Vec3::Z)
}

/// Neighborhoods at most this large gather into stack lanes on the
/// parallel path; larger ones (rare at front-end radii) fall back to a
/// heap gather.
const GATHER_STACK: usize = 256;

/// PlaneSVD: the eigenvector of the smallest eigenvalue of the neighborhood
/// covariance (total least squares plane fit).
fn plane_svd_normal(points: &[Vec3], neighbors: &[Neighbor]) -> Vec3 {
    let len = neighbors.len();
    if len < 3 {
        return fallback_normal();
    }
    if len <= GATHER_STACK {
        let mut xs = [0.0f64; GATHER_STACK];
        let mut ys = [0.0f64; GATHER_STACK];
        let mut zs = [0.0f64; GATHER_STACK];
        for (i, nb) in neighbors.iter().enumerate() {
            let p = points[nb.index];
            xs[i] = p.x;
            ys[i] = p.y;
            zs[i] = p.z;
        }
        fit_plane_normal(&xs[..len], &ys[..len], &zs[..len])
    } else {
        let mut lanes = GatherLanes::default();
        lanes.gather(points, neighbors);
        fit_plane_normal(&lanes.xs, &lanes.ys, &lanes.zs)
    }
}

/// [`plane_svd_normal`] gathering through caller-owned lanes (the serial
/// path's allocation-free variant).
fn plane_svd_normal_with(points: &[Vec3], neighbors: &[Neighbor], lanes: &mut GatherLanes) -> Vec3 {
    if neighbors.len() < 3 {
        return fallback_normal();
    }
    lanes.gather(points, neighbors);
    fit_plane_normal(&lanes.xs, &lanes.ys, &lanes.zs)
}

/// AreaWeighted: average of the normals of triangles formed by the query
/// point and consecutive neighbor pairs, each weighted by triangle area
/// (Klasing et al.'s AreaWeighted variant).
fn area_weighted_normal(points: &[Vec3], neighbors: &[Neighbor], at: Vec3) -> Vec3 {
    if neighbors.len() < 3 {
        return fallback_normal();
    }
    // Order neighbors by angle in the tangent plane of a rough PlaneSVD
    // estimate so consecutive pairs form a fan around the point.
    let rough = plane_svd_normal(points, neighbors);
    let u = pick_perpendicular(rough);
    let v = rough.cross(u);
    let mut ordered: Vec<Vec3> = neighbors.iter().map(|n| points[n.index]).collect();
    ordered.sort_by(|a, b| {
        let da = *a - at;
        let db = *b - at;
        let ang_a = da.dot(v).atan2(da.dot(u));
        let ang_b = db.dot(v).atan2(db.dot(u));
        ang_a.partial_cmp(&ang_b).unwrap()
    });

    let mut acc = Vec3::ZERO;
    for i in 0..ordered.len() {
        let a = ordered[i] - at;
        let b = ordered[(i + 1) % ordered.len()] - at;
        // Cross product magnitude = 2 × triangle area: weighting is built in.
        let n = a.cross(b);
        // Keep the fan consistent with the rough normal's hemisphere.
        acc += if n.dot(rough) < 0.0 { -n } else { n };
    }
    acc.normalized().unwrap_or(rough)
}

fn fallback_normal() -> Vec3 {
    Vec3::Z
}

/// Any unit vector perpendicular to `n`.
fn pick_perpendicular(n: Vec3) -> Vec3 {
    let helper = if n.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
    n.cross(helper).normalized().unwrap_or(Vec3::X)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigris_core::BatchConfig;

    /// A flat grid on z = 5 (away from origin so viewpoint orientation is
    /// meaningful).
    fn plane_cloud() -> Vec<Vec3> {
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                pts.push(Vec3::new(i as f64 * 0.1, j as f64 * 0.1, 5.0));
            }
        }
        pts
    }

    #[test]
    fn plane_svd_recovers_plane_normal() {
        let pts = plane_cloud();
        let mut s = Searcher3::classic(&pts);
        let normals = estimate_normals(&mut s, 0.35, NormalAlgorithm::PlaneSvd);
        assert_eq!(normals.len(), pts.len());
        for n in &normals {
            assert!(n.z.abs() > 0.99, "normal {n} should be ±Z");
            assert!((n.norm() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn normals_point_toward_sensor() {
        // Plane at z = 5, sensor at origin: normals must have negative z.
        let pts = plane_cloud();
        let mut s = Searcher3::classic(&pts);
        let normals = estimate_normals(&mut s, 0.35, NormalAlgorithm::PlaneSvd);
        for n in &normals {
            assert!(n.z < 0.0, "normal should face the origin, got {n}");
        }
    }

    #[test]
    fn area_weighted_agrees_on_planes() {
        let pts = plane_cloud();
        let mut s = Searcher3::classic(&pts);
        let a = estimate_normals(&mut s, 0.35, NormalAlgorithm::PlaneSvd);
        let mut s2 = Searcher3::classic(&pts);
        let b = estimate_normals(&mut s2, 0.35, NormalAlgorithm::AreaWeighted);
        for (x, y) in a.iter().zip(&b) {
            assert!(x.dot(*y) > 0.95, "{x} vs {y}");
        }
    }

    #[test]
    fn sphere_normals_are_radial() {
        // Points on a sphere of radius 3 centered at (10, 0, 0).
        let center = Vec3::new(10.0, 0.0, 0.0);
        let mut pts = Vec::new();
        let n_lat = 24;
        let n_lon = 48;
        for i in 1..n_lat {
            let theta = std::f64::consts::PI * i as f64 / n_lat as f64;
            for j in 0..n_lon {
                let phi = std::f64::consts::TAU * j as f64 / n_lon as f64;
                pts.push(
                    center
                        + Vec3::new(
                            3.0 * theta.sin() * phi.cos(),
                            3.0 * theta.sin() * phi.sin(),
                            3.0 * theta.cos(),
                        ),
                );
            }
        }
        let mut s = Searcher3::classic(&pts);
        let normals = estimate_normals(&mut s, 0.8, NormalAlgorithm::PlaneSvd);
        let mut good = 0;
        for (p, n) in pts.iter().zip(&normals) {
            let radial = (*p - center).normalized().unwrap();
            if n.dot(radial).abs() > 0.9 {
                good += 1;
            }
        }
        assert!(good as f64 / pts.len() as f64 > 0.9, "only {good}/{} radial", pts.len());
    }

    #[test]
    fn isolated_points_get_fallback() {
        let pts = vec![Vec3::new(0.0, 0.0, 1.0), Vec3::new(100.0, 0.0, 1.0)];
        let mut s = Searcher3::classic(&pts);
        let normals = estimate_normals(&mut s, 0.5, NormalAlgorithm::PlaneSvd);
        // Fallback is ±Z (possibly flipped toward the sensor).
        assert!(normals[0].z.abs() > 0.99);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_radius_panics() {
        let pts = plane_cloud();
        let mut s = Searcher3::classic(&pts);
        estimate_normals(&mut s, 0.0, NormalAlgorithm::PlaneSvd);
    }

    #[test]
    fn search_time_is_attributed() {
        let pts = plane_cloud();
        let mut s = Searcher3::classic(&pts);
        estimate_normals(&mut s, 0.35, NormalAlgorithm::PlaneSvd);
        assert!(s.search_time() > std::time::Duration::ZERO);
        assert_eq!(s.stats().queries as usize, pts.len());
    }

    #[test]
    fn serial_and_parallel_paths_are_bit_identical() {
        // The serial path fits through the scratch lanes, the parallel
        // path through stack gathers — same kernels, same bits.
        let pts = plane_cloud();
        for algorithm in [NormalAlgorithm::PlaneSvd, NormalAlgorithm::AreaWeighted] {
            let mut serial = Searcher3::classic(&pts);
            let a = estimate_normals(&mut serial, 0.35, algorithm);
            let mut parallel = Searcher3::classic(&pts);
            parallel.set_parallel(BatchConfig { threads: 4, min_chunk: 16 });
            let b = estimate_normals(&mut parallel, 0.35, algorithm);
            assert_eq!(a, b, "{algorithm:?}");
        }
    }

    #[test]
    fn warm_scratch_runs_allocation_free() {
        let pts = plane_cloud();
        let mut scratch = PrepareScratch::new();
        let mut s = Searcher3::classic(&pts);
        let first = estimate_normals_with(&mut s, 0.35, NormalAlgorithm::PlaneSvd, &mut scratch);
        let warm_bytes = scratch.capacity_bytes();
        let mut s = Searcher3::classic(&pts);
        let second = estimate_normals_with(&mut s, 0.35, NormalAlgorithm::PlaneSvd, &mut scratch);
        assert_eq!(first, second);
        assert_eq!(scratch.capacity_bytes(), warm_bytes, "second frame must not grow scratch");
    }
}

//! Metered 3D neighbor search for the pipeline.
//!
//! Every stage that needs neighbors (Normal Estimation, descriptor
//! calculation, RPCE) goes through a [`Searcher3`], which:
//!
//! * runs the selected backend (canonical KD-tree, two-stage KD-tree, or
//!   two-stage + approximate leader/follower search),
//! * accumulates wall-clock time spent in KD-tree build and search — the
//!   quantities behind the paper's Fig. 4b kernel breakdown, and
//! * optionally injects errors (k-th NN, `<r1,r2>` shell) per Sec. 4.2.

use std::time::{Duration, Instant};

use tigris_core::batch::BatchSearcher;
use tigris_core::inject::{kth_nn, shell_radius};
use tigris_core::{
    ApproxConfig, ApproxSearcher, BatchConfig, KdTree, Neighbor, QueryRecord, SearchStats,
    TwoStageKdTree,
};
use tigris_geom::Vec3;

/// Error injected into searches (paper Sec. 4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Injection {
    /// NN search returns the k-th nearest neighbor instead (1-based; 1 is
    /// exact). Fig. 7a sweeps k.
    NnKth(usize),
    /// Radius-`r` search returns the shell `<r1, r2>` instead, with
    /// `r1 = inner_frac · r` and `r2 = outer_frac · r`. Fig. 7b sweeps the
    /// inner radius with the outer fixed above `r`.
    RadiusShell {
        /// Inner radius as a fraction of the requested radius.
        inner_frac: f64,
        /// Outer radius as a fraction of the requested radius.
        outer_frac: f64,
    },
}

/// Which index structure serves the searches.
enum Backend {
    Classic(KdTree),
    TwoStage(Box<TwoStageKdTree>),
    /// Two-stage tree + Algorithm-1 approximate search. The searcher is
    /// self-referential in spirit (it borrows the tree), so we keep the
    /// tree behind a stable heap allocation and the searcher alongside.
    Approx {
        /// Lazily built leader books. Declared before `tree` so it drops
        /// first and never outlives the tree it borrows.
        searcher: Option<ApproxSearcher<'static>>,
        tree: Box<TwoStageKdTree>,
        cfg: ApproxConfig,
    },
}

/// A metered 3D searcher over one point cloud.
///
/// # Example
///
/// ```
/// use tigris_pipeline::Searcher3;
/// use tigris_geom::Vec3;
///
/// let pts: Vec<Vec3> = (0..100).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
/// let mut s = Searcher3::classic(&pts);
/// let n = s.nn(Vec3::new(41.3, 0.0, 0.0)).unwrap();
/// assert_eq!(pts[n.index].x, 41.0);
/// assert!(s.search_time() > std::time::Duration::ZERO);
/// ```
pub struct Searcher3 {
    backend: Backend,
    injection: Option<Injection>,
    build_time: Duration,
    search_time: Duration,
    stats: SearchStats,
    /// When `Some`, every query is appended (for accelerator replay).
    query_log: Option<Vec<QueryRecord>>,
    /// Parallelism for the `*_batch` entry points (serial by default).
    parallel: BatchConfig,
}

impl std::fmt::Debug for Searcher3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self.backend {
            Backend::Classic(_) => "classic",
            Backend::TwoStage(_) => "two-stage",
            Backend::Approx { .. } => "two-stage+approx",
        };
        f.debug_struct("Searcher3")
            .field("backend", &name)
            .field("injection", &self.injection)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Searcher3 {
    /// Builds a canonical KD-tree backend.
    pub fn classic(points: &[Vec3]) -> Self {
        let t0 = Instant::now();
        let tree = KdTree::build(points);
        Searcher3 {
            backend: Backend::Classic(tree),
            injection: None,
            build_time: t0.elapsed(),
            search_time: Duration::ZERO,
            stats: SearchStats::new(),
            query_log: None,
            parallel: BatchConfig::serial(),
        }
    }

    /// Builds a two-stage KD-tree backend with the given top-tree height.
    pub fn two_stage(points: &[Vec3], top_height: usize) -> Self {
        let t0 = Instant::now();
        let tree = Box::new(TwoStageKdTree::build(points, top_height));
        Searcher3 {
            backend: Backend::TwoStage(tree),
            injection: None,
            build_time: t0.elapsed(),
            search_time: Duration::ZERO,
            stats: SearchStats::new(),
            query_log: None,
            parallel: BatchConfig::serial(),
        }
    }

    /// Builds a two-stage KD-tree with approximate (Algorithm 1) search.
    pub fn two_stage_approx(points: &[Vec3], top_height: usize, cfg: ApproxConfig) -> Self {
        let t0 = Instant::now();
        let tree = Box::new(TwoStageKdTree::build(points, top_height));
        Searcher3 {
            backend: Backend::Approx { searcher: None, tree, cfg },
            injection: None,
            build_time: t0.elapsed(),
            search_time: Duration::ZERO,
            stats: SearchStats::new(),
            query_log: None,
            parallel: BatchConfig::serial(),
        }
    }

    /// Enables error injection on subsequent searches.
    pub fn set_injection(&mut self, injection: Option<Injection>) {
        self.injection = injection;
    }

    /// Starts logging every query (for accelerator replay via
    /// `tigris-accel`'s `AcceleratorSim::replay`). Idempotent.
    pub fn enable_query_logging(&mut self) {
        if self.query_log.is_none() {
            self.query_log = Some(Vec::new());
        }
    }

    /// Takes the accumulated query log (logging stays enabled, restarting
    /// empty); `None` when logging was never enabled.
    pub fn take_query_log(&mut self) -> Option<Vec<QueryRecord>> {
        self.query_log.as_mut().map(std::mem::take)
    }

    /// Time spent building the index.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Accumulated time spent inside searches.
    pub fn search_time(&self) -> Duration {
        self.search_time
    }

    /// Accumulated node-visit statistics.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// The indexed points.
    pub fn points(&self) -> &[Vec3] {
        match &self.backend {
            Backend::Classic(t) => t.points(),
            Backend::TwoStage(t) => t.points(),
            Backend::Approx { tree, .. } => tree.points(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points().len()
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.points().is_empty()
    }

    fn approx_searcher(&mut self) -> Option<&mut ApproxSearcher<'static>> {
        if let Backend::Approx { searcher, tree, cfg } = &mut self.backend {
            if searcher.is_none() {
                // SAFETY: the tree lives in a Box owned by `self` and is
                // never moved or dropped while `searcher` exists; `searcher`
                // is dropped before (or together with) the Box. We only hand
                // out borrows tied to `&mut self`.
                let tree_ref: &'static TwoStageKdTree =
                    unsafe { &*(tree.as_ref() as *const TwoStageKdTree) };
                *searcher = Some(ApproxSearcher::new(tree_ref, *cfg));
            }
            searcher.as_mut()
        } else {
            None
        }
    }

    /// Nearest neighbor (respecting any configured injection).
    pub fn nn(&mut self, query: Vec3) -> Option<Neighbor> {
        if let Some(log) = &mut self.query_log {
            log.push(QueryRecord::nn(query));
        }
        let t0 = Instant::now();
        let result = match self.injection {
            Some(Injection::NnKth(k)) if k > 1 => {
                // Injection is defined on the classic structure; see Fig. 7a.
                match &self.backend {
                    Backend::Classic(t) => {
                        self.stats.queries += 1;
                        kth_nn(t, query, k)
                    }
                    Backend::TwoStage(t) | Backend::Approx { tree: t, .. } => {
                        // Fall back to k-NN over a temporary classic view is
                        // wasteful; instead emulate: collect k nearest via
                        // radius growth. Simpler: build once is too costly,
                        // so scan exact knn with brute force over the tree's
                        // points. Injection experiments use the classic
                        // backend in practice.
                        let knn = tigris_core::bruteforce::knn_brute_force(t.points(), query, k);
                        self.stats.queries += 1;
                        (knn.len() == k).then(|| knn[k - 1])
                    }
                }
            }
            _ => match &mut self.backend {
                Backend::Classic(t) => t.nn_with_stats(query, &mut self.stats),
                Backend::TwoStage(t) => t.nn_with_stats(query, &mut self.stats),
                Backend::Approx { .. } => {
                    let mut stats = SearchStats::new();
                    let r = self
                        .approx_searcher()
                        .expect("approx backend")
                        .nn_with_stats(query, &mut stats);
                    self.stats += stats;
                    r
                }
            },
        };
        self.search_time += t0.elapsed();
        result
    }

    /// All neighbors within `radius` (respecting any configured injection),
    /// sorted ascending by distance.
    pub fn radius(&mut self, query: Vec3, radius: f64) -> Vec<Neighbor> {
        if let Some(log) = &mut self.query_log {
            log.push(QueryRecord::radius(query, radius));
        }
        let t0 = Instant::now();
        let result = match self.injection {
            Some(Injection::RadiusShell { inner_frac, outer_frac }) => {
                let r1 = inner_frac * radius;
                let r2 = outer_frac * radius;
                match &self.backend {
                    Backend::Classic(t) => {
                        self.stats.queries += 1;
                        shell_radius(t, query, r1.min(r2), r1.max(r2))
                    }
                    Backend::TwoStage(t) | Backend::Approx { tree: t, .. } => {
                        self.stats.queries += 1;
                        let lo = r1.min(r2);
                        let hi = r1.max(r2);
                        t.radius(query, hi)
                            .into_iter()
                            .filter(|n| n.distance_squared >= lo * lo)
                            .collect()
                    }
                }
            }
            _ => match &mut self.backend {
                Backend::Classic(t) => t.radius_with_stats(query, radius, &mut self.stats),
                Backend::TwoStage(t) => t.radius_with_stats(query, radius, &mut self.stats),
                Backend::Approx { .. } => {
                    let mut stats = SearchStats::new();
                    let r = self
                        .approx_searcher()
                        .expect("approx backend")
                        .radius_with_stats(query, radius, &mut stats);
                    self.stats += stats;
                    r
                }
            },
        };
        self.search_time += t0.elapsed();
        result
    }

    /// The k nearest neighbors, sorted ascending.
    pub fn knn(&mut self, query: Vec3, k: usize) -> Vec<Neighbor> {
        if let Some(log) = &mut self.query_log {
            log.push(QueryRecord::knn(query, k));
        }
        let t0 = Instant::now();
        let result = match &self.backend {
            Backend::Classic(t) => t.knn_with_stats(query, k, &mut self.stats),
            Backend::TwoStage(t) | Backend::Approx { tree: t, .. } => {
                t.knn_with_stats(query, k, &mut self.stats)
            }
        };
        self.search_time += t0.elapsed();
        result
    }

    // ---- Batched entry points -------------------------------------------
    //
    // Same results and stats as issuing the queries one by one through the
    // serial methods above (bit-identical, including the approximate
    // searcher's leader books — see `tigris_core::batch`), executed across
    // the configured worker threads. `search_time` accounts the batch's
    // wall-clock, so speedups from parallelism show up directly in the
    // profile.

    /// Sets the parallelism for subsequent `*_batch` calls.
    pub fn set_parallel(&mut self, parallel: BatchConfig) {
        self.parallel = parallel;
    }

    /// The parallelism configuration in effect.
    pub fn parallel(&self) -> BatchConfig {
        self.parallel
    }

    /// Nearest neighbor of every query (respecting any configured
    /// injection; injected batches fall back to the serial path, whose
    /// semantics error injection is defined on).
    pub fn nn_batch(&mut self, queries: &[Vec3]) -> Vec<Option<Neighbor>> {
        if self.injection.is_some() {
            return queries.iter().map(|&q| self.nn(q)).collect();
        }
        if let Some(log) = &mut self.query_log {
            log.extend(queries.iter().map(|&q| QueryRecord::nn(q)));
        }
        let t0 = Instant::now();
        let cfg = self.parallel;
        let mut stats = SearchStats::new();
        let result = if matches!(self.backend, Backend::Approx { .. }) {
            let searcher = self.approx_searcher().expect("approx backend");
            searcher.nn_batch(queries, &cfg, &mut stats)
        } else {
            match &mut self.backend {
                Backend::Classic(t) => t.nn_batch(queries, &cfg, &mut stats),
                Backend::TwoStage(t) => t.as_mut().nn_batch(queries, &cfg, &mut stats),
                Backend::Approx { .. } => unreachable!(),
            }
        };
        self.stats += stats;
        self.search_time += t0.elapsed();
        result
    }

    /// All neighbors within `radius` of every query, each sorted ascending
    /// by distance (respecting any configured injection; injected batches
    /// fall back to the serial path).
    pub fn radius_batch(&mut self, queries: &[Vec3], radius: f64) -> Vec<Vec<Neighbor>> {
        if self.injection.is_some() {
            return queries.iter().map(|&q| self.radius(q, radius)).collect();
        }
        if let Some(log) = &mut self.query_log {
            log.extend(queries.iter().map(|&q| QueryRecord::radius(q, radius)));
        }
        let t0 = Instant::now();
        let cfg = self.parallel;
        let mut stats = SearchStats::new();
        let result = if matches!(self.backend, Backend::Approx { .. }) {
            let searcher = self.approx_searcher().expect("approx backend");
            searcher.radius_batch(queries, radius, &cfg, &mut stats)
        } else {
            match &mut self.backend {
                Backend::Classic(t) => t.radius_batch(queries, radius, &cfg, &mut stats),
                Backend::TwoStage(t) => t.as_mut().radius_batch(queries, radius, &cfg, &mut stats),
                Backend::Approx { .. } => unreachable!(),
            }
        };
        self.stats += stats;
        self.search_time += t0.elapsed();
        result
    }

    /// The k nearest neighbors of every query, each sorted ascending.
    pub fn knn_batch(&mut self, queries: &[Vec3], k: usize) -> Vec<Vec<Neighbor>> {
        if let Some(log) = &mut self.query_log {
            log.extend(queries.iter().map(|&q| QueryRecord::knn(q, k)));
        }
        let t0 = Instant::now();
        let cfg = self.parallel;
        let mut stats = SearchStats::new();
        let result = match &mut self.backend {
            Backend::Classic(t) => t.knn_batch(queries, k, &cfg, &mut stats),
            Backend::TwoStage(t) | Backend::Approx { tree: t, .. } => {
                t.as_mut().knn_batch(queries, k, &cfg, &mut stats)
            }
        };
        self.stats += stats;
        self.search_time += t0.elapsed();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Vec<Vec3> {
        (0..500)
            .map(|i| {
                let f = i as f64;
                Vec3::new(f % 10.0, (f / 10.0) % 10.0, f / 100.0)
            })
            .collect()
    }

    #[test]
    fn classic_backend_finds_exact_nn() {
        let pts = cloud();
        let mut s = Searcher3::classic(&pts);
        let n = s.nn(Vec3::new(3.1, 4.2, 2.0)).unwrap();
        let b = tigris_core::nn_brute_force(&pts, Vec3::new(3.1, 4.2, 2.0)).unwrap();
        assert_eq!(n.index, b.index);
        assert_eq!(s.stats().queries, 1);
    }

    #[test]
    fn backends_agree_on_exact_search() {
        let pts = cloud();
        let mut classic = Searcher3::classic(&pts);
        let mut two = Searcher3::two_stage(&pts, 5);
        for q in [Vec3::new(1.0, 2.0, 3.0), Vec3::new(9.0, 0.5, 4.4)] {
            assert_eq!(classic.nn(q).unwrap().index, two.nn(q).unwrap().index);
            assert_eq!(classic.radius(q, 1.5).len(), two.radius(q, 1.5).len());
        }
    }

    #[test]
    fn approx_backend_returns_reasonable_results() {
        let pts = cloud();
        let mut s = Searcher3::two_stage_approx(&pts, 4, ApproxConfig::default());
        let mut exact = Searcher3::classic(&pts);
        for i in 0..50 {
            let q = Vec3::new((i % 10) as f64 + 0.3, (i / 5) as f64 * 0.5, 1.0);
            let a = s.nn(q).unwrap();
            let e = exact.nn(q).unwrap();
            assert!(a.distance() <= e.distance() + 2.0 * 1.2 + 1e-9);
        }
    }

    #[test]
    fn injection_kth_nn_degrades_result() {
        let pts: Vec<Vec3> = (0..20).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let mut s = Searcher3::classic(&pts);
        s.set_injection(Some(Injection::NnKth(3)));
        let n = s.nn(Vec3::new(-0.4, 0.0, 0.0)).unwrap();
        assert_eq!(pts[n.index].x, 2.0); // 3rd nearest
        s.set_injection(None);
        let n = s.nn(Vec3::new(-0.4, 0.0, 0.0)).unwrap();
        assert_eq!(pts[n.index].x, 0.0);
    }

    #[test]
    fn injection_shell_drops_near_points() {
        let pts: Vec<Vec3> = (0..20).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let mut s = Searcher3::classic(&pts);
        s.set_injection(Some(Injection::RadiusShell { inner_frac: 0.5, outer_frac: 1.25 }));
        // radius 4 → shell <2, 5>.
        let res = s.radius(Vec3::ZERO, 4.0);
        let xs: Vec<f64> = res.iter().map(|n| pts[n.index].x).collect();
        assert_eq!(xs, vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn timers_accumulate() {
        let pts = cloud();
        let mut s = Searcher3::two_stage(&pts, 4);
        assert!(s.build_time() > Duration::ZERO);
        let before = s.search_time();
        for i in 0..100 {
            s.nn(Vec3::new(i as f64 * 0.07, 1.0, 1.0));
        }
        assert!(s.search_time() > before);
        assert_eq!(s.stats().queries, 100);
    }

    #[test]
    fn knn_works_on_all_backends() {
        let pts = cloud();
        for mut s in [
            Searcher3::classic(&pts),
            Searcher3::two_stage(&pts, 3),
            Searcher3::two_stage_approx(&pts, 3, ApproxConfig::default()),
        ] {
            let r = s.knn(Vec3::new(5.0, 5.0, 2.5), 7);
            assert_eq!(r.len(), 7);
            for w in r.windows(2) {
                assert!(w[0].distance_squared <= w[1].distance_squared);
            }
        }
    }

    #[test]
    fn empty_cloud() {
        let mut s = Searcher3::classic(&[]);
        assert!(s.is_empty());
        assert!(s.nn(Vec3::ZERO).is_none());
        assert!(s.radius(Vec3::ZERO, 1.0).is_empty());
    }
}

//! Metered 3D neighbor search for the pipeline.
//!
//! Every stage that needs neighbors (Normal Estimation, descriptor
//! calculation, RPCE) goes through a [`Searcher3`] — a thin wrapper over a
//! pluggable `tigris_core::SearchIndex` backend that:
//!
//! * runs whichever backend the [`SearchBackendConfig`] selected (the
//!   canonical KD-tree, the two-stage tree, approximate leader/follower
//!   search, the brute-force oracle, or any backend registered by name —
//!   e.g. `tigris-accel`'s online accelerator model),
//! * accumulates wall-clock time spent in index build and search — the
//!   quantities behind the paper's Fig. 4b kernel breakdown,
//! * optionally injects errors (k-th NN, `<r1,r2>` shell) per Sec. 4.2, and
//! * optionally logs every query for accelerator replay.
//!
//! The pipeline above this seam never learns which structure served its
//! queries; new backends plug in through the registry without touching
//! this file.
//!
//! In pipeline runs the searcher is owned by the
//! [`crate::PreparedFrame`] built over its cloud, so a streamed frame's
//! index (like the rest of its front end) is built exactly once and
//! rides along as the frame moves from registration source to target.
//! The meters accumulate monotonically across those uses — per-result
//! attribution subtracts snapshots ([`Searcher3::search_time`],
//! [`Searcher3::stats`]), which is why `tigris_core::SearchStats`
//! implements `Sub`.

use std::ops::Range;
use std::time::{Duration, Instant};

use tigris_core::batch::parallel_queries;
use tigris_core::index::build_backend;
use tigris_core::{
    ApproxConfig, ApproxIndex, BatchConfig, BruteForceIndex, KdTree, Neighbor, QueryRecord,
    SearchIndex, SearchStats, SharedIndex, TwoStageKdTree,
};
use tigris_geom::Vec3;

use crate::config::{ConfigError, SearchBackendConfig};
use crate::scratch::{GroupScratch, NeighborTable};

/// Error injected into searches (paper Sec. 4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Injection {
    /// NN search returns the k-th nearest neighbor instead (1-based; 1 is
    /// exact). Fig. 7a sweeps k.
    NnKth(usize),
    /// Radius-`r` search returns the shell `<r1, r2>` instead, with
    /// `r1 = inner_frac · r` and `r2 = outer_frac · r`. Fig. 7b sweeps the
    /// inner radius with the outer fixed above `r`.
    RadiusShell {
        /// Inner radius as a fraction of the requested radius.
        inner_frac: f64,
        /// Outer radius as a fraction of the requested radius.
        outer_frac: f64,
    },
}

/// A metered 3D searcher over one point cloud.
///
/// # Example
///
/// ```
/// use tigris_pipeline::Searcher3;
/// use tigris_geom::Vec3;
///
/// let pts: Vec<Vec3> = (0..100).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
/// let mut s = Searcher3::classic(&pts);
/// let n = s.nn(Vec3::new(41.3, 0.0, 0.0)).unwrap();
/// assert_eq!(pts[n.index].x, 41.0);
/// assert_eq!(s.backend_name(), "classic");
/// assert!(s.search_time() > std::time::Duration::ZERO);
/// ```
///
/// Any backend — including ones registered from other crates — can serve
/// the same pipeline through [`Searcher3::from_config`]:
///
/// ```
/// use tigris_pipeline::config::SearchBackendConfig;
/// use tigris_pipeline::Searcher3;
/// use tigris_geom::Vec3;
///
/// let pts: Vec<Vec3> = (0..100).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
/// let mut s = Searcher3::from_config(&pts, &SearchBackendConfig::BruteForce).unwrap();
/// assert_eq!(s.backend_name(), "brute-force");
/// assert_eq!(s.nn(Vec3::ZERO).unwrap().index, 0);
/// ```
pub struct Searcher3 {
    index: Box<dyn SearchIndex>,
    injection: Option<Injection>,
    build_time: Duration,
    search_time: Duration,
    stats: SearchStats,
    /// When `Some`, every query is appended (for accelerator replay).
    query_log: Option<Vec<QueryRecord>>,
    /// Parallelism for the `*_batch` entry points (serial by default).
    parallel: BatchConfig,
}

impl std::fmt::Debug for Searcher3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Searcher3")
            .field("backend", &self.index.name())
            .field("points", &self.index.len())
            .field("injection", &self.injection)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Searcher3 {
    /// Wraps an already-built backend, attributing `build_time` to its
    /// construction. This is the open end of the seam: anything
    /// implementing `SearchIndex` becomes a pipeline-ready searcher.
    pub fn from_index(index: Box<dyn SearchIndex>, build_time: Duration) -> Self {
        Searcher3 {
            index,
            injection: None,
            build_time,
            search_time: Duration::ZERO,
            stats: SearchStats::new(),
            query_log: None,
            parallel: BatchConfig::serial(),
        }
    }

    /// Builds the backend a [`SearchBackendConfig`] selects, metering the
    /// build.
    ///
    /// # Errors
    ///
    /// [`ConfigError::UnknownBackend`] when a
    /// [`SearchBackendConfig::Custom`] name has no registered factory.
    pub fn from_config(
        points: &[Vec3],
        backend: &SearchBackendConfig,
    ) -> Result<Self, ConfigError> {
        let t0 = Instant::now();
        let index: Box<dyn SearchIndex> = match *backend {
            SearchBackendConfig::Classic => Box::new(KdTree::build(points)),
            SearchBackendConfig::TwoStage { top_height } => {
                Box::new(TwoStageKdTree::build(points, top_height))
            }
            SearchBackendConfig::TwoStageApprox { top_height, approx } => {
                Box::new(ApproxIndex::build(points, top_height, approx))
            }
            SearchBackendConfig::BruteForce => Box::new(BruteForceIndex::new(points.to_vec())),
            SearchBackendConfig::Custom { name } => {
                build_backend(name, points).ok_or(ConfigError::UnknownBackend { name })?
            }
        };
        Ok(Searcher3::from_index(index, t0.elapsed()))
    }

    /// Builds a canonical KD-tree backend (shorthand for
    /// [`Searcher3::from_config`] with [`SearchBackendConfig::Classic`]).
    pub fn classic(points: &[Vec3]) -> Self {
        let t0 = Instant::now();
        let index = Box::new(KdTree::build(points));
        Searcher3::from_index(index, t0.elapsed())
    }

    /// Builds a two-stage KD-tree backend with the given top-tree height
    /// (shorthand for [`Searcher3::from_config`] with
    /// [`SearchBackendConfig::TwoStage`]).
    pub fn two_stage(points: &[Vec3], top_height: usize) -> Self {
        let t0 = Instant::now();
        let index = Box::new(TwoStageKdTree::build(points, top_height));
        Searcher3::from_index(index, t0.elapsed())
    }

    /// Builds a two-stage KD-tree with approximate (Algorithm 1) search
    /// (shorthand for [`Searcher3::from_config`] with
    /// [`SearchBackendConfig::TwoStageApprox`]).
    pub fn two_stage_approx(points: &[Vec3], top_height: usize, cfg: ApproxConfig) -> Self {
        let t0 = Instant::now();
        let index = Box::new(ApproxIndex::build(points, top_height, cfg));
        Searcher3::from_index(index, t0.elapsed())
    }

    /// Builds the exhaustive brute-force oracle backend (shorthand for
    /// [`Searcher3::from_config`] with [`SearchBackendConfig::BruteForce`]).
    pub fn brute_force(points: &[Vec3]) -> Self {
        let t0 = Instant::now();
        let index = Box::new(BruteForceIndex::new(points.to_vec()));
        Searcher3::from_index(index, t0.elapsed())
    }

    /// The backend's stable name (`"classic"`, `"two-stage"`, …), straight
    /// from `SearchIndex::name()` — new backends can't print a stale
    /// hand-maintained label.
    pub fn backend_name(&self) -> &'static str {
        self.index.name()
    }

    /// Direct access to the backend, for experiments that need
    /// backend-specific state (e.g. draining an accelerator meter).
    pub fn index_mut(&mut self) -> &mut dyn SearchIndex {
        self.index.as_mut()
    }

    /// Clears any approximation state the backend accumulated (leader
    /// books / leader buffers); exact backends are unaffected.
    pub fn reset_index(&mut self) {
        self.index.reset();
    }

    /// Enables error injection on subsequent searches.
    pub fn set_injection(&mut self, injection: Option<Injection>) {
        self.injection = injection;
    }

    /// Starts logging every query (for accelerator replay via
    /// `tigris-accel`'s `AcceleratorSim::replay`). Idempotent.
    pub fn enable_query_logging(&mut self) {
        if self.query_log.is_none() {
            self.query_log = Some(Vec::new());
        }
    }

    /// Takes the accumulated query log (logging stays enabled, restarting
    /// empty); `None` when logging was never enabled.
    pub fn take_query_log(&mut self) -> Option<Vec<QueryRecord>> {
        self.query_log.as_mut().map(std::mem::take)
    }

    /// Time spent building the index.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Accumulated time spent inside searches.
    pub fn search_time(&self) -> Duration {
        self.search_time
    }

    /// Accumulated node-visit statistics.
    pub fn stats(&self) -> &SearchStats {
        &self.stats
    }

    /// The indexed points.
    pub fn points(&self) -> &[Vec3] {
        self.index.points()
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Nearest neighbor (respecting any configured injection).
    pub fn nn(&mut self, query: Vec3) -> Option<Neighbor> {
        if let Some(log) = &mut self.query_log {
            log.push(QueryRecord::nn(query));
        }
        let t0 = Instant::now();
        let result = match self.injection {
            Some(Injection::NnKth(k)) if k > 1 => {
                // The k-th NN is the last entry of an exact k-NN; every
                // backend serves k-NN exactly (the approximate path covers
                // only NN and radius), so injection semantics are uniform.
                let knn = self.index.knn(query, k, &mut self.stats);
                (knn.len() == k).then(|| knn[k - 1])
            }
            _ => self.index.nn(query, &mut self.stats),
        };
        self.search_time += t0.elapsed();
        result
    }

    /// All neighbors within `radius` (respecting any configured injection),
    /// sorted ascending by distance.
    pub fn radius(&mut self, query: Vec3, radius: f64) -> Vec<Neighbor> {
        if let Some(log) = &mut self.query_log {
            log.push(QueryRecord::radius(query, radius));
        }
        let t0 = Instant::now();
        let result = match self.injection {
            Some(Injection::RadiusShell { inner_frac, outer_frac }) => {
                let r1 = inner_frac * radius;
                let r2 = outer_frac * radius;
                let (lo, hi) = (r1.min(r2), r1.max(r2));
                let mut out = self.index.radius(query, hi, &mut self.stats);
                out.retain(|n| n.distance_squared >= lo * lo);
                out
            }
            _ => self.index.radius(query, radius, &mut self.stats),
        };
        self.search_time += t0.elapsed();
        result
    }

    /// The k nearest neighbors, sorted ascending.
    pub fn knn(&mut self, query: Vec3, k: usize) -> Vec<Neighbor> {
        if let Some(log) = &mut self.query_log {
            log.push(QueryRecord::knn(query, k));
        }
        let t0 = Instant::now();
        let result = self.index.knn(query, k, &mut self.stats);
        self.search_time += t0.elapsed();
        result
    }

    // ---- Batched entry points -------------------------------------------
    //
    // Same results and stats as issuing the queries one by one through the
    // serial methods above (bit-identical, including the approximate
    // searcher's leader books — see `tigris_core::batch`), executed across
    // the configured worker threads. `search_time` accounts the batch's
    // wall-clock, so speedups from parallelism show up directly in the
    // profile.

    /// Sets the parallelism for subsequent `*_batch` calls.
    pub fn set_parallel(&mut self, parallel: BatchConfig) {
        self.parallel = parallel;
    }

    /// The parallelism configuration in effect.
    pub fn parallel(&self) -> BatchConfig {
        self.parallel
    }

    /// Nearest neighbor of every query (respecting any configured
    /// injection; injected batches fall back to the serial path, whose
    /// semantics error injection is defined on).
    pub fn nn_batch(&mut self, queries: &[Vec3]) -> Vec<Option<Neighbor>> {
        if self.injection.is_some() {
            return queries.iter().map(|&q| self.nn(q)).collect();
        }
        if let Some(log) = &mut self.query_log {
            log.extend(queries.iter().map(|&q| QueryRecord::nn(q)));
        }
        let t0 = Instant::now();
        let cfg = self.parallel;
        let mut stats = SearchStats::new();
        let result = self.index.nn_batch(queries, &cfg, &mut stats);
        self.stats += stats;
        self.search_time += t0.elapsed();
        result
    }

    /// All neighbors within `radius` of every query, each sorted ascending
    /// by distance (respecting any configured injection; injected batches
    /// fall back to the serial path).
    pub fn radius_batch(&mut self, queries: &[Vec3], radius: f64) -> Vec<Vec<Neighbor>> {
        if self.injection.is_some() {
            return queries.iter().map(|&q| self.radius(q, radius)).collect();
        }
        if let Some(log) = &mut self.query_log {
            log.extend(queries.iter().map(|&q| QueryRecord::radius(q, radius)));
        }
        let t0 = Instant::now();
        let cfg = self.parallel;
        let mut stats = SearchStats::new();
        let result = self.index.radius_batch(queries, radius, &cfg, &mut stats);
        self.stats += stats;
        self.search_time += t0.elapsed();
        result
    }

    /// The k nearest neighbors of every query, each sorted ascending.
    pub fn knn_batch(&mut self, queries: &[Vec3], k: usize) -> Vec<Vec<Neighbor>> {
        if let Some(log) = &mut self.query_log {
            log.extend(queries.iter().map(|&q| QueryRecord::knn(q, k)));
        }
        let t0 = Instant::now();
        let cfg = self.parallel;
        let mut stats = SearchStats::new();
        let result = self.index.knn_batch(queries, k, &cfg, &mut stats);
        self.stats += stats;
        self.search_time += t0.elapsed();
        result
    }

    // ---- Shared-read table entry points ---------------------------------
    //
    // Like the batched methods, but results land as rows of a reusable
    // `NeighborTable` instead of a fresh `Vec<Vec<Neighbor>>` — query
    // `i`'s row (found through `groups.table_row(i)`) is bit-identical
    // to what `radius_batch` would have returned for it, and the
    // per-query metering (queries counted, log entries, batch
    // wall-clock in `search_time`) is the same. On a backend with a
    // shared-read view the serial path orders the batch along a Morton
    // curve and dispatches runs of co-located queries as one shared
    // tree traversal (`SharedIndex::radius_group_into_shared`), writing
    // through warm buffers of the caller's `GroupScratch` — a
    // steady-state caller allocates nothing, and interior-node work is
    // amortized across each group. Rows consequently land in curve
    // order, and the traversal-visit counters (`leaves_scanned`,
    // `tree_nodes_visited`, `subtrees_pruned`) reflect the shared walk,
    // not per-query walks. Injected or stateful-backend searches fall
    // back to the serial metered path, which injection semantics are
    // defined on (rows then land in query order, and the mapping says
    // so).

    /// All neighbors within `radius` of every query, appended as table
    /// rows with co-located queries grouped into shared traversals
    /// through `groups` — query `i`'s row is
    /// `groups.table_row(i)`, valid until the next batched search
    /// through the same scratch.
    pub fn radius_batch_into(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        table: &mut NeighborTable,
        groups: &mut GroupScratch,
    ) {
        self.radius_batch_into_ordered(queries, radius, table, groups, RowOrder::Canonical);
    }

    /// [`Searcher3::radius_batch_into`] minus the within-row ordering
    /// guarantee: each row holds exactly the hit *set* a per-query
    /// search would return — same neighbors, same bits — in an
    /// unspecified order, skipping the canonical `(d², index)` re-sort
    /// that dominates the grouped path's per-row cost on dense
    /// neighborhoods. Only for consumers whose accumulation is
    /// order-independent (exact `+= 1.0` histogram adds, for example);
    /// order-sensitive consumers must use [`Searcher3::radius_batch_into`].
    pub fn radius_batch_into_unsorted(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        table: &mut NeighborTable,
        groups: &mut GroupScratch,
    ) {
        self.radius_batch_into_ordered(queries, radius, table, groups, RowOrder::Unsorted);
    }

    fn radius_batch_into_ordered(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        table: &mut NeighborTable,
        groups: &mut GroupScratch,
        order: RowOrder,
    ) {
        if self.injection.is_some() || self.index.as_shared().is_none() {
            let base = table.rows() as u32;
            groups.inv.clear();
            groups.inv.extend(base..base + queries.len() as u32);
            for &q in queries {
                let row = self.radius(q, radius);
                table.push_row_from(&row);
            }
            return;
        }
        if let Some(log) = &mut self.query_log {
            log.extend(queries.iter().map(|&q| QueryRecord::radius(q, radius)));
        }
        let t0 = Instant::now();
        let cfg = self.parallel;
        let mut stats = SearchStats::new();
        let shared = self.index.as_shared().expect("checked above");
        radius_rows_into(shared, queries, radius, &cfg, &mut stats, table, groups, order);
        self.stats += stats;
        self.search_time += t0.elapsed();
    }

    /// All neighbors within `radius` of the searcher's *own* points
    /// `range`, appended as table rows — point `start + i`'s row is
    /// `groups.table_row(i)`, valid until the next batched search
    /// through the same scratch.
    ///
    /// This is the front end's "query the cloud about itself" shape
    /// (normal estimation runs it over every chunk). Going through the
    /// shared-read view lets the queries borrow the indexed points
    /// directly — no `points()[start..end].to_vec()` staging copy.
    ///
    /// # Panics
    ///
    /// Panics when `range` is out of bounds of [`Searcher3::points`].
    pub fn self_radius_range_into(
        &mut self,
        range: Range<usize>,
        radius: f64,
        table: &mut NeighborTable,
        groups: &mut GroupScratch,
    ) {
        if self.injection.is_some() || self.index.as_shared().is_none() {
            let base = table.rows() as u32;
            groups.inv.clear();
            groups.inv.extend(base..base + range.len() as u32);
            for i in range {
                let q = self.index.points()[i];
                let row = self.radius(q, radius);
                table.push_row_from(&row);
            }
            return;
        }
        let queries = &self.index.points()[range];
        if let Some(log) = &mut self.query_log {
            log.extend(queries.iter().map(|&q| QueryRecord::radius(q, radius)));
        }
        let t0 = Instant::now();
        let cfg = self.parallel;
        let mut stats = SearchStats::new();
        let shared = self.index.as_shared().expect("checked above");
        radius_rows_into(
            shared,
            queries,
            radius,
            &cfg,
            &mut stats,
            table,
            groups,
            RowOrder::Canonical,
        );
        self.stats += stats;
        self.search_time += t0.elapsed();
    }
}

/// Within-row ordering a batched radius fan-out guarantees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowOrder {
    /// Rows in canonical `(d², index)` order — bit-identical to the
    /// per-query search, including element order.
    Canonical,
    /// Same hit set per row, unspecified order — the grouped traversal
    /// skips its canonical re-sort.
    Unsorted,
}

/// Maximum queries dispatched as one shared traversal. Groups are also
/// capped in spatial extent, so on sparse data they stay small and the
/// dispatch degrades toward the per-query walk it replaces.
const MAX_GROUP: usize = 32;

/// Spreads the low 21 bits of `v` so consecutive bits land three apart —
/// one coordinate's contribution to a 63-bit 3D Morton code.
fn spread21(v: u64) -> u64 {
    let mut x = v & 0x1f_ffff;
    x = (x | x << 32) & 0x001f_0000_0000_ffff;
    x = (x | x << 16) & 0x001f_0000_ff00_00ff;
    x = (x | x << 8) & 0x100f_00f0_0f00_f00f;
    x = (x | x << 4) & 0x10c3_0c30_c30c_30c3;
    (x | x << 2) & 0x1249_2492_4924_9249
}

/// Morton (Z-order) key of `q` on a grid of `1 / inv_cell`-sized voxels:
/// consecutive keys are usually spatially adjacent, which is what makes
/// sorted runs good traversal groups. The offset keeps in-range
/// coordinates non-negative for 21-bit packing; beyond ±2²⁰ cells keys
/// wrap, which only loosens grouping (caught by the extent cap), never
/// correctness.
fn morton_key(q: Vec3, inv_cell: f64) -> u64 {
    const OFFSET: i64 = 1 << 20;
    let ix = ((q.x * inv_cell).floor() as i64).wrapping_add(OFFSET) as u64;
    let iy = ((q.y * inv_cell).floor() as i64).wrapping_add(OFFSET) as u64;
    let iz = ((q.z * inv_cell).floor() as i64).wrapping_add(OFFSET) as u64;
    spread21(ix) << 2 | spread21(iy) << 1 | spread21(iz)
}

/// Serial-or-parallel radius fan-out over a shared-read index, appending
/// one table row per query and recording each query's table row in
/// `groups` (readable through `GroupScratch::table_row`).
///
/// The serial path orders the whole batch along a Morton curve and
/// dispatches runs of co-located queries (capped in population and in
/// spatial extent — a loose group would drag every member through
/// subtrees only its farthest peer can reach) as single shared
/// traversals. Each row holds exactly the hits a per-query search would
/// return, bit for bit, but rows land in curve order rather than query
/// order — hence the recorded mapping — while interior nodes are
/// dispatched once per group and leaf points stream through the SIMD
/// filter cache-hot. With [`RowOrder::Unsorted`] the within-row
/// canonical sort is skipped too: same hit set per row, unspecified
/// element order. The parallel path collects per-query rows on the
/// workers and copies them in in query order (always canonically
/// sorted — a valid instance of either ordering).
#[allow(clippy::too_many_arguments)]
fn radius_rows_into(
    shared: &dyn SharedIndex,
    queries: &[Vec3],
    radius: f64,
    cfg: &BatchConfig,
    stats: &mut SearchStats,
    table: &mut NeighborTable,
    groups: &mut GroupScratch,
    order: RowOrder,
) {
    let base = table.rows() as u32;
    groups.inv.clear();
    if cfg.resolve_threads(queries.len()) > 1 {
        let rows =
            parallel_queries(queries, cfg, stats, |q, st| shared.radius_shared(q, radius, st));
        for row in &rows {
            table.push_row_from(row);
        }
        groups.inv.extend(base..base + queries.len() as u32);
        return;
    }
    let max_extent = radius.max(f64::MIN_POSITIVE);
    let inv_cell = 2.0 / max_extent;
    groups.keys.clear();
    groups.keys.extend(queries.iter().map(|&q| morton_key(q, inv_cell)));
    groups.order.clear();
    groups.order.extend(0..queries.len() as u32);
    let keys = &groups.keys;
    groups.order.sort_unstable_by_key(|&i| keys[i as usize]);
    groups.inv.resize(queries.len(), 0);
    if groups.rows.len() < MAX_GROUP {
        groups.rows.resize_with(MAX_GROUP, Vec::new);
    }
    let mut qbuf = [Vec3::ZERO; MAX_GROUP];
    let mut pos = 0;
    while pos < queries.len() {
        qbuf[0] = queries[groups.order[pos] as usize];
        let (mut lo, mut hi) = (qbuf[0], qbuf[0]);
        let mut len = 1;
        while len < MAX_GROUP && pos + len < queries.len() {
            let q = queries[groups.order[pos + len] as usize];
            let nlo = Vec3::new(lo.x.min(q.x), lo.y.min(q.y), lo.z.min(q.z));
            let nhi = Vec3::new(hi.x.max(q.x), hi.y.max(q.y), hi.z.max(q.z));
            if nhi.x - nlo.x > max_extent
                || nhi.y - nlo.y > max_extent
                || nhi.z - nlo.z > max_extent
            {
                break;
            }
            qbuf[len] = q;
            (lo, hi) = (nlo, nhi);
            len += 1;
        }
        match order {
            RowOrder::Canonical => shared.radius_group_into_shared(
                &qbuf[..len],
                radius,
                &mut groups.rows[..len],
                stats,
            ),
            RowOrder::Unsorted => shared.radius_group_unsorted_into_shared(
                &qbuf[..len],
                radius,
                &mut groups.rows[..len],
                stats,
            ),
        }
        for (j, row) in groups.rows[..len].iter().enumerate() {
            groups.inv[groups.order[pos + j] as usize] = base + (pos + j) as u32;
            table.push_row_from(row);
        }
        pos += len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cloud() -> Vec<Vec3> {
        (0..500)
            .map(|i| {
                let f = i as f64;
                Vec3::new(f % 10.0, (f / 10.0) % 10.0, f / 100.0)
            })
            .collect()
    }

    #[test]
    fn classic_backend_finds_exact_nn() {
        let pts = cloud();
        let mut s = Searcher3::classic(&pts);
        let n = s.nn(Vec3::new(3.1, 4.2, 2.0)).unwrap();
        let b = tigris_core::nn_brute_force(&pts, Vec3::new(3.1, 4.2, 2.0)).unwrap();
        assert_eq!(n.index, b.index);
        assert_eq!(s.stats().queries, 1);
    }

    #[test]
    fn backends_agree_on_exact_search() {
        let pts = cloud();
        let mut classic = Searcher3::classic(&pts);
        let mut two = Searcher3::two_stage(&pts, 5);
        let mut brute = Searcher3::brute_force(&pts);
        for q in [Vec3::new(1.0, 2.0, 3.0), Vec3::new(9.0, 0.5, 4.4)] {
            assert_eq!(classic.nn(q).unwrap().index, two.nn(q).unwrap().index);
            assert_eq!(classic.nn(q).unwrap().index, brute.nn(q).unwrap().index);
            assert_eq!(classic.radius(q, 1.5).len(), two.radius(q, 1.5).len());
            assert_eq!(classic.radius(q, 1.5), brute.radius(q, 1.5));
        }
    }

    #[test]
    fn approx_backend_returns_reasonable_results() {
        let pts = cloud();
        let mut s = Searcher3::two_stage_approx(&pts, 4, ApproxConfig::default());
        let mut exact = Searcher3::classic(&pts);
        for i in 0..50 {
            let q = Vec3::new((i % 10) as f64 + 0.3, (i / 5) as f64 * 0.5, 1.0);
            let a = s.nn(q).unwrap();
            let e = exact.nn(q).unwrap();
            assert!(a.distance() <= e.distance() + 2.0 * 1.2 + 1e-9);
        }
    }

    #[test]
    fn from_config_builds_every_variant() {
        let pts = cloud();
        let variants = [
            (SearchBackendConfig::Classic, "classic"),
            (SearchBackendConfig::TwoStage { top_height: 4 }, "two-stage"),
            (
                SearchBackendConfig::TwoStageApprox {
                    top_height: 4,
                    approx: ApproxConfig::default(),
                },
                "two-stage-approx",
            ),
            (SearchBackendConfig::BruteForce, "brute-force"),
            (SearchBackendConfig::Custom { name: "classic" }, "classic"),
        ];
        for (backend, expected_name) in variants {
            let mut s = Searcher3::from_config(&pts, &backend).unwrap();
            assert_eq!(s.backend_name(), expected_name, "{backend:?}");
            assert!(s.nn(Vec3::new(2.2, 3.1, 1.0)).is_some(), "{backend:?}");
        }
    }

    #[test]
    fn from_config_rejects_unknown_custom_backend() {
        let err = Searcher3::from_config(
            &cloud(),
            &SearchBackendConfig::Custom { name: "no-such-backend" },
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::UnknownBackend { name: "no-such-backend" });
    }

    #[test]
    fn debug_reports_trait_backend_name() {
        let pts = cloud();
        let repr = format!("{:?}", Searcher3::brute_force(&pts));
        assert!(repr.contains("brute-force"), "{repr}");
        let repr = format!("{:?}", Searcher3::two_stage_approx(&pts, 3, ApproxConfig::default()));
        assert!(repr.contains("two-stage-approx"), "{repr}");
    }

    #[test]
    fn injection_kth_nn_degrades_result() {
        let pts: Vec<Vec3> = (0..20).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let mut s = Searcher3::classic(&pts);
        s.set_injection(Some(Injection::NnKth(3)));
        let n = s.nn(Vec3::new(-0.4, 0.0, 0.0)).unwrap();
        assert_eq!(pts[n.index].x, 2.0); // 3rd nearest
        s.set_injection(None);
        let n = s.nn(Vec3::new(-0.4, 0.0, 0.0)).unwrap();
        assert_eq!(pts[n.index].x, 0.0);
    }

    #[test]
    fn injection_applies_on_every_backend() {
        // The injection seam sits above the trait, so all backends degrade
        // identically under k-th-NN injection.
        let pts: Vec<Vec3> = (0..20).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        for backend in [
            SearchBackendConfig::Classic,
            SearchBackendConfig::TwoStage { top_height: 2 },
            SearchBackendConfig::BruteForce,
        ] {
            let mut s = Searcher3::from_config(&pts, &backend).unwrap();
            s.set_injection(Some(Injection::NnKth(4)));
            let n = s.nn(Vec3::new(-0.4, 0.0, 0.0)).unwrap();
            assert_eq!(pts[n.index].x, 3.0, "{backend:?}");
        }
    }

    #[test]
    fn injection_shell_drops_near_points() {
        let pts: Vec<Vec3> = (0..20).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let mut s = Searcher3::classic(&pts);
        s.set_injection(Some(Injection::RadiusShell { inner_frac: 0.5, outer_frac: 1.25 }));
        // radius 4 → shell <2, 5>.
        let res = s.radius(Vec3::ZERO, 4.0);
        let xs: Vec<f64> = res.iter().map(|n| pts[n.index].x).collect();
        assert_eq!(xs, vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn timers_accumulate() {
        let pts = cloud();
        let mut s = Searcher3::two_stage(&pts, 4);
        assert!(s.build_time() > Duration::ZERO);
        let before = s.search_time();
        for i in 0..100 {
            s.nn(Vec3::new(i as f64 * 0.07, 1.0, 1.0));
        }
        assert!(s.search_time() > before);
        assert_eq!(s.stats().queries, 100);
    }

    #[test]
    fn knn_works_on_all_backends() {
        let pts = cloud();
        for mut s in [
            Searcher3::classic(&pts),
            Searcher3::two_stage(&pts, 3),
            Searcher3::two_stage_approx(&pts, 3, ApproxConfig::default()),
            Searcher3::brute_force(&pts),
        ] {
            let r = s.knn(Vec3::new(5.0, 5.0, 2.5), 7);
            assert_eq!(r.len(), 7);
            for w in r.windows(2) {
                assert!(w[0].distance_squared <= w[1].distance_squared);
            }
        }
    }

    #[test]
    fn reset_index_clears_leader_books() {
        let pts = cloud();
        let mut s = Searcher3::two_stage_approx(
            &pts,
            3,
            ApproxConfig { nn_threshold: 5.0, ..Default::default() },
        );
        for i in 0..50 {
            s.nn(Vec3::new(1.0 + 0.01 * i as f64, 2.0, 3.0));
        }
        assert!(s.stats().follower_hits > 0);
        let followers_before = s.stats().follower_hits;
        s.reset_index();
        s.nn(Vec3::new(1.0, 2.0, 3.0));
        // First query after reset is a leader, not a follower.
        assert_eq!(s.stats().follower_hits, followers_before);
    }

    #[test]
    fn empty_cloud() {
        let mut s = Searcher3::classic(&[]);
        assert!(s.is_empty());
        assert!(s.nn(Vec3::ZERO).is_none());
        assert!(s.radius(Vec3::ZERO, 1.0).is_empty());
    }

    #[test]
    fn table_entry_points_match_radius_batch() {
        let pts = cloud();
        let queries: Vec<Vec3> = pts.iter().step_by(7).copied().collect();
        for cfg in [BatchConfig::serial(), BatchConfig { threads: 4, min_chunk: 4 }] {
            let mut a = Searcher3::classic(&pts);
            let mut b = Searcher3::classic(&pts);
            a.set_parallel(cfg);
            b.set_parallel(cfg);
            let expected = a.radius_batch(&queries, 1.5);
            let mut table = NeighborTable::new();
            let mut groups = GroupScratch::default();
            b.radius_batch_into(&queries, 1.5, &mut table, &mut groups);
            assert_eq!(table.rows(), expected.len());
            for (i, row) in expected.iter().enumerate() {
                assert_eq!(
                    table.row(groups.table_row(i)),
                    row.as_slice(),
                    "row of query {i} under {cfg:?}"
                );
            }
            // Visit counters reflect the grouped traversal; the
            // per-query metering contract is on `queries`.
            assert_eq!(a.stats().queries, b.stats().queries, "metering under {cfg:?}");
        }
    }

    #[test]
    fn self_range_rows_match_batched_point_copies() {
        let pts = cloud();
        for cfg in [BatchConfig::serial(), BatchConfig { threads: 3, min_chunk: 8 }] {
            let mut a = Searcher3::two_stage(&pts, 4);
            let mut b = Searcher3::two_stage(&pts, 4);
            a.set_parallel(cfg);
            b.set_parallel(cfg);
            let copied: Vec<Vec3> = pts[100..400].to_vec();
            let expected = a.radius_batch(&copied, 1.2);
            let mut table = NeighborTable::new();
            let mut groups = GroupScratch::default();
            b.self_radius_range_into(100..400, 1.2, &mut table, &mut groups);
            assert_eq!(table.rows(), 300);
            for (i, row) in expected.iter().enumerate() {
                assert_eq!(
                    table.row(groups.table_row(i)),
                    row.as_slice(),
                    "row of query {i} under {cfg:?}"
                );
            }
            assert_eq!(a.stats().queries, b.stats().queries, "metering under {cfg:?}");
        }
    }

    #[test]
    fn table_entry_points_respect_injection_fallback() {
        let pts: Vec<Vec3> = (0..20).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let mut s = Searcher3::classic(&pts);
        s.set_injection(Some(Injection::RadiusShell { inner_frac: 0.5, outer_frac: 1.25 }));
        let mut table = NeighborTable::new();
        let mut groups = GroupScratch::default();
        s.radius_batch_into(&[Vec3::ZERO], 4.0, &mut table, &mut groups);
        let xs: Vec<f64> = table.row(0).iter().map(|n| pts[n.index].x).collect();
        assert_eq!(xs, vec![2.0, 3.0, 4.0, 5.0]);
        let mut table = NeighborTable::new();
        s.self_radius_range_into(0..1, 4.0, &mut table, &mut groups);
        let xs: Vec<f64> = table.row(0).iter().map(|n| pts[n.index].x).collect();
        assert_eq!(xs, vec![2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn table_entry_points_are_logged_and_warm_reuse_is_allocation_free() {
        let pts = cloud();
        let mut s = Searcher3::classic(&pts);
        s.enable_query_logging();
        let mut table = NeighborTable::new();
        let mut groups = GroupScratch::default();
        s.self_radius_range_into(0..10, 1.0, &mut table, &mut groups);
        s.radius_batch_into(&pts[..5], 1.0, &mut table, &mut groups);
        assert_eq!(s.take_query_log().unwrap().len(), 15);
        assert_eq!(s.stats().queries, 15);
        // Warm buffers re-running the same workload must not grow.
        let bytes = table.capacity_bytes();
        let group_bytes = groups.capacity_bytes();
        table.clear();
        s.self_radius_range_into(0..10, 1.0, &mut table, &mut groups);
        s.radius_batch_into(&pts[..5], 1.0, &mut table, &mut groups);
        assert_eq!(table.capacity_bytes(), bytes);
        assert_eq!(groups.capacity_bytes(), group_bytes);
    }
}

//! End-to-end registration: the full two-phase pipeline of paper Fig. 2,
//! split into two composable layers.
//!
//! * **Frame preparation** ([`prepare_frame`]) turns one cloud into a
//!   [`PreparedFrame`]: downsampled points behind an owned
//!   [`Searcher3`], per-point normals, key-points and descriptors —
//!   everything about a frame that does not depend on what it is matched
//!   against, each stage timed into the frame's [`StageProfile`].
//! * **Pairwise matching** ([`register_prepared`]) runs KPCE →
//!   correspondence rejection → SVD initial estimate → ICP fine-tuning
//!   over two prepared frames.
//!
//! [`register`] is exactly prepare + prepare + match. The split exists
//! for streaming workloads: in LiDAR odometry (paper Sec. 2.2) every
//! frame is first a registration *source* and one step later the
//! *target*, so carrying the [`PreparedFrame`] forward halves front-end
//! work per streamed frame (see [`crate::odometry::Odometer`]); DSE
//! sweeps that vary only matching knobs reuse preparations the same way
//! ([`crate::dse::sweep_matching`]).

use std::time::Instant;

use tigris_geom::{PointCloud, RigidTransform, Vec3};

use crate::config::{ConfigError, RegistrationConfig, SearchBackendConfig};
use crate::correspond::{kpce_batched, kpce_ratio_batched};
use crate::descriptor::{compute_descriptors_with, Descriptors};
use crate::icp::{IcpResult, IcpTermination};
use crate::keypoint::detect_keypoints;
use crate::normal::estimate_normals_with;
use crate::profile::{Stage, StageProfile};
use crate::reject::reject_correspondences;
use crate::scratch::PrepareScratch;
use crate::search::Searcher3;
use crate::transform::estimate_svd;

/// Slack added to a motion prior's translation norm when tightening the
/// initial-estimate gate (meters): consecutive frames are not expected to
/// move more than the previous step's motion plus this.
pub const PRIOR_TRANSLATION_SLACK: f64 = 2.0;

/// Slack added to a motion prior's rotation angle when tightening the
/// initial-estimate gate (radians); see [`PRIOR_TRANSLATION_SLACK`].
pub const PRIOR_ROTATION_SLACK: f64 = 0.2;

/// Registration failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistrationError {
    /// A frame was empty (or became empty after downsampling).
    EmptyCloud,
    /// The fine-tuning phase ran out of correspondences entirely.
    IcpStarved,
    /// The configured `Custom` search backend is not in the registry.
    UnknownBackend(&'static str),
    /// A [`PreparedFrame`] handed to [`register_prepared`] was prepared
    /// under different front-end knobs than the matching config (see
    /// [`RegistrationConfig::same_front_end`]) — its artifacts would not
    /// be the ones this configuration describes.
    PreparationMismatch,
}

impl std::fmt::Display for RegistrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistrationError::EmptyCloud => write!(f, "a frame holds no points"),
            RegistrationError::IcpStarved => {
                write!(f, "fine-tuning found no correspondences; clouds may not overlap")
            }
            RegistrationError::UnknownBackend(name) => {
                write!(f, "no search backend registered under {name:?}")
            }
            RegistrationError::PreparationMismatch => write!(
                f,
                "a prepared frame's front-end configuration disagrees with the matching config"
            ),
        }
    }
}

impl std::error::Error for RegistrationError {}

/// The output of end-to-end registration.
#[derive(Debug, Clone)]
pub struct RegistrationResult {
    /// The estimated transform mapping source coordinates into target
    /// coordinates (the paper's matrix `M`, Eq. 1).
    pub transform: RigidTransform,
    /// The initial-estimation phase's transform, before fine-tuning.
    pub initial_transform: RigidTransform,
    /// Per-stage and per-kernel timing plus KD-tree statistics.
    pub profile: StageProfile,
    /// Key-point counts (source, target).
    pub keypoints: (usize, usize),
    /// Correspondences surviving rejection.
    pub inlier_correspondences: usize,
    /// ICP iterations run.
    pub icp_iterations: usize,
}

/// Builds the metered searcher a backend config selects — the single
/// construction path shared by [`prepare_frame`], the odometer, and DSE.
pub(crate) fn build_searcher(
    points: &[Vec3],
    backend: &SearchBackendConfig,
) -> Result<Searcher3, RegistrationError> {
    Searcher3::from_config(points, backend).map_err(|err| match err {
        ConfigError::UnknownBackend { name } => RegistrationError::UnknownBackend(name),
        // `from_config` can only fail on registry lookup.
        _ => unreachable!("Searcher3::from_config fails only on unknown backends"),
    })
}

/// One frame's pair-independent registration artifacts: the outputs of
/// the front-end stages, keyed by the (downsampled) cloud they were
/// computed over.
struct FrontEndArtifacts {
    /// Per-point surface normals, parallel to the searcher's cloud.
    normals: Vec<Vec3>,
    /// Key-point indices into the searcher's cloud, sorted ascending.
    keypoints: Vec<usize>,
    /// The key-points' coordinates (precomputed once so the matching
    /// layer never re-gathers them per pair).
    keypoint_points: Vec<Vec3>,
    /// One descriptor row per key-point.
    descriptors: Descriptors,
}

/// A frame run through the preparation layer: downsampled points behind
/// an owned metered [`Searcher3`], plus normals, key-points and
/// descriptors.
///
/// A `PreparedFrame` is the unit of front-end reuse: it can serve as the
/// source of one registration and the target of the next without
/// recomputing anything (the [`crate::odometry::Odometer`]'s streaming
/// pattern), or be matched against many counterparts under different
/// matching knobs ([`crate::dse::sweep_matching`]). Both frames of a
/// pair must have been prepared with the same front-end configuration
/// (see [`RegistrationConfig::same_front_end`]).
///
/// # Example
///
/// ```no_run
/// use tigris_pipeline::{prepare_frame, register_prepared, RegistrationConfig};
/// use tigris_data::{Sequence, SequenceConfig};
///
/// let seq = Sequence::generate(&SequenceConfig::tiny(), 7);
/// let cfg = RegistrationConfig::default();
/// let mut target = prepare_frame(seq.frame(0), &cfg).unwrap();
/// let mut source = prepare_frame(seq.frame(1), &cfg).unwrap();
/// // Identical to register(seq.frame(1), seq.frame(0), &cfg) —
/// // but `source` and `target` remain reusable afterwards.
/// let result = register_prepared(&mut source, &mut target, &cfg).unwrap();
/// println!("{}", result.transform);
/// ```
pub struct PreparedFrame {
    searcher: Searcher3,
    artifacts: FrontEndArtifacts,
    /// The configuration the frame was prepared under; its front-end
    /// knobs must agree with the matching config
    /// ([`RegistrationError::PreparationMismatch`] otherwise).
    config: RegistrationConfig,
    /// Preparation cost: front-end stage times, index build time, and the
    /// search time/stats the front end consumed.
    profile: StageProfile,
    /// Whether `profile` was already merged into a registration result;
    /// later registrations count this frame as reused instead.
    billed: bool,
}

impl std::fmt::Debug for PreparedFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedFrame")
            .field("points", &self.searcher.len())
            .field("backend", &self.searcher.backend_name())
            .field("keypoints", &self.artifacts.keypoints.len())
            .field("descriptor_dim", &self.artifacts.descriptors.dim)
            .field("billed", &self.billed)
            .finish()
    }
}

impl PreparedFrame {
    /// The prepared (downsampled) points the artifacts were computed over.
    pub fn points(&self) -> &[Vec3] {
        self.searcher.points()
    }

    /// Number of prepared points.
    pub fn len(&self) -> usize {
        self.searcher.len()
    }

    /// `true` when the frame holds no points (never true for frames built
    /// by [`prepare_frame`], which rejects empty clouds).
    pub fn is_empty(&self) -> bool {
        self.searcher.is_empty()
    }

    /// Per-point surface normals, parallel to [`PreparedFrame::points`].
    pub fn normals(&self) -> &[Vec3] {
        &self.artifacts.normals
    }

    /// Key-point indices into [`PreparedFrame::points`], sorted ascending.
    pub fn keypoints(&self) -> &[usize] {
        &self.artifacts.keypoints
    }

    /// The key-points' coordinates, parallel to
    /// [`PreparedFrame::keypoints`].
    pub fn keypoint_points(&self) -> &[Vec3] {
        &self.artifacts.keypoint_points
    }

    /// The key-points' feature descriptors.
    pub fn descriptors(&self) -> &Descriptors {
        &self.artifacts.descriptors
    }

    /// The search backend serving this frame's queries.
    pub fn backend_name(&self) -> &'static str {
        self.searcher.backend_name()
    }

    /// The configuration this frame was prepared under.
    pub fn config(&self) -> &RegistrationConfig {
        &self.config
    }

    /// The preparation cost (front-end stage times, index build, search
    /// meters), whether or not it was billed to a result yet.
    pub fn prepare_profile(&self) -> &StageProfile {
        &self.profile
    }

    /// Direct access to the owned searcher, for experiments that need
    /// backend-specific state (query logs, accelerator meters).
    pub fn searcher_mut(&mut self) -> &mut Searcher3 {
        &mut self.searcher
    }

    /// First call returns the preparation profile for billing into a
    /// result; later calls return `None` (the frame is then a *reuse*).
    pub(crate) fn consume_preparation(&mut self) -> Option<StageProfile> {
        if self.billed {
            None
        } else {
            self.billed = true;
            Some(self.profile.clone())
        }
    }
}

/// Runs the front-end stages over an already-built searcher, metering
/// each stage and the searcher's incremental search work into `profile`.
fn run_front_end(
    searcher: &mut Searcher3,
    cfg: &RegistrationConfig,
    profile: &mut StageProfile,
    scratch: &mut PrepareScratch,
) -> FrontEndArtifacts {
    // The config's parallelism knob governs every batched fan-out below.
    searcher.set_parallel(cfg.parallel);
    let search_time0 = searcher.search_time();
    let stats0 = *searcher.stats();
    let bytes_grown0 = scratch.bytes_grown();
    let reuses0 = scratch.reuses();

    // ---- Stage 1: Normal Estimation --------------------------------------
    let t0 = Instant::now();
    let span = tigris_obs::span!("prepare.normals", points = searcher.len());
    searcher.set_injection(cfg.inject_ne);
    let normals = estimate_normals_with(searcher, cfg.normal_radius, cfg.normal_algorithm, scratch);
    searcher.set_injection(None);
    drop(span);
    profile.add(Stage::NormalEstimation, t0.elapsed());

    // ---- Stage 2: Key-point Detection ------------------------------------
    let t0 = Instant::now();
    let span = tigris_obs::span!("prepare.keypoints");
    let keypoints = detect_keypoints(searcher, &normals, cfg.keypoint);
    drop(span);
    profile.add(Stage::KeypointDetection, t0.elapsed());

    // ---- Stage 3: Descriptor Calculation ---------------------------------
    let t0 = Instant::now();
    let span = tigris_obs::span!("prepare.descriptors", keypoints = keypoints.len());
    let descriptors =
        compute_descriptors_with(searcher, &normals, &keypoints, cfg.descriptor, scratch);
    drop(span);
    profile.add(Stage::DescriptorCalculation, t0.elapsed());

    let keypoint_points = {
        let pts = searcher.points();
        keypoints.iter().map(|&i| pts[i]).collect()
    };

    // Attribute exactly the search work the front end caused — deltas, so
    // a searcher reused across registrations never double-bills.
    profile.kd_search_time += searcher.search_time().saturating_sub(search_time0);
    profile.search_stats += *searcher.stats() - stats0;
    // Close out the scratch frame and attribute its growth/reuse the same
    // way (deltas: a scratch reused across frames never double-bills).
    scratch.note_frame_end();
    profile.scratch_bytes_grown += scratch.bytes_grown() - bytes_grown0;
    profile.scratch_reuses += scratch.reuses() - reuses0;

    FrontEndArtifacts { normals, keypoints, keypoint_points, descriptors }
}

/// Prepares one frame for registration: voxel-downsamples (per
/// `cfg.voxel_size`), builds the configured search backend over the
/// points, and runs normal estimation, key-point detection and
/// descriptor calculation — each timed into the frame's profile.
///
/// # Errors
///
/// [`RegistrationError::EmptyCloud`] when the cloud is empty (or becomes
/// empty after downsampling); [`RegistrationError::UnknownBackend`] when
/// a `Custom` backend name is not registered.
pub fn prepare_frame(
    cloud: &PointCloud,
    cfg: &RegistrationConfig,
) -> Result<PreparedFrame, RegistrationError> {
    prepare_frame_with(cloud, cfg, &mut PrepareScratch::new())
}

/// [`prepare_frame`] with caller-owned front-end scratch: the normal and
/// descriptor stages run in the scratch's reusable buffers, so a caller
/// streaming frames through one scratch (the [`crate::Odometer`]'s
/// pattern) prepares steady-state frames without transient heap
/// allocation. The scratch's growth/reuse counters land in the frame's
/// [`StageProfile`].
///
/// # Errors
///
/// As [`prepare_frame`].
pub fn prepare_frame_with(
    cloud: &PointCloud,
    cfg: &RegistrationConfig,
    scratch: &mut PrepareScratch,
) -> Result<PreparedFrame, RegistrationError> {
    let _span = tigris_obs::span!("pipeline.prepare", points = cloud.len());
    let t0 = Instant::now();
    // Downsample when configured; otherwise index the cloud's points
    // directly (no intermediate copy on the no-downsample path).
    let searcher = if cfg.voxel_size > 0.0 {
        let down = {
            let _s = tigris_obs::span!("prepare.downsample", voxel = cfg.voxel_size);
            cloud.voxel_downsample(cfg.voxel_size)
        };
        if down.points().is_empty() {
            return Err(RegistrationError::EmptyCloud);
        }
        let _s = tigris_obs::span!("prepare.index_build", points = down.points().len());
        build_searcher(down.points(), &cfg.backend)?
    } else {
        if cloud.points().is_empty() {
            return Err(RegistrationError::EmptyCloud);
        }
        let _s = tigris_obs::span!("prepare.index_build", points = cloud.points().len());
        build_searcher(cloud.points(), &cfg.backend)?
    };
    finish_preparation(searcher, cfg, t0, std::time::Duration::ZERO, scratch)
}

/// Prepares a frame over a caller-built searcher — the entry point for
/// experiments that need hand-constructed backends or query logging on a
/// specific frame. The searcher's points are taken as already
/// downsampled; its build time is billed to the preparation.
///
/// # Errors
///
/// [`RegistrationError::EmptyCloud`] when the searcher indexes no points.
pub fn prepare_frame_from_searcher(
    searcher: Searcher3,
    cfg: &RegistrationConfig,
) -> Result<PreparedFrame, RegistrationError> {
    if searcher.is_empty() {
        return Err(RegistrationError::EmptyCloud);
    }
    // The index was built before this call, so its build time is added to
    // the layer total explicitly (prepare_frame's clock covers the build
    // because it starts before construction).
    let build_time = searcher.build_time();
    finish_preparation(searcher, cfg, Instant::now(), build_time, &mut PrepareScratch::new())
}

fn finish_preparation(
    mut searcher: Searcher3,
    cfg: &RegistrationConfig,
    t0: Instant,
    prior_prepare_time: std::time::Duration,
    scratch: &mut PrepareScratch,
) -> Result<PreparedFrame, RegistrationError> {
    let mut profile = StageProfile::new();
    profile.kd_build_time += searcher.build_time();
    let artifacts = run_front_end(&mut searcher, cfg, &mut profile, scratch);
    profile.frames_prepared = 1;
    profile.prepare_time = prior_prepare_time + t0.elapsed();
    Ok(PreparedFrame { searcher, artifacts, config: cfg.clone(), profile, billed: false })
}

/// What the matching layer determines about a pair (everything in a
/// [`RegistrationResult`] except the profile).
struct MatchSummary {
    initial: RigidTransform,
    icp: IcpResult,
    keypoints: (usize, usize),
    inliers: usize,
}

/// KPCE → rejection → gated SVD initial estimate → ICP, over two frames'
/// artifacts. `prior` optionally tightens the initial-estimate gates
/// around an expected motion (the odometer's constant-velocity prior).
fn run_match(
    src_searcher: &mut Searcher3,
    src: &FrontEndArtifacts,
    tgt_searcher: &mut Searcher3,
    tgt: &FrontEndArtifacts,
    cfg: &RegistrationConfig,
    prior: Option<&RigidTransform>,
    profile: &mut StageProfile,
) -> Result<MatchSummary, RegistrationError> {
    let _span = tigris_obs::span!(
        "pipeline.match",
        src_keypoints = src.keypoints.len(),
        tgt_keypoints = tgt.keypoints.len(),
    );
    src_searcher.set_parallel(cfg.parallel);
    tgt_searcher.set_parallel(cfg.parallel);
    let src_search_time0 = src_searcher.search_time();
    let src_stats0 = *src_searcher.stats();
    let tgt_search_time0 = tgt_searcher.search_time();
    let tgt_stats0 = *tgt_searcher.stats();

    // ---- Stage 4: KPCE ----------------------------------------------------
    let t0 = Instant::now();
    let kpce_span = tigris_obs::span!("match.kpce");
    let matches = match cfg.kpce_ratio {
        // The ratio test replaces plain NN matching (injection is an
        // NN-path experiment and does not combine with it).
        Some(ratio) if cfg.inject_kpce_kth.is_none() => {
            kpce_ratio_batched(&src.descriptors, &tgt.descriptors, ratio, &cfg.parallel)
        }
        _ => kpce_batched(
            &src.descriptors,
            &tgt.descriptors,
            cfg.kpce_reciprocal,
            cfg.inject_kpce_kth,
            &cfg.parallel,
        ),
    };
    drop(kpce_span);
    profile.add(Stage::Kpce, t0.elapsed());

    // ---- Stage 5: Correspondence Rejection --------------------------------
    let t0 = Instant::now();
    let reject_span = tigris_obs::span!("match.reject", matches = matches.len());
    let inliers = reject_correspondences(
        &matches,
        &src.keypoint_points,
        &tgt.keypoint_points,
        cfg.rejection,
        0x7161,
    );
    drop(reject_span);
    profile.add(Stage::CorrespondenceRejection, t0.elapsed());

    // ---- Initial transform -------------------------------------------------
    let mut initial = estimate_svd(&src.keypoint_points, &tgt.keypoint_points, &inliers)
        .unwrap_or(RigidTransform::IDENTITY);
    // Motion-prior gate: consecutive frames cannot move this much; a
    // violating estimate is a symmetric-scene mismatch (see config docs).
    // An explicit prior tightens both gates around the expected motion.
    let (max_rotation, max_translation) = match prior {
        Some(v) => (
            cfg.max_initial_rotation.min(v.rotation_angle() + PRIOR_ROTATION_SLACK),
            cfg.max_initial_translation.min(v.translation_norm() + PRIOR_TRANSLATION_SLACK),
        ),
        None => (cfg.max_initial_rotation, cfg.max_initial_translation),
    };
    if initial.rotation_angle() > max_rotation || initial.translation_norm() > max_translation {
        initial = RigidTransform::IDENTITY;
    }

    // ---- Fine-tuning: ICP ---------------------------------------------------
    let icp_span = tigris_obs::span!("match.icp", inliers = inliers.len());
    tgt_searcher.set_injection(cfg.inject_rpce);
    let icp_result = crate::icp::icp_with_options(
        src_searcher.points(),
        tgt_searcher,
        &tgt.normals,
        initial,
        cfg.error_metric,
        cfg.solver,
        cfg.max_correspondence_distance,
        cfg.rpce_reciprocal,
        &cfg.convergence,
        profile,
    );
    tgt_searcher.set_injection(None);
    drop(icp_span);

    if icp_result.termination == IcpTermination::Starved && icp_result.iterations <= 1 {
        return Err(RegistrationError::IcpStarved);
    }

    // Fold the search work this match caused into the profile (deltas:
    // reused searchers carry meters from earlier registrations).
    profile.kd_search_time += src_searcher.search_time().saturating_sub(src_search_time0)
        + tgt_searcher.search_time().saturating_sub(tgt_search_time0);
    profile.search_stats += *src_searcher.stats() - src_stats0;
    profile.search_stats += *tgt_searcher.stats() - tgt_stats0;

    Ok(MatchSummary {
        initial,
        icp: icp_result,
        keypoints: (src.keypoints.len(), tgt.keypoints.len()),
        inliers: inliers.len(),
    })
}

fn assemble_result(summary: MatchSummary, profile: StageProfile) -> RegistrationResult {
    // Mirror the completed registration's accounting into the global
    // metrics registry (no-op with tracing disabled).
    profile.publish_to_obs();
    RegistrationResult {
        transform: summary.icp.transform,
        initial_transform: summary.initial,
        profile,
        keypoints: summary.keypoints,
        inlier_correspondences: summary.inliers,
        icp_iterations: summary.icp.iterations,
    }
}

/// Registers `source` onto `target` with the given configuration,
/// returning the transform that maps source coordinates into the target
/// frame.
///
/// This is exactly [`prepare_frame`] on each cloud followed by
/// [`register_prepared`] — streaming callers that want to reuse a
/// frame's preparation should call those layers directly.
///
/// # Errors
///
/// [`RegistrationError::EmptyCloud`] when either frame is empty;
/// [`RegistrationError::IcpStarved`] when fine-tuning cannot find any
/// overlap; [`RegistrationError::UnknownBackend`] when the config
/// selects an unregistered `Custom` search backend.
///
/// # Example
///
/// ```no_run
/// use tigris_pipeline::{register, RegistrationConfig};
/// use tigris_data::{Sequence, SequenceConfig};
///
/// let seq = Sequence::generate(&SequenceConfig::tiny(), 7);
/// let result = register(seq.frame(1), seq.frame(0), &RegistrationConfig::default()).unwrap();
/// let gt = seq.ground_truth_relative(0);
/// assert!((result.transform.translation - gt.translation).norm() < 0.5);
/// ```
pub fn register(
    source: &PointCloud,
    target: &PointCloud,
    cfg: &RegistrationConfig,
) -> Result<RegistrationResult, RegistrationError> {
    let mut source = prepare_frame(source, cfg)?;
    let mut target = prepare_frame(target, cfg)?;
    register_prepared(&mut source, &mut target, cfg)
}

/// Registers two prepared frames: KPCE → correspondence rejection → SVD
/// initial estimate → ICP fine-tuning. The frames' front ends are *not*
/// recomputed — that is the point of the layer.
///
/// Each frame's preparation cost is merged into the first *successful*
/// registration that consumes it (`profile.frames_prepared`);
/// subsequent registrations count it in `profile.frames_reused`
/// instead. A failed match leaves the bill pending on the frame — it is
/// billed if (and only if) the frame later participates in a successful
/// match; a frame dropped before that takes its preparation cost out of
/// the accounting entirely. Both frames must have been prepared with
/// the same front-end knobs ([`RegistrationConfig::same_front_end`]) as
/// `cfg`.
///
/// # Errors
///
/// [`RegistrationError::IcpStarved`] when fine-tuning cannot find any
/// overlap; [`RegistrationError::PreparationMismatch`] when either
/// frame was prepared under different front-end knobs than `cfg`;
/// [`RegistrationError::EmptyCloud`] for empty frames (only reachable
/// with hand-built searchers via [`prepare_frame_from_searcher`], which
/// itself rejects them).
pub fn register_prepared(
    source: &mut PreparedFrame,
    target: &mut PreparedFrame,
    cfg: &RegistrationConfig,
) -> Result<RegistrationResult, RegistrationError> {
    register_prepared_with_prior(source, target, cfg, None)
}

/// [`register_prepared`] with an explicit motion prior: the expected
/// source→target motion (e.g. the odometer's previous step). When given,
/// the initial-estimate gates tighten to the prior's magnitude plus
/// [`PRIOR_TRANSLATION_SLACK`] / [`PRIOR_ROTATION_SLACK`], rejecting
/// front-end estimates that disagree wildly with the expected motion.
///
/// # Errors
///
/// As [`register_prepared`].
pub fn register_prepared_with_prior(
    source: &mut PreparedFrame,
    target: &mut PreparedFrame,
    cfg: &RegistrationConfig,
    prior: Option<&RigidTransform>,
) -> Result<RegistrationResult, RegistrationError> {
    if source.is_empty() || target.is_empty() {
        return Err(RegistrationError::EmptyCloud);
    }
    // Mismatched front ends would feed this config artifacts it does not
    // describe (different descriptors, radii, backends) — fail typed
    // instead of panicking deep in KPCE or silently degrading.
    if !source.config.same_front_end(cfg) || !target.config.same_front_end(cfg) {
        return Err(RegistrationError::PreparationMismatch);
    }
    let mut profile = StageProfile::new();
    let t0 = Instant::now();
    let summary = run_match(
        &mut source.searcher,
        &source.artifacts,
        &mut target.searcher,
        &target.artifacts,
        cfg,
        prior,
        &mut profile,
    )?;
    profile.match_time += t0.elapsed();
    // Bill each frame's preparation to the first *successful* result that
    // uses it (a failed match leaves the bill pending); afterwards the
    // frame counts as a front-end reuse.
    for frame in [&mut *source, &mut *target] {
        match frame.consume_preparation() {
            Some(prep) => profile.merge(&prep),
            None => profile.frames_reused += 1,
        }
    }
    Ok(assemble_result(summary, profile))
}

/// Registration over caller-provided searchers — the borrowed-searcher
/// escape hatch for experiments that need query logging or
/// backend-specific metering on both frames and the searchers back
/// afterwards. Runs the same preparation and matching layers as
/// [`register`], with both front ends computed fresh on every call; for
/// streaming reuse hold [`PreparedFrame`]s instead.
pub fn register_with_searchers(
    src_searcher: &mut Searcher3,
    tgt_searcher: &mut Searcher3,
    cfg: &RegistrationConfig,
) -> Result<RegistrationResult, RegistrationError> {
    if src_searcher.is_empty() || tgt_searcher.is_empty() {
        return Err(RegistrationError::EmptyCloud);
    }
    let mut profile = StageProfile::new();
    profile.kd_build_time += src_searcher.build_time() + tgt_searcher.build_time();

    let t0 = Instant::now();
    let mut scratch = PrepareScratch::new();
    let src_art = run_front_end(src_searcher, cfg, &mut profile, &mut scratch);
    let tgt_art = run_front_end(tgt_searcher, cfg, &mut profile, &mut scratch);
    profile.frames_prepared += 2;
    // Index builds happened before this call but belong to the
    // preparation layer, same as on the PreparedFrame path.
    profile.prepare_time += t0.elapsed() + profile.kd_build_time;

    let t0 = Instant::now();
    let summary =
        run_match(src_searcher, &src_art, tgt_searcher, &tgt_art, cfg, None, &mut profile)?;
    profile.match_time += t0.elapsed();
    Ok(assemble_result(summary, profile))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KeypointAlgorithm, RegistrationConfig};

    /// A structured synthetic "urban corner" scene, denser than the ICP
    /// unit-test cloud, with distinctive geometry for the front-end.
    fn scene_cloud() -> PointCloud {
        let mut pts = Vec::new();
        let step = 0.15;
        for i in 0..40 {
            for j in 0..40 {
                pts.push(Vec3::new(i as f64 * step, j as f64 * step, 0.0));
            }
        }
        for i in 0..40 {
            for k in 1..15 {
                pts.push(Vec3::new(i as f64 * step, 6.0, k as f64 * step));
            }
        }
        for j in 0..20 {
            for k in 1..15 {
                pts.push(Vec3::new(6.0, j as f64 * step, k as f64 * step));
            }
        }
        // A "car" box for asymmetry.
        for i in 0..12 {
            for k in 0..6 {
                pts.push(Vec3::new(2.0 + i as f64 * 0.1, 3.0, k as f64 * 0.15));
                pts.push(Vec3::new(2.0 + i as f64 * 0.1, 3.8, k as f64 * 0.15));
            }
        }
        PointCloud::from_points(pts)
    }

    fn fast_config() -> RegistrationConfig {
        RegistrationConfig {
            voxel_size: 0.0,
            normal_radius: 0.5,
            keypoint: KeypointAlgorithm::Uniform { voxel: 1.0 },
            max_correspondence_distance: 1.5,
            ..RegistrationConfig::default()
        }
    }

    #[test]
    fn registers_a_known_transform() {
        let target = scene_cloud();
        let gt = RigidTransform::from_axis_angle(Vec3::Z, 0.04, Vec3::new(0.3, -0.15, 0.02));
        let source = target.transformed(&gt.inverse());
        let result = register(&source, &target, &fast_config()).unwrap();
        assert!(
            (result.transform.translation - gt.translation).norm() < 0.05,
            "t = {} vs {}",
            result.transform.translation,
            gt.translation
        );
        assert!((result.transform.rotation - gt.rotation).frobenius_norm() < 0.05);
        assert!(result.icp_iterations >= 1);
        assert!(result.keypoints.0 > 0 && result.keypoints.1 > 0);
    }

    #[test]
    fn profile_covers_all_stages() {
        let target = scene_cloud();
        let source = target
            .transformed(&RigidTransform::from_translation(Vec3::new(0.2, 0.0, 0.0)).inverse());
        let result = register(&source, &target, &fast_config()).unwrap();
        let p = &result.profile;
        for stage in Stage::ALL {
            assert!(p.time(stage) > std::time::Duration::ZERO, "stage {stage} has zero time");
        }
        assert!(p.kd_search_time > std::time::Duration::ZERO);
        assert!(p.kd_build_time > std::time::Duration::ZERO);
        assert!(p.search_stats.queries > 0);
    }

    #[test]
    fn kd_search_dominates() {
        // The paper's headline: KD-tree search is >50% of registration time.
        // At our small test scale the exact fraction varies, but search must
        // be a major component.
        let target = scene_cloud();
        let source =
            target.transformed(&RigidTransform::from_translation(Vec3::new(0.2, 0.1, 0.0)));
        let result = register(&source, &target, &fast_config()).unwrap();
        assert!(
            result.profile.kd_search_fraction() > 0.2,
            "kd fraction = {}",
            result.profile.kd_search_fraction()
        );
    }

    #[test]
    fn empty_cloud_is_an_error() {
        let empty = PointCloud::new();
        let full = scene_cloud();
        assert_eq!(
            register(&empty, &full, &fast_config()).unwrap_err(),
            RegistrationError::EmptyCloud
        );
        assert_eq!(
            register(&full, &empty, &fast_config()).unwrap_err(),
            RegistrationError::EmptyCloud
        );
    }

    #[test]
    fn disjoint_featureless_clouds_starve() {
        // Featureless planes 500 m apart: ISS finds no key-points, so the
        // initial estimate stays identity, and RPCE finds nothing within the
        // correspondence distance → ICP starves. (A *translated copy* of a
        // featured scene would register fine — descriptors are translation
        // invariant — so this is the honest starvation case.)
        let mut src_pts = Vec::new();
        let mut tgt_pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                tgt_pts.push(Vec3::new(i as f64 * 0.2, j as f64 * 0.2, 0.0));
                src_pts.push(Vec3::new(i as f64 * 0.2 + 500.0, j as f64 * 0.2, 0.0));
            }
        }
        let mut cfg = fast_config();
        cfg.keypoint = KeypointAlgorithm::Iss { radius: 0.6 };
        let err =
            register(&PointCloud::from_points(src_pts), &PointCloud::from_points(tgt_pts), &cfg)
                .unwrap_err();
        assert_eq!(err, RegistrationError::IcpStarved);
    }

    #[test]
    fn two_stage_backend_matches_classic_quality() {
        let target = scene_cloud();
        let gt = RigidTransform::from_translation(Vec3::new(0.25, -0.1, 0.0));
        let source = target.transformed(&gt.inverse());

        let classic = register(&source, &target, &fast_config()).unwrap();
        let mut cfg = fast_config();
        cfg.backend = SearchBackendConfig::TwoStage { top_height: 6 };
        let two_stage = register(&source, &target, &cfg).unwrap();
        // Exact two-stage search: same answers, same quality.
        assert!(
            (classic.transform.translation - two_stage.transform.translation).norm() < 1e-6,
            "{} vs {}",
            classic.transform.translation,
            two_stage.transform.translation
        );
    }

    #[test]
    fn voxel_downsampling_reduces_work() {
        let target = scene_cloud();
        let source = target
            .transformed(&RigidTransform::from_translation(Vec3::new(0.2, 0.0, 0.0)).inverse());
        let mut dense_cfg = fast_config();
        dense_cfg.voxel_size = 0.0;
        let mut coarse_cfg = fast_config();
        coarse_cfg.voxel_size = 0.5;
        let dense = register(&source, &target, &dense_cfg).unwrap();
        let coarse = register(&source, &target, &coarse_cfg).unwrap();
        assert!(
            coarse.profile.search_stats.queries < dense.profile.search_stats.queries,
            "coarse {} !< dense {}",
            coarse.profile.search_stats.queries,
            dense.profile.search_stats.queries
        );
    }

    #[test]
    fn brute_force_backend_is_a_ground_truth_oracle() {
        // The exhaustive oracle runs through the *whole* pipeline and, being
        // exact, lands on the same transform as the classic KD-tree.
        let target = scene_cloud();
        let gt = RigidTransform::from_translation(Vec3::new(0.2, -0.05, 0.0));
        let source = target.transformed(&gt.inverse());

        let classic = register(&source, &target, &fast_config()).unwrap();
        let mut cfg = fast_config();
        cfg.backend = SearchBackendConfig::BruteForce;
        let brute = register(&source, &target, &cfg).unwrap();
        assert!(
            (classic.transform.translation - brute.transform.translation).norm() < 1e-9,
            "{} vs {}",
            classic.transform.translation,
            brute.transform.translation
        );
        assert_eq!(classic.icp_iterations, brute.icp_iterations);
    }

    #[test]
    fn unknown_custom_backend_fails_cleanly() {
        let target = scene_cloud();
        let mut cfg = fast_config();
        cfg.backend = SearchBackendConfig::Custom { name: "not-a-backend" };
        assert_eq!(
            register(&target, &target, &cfg).unwrap_err(),
            RegistrationError::UnknownBackend("not-a-backend")
        );
    }

    #[test]
    fn error_display() {
        assert!(!RegistrationError::EmptyCloud.to_string().is_empty());
        assert!(!RegistrationError::IcpStarved.to_string().is_empty());
        assert!(RegistrationError::UnknownBackend("x").to_string().contains('x'));
        assert!(!RegistrationError::PreparationMismatch.to_string().is_empty());
    }

    #[test]
    fn mismatched_preparations_fail_typed() {
        let cloud = scene_cloud();
        let cfg = fast_config();
        let mut other = fast_config();
        other.normal_radius += 0.3;
        let mut source = prepare_frame(&cloud, &cfg).unwrap();
        let mut target = prepare_frame(&cloud, &other).unwrap();
        // Frame prepared under different front-end knobs → typed error,
        // whichever side mismatches the matching config.
        assert_eq!(
            register_prepared(&mut source, &mut target, &cfg).unwrap_err(),
            RegistrationError::PreparationMismatch
        );
        assert_eq!(
            register_prepared(&mut source, &mut target, &other).unwrap_err(),
            RegistrationError::PreparationMismatch
        );
        // Matching-only knob changes are fine on compatible frames.
        let mut target = prepare_frame(&cloud, &cfg).unwrap();
        let mut matching_only = cfg.clone();
        matching_only.max_correspondence_distance = 2.0;
        assert!(register_prepared(&mut source, &mut target, &matching_only).is_ok());
    }

    #[test]
    fn failed_match_leaves_preparations_billable() {
        let target_cloud = scene_cloud();
        let gt = RigidTransform::from_translation(Vec3::new(0.2, 0.0, 0.0));
        let source_cloud = target_cloud.transformed(&gt.inverse());
        let cfg = fast_config();
        let mut source = prepare_frame(&source_cloud, &cfg).unwrap();
        let mut target = prepare_frame(&target_cloud, &cfg).unwrap();

        // A matching-only knob that guarantees starvation: RPCE can find
        // nothing within a nanometer.
        let mut starving = cfg.clone();
        starving.max_correspondence_distance = 1e-9;
        assert_eq!(
            register_prepared(&mut source, &mut target, &starving).unwrap_err(),
            RegistrationError::IcpStarved
        );

        // The failed attempt must not consume the preparation bills: the
        // first successful match still accounts both front ends.
        let result = register_prepared(&mut source, &mut target, &cfg).unwrap();
        assert_eq!(result.profile.frames_prepared, 2);
        assert_eq!(result.profile.frames_reused, 0);
        assert!(result.profile.prepare_time > std::time::Duration::ZERO);
    }
}

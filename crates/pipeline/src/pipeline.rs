//! End-to-end registration: the full two-phase pipeline of paper Fig. 2.

use std::time::Instant;

use tigris_geom::{PointCloud, RigidTransform, Vec3};

use crate::config::{ConfigError, RegistrationConfig, SearchBackendConfig};
use crate::correspond::{kpce_batched, kpce_ratio_batched};
use crate::descriptor::compute_descriptors;
use crate::icp::IcpTermination;
use crate::keypoint::detect_keypoints;
use crate::normal::estimate_normals;
use crate::profile::{Stage, StageProfile};
use crate::reject::reject_correspondences;
use crate::search::Searcher3;
use crate::transform::estimate_svd;

/// Registration failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistrationError {
    /// A frame was empty (or became empty after downsampling).
    EmptyCloud,
    /// The fine-tuning phase ran out of correspondences entirely.
    IcpStarved,
    /// The configured `Custom` search backend is not in the registry.
    UnknownBackend(&'static str),
}

impl std::fmt::Display for RegistrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistrationError::EmptyCloud => write!(f, "a frame holds no points"),
            RegistrationError::IcpStarved => {
                write!(f, "fine-tuning found no correspondences; clouds may not overlap")
            }
            RegistrationError::UnknownBackend(name) => {
                write!(f, "no search backend registered under {name:?}")
            }
        }
    }
}

impl std::error::Error for RegistrationError {}

/// The output of end-to-end registration.
#[derive(Debug, Clone)]
pub struct RegistrationResult {
    /// The estimated transform mapping source coordinates into target
    /// coordinates (the paper's matrix `M`, Eq. 1).
    pub transform: RigidTransform,
    /// The initial-estimation phase's transform, before fine-tuning.
    pub initial_transform: RigidTransform,
    /// Per-stage and per-kernel timing plus KD-tree statistics.
    pub profile: StageProfile,
    /// Key-point counts (source, target).
    pub keypoints: (usize, usize),
    /// Correspondences surviving rejection.
    pub inlier_correspondences: usize,
    /// ICP iterations run.
    pub icp_iterations: usize,
}

/// Builds the metered searcher a backend config selects — the single
/// construction path shared by [`register`], the odometer, and DSE.
pub(crate) fn build_searcher(
    points: &[Vec3],
    backend: &SearchBackendConfig,
) -> Result<Searcher3, RegistrationError> {
    Searcher3::from_config(points, backend).map_err(|err| match err {
        ConfigError::UnknownBackend { name } => RegistrationError::UnknownBackend(name),
        // `from_config` can only fail on registry lookup.
        _ => unreachable!("Searcher3::from_config fails only on unknown backends"),
    })
}

/// Registers `source` onto `target` with the given configuration,
/// returning the transform that maps source coordinates into the target
/// frame.
///
/// # Errors
///
/// [`RegistrationError::EmptyCloud`] when either frame is empty;
/// [`RegistrationError::IcpStarved`] when fine-tuning cannot find any
/// overlap.
///
/// # Example
///
/// ```no_run
/// use tigris_pipeline::{register, RegistrationConfig};
/// use tigris_data::{Sequence, SequenceConfig};
///
/// let seq = Sequence::generate(&SequenceConfig::tiny(), 7);
/// let result = register(seq.frame(1), seq.frame(0), &RegistrationConfig::default()).unwrap();
/// let gt = seq.ground_truth_relative(0);
/// assert!((result.transform.translation - gt.translation).norm() < 0.5);
/// ```
pub fn register(
    source: &PointCloud,
    target: &PointCloud,
    cfg: &RegistrationConfig,
) -> Result<RegistrationResult, RegistrationError> {
    // Downsample; build the metered searchers once per frame.
    let (src_pts, tgt_pts) = if cfg.voxel_size > 0.0 {
        (
            source.voxel_downsample(cfg.voxel_size).points().to_vec(),
            target.voxel_downsample(cfg.voxel_size).points().to_vec(),
        )
    } else {
        (source.points().to_vec(), target.points().to_vec())
    };
    if src_pts.is_empty() || tgt_pts.is_empty() {
        return Err(RegistrationError::EmptyCloud);
    }
    let mut src_searcher = build_searcher(&src_pts, &cfg.backend)?;
    let mut tgt_searcher = build_searcher(&tgt_pts, &cfg.backend)?;
    register_with_searchers(&mut src_searcher, &mut tgt_searcher, cfg)
}

/// Registration over caller-provided searchers — the entry point for
/// experiments that need custom backends (two-stage heights, approximate
/// search, injections on specific stages).
pub fn register_with_searchers(
    src_searcher: &mut Searcher3,
    tgt_searcher: &mut Searcher3,
    cfg: &RegistrationConfig,
) -> Result<RegistrationResult, RegistrationError> {
    if src_searcher.is_empty() || tgt_searcher.is_empty() {
        return Err(RegistrationError::EmptyCloud);
    }
    // The config's parallelism knob governs every batched fan-out below,
    // including searches through caller-provided searchers.
    src_searcher.set_parallel(cfg.parallel);
    tgt_searcher.set_parallel(cfg.parallel);
    let mut profile = StageProfile::new();
    profile.kd_build_time += src_searcher.build_time() + tgt_searcher.build_time();

    let src_pts: Vec<Vec3> = src_searcher.points().to_vec();
    let tgt_pts: Vec<Vec3> = tgt_searcher.points().to_vec();

    // ---- Stage 1: Normal Estimation (both frames) ----------------------
    let t0 = Instant::now();
    src_searcher.set_injection(cfg.inject_ne);
    tgt_searcher.set_injection(cfg.inject_ne);
    let src_normals = estimate_normals(src_searcher, cfg.normal_radius, cfg.normal_algorithm);
    let tgt_normals = estimate_normals(tgt_searcher, cfg.normal_radius, cfg.normal_algorithm);
    src_searcher.set_injection(None);
    tgt_searcher.set_injection(None);
    profile.add(Stage::NormalEstimation, t0.elapsed());

    // ---- Stage 2: Key-point Detection -----------------------------------
    let t0 = Instant::now();
    let src_kp = detect_keypoints(src_searcher, &src_normals, cfg.keypoint);
    let tgt_kp = detect_keypoints(tgt_searcher, &tgt_normals, cfg.keypoint);
    profile.add(Stage::KeypointDetection, t0.elapsed());

    // ---- Stage 3: Descriptor Calculation ---------------------------------
    let t0 = Instant::now();
    let src_desc = compute_descriptors(src_searcher, &src_normals, &src_kp, cfg.descriptor);
    let tgt_desc = compute_descriptors(tgt_searcher, &tgt_normals, &tgt_kp, cfg.descriptor);
    profile.add(Stage::DescriptorCalculation, t0.elapsed());

    // ---- Stage 4: KPCE ----------------------------------------------------
    let t0 = Instant::now();
    let matches = match cfg.kpce_ratio {
        // The ratio test replaces plain NN matching (injection is an
        // NN-path experiment and does not combine with it).
        Some(ratio) if cfg.inject_kpce_kth.is_none() => {
            kpce_ratio_batched(&src_desc, &tgt_desc, ratio, &cfg.parallel)
        }
        _ => kpce_batched(
            &src_desc,
            &tgt_desc,
            cfg.kpce_reciprocal,
            cfg.inject_kpce_kth,
            &cfg.parallel,
        ),
    };
    profile.add(Stage::Kpce, t0.elapsed());

    // ---- Stage 5: Correspondence Rejection --------------------------------
    let t0 = Instant::now();
    let src_kp_pts: Vec<Vec3> = src_kp.iter().map(|&i| src_pts[i]).collect();
    let tgt_kp_pts: Vec<Vec3> = tgt_kp.iter().map(|&i| tgt_pts[i]).collect();
    let inliers = reject_correspondences(&matches, &src_kp_pts, &tgt_kp_pts, cfg.rejection, 0x7161);
    profile.add(Stage::CorrespondenceRejection, t0.elapsed());

    // ---- Initial transform -------------------------------------------------
    let mut initial = estimate_svd(&src_kp_pts, &tgt_kp_pts, &inliers)
        .unwrap_or(RigidTransform::IDENTITY);
    // Motion-prior gate: consecutive frames cannot move this much; a
    // violating estimate is a symmetric-scene mismatch (see config docs).
    if initial.rotation_angle() > cfg.max_initial_rotation
        || initial.translation_norm() > cfg.max_initial_translation
    {
        initial = RigidTransform::IDENTITY;
    }

    // ---- Fine-tuning: ICP ---------------------------------------------------
    tgt_searcher.set_injection(cfg.inject_rpce);
    let icp_result = crate::icp::icp_with_options(
        &src_pts,
        tgt_searcher,
        &tgt_normals,
        initial,
        cfg.error_metric,
        cfg.solver,
        cfg.max_correspondence_distance,
        cfg.rpce_reciprocal,
        &cfg.convergence,
        &mut profile,
    );
    tgt_searcher.set_injection(None);

    if icp_result.termination == IcpTermination::Starved && icp_result.iterations <= 1 {
        return Err(RegistrationError::IcpStarved);
    }

    // Fold searcher meters into the profile.
    profile.kd_search_time += src_searcher.search_time() + tgt_searcher.search_time();
    profile.search_stats += *src_searcher.stats();
    profile.search_stats += *tgt_searcher.stats();

    Ok(RegistrationResult {
        transform: icp_result.transform,
        initial_transform: initial,
        profile,
        keypoints: (src_kp.len(), tgt_kp.len()),
        inlier_correspondences: inliers.len(),
        icp_iterations: icp_result.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KeypointAlgorithm, RegistrationConfig};

    /// A structured synthetic "urban corner" scene, denser than the ICP
    /// unit-test cloud, with distinctive geometry for the front-end.
    fn scene_cloud() -> PointCloud {
        let mut pts = Vec::new();
        let step = 0.15;
        for i in 0..40 {
            for j in 0..40 {
                pts.push(Vec3::new(i as f64 * step, j as f64 * step, 0.0));
            }
        }
        for i in 0..40 {
            for k in 1..15 {
                pts.push(Vec3::new(i as f64 * step, 6.0, k as f64 * step));
            }
        }
        for j in 0..20 {
            for k in 1..15 {
                pts.push(Vec3::new(6.0, j as f64 * step, k as f64 * step));
            }
        }
        // A "car" box for asymmetry.
        for i in 0..12 {
            for k in 0..6 {
                pts.push(Vec3::new(2.0 + i as f64 * 0.1, 3.0, k as f64 * 0.15));
                pts.push(Vec3::new(2.0 + i as f64 * 0.1, 3.8, k as f64 * 0.15));
            }
        }
        PointCloud::from_points(pts)
    }

    fn fast_config() -> RegistrationConfig {
        RegistrationConfig {
            voxel_size: 0.0,
            normal_radius: 0.5,
            keypoint: KeypointAlgorithm::Uniform { voxel: 1.0 },
            max_correspondence_distance: 1.5,
            ..RegistrationConfig::default()
        }
    }

    #[test]
    fn registers_a_known_transform() {
        let target = scene_cloud();
        let gt = RigidTransform::from_axis_angle(Vec3::Z, 0.04, Vec3::new(0.3, -0.15, 0.02));
        let source = target.transformed(&gt.inverse());
        let result = register(&source, &target, &fast_config()).unwrap();
        assert!(
            (result.transform.translation - gt.translation).norm() < 0.05,
            "t = {} vs {}",
            result.transform.translation,
            gt.translation
        );
        assert!((result.transform.rotation - gt.rotation).frobenius_norm() < 0.05);
        assert!(result.icp_iterations >= 1);
        assert!(result.keypoints.0 > 0 && result.keypoints.1 > 0);
    }

    #[test]
    fn profile_covers_all_stages() {
        let target = scene_cloud();
        let source = target.transformed(&RigidTransform::from_translation(Vec3::new(0.2, 0.0, 0.0)).inverse());
        let result = register(&source, &target, &fast_config()).unwrap();
        let p = &result.profile;
        for stage in Stage::ALL {
            assert!(
                p.time(stage) > std::time::Duration::ZERO,
                "stage {stage} has zero time"
            );
        }
        assert!(p.kd_search_time > std::time::Duration::ZERO);
        assert!(p.kd_build_time > std::time::Duration::ZERO);
        assert!(p.search_stats.queries > 0);
    }

    #[test]
    fn kd_search_dominates() {
        // The paper's headline: KD-tree search is >50% of registration time.
        // At our small test scale the exact fraction varies, but search must
        // be a major component.
        let target = scene_cloud();
        let source = target.transformed(&RigidTransform::from_translation(Vec3::new(0.2, 0.1, 0.0)));
        let result = register(&source, &target, &fast_config()).unwrap();
        assert!(
            result.profile.kd_search_fraction() > 0.2,
            "kd fraction = {}",
            result.profile.kd_search_fraction()
        );
    }

    #[test]
    fn empty_cloud_is_an_error() {
        let empty = PointCloud::new();
        let full = scene_cloud();
        assert_eq!(
            register(&empty, &full, &fast_config()).unwrap_err(),
            RegistrationError::EmptyCloud
        );
        assert_eq!(
            register(&full, &empty, &fast_config()).unwrap_err(),
            RegistrationError::EmptyCloud
        );
    }

    #[test]
    fn disjoint_featureless_clouds_starve() {
        // Featureless planes 500 m apart: ISS finds no key-points, so the
        // initial estimate stays identity, and RPCE finds nothing within the
        // correspondence distance → ICP starves. (A *translated copy* of a
        // featured scene would register fine — descriptors are translation
        // invariant — so this is the honest starvation case.)
        let mut src_pts = Vec::new();
        let mut tgt_pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                tgt_pts.push(Vec3::new(i as f64 * 0.2, j as f64 * 0.2, 0.0));
                src_pts.push(Vec3::new(i as f64 * 0.2 + 500.0, j as f64 * 0.2, 0.0));
            }
        }
        let mut cfg = fast_config();
        cfg.keypoint = KeypointAlgorithm::Iss { radius: 0.6 };
        let err = register(
            &PointCloud::from_points(src_pts),
            &PointCloud::from_points(tgt_pts),
            &cfg,
        )
        .unwrap_err();
        assert_eq!(err, RegistrationError::IcpStarved);
    }

    #[test]
    fn two_stage_backend_matches_classic_quality() {
        let target = scene_cloud();
        let gt = RigidTransform::from_translation(Vec3::new(0.25, -0.1, 0.0));
        let source = target.transformed(&gt.inverse());

        let classic = register(&source, &target, &fast_config()).unwrap();
        let mut cfg = fast_config();
        cfg.backend = SearchBackendConfig::TwoStage { top_height: 6 };
        let two_stage = register(&source, &target, &cfg).unwrap();
        // Exact two-stage search: same answers, same quality.
        assert!(
            (classic.transform.translation - two_stage.transform.translation).norm() < 1e-6,
            "{} vs {}",
            classic.transform.translation,
            two_stage.transform.translation
        );
    }

    #[test]
    fn voxel_downsampling_reduces_work() {
        let target = scene_cloud();
        let source = target.transformed(&RigidTransform::from_translation(Vec3::new(0.2, 0.0, 0.0)).inverse());
        let mut dense_cfg = fast_config();
        dense_cfg.voxel_size = 0.0;
        let mut coarse_cfg = fast_config();
        coarse_cfg.voxel_size = 0.5;
        let dense = register(&source, &target, &dense_cfg).unwrap();
        let coarse = register(&source, &target, &coarse_cfg).unwrap();
        assert!(
            coarse.profile.search_stats.queries < dense.profile.search_stats.queries,
            "coarse {} !< dense {}",
            coarse.profile.search_stats.queries,
            dense.profile.search_stats.queries
        );
    }

    #[test]
    fn brute_force_backend_is_a_ground_truth_oracle() {
        // The exhaustive oracle runs through the *whole* pipeline and, being
        // exact, lands on the same transform as the classic KD-tree.
        let target = scene_cloud();
        let gt = RigidTransform::from_translation(Vec3::new(0.2, -0.05, 0.0));
        let source = target.transformed(&gt.inverse());

        let classic = register(&source, &target, &fast_config()).unwrap();
        let mut cfg = fast_config();
        cfg.backend = SearchBackendConfig::BruteForce;
        let brute = register(&source, &target, &cfg).unwrap();
        assert!(
            (classic.transform.translation - brute.transform.translation).norm() < 1e-9,
            "{} vs {}",
            classic.transform.translation,
            brute.transform.translation
        );
        assert_eq!(classic.icp_iterations, brute.icp_iterations);
    }

    #[test]
    fn unknown_custom_backend_fails_cleanly() {
        let target = scene_cloud();
        let mut cfg = fast_config();
        cfg.backend = SearchBackendConfig::Custom { name: "not-a-backend" };
        assert_eq!(
            register(&target, &target, &cfg).unwrap_err(),
            RegistrationError::UnknownBackend("not-a-backend")
        );
    }

    #[test]
    fn error_display() {
        assert!(!RegistrationError::EmptyCloud.to_string().is_empty());
        assert!(!RegistrationError::IcpStarved.to_string().is_empty());
        assert!(RegistrationError::UnknownBackend("x").to_string().contains('x'));
    }
}

//! The fine-tuning phase: Iterative Closest Point (paper Fig. 2 right
//! half; Besl & McKay / Chen & Medioni).
//!
//! Starting from the initial estimate, each iteration (1) re-establishes
//! dense correspondences (RPCE — one NN query per source point) and (2)
//! minimizes the configured error metric with the configured solver,
//! feeding the refined transform back until a convergence criterion fires.

use std::time::Instant;

use tigris_geom::{RigidTransform, Vec3};

use crate::config::{ConvergenceCriteria, ErrorMetric, SolverAlgorithm};
use crate::correspond::rpce;
use crate::profile::{Stage, StageProfile};
use crate::search::Searcher3;
use crate::transform::{
    estimate_svd, mse_point_to_plane, mse_point_to_point, point_to_plane_damped,
};

/// Why ICP stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcpTermination {
    /// The transform update fell below the epsilon thresholds.
    TransformConverged,
    /// The relative MSE improvement fell below its threshold.
    MseConverged,
    /// The iteration budget ran out.
    MaxIterations,
    /// Too few correspondences survived to continue.
    Starved,
}

/// The outcome of the fine-tuning loop.
#[derive(Debug, Clone)]
pub struct IcpResult {
    /// Final transform mapping source coordinates into target coordinates.
    pub transform: RigidTransform,
    /// Iterations executed.
    pub iterations: usize,
    /// Final mean-square error over the last correspondence set.
    pub final_mse: f64,
    /// Why the loop stopped.
    pub termination: IcpTermination,
}

/// Runs ICP fine-tuning.
///
/// * `source` — points of the source frame (sensor frame).
/// * `target_searcher` — metered searcher over the target frame.
/// * `target_normals` — target normals (required by point-to-plane).
/// * `initial` — the initial-estimation phase's transform.
///
/// Time is attributed to [`Stage::Rpce`] and [`Stage::ErrorMinimization`]
/// in `profile`.
///
/// # Panics
///
/// Panics when `error_metric` is point-to-plane and `target_normals` is
/// not parallel to the target cloud.
#[allow(clippy::too_many_arguments)]
pub fn icp(
    source: &[Vec3],
    target_searcher: &mut Searcher3,
    target_normals: &[Vec3],
    initial: RigidTransform,
    error_metric: ErrorMetric,
    solver: SolverAlgorithm,
    max_correspondence_distance: f64,
    criteria: &ConvergenceCriteria,
    profile: &mut StageProfile,
) -> IcpResult {
    icp_with_options(
        source,
        target_searcher,
        target_normals,
        initial,
        error_metric,
        solver,
        max_correspondence_distance,
        false,
        criteria,
        profile,
    )
}

/// ICP with the reciprocity knob exposed (Tbl. 1's RPCE "Reciprocity"):
/// when `reciprocal` is set, each iteration keeps only mutually-nearest
/// dense correspondences, rebuilding a source-side tree over the moved
/// points (the honest cost of the knob).
#[allow(clippy::too_many_arguments)]
pub fn icp_with_options(
    source: &[Vec3],
    target_searcher: &mut Searcher3,
    target_normals: &[Vec3],
    initial: RigidTransform,
    error_metric: ErrorMetric,
    solver: SolverAlgorithm,
    max_correspondence_distance: f64,
    reciprocal: bool,
    criteria: &ConvergenceCriteria,
    profile: &mut StageProfile,
) -> IcpResult {
    if error_metric == ErrorMetric::PointToPlane {
        assert_eq!(
            target_normals.len(),
            target_searcher.len(),
            "point-to-plane needs target normals parallel to the target cloud"
        );
    }
    let target: Vec<Vec3> = target_searcher.points().to_vec();
    let mut transform = initial;
    let mut prev_mse = f64::INFINITY;
    let mut lambda = 1e-3; // LM damping state
    let mut termination = IcpTermination::MaxIterations;
    let mut iterations = 0;
    let mut final_mse = f64::NAN;

    for _ in 0..criteria.max_iterations {
        iterations += 1;

        // --- RPCE: transform source by the current estimate, find dense NNs.
        let t0 = Instant::now();
        let moved: Vec<Vec3> =
            tigris_core::batch::parallel_map(source, &target_searcher.parallel(), |&p| {
                transform.apply(p)
            });
        let correspondences = if reciprocal {
            let mut moved_searcher = crate::search::Searcher3::classic(&moved);
            moved_searcher.set_parallel(target_searcher.parallel());
            profile.kd_build_time += moved_searcher.build_time();
            let out = crate::correspond::rpce_reciprocal(
                &moved,
                &mut moved_searcher,
                target_searcher,
                max_correspondence_distance,
            );
            profile.kd_search_time += moved_searcher.search_time();
            profile.search_stats += *moved_searcher.stats();
            out
        } else {
            rpce(&moved, target_searcher, max_correspondence_distance)
        };
        profile.add(Stage::Rpce, t0.elapsed());

        let min_needed = if error_metric == ErrorMetric::PointToPlane { 6 } else { 3 };
        if correspondences.len() < min_needed {
            termination = IcpTermination::Starved;
            final_mse = prev_mse;
            break;
        }

        // --- Transformation estimation on the *moved* source, producing an
        // incremental transform composed onto the running estimate.
        let t0 = Instant::now();
        let mse = match error_metric {
            ErrorMetric::PointToPoint => {
                mse_point_to_point(&moved, &target, &correspondences, &RigidTransform::IDENTITY)
            }
            ErrorMetric::PointToPlane => mse_point_to_plane(
                &moved,
                &target,
                target_normals,
                &correspondences,
                &RigidTransform::IDENTITY,
            ),
        };
        let delta = match (error_metric, solver) {
            (ErrorMetric::PointToPoint, SolverAlgorithm::Svd) => {
                estimate_svd(&moved, &target, &correspondences).ok()
            }
            (ErrorMetric::PointToPoint, SolverAlgorithm::LevenbergMarquardt) => {
                // LM on point-to-point: damped closed-form step — the SVD
                // solution interpolated toward identity as damping grows.
                estimate_svd(&moved, &target, &correspondences).ok().map(|full| {
                    let scale = 1.0 / (1.0 + lambda);
                    let angle = full.rotation_angle() * scale;
                    let rotation = if full.rotation_angle() > 1e-12 {
                        // Re-scale the rotation about its own axis.
                        scale_rotation(&full, scale)
                    } else {
                        full.rotation
                    };
                    let _ = angle;
                    RigidTransform::new(rotation, full.translation * scale)
                })
            }
            (ErrorMetric::PointToPlane, SolverAlgorithm::Svd) => {
                // Plain Gauss-Newton step (λ = 0).
                point_to_plane_damped(&moved, &target, target_normals, &correspondences, 0.0).ok()
            }
            (ErrorMetric::PointToPlane, SolverAlgorithm::LevenbergMarquardt) => {
                point_to_plane_damped(&moved, &target, target_normals, &correspondences, lambda)
                    .ok()
            }
        };
        profile.add(Stage::ErrorMinimization, t0.elapsed());

        let Some(delta) = delta else {
            termination = IcpTermination::Starved;
            final_mse = mse;
            break;
        };
        transform = delta * transform;
        final_mse = mse;
        tigris_obs::event!(
            "icp.iter",
            iteration = iterations,
            mse = mse,
            correspondences = correspondences.len(),
        );

        // LM damping schedule: error went down → trust the model more.
        if mse < prev_mse {
            lambda = (lambda * 0.5).max(1e-9);
        } else {
            lambda = (lambda * 4.0).min(1e3);
        }

        // --- Convergence checks.
        if delta.translation_norm() < criteria.translation_epsilon
            && delta.rotation_angle() < criteria.rotation_epsilon
        {
            termination = IcpTermination::TransformConverged;
            break;
        }
        if prev_mse.is_finite() {
            let rel = (prev_mse - mse).abs() / prev_mse.max(1e-30);
            if rel < criteria.mse_relative_epsilon {
                termination = IcpTermination::MseConverged;
                break;
            }
        }
        prev_mse = mse;
    }

    profile.icp_iterations += iterations;
    IcpResult { transform, iterations, final_mse, termination }
}

/// Scales a rotation about its own axis by `scale` (for damped
/// point-to-point LM steps).
fn scale_rotation(t: &RigidTransform, scale: f64) -> tigris_geom::Mat3 {
    let angle = t.rotation_angle();
    if angle < 1e-12 {
        return t.rotation;
    }
    // Extract the axis from the skew-symmetric part of R.
    let r = &t.rotation.m;
    let axis = Vec3::new(r[2][1] - r[1][2], r[0][2] - r[2][0], r[1][0] - r[0][1]);
    match axis.normalized() {
        Some(axis) => tigris_geom::Mat3::from_axis_angle(axis, angle * scale),
        None => t.rotation, // angle ≈ π: axis extraction degenerate; keep full step
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConvergenceCriteria, ErrorMetric, SolverAlgorithm};

    /// A 3D structured cloud: two walls + floor (well-constrained for ICP).
    fn structured_cloud() -> Vec<Vec3> {
        let mut pts = Vec::new();
        for i in 0..15 {
            for j in 0..15 {
                let (a, b) = (i as f64 * 0.2, j as f64 * 0.2);
                pts.push(Vec3::new(a, b, 0.0)); // floor
                pts.push(Vec3::new(a, 0.0, b + 0.2)); // wall 1
                pts.push(Vec3::new(0.0, a + 0.2, b + 0.2)); // wall 2
            }
        }
        pts
    }

    fn normals_for(points: &[Vec3]) -> Vec<Vec3> {
        // Analytic normals for the structured cloud.
        points
            .iter()
            .map(|p| {
                if p.z == 0.0 {
                    Vec3::Z
                } else if p.y == 0.0 {
                    Vec3::Y
                } else {
                    Vec3::X
                }
            })
            .collect()
    }

    fn run(
        metric: ErrorMetric,
        solver: SolverAlgorithm,
    ) -> (RigidTransform, RigidTransform, IcpResult) {
        let target = structured_cloud();
        // Keep the displacement well under the 0.2 m grid pitch: larger
        // offsets alias NN correspondences onto the wrong lattice points and
        // ICP (correctly) locks onto a shifted local minimum.
        let gt = RigidTransform::from_axis_angle(Vec3::Z, 0.02, Vec3::new(0.06, -0.04, 0.02));
        // source = gt⁻¹(target): registering source onto target should
        // recover gt.
        let source: Vec<Vec3> = target.iter().map(|&p| gt.inverse().apply(p)).collect();
        let mut searcher = Searcher3::classic(&target);
        let normals = normals_for(&target);
        let mut profile = StageProfile::new();
        let result = icp(
            &source,
            &mut searcher,
            &normals,
            RigidTransform::IDENTITY,
            metric,
            solver,
            1.0,
            &ConvergenceCriteria { max_iterations: 50, ..Default::default() },
            &mut profile,
        );
        (gt, result.transform, result)
    }

    #[test]
    fn point_to_point_svd_converges() {
        let (gt, est, result) = run(ErrorMetric::PointToPoint, SolverAlgorithm::Svd);
        assert!((est.translation - gt.translation).norm() < 0.02, "t = {}", est.translation);
        assert!((est.rotation - gt.rotation).frobenius_norm() < 0.02);
        assert!(result.final_mse < 1e-3);
        assert_ne!(result.termination, IcpTermination::Starved);
    }

    #[test]
    fn point_to_plane_converges() {
        let (gt, est, result) = run(ErrorMetric::PointToPlane, SolverAlgorithm::Svd);
        assert!((est.translation - gt.translation).norm() < 0.02);
        assert!(result.final_mse < 1e-3);
        assert!(result.iterations <= 50);
    }

    #[test]
    fn lm_solvers_converge() {
        for metric in [ErrorMetric::PointToPoint, ErrorMetric::PointToPlane] {
            let (gt, est, _) = run(metric, SolverAlgorithm::LevenbergMarquardt);
            assert!(
                (est.translation - gt.translation).norm() < 0.03,
                "{metric:?}: t = {} vs {}",
                est.translation,
                gt.translation
            );
        }
    }

    #[test]
    fn identity_input_converges_immediately() {
        let target = structured_cloud();
        let mut searcher = Searcher3::classic(&target);
        let normals = normals_for(&target);
        let mut profile = StageProfile::new();
        let result = icp(
            &target,
            &mut searcher,
            &normals,
            RigidTransform::IDENTITY,
            ErrorMetric::PointToPoint,
            SolverAlgorithm::Svd,
            1.0,
            &ConvergenceCriteria::default(),
            &mut profile,
        );
        assert!(result.transform.is_identity(1e-6));
        assert!(result.iterations <= 3);
        assert!(result.final_mse < 1e-12);
    }

    #[test]
    fn starves_when_clouds_are_disjoint() {
        let target = structured_cloud();
        let source: Vec<Vec3> = target.iter().map(|&p| p + Vec3::new(100.0, 0.0, 0.0)).collect();
        let mut searcher = Searcher3::classic(&target);
        let mut profile = StageProfile::new();
        let result = icp(
            &source,
            &mut searcher,
            &[],
            RigidTransform::IDENTITY,
            ErrorMetric::PointToPoint,
            SolverAlgorithm::Svd,
            0.5,
            &ConvergenceCriteria::default(),
            &mut profile,
        );
        assert_eq!(result.termination, IcpTermination::Starved);
    }

    #[test]
    fn respects_iteration_budget() {
        let target = structured_cloud();
        let gt = RigidTransform::from_translation(Vec3::new(0.4, 0.0, 0.0));
        let source: Vec<Vec3> = target.iter().map(|&p| gt.inverse().apply(p)).collect();
        let mut searcher = Searcher3::classic(&target);
        let mut profile = StageProfile::new();
        let result = icp(
            &source,
            &mut searcher,
            &[],
            RigidTransform::IDENTITY,
            ErrorMetric::PointToPoint,
            SolverAlgorithm::Svd,
            1.0,
            &ConvergenceCriteria {
                max_iterations: 2,
                translation_epsilon: 0.0,
                rotation_epsilon: 0.0,
                mse_relative_epsilon: 0.0,
            },
            &mut profile,
        );
        assert_eq!(result.iterations, 2);
        assert_eq!(result.termination, IcpTermination::MaxIterations);
        assert_eq!(profile.icp_iterations, 2);
    }

    #[test]
    fn profile_attributes_rpce_and_minimization() {
        let target = structured_cloud();
        let source = target.clone();
        let mut searcher = Searcher3::classic(&target);
        let mut profile = StageProfile::new();
        icp(
            &source,
            &mut searcher,
            &[],
            RigidTransform::IDENTITY,
            ErrorMetric::PointToPoint,
            SolverAlgorithm::Svd,
            1.0,
            &ConvergenceCriteria::default(),
            &mut profile,
        );
        assert!(profile.time(Stage::Rpce) > std::time::Duration::ZERO);
        assert!(profile.time(Stage::ErrorMinimization) > std::time::Duration::ZERO);
    }

    #[test]
    fn good_initial_guess_reduces_iterations() {
        let target = structured_cloud();
        let gt = RigidTransform::from_axis_angle(Vec3::Z, 0.08, Vec3::new(0.3, 0.1, 0.0));
        let source: Vec<Vec3> = target.iter().map(|&p| gt.inverse().apply(p)).collect();
        let normals = normals_for(&target);
        let criteria = ConvergenceCriteria { max_iterations: 60, ..Default::default() };

        let mut s1 = Searcher3::classic(&target);
        let mut p1 = StageProfile::new();
        let cold = icp(
            &source,
            &mut s1,
            &normals,
            RigidTransform::IDENTITY,
            ErrorMetric::PointToPoint,
            SolverAlgorithm::Svd,
            1.0,
            &criteria,
            &mut p1,
        );
        let mut s2 = Searcher3::classic(&target);
        let mut p2 = StageProfile::new();
        let warm = icp(
            &source,
            &mut s2,
            &normals,
            gt,
            ErrorMetric::PointToPoint,
            SolverAlgorithm::Svd,
            1.0,
            &criteria,
            &mut p2,
        );
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} > cold {}",
            warm.iterations,
            cold.iterations
        );
    }
}

//! Per-stage and per-kernel time accounting, behind the paper's Fig. 4a
//! (stage distribution) and Fig. 4b (KD-tree search vs. build vs. other).

use std::fmt;
use std::time::Duration;

use tigris_core::SearchStats;

/// The seven key pipeline stages of paper Fig. 2 / Fig. 4a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Surface-normal estimation (both frames).
    NormalEstimation,
    /// Key-point detection (both frames).
    KeypointDetection,
    /// Feature-descriptor calculation (both frames).
    DescriptorCalculation,
    /// Key-point correspondence estimation.
    Kpce,
    /// Correspondence rejection.
    CorrespondenceRejection,
    /// Raw-point correspondence estimation (all ICP iterations).
    Rpce,
    /// Transformation estimation / error minimization (all ICP iterations).
    ErrorMinimization,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::NormalEstimation,
        Stage::KeypointDetection,
        Stage::DescriptorCalculation,
        Stage::Kpce,
        Stage::CorrespondenceRejection,
        Stage::Rpce,
        Stage::ErrorMinimization,
    ];

    /// Display name matching the paper's Fig. 4a legend.
    pub fn name(self) -> &'static str {
        match self {
            Stage::NormalEstimation => "Normal Estimation",
            Stage::KeypointDetection => "Key-point Detection",
            Stage::DescriptorCalculation => "Descriptor Calculation",
            Stage::Kpce => "KPCE",
            Stage::CorrespondenceRejection => "Correspondence Rejection",
            Stage::Rpce => "RPCE",
            Stage::ErrorMinimization => "Error Minimization",
        }
    }

    /// Snake-case metric key: the stage's latency histogram registers as
    /// `pipeline.stage.<key>_us` in the global obs registry.
    pub fn metric_key(self) -> &'static str {
        match self {
            Stage::NormalEstimation => "normal_estimation",
            Stage::KeypointDetection => "keypoint_detection",
            Stage::DescriptorCalculation => "descriptor_calculation",
            Stage::Kpce => "kpce",
            Stage::CorrespondenceRejection => "correspondence_rejection",
            Stage::Rpce => "rpce",
            Stage::ErrorMinimization => "error_minimization",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Timing and KD-tree accounting for one registration run.
#[derive(Debug, Clone, Default)]
pub struct StageProfile {
    stage_time: [Duration; 7],
    /// Wall-clock spent inside KD-tree searches (all stages).
    pub kd_search_time: Duration,
    /// Wall-clock spent building KD-trees.
    pub kd_build_time: Duration,
    /// Aggregated node-visit statistics across all searches.
    pub search_stats: SearchStats,
    /// ICP iterations executed.
    pub icp_iterations: usize,
    /// Wall-clock spent in the frame-preparation layer (downsample,
    /// index build, NE, key-points, descriptors) attributed to this
    /// result. A reused [`crate::PreparedFrame`] contributes nothing
    /// here — its preparation was billed to the result that first
    /// consumed it.
    pub prepare_time: Duration,
    /// Wall-clock spent in the pairwise-matching layer (KPCE, rejection,
    /// initial transform, ICP).
    pub match_time: Duration,
    /// Frames whose front end (NE / key-points / descriptors) was computed
    /// as part of this result.
    pub frames_prepared: usize,
    /// Frames that entered the matching layer as already-prepared
    /// artifacts, so their front end did **not** run again — the streaming
    /// odometer's reuse counter.
    pub frames_reused: usize,
    /// Heap capacity (bytes) the front-end scratch buffers grew by during
    /// the preparations billed to this result. Zero once a reused
    /// [`crate::PrepareScratch`] is warm.
    pub scratch_bytes_grown: u64,
    /// Preparations billed to this result that completed without growing
    /// any scratch buffer — the proof of allocation-free steady-state
    /// frame preparation.
    pub scratch_reuses: u64,
}

impl StageProfile {
    /// Fresh, all-zero profile.
    pub fn new() -> Self {
        StageProfile::default()
    }

    fn idx(stage: Stage) -> usize {
        Stage::ALL.iter().position(|&s| s == stage).unwrap()
    }

    /// Adds `d` to `stage`'s accumulated time.
    pub fn add(&mut self, stage: Stage, d: Duration) {
        self.stage_time[Self::idx(stage)] += d;
    }

    /// Accumulated time of `stage`.
    pub fn time(&self, stage: Stage) -> Duration {
        self.stage_time[Self::idx(stage)]
    }

    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.stage_time.iter().sum()
    }

    /// Fraction of total time in `stage` (0 when the total is zero).
    pub fn fraction(&self, stage: Stage) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.time(stage).as_secs_f64() / total
        }
    }

    /// Fraction of total time inside KD-tree search — the paper's headline
    /// observation is that this is 50–85% across design points (Fig. 4b).
    pub fn kd_search_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.kd_search_time.as_secs_f64() / total
        }
    }

    /// Fraction of total time building KD-trees (Fig. 4b's second series).
    pub fn kd_build_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.kd_build_time.as_secs_f64() / total
        }
    }

    /// Merges another profile into this one (summing everything).
    pub fn merge(&mut self, other: &StageProfile) {
        for i in 0..7 {
            self.stage_time[i] += other.stage_time[i];
        }
        self.kd_search_time += other.kd_search_time;
        self.kd_build_time += other.kd_build_time;
        self.search_stats += other.search_stats;
        self.icp_iterations += other.icp_iterations;
        self.prepare_time += other.prepare_time;
        self.match_time += other.match_time;
        self.frames_prepared += other.frames_prepared;
        self.frames_reused += other.frames_reused;
        self.scratch_bytes_grown += other.scratch_bytes_grown;
        self.scratch_reuses += other.scratch_reuses;
    }

    /// Fraction of prepare + match wall-clock spent preparing frames
    /// (0 when neither layer recorded time). With full reuse a streamed
    /// frame pays one preparation instead of two, which is what pushes
    /// this fraction — and the overall frame time — down.
    pub fn prepare_fraction(&self) -> f64 {
        let total = (self.prepare_time + self.match_time).as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.prepare_time.as_secs_f64() / total
        }
    }

    /// Mirrors this profile into the global obs registry
    /// ([`tigris_obs::global`]) under `pipeline.*` names: per-stage and
    /// per-layer latency histograms in microseconds, ICP-iteration
    /// distribution, and the frame prepared/reused counters. No-op when
    /// tracing is disabled, so the hot path pays one relaxed atomic
    /// load; zero-valued layers/stages are skipped so prepare-only and
    /// match-only profiles don't skew each other's distributions.
    pub fn publish_to_obs(&self) {
        if !tigris_obs::enabled() {
            return;
        }
        let m = obs_metrics();
        for (stage, hist) in Stage::ALL.iter().zip(&m.stage_us) {
            let t = self.time(*stage);
            if !t.is_zero() {
                hist.record(t.as_micros() as u64);
            }
        }
        if !self.prepare_time.is_zero() {
            m.prepare_us.record(self.prepare_time.as_micros() as u64);
        }
        if !self.match_time.is_zero() {
            m.match_us.record(self.match_time.as_micros() as u64);
        }
        if self.icp_iterations > 0 {
            m.icp_iterations.record(self.icp_iterations as u64);
        }
        m.frames_prepared.add(self.frames_prepared as u64);
        m.frames_reused.add(self.frames_reused as u64);
    }
}

/// Cached handles into the global registry, resolved once per process so
/// publishing a profile never takes the registry lock after warm-up.
struct ObsMetrics {
    stage_us: Vec<std::sync::Arc<tigris_obs::Histogram>>,
    prepare_us: std::sync::Arc<tigris_obs::Histogram>,
    match_us: std::sync::Arc<tigris_obs::Histogram>,
    icp_iterations: std::sync::Arc<tigris_obs::Histogram>,
    frames_prepared: std::sync::Arc<tigris_obs::Counter>,
    frames_reused: std::sync::Arc<tigris_obs::Counter>,
}

fn obs_metrics() -> &'static ObsMetrics {
    static METRICS: std::sync::OnceLock<ObsMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = tigris_obs::global();
        ObsMetrics {
            stage_us: Stage::ALL
                .iter()
                .map(|s| registry.histogram(&format!("pipeline.stage.{}_us", s.metric_key())))
                .collect(),
            prepare_us: registry.histogram("pipeline.prepare_us"),
            match_us: registry.histogram("pipeline.match_us"),
            icp_iterations: registry.histogram("pipeline.icp_iterations"),
            frames_prepared: registry.counter("pipeline.frames_prepared"),
            frames_reused: registry.counter("pipeline.frames_reused"),
        }
    })
}

impl fmt::Display for StageProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total: {:?}", self.total())?;
        for stage in Stage::ALL {
            writeln!(
                f,
                "  {:26} {:>9.3?} ({:5.1}%)",
                stage.name(),
                self.time(stage),
                self.fraction(stage) * 100.0
            )?;
        }
        writeln!(
            f,
            "  kd-search {:?} ({:.1}%), kd-build {:?} ({:.1}%), icp iters {}",
            self.kd_search_time,
            self.kd_search_fraction() * 100.0,
            self.kd_build_time,
            self.kd_build_fraction() * 100.0,
            self.icp_iterations
        )?;
        writeln!(
            f,
            "  prepare {:?} ({:.1}%), match {:?}; frames prepared {}, reused {}",
            self.prepare_time,
            self.prepare_fraction() * 100.0,
            self.match_time,
            self.frames_prepared,
            self.frames_reused
        )?;
        writeln!(
            f,
            "  scratch: {} bytes grown, {} allocation-free preparations",
            self.scratch_bytes_grown, self.scratch_reuses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_enumerate_in_order() {
        assert_eq!(Stage::ALL.len(), 7);
        assert_eq!(Stage::ALL[0], Stage::NormalEstimation);
        assert_eq!(Stage::ALL[6], Stage::ErrorMinimization);
        for s in Stage::ALL {
            assert!(!s.name().is_empty());
            assert_eq!(s.to_string(), s.name());
        }
    }

    #[test]
    fn add_and_fraction() {
        let mut p = StageProfile::new();
        p.add(Stage::NormalEstimation, Duration::from_millis(30));
        p.add(Stage::Rpce, Duration::from_millis(70));
        assert_eq!(p.total(), Duration::from_millis(100));
        assert!((p.fraction(Stage::NormalEstimation) - 0.3).abs() < 1e-9);
        assert!((p.fraction(Stage::Rpce) - 0.7).abs() < 1e-9);
        assert_eq!(p.fraction(Stage::Kpce), 0.0);
    }

    #[test]
    fn kd_fractions() {
        let mut p = StageProfile::new();
        p.add(Stage::Rpce, Duration::from_millis(100));
        p.kd_search_time = Duration::from_millis(60);
        p.kd_build_time = Duration::from_millis(10);
        assert!((p.kd_search_fraction() - 0.6).abs() < 1e-9);
        assert!((p.kd_build_fraction() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_fractions_are_zero() {
        let p = StageProfile::new();
        assert_eq!(p.kd_search_fraction(), 0.0);
        assert_eq!(p.fraction(Stage::Kpce), 0.0);
        assert_eq!(p.total(), Duration::ZERO);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = StageProfile::new();
        a.add(Stage::Kpce, Duration::from_millis(5));
        a.icp_iterations = 3;
        a.frames_prepared = 1;
        let mut b = StageProfile::new();
        b.add(Stage::Kpce, Duration::from_millis(7));
        b.kd_search_time = Duration::from_millis(2);
        b.icp_iterations = 4;
        b.prepare_time = Duration::from_millis(9);
        b.match_time = Duration::from_millis(3);
        b.frames_prepared = 1;
        b.frames_reused = 2;
        b.scratch_bytes_grown = 64;
        b.scratch_reuses = 5;
        a.merge(&b);
        assert_eq!(a.time(Stage::Kpce), Duration::from_millis(12));
        assert_eq!(a.kd_search_time, Duration::from_millis(2));
        assert_eq!(a.icp_iterations, 7);
        assert_eq!(a.prepare_time, Duration::from_millis(9));
        assert_eq!(a.match_time, Duration::from_millis(3));
        assert_eq!(a.frames_prepared, 2);
        assert_eq!(a.frames_reused, 2);
        assert_eq!(a.scratch_bytes_grown, 64);
        assert_eq!(a.scratch_reuses, 5);
    }

    #[test]
    fn prepare_fraction_splits_the_two_layers() {
        let mut p = StageProfile::new();
        assert_eq!(p.prepare_fraction(), 0.0);
        p.prepare_time = Duration::from_millis(30);
        p.match_time = Duration::from_millis(70);
        assert!((p.prepare_fraction() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn display_lists_all_stages() {
        let p = StageProfile::new();
        let s = p.to_string();
        for stage in Stage::ALL {
            assert!(s.contains(stage.name()), "missing {stage}");
        }
    }
}

//! Correspondence estimation: KPCE in feature space (paper Fig. 2, stage
//! 4) and RPCE in 3D space (fine-tuning stage 1).
//!
//! Both stages are per-item-independent query fan-outs (one feature NN per
//! source descriptor; one 3D NN per source point), so both run batched:
//! RPCE through [`Searcher3`]'s batched entry points, KPCE through
//! [`tigris_core::batch::parallel_map`] over the feature tree.

use tigris_core::batch::parallel_map_indexed;
use tigris_core::{BatchConfig, KdTreeN};
use tigris_geom::Vec3;

use crate::descriptor::Descriptors;
use crate::search::Searcher3;

/// A match between a source item and a target item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correspondence {
    /// Index on the source side (key-point index for KPCE, point index for
    /// RPCE).
    pub source: usize,
    /// Index on the target side.
    pub target: usize,
    /// Squared distance in the space the match was made in (feature space
    /// for KPCE, 3D for RPCE).
    pub distance_squared: f64,
}

/// Key-Point Correspondence Estimation: for each source descriptor, the
/// nearest target descriptor. With `reciprocal`, a match `(s, t)` is kept
/// only when `s` is in turn `t`'s nearest source descriptor (Tbl. 1 knob
/// "Reciprocity"). With `kth` set, the k-th nearest feature is returned
/// instead of the nearest (Fig. 7a error injection on sparse data).
///
/// # Panics
///
/// Panics when the descriptor dimensions disagree.
pub fn kpce(
    source: &Descriptors,
    target: &Descriptors,
    reciprocal: bool,
    kth: Option<usize>,
) -> Vec<Correspondence> {
    kpce_batched(source, target, reciprocal, kth, &BatchConfig::serial())
}

/// [`kpce`] with the feature-space queries fanned out across worker
/// threads per `parallel`. Matches come back in source order — identical
/// to the serial result at any thread count.
///
/// # Panics
///
/// Panics when the descriptor dimensions disagree.
pub fn kpce_batched(
    source: &Descriptors,
    target: &Descriptors,
    reciprocal: bool,
    kth: Option<usize>,
    parallel: &BatchConfig,
) -> Vec<Correspondence> {
    assert_eq!(source.dim, target.dim, "descriptor dimensions disagree");
    if source.is_empty() || target.is_empty() {
        return Vec::new();
    }
    let target_tree = KdTreeN::build(&target.data, target.dim);
    let source_tree =
        if reciprocal { Some(KdTreeN::build(&source.data, source.dim)) } else { None };

    parallel_map_indexed(source.len(), parallel, |s| {
        let q = source.row(s);
        let found = match kth {
            Some(k) if k > 1 => kth_feature_nn(&target.data, target.dim, q, k),
            _ => target_tree.nn(q),
        };
        let n = found?;
        if let Some(src_tree) = &source_tree {
            // Reciprocity check is performed with exact NN regardless of
            // injection (the paper injects errors into the forward search).
            let back = src_tree.nn(target.row(n.index));
            if back.map(|b| b.index) != Some(s) {
                return None;
            }
        }
        Some(Correspondence { source: s, target: n.index, distance_squared: n.distance_squared })
    })
    .into_iter()
    .flatten()
    .collect()
}

/// KPCE with Lowe's ratio test: a source descriptor's match is kept only
/// when its nearest target descriptor is clearly better than the second
/// nearest (`d1/d2 ≤ max_ratio`, distances non-squared). This is the
/// "Ratio threshold" knob of the paper's Tbl. 1 — it suppresses matches in
/// repetitive structure where the descriptor is ambiguous.
///
/// # Panics
///
/// Panics when descriptor dimensions disagree or `max_ratio` is not in
/// `(0, 1]`.
pub fn kpce_ratio(
    source: &Descriptors,
    target: &Descriptors,
    max_ratio: f64,
) -> Vec<Correspondence> {
    kpce_ratio_batched(source, target, max_ratio, &BatchConfig::serial())
}

/// [`kpce_ratio`] with the feature-space queries fanned out across worker
/// threads per `parallel`; see [`kpce_batched`].
///
/// # Panics
///
/// Panics when descriptor dimensions disagree or `max_ratio` is not in
/// `(0, 1]`.
pub fn kpce_ratio_batched(
    source: &Descriptors,
    target: &Descriptors,
    max_ratio: f64,
    parallel: &BatchConfig,
) -> Vec<Correspondence> {
    assert_eq!(source.dim, target.dim, "descriptor dimensions disagree");
    assert!(max_ratio > 0.0 && max_ratio <= 1.0, "ratio must be in (0, 1], got {max_ratio}");
    if source.is_empty() || target.is_empty() {
        return Vec::new();
    }
    let target_tree = KdTreeN::build(&target.data, target.dim);
    parallel_map_indexed(source.len(), parallel, |s| {
        let two = target_tree.nn2(source.row(s));
        match two.as_slice() {
            [best, second] => {
                let d1 = best.distance_squared.sqrt();
                let d2 = second.distance_squared.sqrt();
                (d2 <= 0.0 || d1 / d2 <= max_ratio).then_some(Correspondence {
                    source: s,
                    target: best.index,
                    distance_squared: best.distance_squared,
                })
            }
            [only] => Some(Correspondence {
                source: s,
                target: only.index,
                distance_squared: only.distance_squared,
            }),
            _ => None,
        }
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Exhaustive k-th nearest feature (1-based), used only under injection.
fn kth_feature_nn(data: &[f64], dim: usize, q: &[f64], k: usize) -> Option<tigris_core::Neighbor> {
    let n = data.len() / dim;
    if n < k {
        return None;
    }
    let mut all: Vec<tigris_core::Neighbor> = (0..n)
        .map(|i| {
            let d2 =
                data[i * dim..(i + 1) * dim].iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum();
            tigris_core::Neighbor::new(i, d2)
        })
        .collect();
    all.sort();
    Some(all[k - 1])
}

/// Raw-Point Correspondence Estimation: for every source point, the nearest
/// target point in 3D, dropping pairs farther than `max_distance`.
///
/// This is the fine-tuning phase's KD-tree consumer: one NN query per
/// source point per ICP iteration.
pub fn rpce(
    source_points: &[Vec3],
    target_searcher: &mut Searcher3,
    max_distance: f64,
) -> Vec<Correspondence> {
    let max_d2 = max_distance * max_distance;
    // One NN per source point per ICP iteration — the fine-tuning phase's
    // entire KD-tree bill, issued as a single batch.
    let nearest = target_searcher.nn_batch(source_points);
    let mut out = Vec::with_capacity(source_points.len());
    for (i, n) in nearest.into_iter().enumerate() {
        if let Some(n) = n {
            if n.distance_squared <= max_d2 {
                out.push(Correspondence {
                    source: i,
                    target: n.index,
                    distance_squared: n.distance_squared,
                });
            }
        }
    }
    out
}

/// Reciprocal RPCE (Tbl. 1's "Reciprocity" knob on the fine-tuning side):
/// keep `(s, t)` only when `s` is in turn `t`'s nearest source point.
/// Doubles the NN queries but discards one-sided matches from partially
/// overlapping frames (points visible in only one scan).
pub fn rpce_reciprocal(
    source_points: &[Vec3],
    source_searcher: &mut Searcher3,
    target_searcher: &mut Searcher3,
    max_distance: f64,
) -> Vec<Correspondence> {
    let forward = rpce(source_points, target_searcher, max_distance);
    let target_points = target_searcher.points();
    let back_queries: Vec<Vec3> = forward.iter().map(|c| target_points[c.target]).collect();
    let back = source_searcher.nn_batch(&back_queries);
    forward
        .into_iter()
        .zip(back)
        .filter_map(|(c, b)| (b.map(|b| b.index) == Some(c.source)).then_some(c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(rows: &[&[f64]]) -> Descriptors {
        let dim = rows[0].len();
        let mut data = Vec::new();
        for r in rows {
            assert_eq!(r.len(), dim);
            data.extend_from_slice(r);
        }
        Descriptors { dim, data }
    }

    #[test]
    fn kpce_matches_nearest_features() {
        let src = desc(&[&[0.0, 0.0], &[10.0, 10.0]]);
        let tgt = desc(&[&[9.5, 9.9], &[0.2, 0.1]]);
        let c = kpce(&src, &tgt, false, None);
        assert_eq!(c.len(), 2);
        assert_eq!((c[0].source, c[0].target), (0, 1));
        assert_eq!((c[1].source, c[1].target), (1, 0));
    }

    #[test]
    fn kpce_reciprocal_filters_asymmetric_matches() {
        // Two source points both nearest to target 0; target 0's nearest
        // source is source 0 → only (0,0) survives reciprocity.
        let src = desc(&[&[0.0], &[0.4]]);
        let tgt = desc(&[&[0.1], &[5.0]]);
        let plain = kpce(&src, &tgt, false, None);
        assert_eq!(plain.len(), 2);
        let recip = kpce(&src, &tgt, true, None);
        assert_eq!(recip.len(), 1);
        assert_eq!((recip[0].source, recip[0].target), (0, 0));
    }

    #[test]
    fn kpce_kth_injection_degrades_matches() {
        let src = desc(&[&[0.0]]);
        let tgt = desc(&[&[0.1], &[1.0], &[2.0]]);
        let exact = kpce(&src, &tgt, false, None);
        assert_eq!(exact[0].target, 0);
        let injected = kpce(&src, &tgt, false, Some(2));
        assert_eq!(injected[0].target, 1);
    }

    #[test]
    fn kpce_empty_inputs() {
        let empty = Descriptors { dim: 3, data: vec![] };
        let other = desc(&[&[1.0, 2.0, 3.0]]);
        assert!(kpce(&empty, &other, false, None).is_empty());
        assert!(kpce(&other, &empty, true, None).is_empty());
    }

    #[test]
    #[should_panic(expected = "dimensions disagree")]
    fn kpce_dim_mismatch_panics() {
        let a = desc(&[&[0.0, 0.0]]);
        let b = desc(&[&[0.0]]);
        kpce(&a, &b, false, None);
    }

    #[test]
    fn ratio_test_suppresses_ambiguous_matches() {
        // Source 0 is close to two nearly identical targets (ambiguous);
        // source 1 has one clear match.
        let src = desc(&[&[0.0], &[10.0]]);
        let tgt = desc(&[&[0.4], &[-0.41], &[10.1]]);
        let strict = kpce_ratio(&src, &tgt, 0.8);
        // Source 0's two candidates are at distance 0.4 vs 0.41: ratio
        // 0.97 > 0.8 → suppressed. Source 1: 0.1 vs 9.7-ish → kept.
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].source, 1);
        assert_eq!(strict[0].target, 2);
        // A permissive ratio keeps both.
        let permissive = kpce_ratio(&src, &tgt, 1.0);
        assert_eq!(permissive.len(), 2);
    }

    #[test]
    fn ratio_test_single_target_always_matches() {
        let src = desc(&[&[0.0]]);
        let tgt = desc(&[&[5.0]]);
        let m = kpce_ratio(&src, &tgt, 0.5);
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn ratio_test_rejects_bad_ratio() {
        let d = desc(&[&[0.0]]);
        kpce_ratio(&d, &d, 1.5);
    }

    #[test]
    fn rpce_finds_nearest_within_max_distance() {
        let target: Vec<Vec3> = (0..10).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let mut s = Searcher3::classic(&target);
        let source = vec![Vec3::new(2.2, 0.0, 0.0), Vec3::new(50.0, 0.0, 0.0)];
        let c = rpce(&source, &mut s, 2.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].source, 0);
        assert_eq!(c[0].target, 2);
    }

    #[test]
    fn rpce_empty_source() {
        let target = vec![Vec3::ZERO];
        let mut s = Searcher3::classic(&target);
        assert!(rpce(&[], &mut s, 1.0).is_empty());
    }

    #[test]
    fn rpce_reciprocal_drops_one_sided_matches() {
        // Target has an extra cluster source can't see; source points near
        // it map forward onto it, but the cluster's nearest source is a
        // single frontier point → one-sided matches die.
        let target =
            vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 0.0, 0.0)];
        let source = vec![
            Vec3::new(0.1, 0.0, 0.0),
            Vec3::new(1.4, 0.0, 0.0), // nearest target = 1, but target 1's
            // nearest source is also this → kept
            Vec3::new(1.45, 0.0, 0.0), // nearest target = 1 too → dropped
        ];
        let mut ts = Searcher3::classic(&target);
        let forward = rpce(&source, &mut ts, 2.0);
        assert_eq!(forward.len(), 3);
        let mut ss = Searcher3::classic(&source);
        let mut ts = Searcher3::classic(&target);
        let recip = rpce_reciprocal(&source, &mut ss, &mut ts, 2.0);
        assert!(recip.len() < forward.len());
        // Every surviving pair is mutually nearest.
        for c in &recip {
            let back = tigris_core::nn_brute_force(&source, target[c.target]).unwrap();
            assert_eq!(back.index, c.source);
        }
    }

    #[test]
    fn rpce_reciprocal_identity_clouds_keep_everything() {
        let pts: Vec<Vec3> = (0..20).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let mut ss = Searcher3::classic(&pts);
        let mut ts = Searcher3::classic(&pts);
        let recip = rpce_reciprocal(&pts, &mut ss, &mut ts, 0.5);
        assert_eq!(recip.len(), pts.len());
    }

    #[test]
    fn rpce_attributes_search_time() {
        let target: Vec<Vec3> = (0..100).map(|i| Vec3::new(i as f64, 0.0, 0.0)).collect();
        let mut s = Searcher3::classic(&target);
        let source: Vec<Vec3> = (0..50).map(|i| Vec3::new(i as f64 + 0.3, 0.0, 0.0)).collect();
        rpce(&source, &mut s, 5.0);
        assert_eq!(s.stats().queries, 50);
    }
}

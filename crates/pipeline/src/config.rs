//! Pipeline configuration: every algorithmic and parametric knob of the
//! paper's Tbl. 1, plus the Pareto design points DP1–DP8 used throughout
//! the evaluation.

use tigris_core::{ApproxConfig, BatchConfig};

use crate::search::Injection;

/// Normal-estimation algorithm (Tbl. 1 row 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalAlgorithm {
    /// Total-least-squares plane fit via covariance eigen-decomposition.
    PlaneSvd,
    /// Area-weighted average of fan-triangle normals.
    AreaWeighted,
}

/// Key-point detection algorithm (Tbl. 1 row 2).
///
/// The paper explores SIFT, NARF and HARRIS. We implement SIFT-3D
/// (difference-of-curvature across scales) and Harris-3D faithfully, and
/// substitute ISS (Intrinsic Shape Signatures) for NARF — both are
/// geometric-saliency detectors, and NARF's range-image machinery is
/// orthogonal to the paper's claims (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeypointAlgorithm {
    /// SIFT-3D-style: local extrema of curvature difference across two
    /// neighborhood scales.
    Sift {
        /// Base scale (neighborhood radius), meters.
        scale: f64,
    },
    /// Harris-3D: corner response from the covariance of neighborhood
    /// normals.
    Harris {
        /// Neighborhood radius, meters.
        radius: f64,
    },
    /// Intrinsic Shape Signatures (NARF substitute): eigenvalue-ratio
    /// saliency.
    Iss {
        /// Salient-region radius, meters.
        radius: f64,
    },
    /// Uniform voxel sub-sampling (the cheap baseline).
    Uniform {
        /// Voxel edge, meters.
        voxel: f64,
    },
}

/// Feature-descriptor algorithm (Tbl. 1 row 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DescriptorAlgorithm {
    /// Fast Point Feature Histograms (33-D).
    Fpfh {
        /// Descriptor neighborhood radius, meters.
        radius: f64,
    },
    /// Signature of Histograms of Orientations (simplified spatial-angular
    /// signature; see `descriptor` module docs).
    Shot {
        /// Descriptor neighborhood radius, meters.
        radius: f64,
    },
    /// 3D Shape Context (log-radial shells × azimuth × elevation).
    Sc3d {
        /// Descriptor neighborhood radius, meters.
        radius: f64,
    },
}

impl DescriptorAlgorithm {
    /// Descriptor search radius, whatever the algorithm.
    pub fn radius(&self) -> f64 {
        match *self {
            DescriptorAlgorithm::Fpfh { radius }
            | DescriptorAlgorithm::Shot { radius }
            | DescriptorAlgorithm::Sc3d { radius } => radius,
        }
    }
}

/// Correspondence-rejection algorithm (Tbl. 1 row 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectionAlgorithm {
    /// Keep correspondences whose feature distance is below `factor` times
    /// the median feature distance.
    Threshold {
        /// Multiple of the median feature distance to keep.
        factor: f64,
    },
    /// RANSAC over rigid transforms: keep the largest consensus set.
    Ransac {
        /// Iterations (random minimal samples drawn).
        iterations: usize,
        /// Inlier threshold on 3D alignment error, meters.
        inlier_threshold: f64,
    },
}

/// Error metric minimized by the fine-tuning solver (Tbl. 1 row 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorMetric {
    /// Mean-square point-to-point distance.
    PointToPoint,
    /// Point-to-plane distance (needs target normals).
    PointToPlane,
}

/// Optimization solver (Tbl. 1 row 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverAlgorithm {
    /// Closed-form SVD (Kabsch/Umeyama) — point-to-point only; for
    /// point-to-plane the linearized Gauss-Newton step is used.
    Svd,
    /// Levenberg–Marquardt damped iterations.
    LevenbergMarquardt,
}

/// ICP convergence criteria (Tbl. 1 "Convergence criteria").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceCriteria {
    /// Maximum fine-tuning iterations.
    pub max_iterations: usize,
    /// Stop when the transform update's translation falls below this (m)…
    pub translation_epsilon: f64,
    /// …and its rotation below this (radians).
    pub rotation_epsilon: f64,
    /// Stop when the relative mean-square-error improvement falls below this.
    pub mse_relative_epsilon: f64,
}

impl Default for ConvergenceCriteria {
    fn default() -> Self {
        ConvergenceCriteria {
            max_iterations: 30,
            translation_epsilon: 1e-4,
            rotation_epsilon: 1e-5,
            mse_relative_epsilon: 1e-4,
        }
    }
}

/// Search-backend selection for the dense (3D) searches.
///
/// Every variant resolves to a `tigris_core::SearchIndex` implementation
/// behind [`crate::Searcher3`]; the pipeline above is identical whichever
/// backend serves the queries. `Custom` reaches through the process-wide
/// backend registry (`tigris_core::index`), which is how out-of-crate
/// backends — notably `tigris-accel`'s online `"accelerator"` model —
/// plug into `register()`, the odometer and the DSE sweeps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchBackendConfig {
    /// Canonical KD-tree.
    Classic,
    /// Two-stage KD-tree with the given top-tree height.
    TwoStage {
        /// Top-tree height.
        top_height: usize,
    },
    /// Two-stage + approximate (Algorithm 1) search.
    TwoStageApprox {
        /// Top-tree height.
        top_height: usize,
        /// Leader/follower parameters.
        approx: ApproxConfig,
    },
    /// Exhaustive scan — the exact-search oracle, runnable through the
    /// full pipeline for ground-truth accuracy checks (quadratic; intended
    /// for small frames and validation sweeps).
    BruteForce,
    /// A backend registered by name in `tigris_core::index` (e.g.
    /// `"accelerator"` after `tigris_accel::register_accelerator_backend()`).
    ///
    /// The name is `&'static str` to keep this config `Copy` (it is
    /// embedded in every [`RegistrationConfig`] and cloned throughout the
    /// sweeps). Backends whose names only exist at runtime (parsed from a
    /// CLI flag or config file) don't need this variant at all: build the
    /// index via `tigris_core::build_backend(name, points)` and hand it to
    /// `Searcher3::from_index` /
    /// [`crate::pipeline::register_with_searchers`].
    Custom {
        /// The registry name the backend was registered under.
        name: &'static str,
    },
}

impl SearchBackendConfig {
    /// The registry/display name of the selected backend — matches what
    /// the built index's `SearchIndex::name()` reports.
    pub fn name(&self) -> &'static str {
        match *self {
            SearchBackendConfig::Classic => "classic",
            SearchBackendConfig::TwoStage { .. } => "two-stage",
            SearchBackendConfig::TwoStageApprox { .. } => "two-stage-approx",
            SearchBackendConfig::BruteForce => "brute-force",
            SearchBackendConfig::Custom { name } => name,
        }
    }
}

/// A rejected configuration knob, reported at *construction* time by
/// [`RegistrationConfig::builder`] / [`RegistrationConfig::validate`]
/// instead of surfacing as a panic or nonsense result deep inside a run.
///
/// Each variant names the offending knob with a stable dotted path (e.g.
/// `"convergence.max_iterations"`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// The knob must be strictly positive (radii, distances, thresholds).
    NonPositive {
        /// Dotted path of the offending knob.
        knob: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The knob must be non-negative (voxel sizes, gates, epsilons; zero
    /// disables where documented).
    Negative {
        /// Dotted path of the offending knob.
        knob: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A ratio knob left its valid range (`kpce_ratio` must be in `(0, 1]`,
    /// `radius_threshold_frac` in `[0, 1]`).
    RatioOutOfRange {
        /// Dotted path of the offending knob.
        knob: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// An integer count that must be at least 1 was 0 (iterations,
    /// top-tree heights, leader capacities, injection ranks).
    ZeroCount {
        /// Dotted path of the offending knob.
        knob: &'static str,
    },
    /// A knob was not a finite number.
    NotFinite {
        /// Dotted path of the offending knob.
        knob: &'static str,
    },
    /// The `Custom` backend name is not present in the backend registry.
    UnknownBackend {
        /// The unresolvable registry name.
        name: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ConfigError::NonPositive { knob, value } => {
                write!(f, "{knob} must be > 0, got {value}")
            }
            ConfigError::Negative { knob, value } => {
                write!(f, "{knob} must be >= 0, got {value}")
            }
            ConfigError::RatioOutOfRange { knob, value } => {
                write!(f, "{knob} is out of its valid ratio range, got {value}")
            }
            ConfigError::ZeroCount { knob } => write!(f, "{knob} must be at least 1"),
            ConfigError::NotFinite { knob } => write!(f, "{knob} must be finite"),
            ConfigError::UnknownBackend { name } => {
                write!(f, "no search backend registered under {name:?}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The full pipeline configuration (paper Fig. 2 + Tbl. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrationConfig {
    /// Voxel size for pre-downsampling each frame (0 disables). KITTI-scale
    /// frames are typically downsampled to ~0.2–0.4 m for the front-end.
    pub voxel_size: f64,
    /// Normal-estimation algorithm.
    pub normal_algorithm: NormalAlgorithm,
    /// Normal-estimation search radius (Tbl. 1 "Search radius"), meters.
    pub normal_radius: f64,
    /// Key-point detector and its scale/range parameter.
    pub keypoint: KeypointAlgorithm,
    /// Feature descriptor and its search radius.
    pub descriptor: DescriptorAlgorithm,
    /// Whether KPCE requires reciprocal (mutual) nearest neighbors.
    pub kpce_reciprocal: bool,
    /// Lowe ratio test for KPCE (Tbl. 1 "Ratio threshold"): keep a match
    /// only when nearest/second-nearest feature distance ≤ this. `None`
    /// disables; when set, it replaces plain nearest-neighbor matching
    /// (reciprocity still applies on top if enabled).
    pub kpce_ratio: Option<f64>,
    /// Correspondence rejection.
    pub rejection: RejectionAlgorithm,
    /// Error metric for fine-tuning.
    pub error_metric: ErrorMetric,
    /// Solver for fine-tuning.
    pub solver: SolverAlgorithm,
    /// RPCE: drop correspondences farther than this (meters).
    pub max_correspondence_distance: f64,
    /// RPCE reciprocity (Tbl. 1): keep only mutually-nearest dense pairs.
    /// Robust to partial overlap at roughly double the per-iteration search
    /// cost (plus a source-tree rebuild each iteration).
    pub rpce_reciprocal: bool,
    /// ICP convergence criteria.
    pub convergence: ConvergenceCriteria,
    /// Dense-search backend.
    pub backend: SearchBackendConfig,
    /// Error injection into the Normal Estimation stage's radius searches
    /// (Fig. 7b), if any.
    pub inject_ne: Option<Injection>,
    /// Error injection into RPCE's NN searches (Fig. 7a, dense curve).
    pub inject_rpce: Option<Injection>,
    /// Error injection into KPCE's feature-space NN (Fig. 7a, sparse
    /// curve): return the k-th nearest feature instead.
    pub inject_kpce_kth: Option<usize>,
    /// Motion-prior gate on the initial estimate: when the front-end's
    /// transform rotates more than this (radians), it is discarded and
    /// fine-tuning starts from identity. Consecutive LiDAR frames (10 Hz)
    /// cannot rotate this much; the gate rejects symmetric-scene flips
    /// (e.g. a road corridor matched 180° reversed). `f64::INFINITY`
    /// disables it.
    pub max_initial_rotation: f64,
    /// Motion-prior gate on the initial estimate's translation (meters);
    /// see [`RegistrationConfig::max_initial_rotation`].
    pub max_initial_translation: f64,
    /// Parallel batched-search execution: worker-thread count and minimum
    /// chunk size for the query fan-outs (normal estimation, descriptors,
    /// KPCE, RPCE). The default is serial; `BatchConfig::auto()` uses every
    /// core. Results are identical at any setting — this knob trades
    /// wall-clock for CPU, which is why [`crate::dse`] can sweep it.
    pub parallel: BatchConfig,
}

impl RegistrationConfig {
    /// Starts a validating builder seeded with the default configuration.
    ///
    /// Invalid knobs fail at [`RegistrationConfigBuilder::build`] with a
    /// typed [`ConfigError`] instead of misbehaving deep inside a run.
    ///
    /// # Example
    ///
    /// ```
    /// use tigris_pipeline::config::{RegistrationConfig, SearchBackendConfig};
    ///
    /// let cfg = RegistrationConfig::builder()
    ///     .normal_radius(0.6)
    ///     .backend(SearchBackendConfig::TwoStage { top_height: 8 })
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.normal_radius, 0.6);
    ///
    /// // Negative radii are rejected with a typed error:
    /// let err = RegistrationConfig::builder().normal_radius(-1.0).build().unwrap_err();
    /// assert!(matches!(
    ///     err,
    ///     tigris_pipeline::config::ConfigError::NonPositive { knob: "normal_radius", .. }
    /// ));
    /// ```
    pub fn builder() -> RegistrationConfigBuilder {
        RegistrationConfigBuilder { cfg: RegistrationConfig::default() }
    }

    /// `true` when `other` shares every knob that shapes the
    /// frame-preparation layer's *results* — downsampling, normal
    /// estimation, key-point detection, descriptors, the search backend
    /// and NE injection. Two configs that agree here produce
    /// interchangeable [`crate::PreparedFrame`]s, so a sweep over the
    /// remaining (matching/ICP) knobs can prepare each frame once and
    /// reuse it across design points ([`crate::dse::sweep_matching`]).
    ///
    /// The `parallel` knob is deliberately excluded: batched search is
    /// bit-identical to serial at any thread count, so parallelism never
    /// affects what a preparation computes — only how fast.
    pub fn same_front_end(&self, other: &Self) -> bool {
        self.voxel_size == other.voxel_size
            && self.normal_algorithm == other.normal_algorithm
            && self.normal_radius == other.normal_radius
            && self.keypoint == other.keypoint
            && self.descriptor == other.descriptor
            && self.backend == other.backend
            && self.inject_ne == other.inject_ne
    }

    /// Checks every knob, returning the first violation.
    ///
    /// All [`DesignPoint`] presets validate cleanly; this exists to catch
    /// hand-rolled or swept configurations (negative radii, `kpce_ratio`
    /// above 1, zero iteration budgets, …) at construction time.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn positive(knob: &'static str, value: f64) -> Result<(), ConfigError> {
            if !value.is_finite() {
                return Err(ConfigError::NotFinite { knob });
            }
            if value <= 0.0 {
                return Err(ConfigError::NonPositive { knob, value });
            }
            Ok(())
        }
        fn non_negative(knob: &'static str, value: f64) -> Result<(), ConfigError> {
            if value.is_nan() {
                return Err(ConfigError::NotFinite { knob });
            }
            if value < 0.0 {
                return Err(ConfigError::Negative { knob, value });
            }
            Ok(())
        }

        non_negative("voxel_size", self.voxel_size)?;
        positive("normal_radius", self.normal_radius)?;
        match self.keypoint {
            KeypointAlgorithm::Sift { scale } => positive("keypoint.scale", scale)?,
            KeypointAlgorithm::Harris { radius } | KeypointAlgorithm::Iss { radius } => {
                positive("keypoint.radius", radius)?
            }
            KeypointAlgorithm::Uniform { voxel } => positive("keypoint.voxel", voxel)?,
        }
        positive("descriptor.radius", self.descriptor.radius())?;
        if let Some(ratio) = self.kpce_ratio {
            if !ratio.is_finite() {
                return Err(ConfigError::NotFinite { knob: "kpce_ratio" });
            }
            if ratio <= 0.0 || ratio > 1.0 {
                return Err(ConfigError::RatioOutOfRange { knob: "kpce_ratio", value: ratio });
            }
        }
        match self.rejection {
            RejectionAlgorithm::Threshold { factor } => positive("rejection.factor", factor)?,
            RejectionAlgorithm::Ransac { iterations, inlier_threshold } => {
                if iterations == 0 {
                    return Err(ConfigError::ZeroCount { knob: "rejection.iterations" });
                }
                positive("rejection.inlier_threshold", inlier_threshold)?;
            }
        }
        positive("max_correspondence_distance", self.max_correspondence_distance)?;
        if self.convergence.max_iterations == 0 {
            return Err(ConfigError::ZeroCount { knob: "convergence.max_iterations" });
        }
        non_negative("convergence.translation_epsilon", self.convergence.translation_epsilon)?;
        non_negative("convergence.rotation_epsilon", self.convergence.rotation_epsilon)?;
        non_negative("convergence.mse_relative_epsilon", self.convergence.mse_relative_epsilon)?;
        match self.backend {
            SearchBackendConfig::Classic
            | SearchBackendConfig::BruteForce
            | SearchBackendConfig::Custom { .. } => {}
            SearchBackendConfig::TwoStage { top_height } => {
                if top_height == 0 {
                    return Err(ConfigError::ZeroCount { knob: "backend.top_height" });
                }
            }
            SearchBackendConfig::TwoStageApprox { top_height, approx } => {
                if top_height == 0 {
                    return Err(ConfigError::ZeroCount { knob: "backend.top_height" });
                }
                non_negative("backend.approx.nn_threshold", approx.nn_threshold)?;
                let frac = approx.radius_threshold_frac;
                if frac.is_nan() {
                    return Err(ConfigError::NotFinite {
                        knob: "backend.approx.radius_threshold_frac",
                    });
                }
                if !(0.0..=1.0).contains(&frac) {
                    return Err(ConfigError::RatioOutOfRange {
                        knob: "backend.approx.radius_threshold_frac",
                        value: frac,
                    });
                }
                if approx.leader_cap == 0 {
                    return Err(ConfigError::ZeroCount { knob: "backend.approx.leader_cap" });
                }
            }
        }
        for (knob, injection) in [("inject_ne", self.inject_ne), ("inject_rpce", self.inject_rpce)]
        {
            match injection {
                Some(Injection::NnKth(0)) => return Err(ConfigError::ZeroCount { knob }),
                Some(Injection::RadiusShell { inner_frac, outer_frac }) => {
                    non_negative(knob, inner_frac)?;
                    non_negative(knob, outer_frac)?;
                }
                _ => {}
            }
        }
        if self.inject_kpce_kth == Some(0) {
            return Err(ConfigError::ZeroCount { knob: "inject_kpce_kth" });
        }
        // The motion-prior gates may be infinite (disabled) but not negative.
        if self.max_initial_rotation.is_nan() {
            return Err(ConfigError::NotFinite { knob: "max_initial_rotation" });
        }
        non_negative("max_initial_rotation", self.max_initial_rotation)?;
        if self.max_initial_translation.is_nan() {
            return Err(ConfigError::NotFinite { knob: "max_initial_translation" });
        }
        non_negative("max_initial_translation", self.max_initial_translation)?;
        Ok(())
    }
}

/// Validating builder for [`RegistrationConfig`]; see
/// [`RegistrationConfig::builder`].
///
/// Every setter overrides one knob of the default configuration;
/// [`RegistrationConfigBuilder::build`] validates the result and returns a
/// typed [`ConfigError`] on the first invalid knob.
#[derive(Debug, Clone)]
pub struct RegistrationConfigBuilder {
    cfg: RegistrationConfig,
}

impl RegistrationConfigBuilder {
    /// Voxel size for pre-downsampling (0 disables).
    pub fn voxel_size(mut self, meters: f64) -> Self {
        self.cfg.voxel_size = meters;
        self
    }

    /// Normal-estimation algorithm.
    pub fn normal_algorithm(mut self, algorithm: NormalAlgorithm) -> Self {
        self.cfg.normal_algorithm = algorithm;
        self
    }

    /// Normal-estimation search radius (meters).
    pub fn normal_radius(mut self, meters: f64) -> Self {
        self.cfg.normal_radius = meters;
        self
    }

    /// Key-point detector.
    pub fn keypoint(mut self, algorithm: KeypointAlgorithm) -> Self {
        self.cfg.keypoint = algorithm;
        self
    }

    /// Feature descriptor.
    pub fn descriptor(mut self, algorithm: DescriptorAlgorithm) -> Self {
        self.cfg.descriptor = algorithm;
        self
    }

    /// Reciprocal (mutual) nearest-neighbor requirement for KPCE.
    pub fn kpce_reciprocal(mut self, reciprocal: bool) -> Self {
        self.cfg.kpce_reciprocal = reciprocal;
        self
    }

    /// Lowe ratio test threshold for KPCE (must end up in `(0, 1]`).
    pub fn kpce_ratio(mut self, ratio: f64) -> Self {
        self.cfg.kpce_ratio = Some(ratio);
        self
    }

    /// Correspondence rejection.
    pub fn rejection(mut self, algorithm: RejectionAlgorithm) -> Self {
        self.cfg.rejection = algorithm;
        self
    }

    /// Fine-tuning error metric.
    pub fn error_metric(mut self, metric: ErrorMetric) -> Self {
        self.cfg.error_metric = metric;
        self
    }

    /// Fine-tuning solver.
    pub fn solver(mut self, solver: SolverAlgorithm) -> Self {
        self.cfg.solver = solver;
        self
    }

    /// RPCE correspondence-distance cutoff (meters).
    pub fn max_correspondence_distance(mut self, meters: f64) -> Self {
        self.cfg.max_correspondence_distance = meters;
        self
    }

    /// RPCE reciprocity.
    pub fn rpce_reciprocal(mut self, reciprocal: bool) -> Self {
        self.cfg.rpce_reciprocal = reciprocal;
        self
    }

    /// ICP convergence criteria.
    pub fn convergence(mut self, criteria: ConvergenceCriteria) -> Self {
        self.cfg.convergence = criteria;
        self
    }

    /// Dense-search backend.
    pub fn backend(mut self, backend: SearchBackendConfig) -> Self {
        self.cfg.backend = backend;
        self
    }

    /// Error injection into Normal Estimation's radius searches.
    pub fn inject_ne(mut self, injection: Option<Injection>) -> Self {
        self.cfg.inject_ne = injection;
        self
    }

    /// Error injection into RPCE's NN searches.
    pub fn inject_rpce(mut self, injection: Option<Injection>) -> Self {
        self.cfg.inject_rpce = injection;
        self
    }

    /// KPCE feature-space injection: return the k-th nearest feature.
    pub fn inject_kpce_kth(mut self, k: Option<usize>) -> Self {
        self.cfg.inject_kpce_kth = k;
        self
    }

    /// Motion-prior gate on the initial estimate's rotation (radians;
    /// infinity disables).
    pub fn max_initial_rotation(mut self, radians: f64) -> Self {
        self.cfg.max_initial_rotation = radians;
        self
    }

    /// Motion-prior gate on the initial estimate's translation (meters;
    /// infinity disables).
    pub fn max_initial_translation(mut self, meters: f64) -> Self {
        self.cfg.max_initial_translation = meters;
        self
    }

    /// Parallel batched-search execution knobs.
    pub fn parallel(mut self, parallel: BatchConfig) -> Self {
        self.cfg.parallel = parallel;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// The first [`ConfigError`] found by [`RegistrationConfig::validate`].
    pub fn build(self) -> Result<RegistrationConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

impl Default for RegistrationConfig {
    fn default() -> Self {
        RegistrationConfig {
            voxel_size: 0.25,
            normal_algorithm: NormalAlgorithm::PlaneSvd,
            normal_radius: 0.6,
            keypoint: KeypointAlgorithm::Iss { radius: 0.8 },
            descriptor: DescriptorAlgorithm::Fpfh { radius: 1.8 },
            kpce_reciprocal: true,
            kpce_ratio: None,
            rejection: RejectionAlgorithm::Ransac { iterations: 400, inlier_threshold: 0.5 },
            // Point-to-plane converges where point-to-point slides along
            // corridor structure (the aperture problem on walls/ground).
            error_metric: ErrorMetric::PointToPlane,
            solver: SolverAlgorithm::Svd,
            max_correspondence_distance: 2.0,
            rpce_reciprocal: false,
            convergence: ConvergenceCriteria::default(),
            backend: SearchBackendConfig::Classic,
            inject_ne: None,
            inject_rpce: None,
            inject_kpce_kth: None,
            max_initial_rotation: 60.0_f64.to_radians(),
            max_initial_translation: 10.0,
            parallel: BatchConfig::serial(),
        }
    }
}

/// The eight Pareto-optimal design points of paper Fig. 3/Fig. 4.
///
/// The paper does not tabulate the DPs' exact knob settings; these presets
/// recreate the *spread* the paper describes — DP1/DP2 descriptor-heavy and
/// accurate, DP4 performance-oriented (tight radii, cheap stages), DP7
/// accuracy-oriented (relaxed radii, reciprocal matching, RANSAC), DP8
/// normal-estimation-dominated — so the Fig. 3/4 analyses reproduce in
/// shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignPoint {
    /// Descriptor-heavy, accurate, slow.
    Dp1,
    /// Descriptor-heavy with SHOT.
    Dp2,
    /// Balanced, Harris key-points.
    Dp3,
    /// **Performance-oriented** (paper's perf DP): tight radii, cheap
    /// detector, threshold rejection, early convergence.
    Dp4,
    /// Balanced, SIFT key-points.
    Dp5,
    /// Relaxed ICP with point-to-plane.
    Dp6,
    /// **Accuracy-oriented** (paper's accuracy DP): relaxed radii, FPFH,
    /// reciprocal KPCE, RANSAC, point-to-plane LM.
    Dp7,
    /// Very large normal radius: NE-dominated (paper: NE ≈ 80% of time).
    Dp8,
}

impl DesignPoint {
    /// All eight design points in order.
    pub const ALL: [DesignPoint; 8] = [
        DesignPoint::Dp1,
        DesignPoint::Dp2,
        DesignPoint::Dp3,
        DesignPoint::Dp4,
        DesignPoint::Dp5,
        DesignPoint::Dp6,
        DesignPoint::Dp7,
        DesignPoint::Dp8,
    ];

    /// The registration configuration of this design point.
    pub fn config(self) -> RegistrationConfig {
        let base = RegistrationConfig::default();
        match self {
            DesignPoint::Dp1 => RegistrationConfig {
                normal_radius: 0.6,
                keypoint: KeypointAlgorithm::Iss { radius: 0.8 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 1.6 },
                kpce_reciprocal: true,
                rejection: RejectionAlgorithm::Ransac { iterations: 600, inlier_threshold: 0.4 },
                convergence: ConvergenceCriteria { max_iterations: 40, ..Default::default() },
                ..base
            },
            DesignPoint::Dp2 => RegistrationConfig {
                normal_radius: 0.6,
                keypoint: KeypointAlgorithm::Iss { radius: 0.8 },
                descriptor: DescriptorAlgorithm::Shot { radius: 1.4 },
                kpce_reciprocal: false,
                kpce_ratio: Some(0.9),
                rejection: RejectionAlgorithm::Ransac { iterations: 400, inlier_threshold: 0.4 },
                ..base
            },
            DesignPoint::Dp3 => RegistrationConfig {
                normal_radius: 0.5,
                keypoint: KeypointAlgorithm::Harris { radius: 0.8 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 1.0 },
                kpce_reciprocal: false,
                rejection: RejectionAlgorithm::Threshold { factor: 1.0 },
                ..base
            },
            DesignPoint::Dp4 => RegistrationConfig {
                voxel_size: 0.4,
                normal_radius: 0.30,
                keypoint: KeypointAlgorithm::Uniform { voxel: 1.5 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 0.6 },
                kpce_reciprocal: false,
                rejection: RejectionAlgorithm::Threshold { factor: 1.2 },
                error_metric: ErrorMetric::PointToPlane,
                solver: SolverAlgorithm::Svd,
                convergence: ConvergenceCriteria {
                    max_iterations: 15,
                    mse_relative_epsilon: 1e-3,
                    ..Default::default()
                },
                ..base
            },
            DesignPoint::Dp5 => RegistrationConfig {
                normal_radius: 0.5,
                keypoint: KeypointAlgorithm::Sift { scale: 0.6 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 1.0 },
                kpce_reciprocal: false,
                rejection: RejectionAlgorithm::Threshold { factor: 1.0 },
                ..base
            },
            DesignPoint::Dp6 => RegistrationConfig {
                normal_radius: 0.5,
                keypoint: KeypointAlgorithm::Iss { radius: 1.0 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 0.9 },
                error_metric: ErrorMetric::PointToPlane,
                solver: SolverAlgorithm::Svd,
                ..base
            },
            DesignPoint::Dp7 => RegistrationConfig {
                voxel_size: 0.25,
                normal_radius: 0.75,
                keypoint: KeypointAlgorithm::Iss { radius: 0.9 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 1.5 },
                kpce_reciprocal: true,
                rejection: RejectionAlgorithm::Ransac { iterations: 800, inlier_threshold: 0.3 },
                error_metric: ErrorMetric::PointToPlane,
                solver: SolverAlgorithm::LevenbergMarquardt,
                convergence: ConvergenceCriteria { max_iterations: 50, ..Default::default() },
                ..base
            },
            DesignPoint::Dp8 => RegistrationConfig {
                normal_radius: 1.5,
                keypoint: KeypointAlgorithm::Uniform { voxel: 2.0 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 0.8 },
                kpce_reciprocal: false,
                rejection: RejectionAlgorithm::Threshold { factor: 1.2 },
                convergence: ConvergenceCriteria { max_iterations: 10, ..Default::default() },
                ..base
            },
        }
    }

    /// Display name ("DP1" … "DP8").
    pub fn name(self) -> &'static str {
        match self {
            DesignPoint::Dp1 => "DP1",
            DesignPoint::Dp2 => "DP2",
            DesignPoint::Dp3 => "DP3",
            DesignPoint::Dp4 => "DP4",
            DesignPoint::Dp5 => "DP5",
            DesignPoint::Dp6 => "DP6",
            DesignPoint::Dp7 => "DP7",
            DesignPoint::Dp8 => "DP8",
        }
    }
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = RegistrationConfig::default();
        assert!(c.normal_radius > 0.0);
        assert!(c.max_correspondence_distance > 0.0);
        assert!(c.convergence.max_iterations > 0);
        assert!(c.inject_ne.is_none() && c.inject_rpce.is_none());
    }

    #[test]
    fn all_design_points_have_configs() {
        for dp in DesignPoint::ALL {
            let c = dp.config();
            assert!(c.normal_radius > 0.0, "{dp}");
            assert!(c.descriptor.radius() > 0.0, "{dp}");
        }
    }

    #[test]
    fn dp4_is_cheaper_than_dp7() {
        // The performance DP must use tighter radii and fewer iterations
        // than the accuracy DP (paper Sec. 6.3: NE radius 0.30 vs 0.75).
        let dp4 = DesignPoint::Dp4.config();
        let dp7 = DesignPoint::Dp7.config();
        assert!(dp4.normal_radius < dp7.normal_radius);
        assert!((dp4.normal_radius - 0.30).abs() < 1e-12);
        assert!((dp7.normal_radius - 0.75).abs() < 1e-12);
        assert!(dp4.convergence.max_iterations < dp7.convergence.max_iterations);
    }

    #[test]
    fn dp8_is_normal_estimation_heavy() {
        let dp8 = DesignPoint::Dp8.config();
        for dp in DesignPoint::ALL {
            assert!(dp8.normal_radius >= dp.config().normal_radius, "{dp}");
        }
    }

    #[test]
    fn names_round_trip() {
        for (i, dp) in DesignPoint::ALL.iter().enumerate() {
            assert_eq!(dp.name(), format!("DP{}", i + 1));
            assert_eq!(dp.to_string(), dp.name());
        }
    }

    #[test]
    fn descriptor_radius_accessor() {
        assert_eq!(DescriptorAlgorithm::Fpfh { radius: 1.5 }.radius(), 1.5);
        assert_eq!(DescriptorAlgorithm::Shot { radius: 2.0 }.radius(), 2.0);
        assert_eq!(DescriptorAlgorithm::Sc3d { radius: 0.5 }.radius(), 0.5);
    }

    #[test]
    fn builder_accepts_valid_knobs() {
        let cfg = RegistrationConfig::builder()
            .normal_radius(0.6)
            .backend(SearchBackendConfig::TwoStage { top_height: 8 })
            .kpce_ratio(0.85)
            .max_correspondence_distance(1.5)
            .build()
            .unwrap();
        assert_eq!(cfg.normal_radius, 0.6);
        assert_eq!(cfg.backend, SearchBackendConfig::TwoStage { top_height: 8 });
        assert_eq!(cfg.kpce_ratio, Some(0.85));
    }

    #[test]
    fn builder_rejects_negative_radii() {
        assert_eq!(
            RegistrationConfig::builder().normal_radius(-0.5).build().unwrap_err(),
            ConfigError::NonPositive { knob: "normal_radius", value: -0.5 }
        );
        assert_eq!(
            RegistrationConfig::builder()
                .descriptor(DescriptorAlgorithm::Fpfh { radius: 0.0 })
                .build()
                .unwrap_err(),
            ConfigError::NonPositive { knob: "descriptor.radius", value: 0.0 }
        );
        assert_eq!(
            RegistrationConfig::builder().voxel_size(-0.1).build().unwrap_err(),
            ConfigError::Negative { knob: "voxel_size", value: -0.1 }
        );
        assert_eq!(
            RegistrationConfig::builder()
                .keypoint(KeypointAlgorithm::Iss { radius: -1.0 })
                .build()
                .unwrap_err(),
            ConfigError::NonPositive { knob: "keypoint.radius", value: -1.0 }
        );
    }

    #[test]
    fn builder_rejects_ratio_above_one() {
        assert_eq!(
            RegistrationConfig::builder().kpce_ratio(1.2).build().unwrap_err(),
            ConfigError::RatioOutOfRange { knob: "kpce_ratio", value: 1.2 }
        );
        assert_eq!(
            RegistrationConfig::builder().kpce_ratio(0.0).build().unwrap_err(),
            ConfigError::RatioOutOfRange { knob: "kpce_ratio", value: 0.0 }
        );
        assert!(RegistrationConfig::builder().kpce_ratio(1.0).build().is_ok());
    }

    #[test]
    fn builder_rejects_zero_iterations() {
        assert_eq!(
            RegistrationConfig::builder()
                .convergence(ConvergenceCriteria { max_iterations: 0, ..Default::default() })
                .build()
                .unwrap_err(),
            ConfigError::ZeroCount { knob: "convergence.max_iterations" }
        );
        assert_eq!(
            RegistrationConfig::builder()
                .rejection(RejectionAlgorithm::Ransac { iterations: 0, inlier_threshold: 0.5 })
                .build()
                .unwrap_err(),
            ConfigError::ZeroCount { knob: "rejection.iterations" }
        );
    }

    #[test]
    fn builder_rejects_degenerate_backends() {
        assert_eq!(
            RegistrationConfig::builder()
                .backend(SearchBackendConfig::TwoStage { top_height: 0 })
                .build()
                .unwrap_err(),
            ConfigError::ZeroCount { knob: "backend.top_height" }
        );
        let bad_approx = SearchBackendConfig::TwoStageApprox {
            top_height: 5,
            approx: ApproxConfig { radius_threshold_frac: 1.5, ..Default::default() },
        };
        assert_eq!(
            RegistrationConfig::builder().backend(bad_approx).build().unwrap_err(),
            ConfigError::RatioOutOfRange {
                knob: "backend.approx.radius_threshold_frac",
                value: 1.5
            }
        );
        // Brute force and registered customs carry no knobs to reject.
        assert!(RegistrationConfig::builder()
            .backend(SearchBackendConfig::BruteForce)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_rejects_non_finite_knobs() {
        assert_eq!(
            RegistrationConfig::builder().normal_radius(f64::NAN).build().unwrap_err(),
            ConfigError::NotFinite { knob: "normal_radius" }
        );
        // Infinity *is* valid for the motion-prior gates (disables them)…
        assert!(RegistrationConfig::builder().max_initial_rotation(f64::INFINITY).build().is_ok());
        // …but not for radii.
        assert_eq!(
            RegistrationConfig::builder()
                .max_correspondence_distance(f64::INFINITY)
                .build()
                .unwrap_err(),
            ConfigError::NotFinite { knob: "max_correspondence_distance" }
        );
    }

    #[test]
    fn builder_rejects_zero_injection_ranks() {
        assert_eq!(
            RegistrationConfig::builder()
                .inject_rpce(Some(Injection::NnKth(0)))
                .build()
                .unwrap_err(),
            ConfigError::ZeroCount { knob: "inject_rpce" }
        );
        assert_eq!(
            RegistrationConfig::builder().inject_kpce_kth(Some(0)).build().unwrap_err(),
            ConfigError::ZeroCount { knob: "inject_kpce_kth" }
        );
        assert!(RegistrationConfig::builder()
            .inject_ne(Some(Injection::RadiusShell { inner_frac: 0.5, outer_frac: 1.25 }))
            .build()
            .is_ok());
    }

    #[test]
    fn all_design_points_pass_validation() {
        for dp in DesignPoint::ALL {
            assert_eq!(dp.config().validate(), Ok(()), "{dp} must validate");
        }
        assert_eq!(RegistrationConfig::default().validate(), Ok(()));
    }

    #[test]
    fn same_front_end_ignores_matching_knobs() {
        let base = RegistrationConfig::default();
        // Matching/ICP knobs don't affect front-end compatibility.
        let mut matching = base.clone();
        matching.kpce_reciprocal = !base.kpce_reciprocal;
        matching.max_correspondence_distance = 1.0;
        matching.convergence.max_iterations = 5;
        matching.rejection = RejectionAlgorithm::Threshold { factor: 1.1 };
        // Parallelism is a pure performance knob: batched ≡ serial
        // bit-for-bit, so it never invalidates a preparation.
        matching.parallel = tigris_core::BatchConfig { threads: 4, min_chunk: 32 };
        assert!(base.same_front_end(&matching));
        // Any preparation knob breaks it.
        let mut prep = base.clone();
        prep.normal_radius += 0.1;
        assert!(!base.same_front_end(&prep));
        let mut prep = base.clone();
        prep.voxel_size = 0.0;
        assert!(!base.same_front_end(&prep));
        let mut prep = base.clone();
        prep.backend = SearchBackendConfig::BruteForce;
        assert!(!base.same_front_end(&prep));
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(SearchBackendConfig::Classic.name(), "classic");
        assert_eq!(SearchBackendConfig::TwoStage { top_height: 3 }.name(), "two-stage");
        assert_eq!(
            SearchBackendConfig::TwoStageApprox { top_height: 3, approx: ApproxConfig::default() }
                .name(),
            "two-stage-approx"
        );
        assert_eq!(SearchBackendConfig::BruteForce.name(), "brute-force");
        assert_eq!(SearchBackendConfig::Custom { name: "accelerator" }.name(), "accelerator");
    }

    #[test]
    fn config_error_display_is_informative() {
        let e = ConfigError::NonPositive { knob: "normal_radius", value: -1.0 };
        assert!(e.to_string().contains("normal_radius"));
        let e = ConfigError::UnknownBackend { name: "warp" };
        assert!(e.to_string().contains("warp"));
    }
}

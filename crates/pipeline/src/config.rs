//! Pipeline configuration: every algorithmic and parametric knob of the
//! paper's Tbl. 1, plus the Pareto design points DP1–DP8 used throughout
//! the evaluation.

use tigris_core::{ApproxConfig, BatchConfig};

use crate::search::Injection;

/// Normal-estimation algorithm (Tbl. 1 row 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalAlgorithm {
    /// Total-least-squares plane fit via covariance eigen-decomposition.
    PlaneSvd,
    /// Area-weighted average of fan-triangle normals.
    AreaWeighted,
}

/// Key-point detection algorithm (Tbl. 1 row 2).
///
/// The paper explores SIFT, NARF and HARRIS. We implement SIFT-3D
/// (difference-of-curvature across scales) and Harris-3D faithfully, and
/// substitute ISS (Intrinsic Shape Signatures) for NARF — both are
/// geometric-saliency detectors, and NARF's range-image machinery is
/// orthogonal to the paper's claims (see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeypointAlgorithm {
    /// SIFT-3D-style: local extrema of curvature difference across two
    /// neighborhood scales.
    Sift {
        /// Base scale (neighborhood radius), meters.
        scale: f64,
    },
    /// Harris-3D: corner response from the covariance of neighborhood
    /// normals.
    Harris {
        /// Neighborhood radius, meters.
        radius: f64,
    },
    /// Intrinsic Shape Signatures (NARF substitute): eigenvalue-ratio
    /// saliency.
    Iss {
        /// Salient-region radius, meters.
        radius: f64,
    },
    /// Uniform voxel sub-sampling (the cheap baseline).
    Uniform {
        /// Voxel edge, meters.
        voxel: f64,
    },
}

/// Feature-descriptor algorithm (Tbl. 1 row 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DescriptorAlgorithm {
    /// Fast Point Feature Histograms (33-D).
    Fpfh {
        /// Descriptor neighborhood radius, meters.
        radius: f64,
    },
    /// Signature of Histograms of Orientations (simplified spatial-angular
    /// signature; see `descriptor` module docs).
    Shot {
        /// Descriptor neighborhood radius, meters.
        radius: f64,
    },
    /// 3D Shape Context (log-radial shells × azimuth × elevation).
    Sc3d {
        /// Descriptor neighborhood radius, meters.
        radius: f64,
    },
}

impl DescriptorAlgorithm {
    /// Descriptor search radius, whatever the algorithm.
    pub fn radius(&self) -> f64 {
        match *self {
            DescriptorAlgorithm::Fpfh { radius }
            | DescriptorAlgorithm::Shot { radius }
            | DescriptorAlgorithm::Sc3d { radius } => radius,
        }
    }
}

/// Correspondence-rejection algorithm (Tbl. 1 row 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RejectionAlgorithm {
    /// Keep correspondences whose feature distance is below `factor` times
    /// the median feature distance.
    Threshold {
        /// Multiple of the median feature distance to keep.
        factor: f64,
    },
    /// RANSAC over rigid transforms: keep the largest consensus set.
    Ransac {
        /// Iterations (random minimal samples drawn).
        iterations: usize,
        /// Inlier threshold on 3D alignment error, meters.
        inlier_threshold: f64,
    },
}

/// Error metric minimized by the fine-tuning solver (Tbl. 1 row 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorMetric {
    /// Mean-square point-to-point distance.
    PointToPoint,
    /// Point-to-plane distance (needs target normals).
    PointToPlane,
}

/// Optimization solver (Tbl. 1 row 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverAlgorithm {
    /// Closed-form SVD (Kabsch/Umeyama) — point-to-point only; for
    /// point-to-plane the linearized Gauss-Newton step is used.
    Svd,
    /// Levenberg–Marquardt damped iterations.
    LevenbergMarquardt,
}

/// ICP convergence criteria (Tbl. 1 "Convergence criteria").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceCriteria {
    /// Maximum fine-tuning iterations.
    pub max_iterations: usize,
    /// Stop when the transform update's translation falls below this (m)…
    pub translation_epsilon: f64,
    /// …and its rotation below this (radians).
    pub rotation_epsilon: f64,
    /// Stop when the relative mean-square-error improvement falls below this.
    pub mse_relative_epsilon: f64,
}

impl Default for ConvergenceCriteria {
    fn default() -> Self {
        ConvergenceCriteria {
            max_iterations: 30,
            translation_epsilon: 1e-4,
            rotation_epsilon: 1e-5,
            mse_relative_epsilon: 1e-4,
        }
    }
}

/// KD-tree backend selection for the dense (3D) searches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchBackendConfig {
    /// Canonical KD-tree.
    Classic,
    /// Two-stage KD-tree with the given top-tree height.
    TwoStage {
        /// Top-tree height.
        top_height: usize,
    },
    /// Two-stage + approximate (Algorithm 1) search.
    TwoStageApprox {
        /// Top-tree height.
        top_height: usize,
        /// Leader/follower parameters.
        approx: ApproxConfig,
    },
}

/// The full pipeline configuration (paper Fig. 2 + Tbl. 1).
#[derive(Debug, Clone, PartialEq)]
pub struct RegistrationConfig {
    /// Voxel size for pre-downsampling each frame (0 disables). KITTI-scale
    /// frames are typically downsampled to ~0.2–0.4 m for the front-end.
    pub voxel_size: f64,
    /// Normal-estimation algorithm.
    pub normal_algorithm: NormalAlgorithm,
    /// Normal-estimation search radius (Tbl. 1 "Search radius"), meters.
    pub normal_radius: f64,
    /// Key-point detector and its scale/range parameter.
    pub keypoint: KeypointAlgorithm,
    /// Feature descriptor and its search radius.
    pub descriptor: DescriptorAlgorithm,
    /// Whether KPCE requires reciprocal (mutual) nearest neighbors.
    pub kpce_reciprocal: bool,
    /// Lowe ratio test for KPCE (Tbl. 1 "Ratio threshold"): keep a match
    /// only when nearest/second-nearest feature distance ≤ this. `None`
    /// disables; when set, it replaces plain nearest-neighbor matching
    /// (reciprocity still applies on top if enabled).
    pub kpce_ratio: Option<f64>,
    /// Correspondence rejection.
    pub rejection: RejectionAlgorithm,
    /// Error metric for fine-tuning.
    pub error_metric: ErrorMetric,
    /// Solver for fine-tuning.
    pub solver: SolverAlgorithm,
    /// RPCE: drop correspondences farther than this (meters).
    pub max_correspondence_distance: f64,
    /// RPCE reciprocity (Tbl. 1): keep only mutually-nearest dense pairs.
    /// Robust to partial overlap at roughly double the per-iteration search
    /// cost (plus a source-tree rebuild each iteration).
    pub rpce_reciprocal: bool,
    /// ICP convergence criteria.
    pub convergence: ConvergenceCriteria,
    /// Dense-search backend.
    pub backend: SearchBackendConfig,
    /// Error injection into the Normal Estimation stage's radius searches
    /// (Fig. 7b), if any.
    pub inject_ne: Option<Injection>,
    /// Error injection into RPCE's NN searches (Fig. 7a, dense curve).
    pub inject_rpce: Option<Injection>,
    /// Error injection into KPCE's feature-space NN (Fig. 7a, sparse
    /// curve): return the k-th nearest feature instead.
    pub inject_kpce_kth: Option<usize>,
    /// Motion-prior gate on the initial estimate: when the front-end's
    /// transform rotates more than this (radians), it is discarded and
    /// fine-tuning starts from identity. Consecutive LiDAR frames (10 Hz)
    /// cannot rotate this much; the gate rejects symmetric-scene flips
    /// (e.g. a road corridor matched 180° reversed). `f64::INFINITY`
    /// disables it.
    pub max_initial_rotation: f64,
    /// Motion-prior gate on the initial estimate's translation (meters);
    /// see [`RegistrationConfig::max_initial_rotation`].
    pub max_initial_translation: f64,
    /// Parallel batched-search execution: worker-thread count and minimum
    /// chunk size for the query fan-outs (normal estimation, descriptors,
    /// KPCE, RPCE). The default is serial; `BatchConfig::auto()` uses every
    /// core. Results are identical at any setting — this knob trades
    /// wall-clock for CPU, which is why [`crate::dse`] can sweep it.
    pub parallel: BatchConfig,
}

impl Default for RegistrationConfig {
    fn default() -> Self {
        RegistrationConfig {
            voxel_size: 0.25,
            normal_algorithm: NormalAlgorithm::PlaneSvd,
            normal_radius: 0.6,
            keypoint: KeypointAlgorithm::Iss { radius: 0.8 },
            descriptor: DescriptorAlgorithm::Fpfh { radius: 1.8 },
            kpce_reciprocal: true,
            kpce_ratio: None,
            rejection: RejectionAlgorithm::Ransac { iterations: 400, inlier_threshold: 0.5 },
            // Point-to-plane converges where point-to-point slides along
            // corridor structure (the aperture problem on walls/ground).
            error_metric: ErrorMetric::PointToPlane,
            solver: SolverAlgorithm::Svd,
            max_correspondence_distance: 2.0,
            rpce_reciprocal: false,
            convergence: ConvergenceCriteria::default(),
            backend: SearchBackendConfig::Classic,
            inject_ne: None,
            inject_rpce: None,
            inject_kpce_kth: None,
            max_initial_rotation: 60.0_f64.to_radians(),
            max_initial_translation: 10.0,
            parallel: BatchConfig::serial(),
        }
    }
}

/// The eight Pareto-optimal design points of paper Fig. 3/Fig. 4.
///
/// The paper does not tabulate the DPs' exact knob settings; these presets
/// recreate the *spread* the paper describes — DP1/DP2 descriptor-heavy and
/// accurate, DP4 performance-oriented (tight radii, cheap stages), DP7
/// accuracy-oriented (relaxed radii, reciprocal matching, RANSAC), DP8
/// normal-estimation-dominated — so the Fig. 3/4 analyses reproduce in
/// shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignPoint {
    /// Descriptor-heavy, accurate, slow.
    Dp1,
    /// Descriptor-heavy with SHOT.
    Dp2,
    /// Balanced, Harris key-points.
    Dp3,
    /// **Performance-oriented** (paper's perf DP): tight radii, cheap
    /// detector, threshold rejection, early convergence.
    Dp4,
    /// Balanced, SIFT key-points.
    Dp5,
    /// Relaxed ICP with point-to-plane.
    Dp6,
    /// **Accuracy-oriented** (paper's accuracy DP): relaxed radii, FPFH,
    /// reciprocal KPCE, RANSAC, point-to-plane LM.
    Dp7,
    /// Very large normal radius: NE-dominated (paper: NE ≈ 80% of time).
    Dp8,
}

impl DesignPoint {
    /// All eight design points in order.
    pub const ALL: [DesignPoint; 8] = [
        DesignPoint::Dp1,
        DesignPoint::Dp2,
        DesignPoint::Dp3,
        DesignPoint::Dp4,
        DesignPoint::Dp5,
        DesignPoint::Dp6,
        DesignPoint::Dp7,
        DesignPoint::Dp8,
    ];

    /// The registration configuration of this design point.
    pub fn config(self) -> RegistrationConfig {
        let base = RegistrationConfig::default();
        match self {
            DesignPoint::Dp1 => RegistrationConfig {
                normal_radius: 0.6,
                keypoint: KeypointAlgorithm::Iss { radius: 0.8 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 1.6 },
                kpce_reciprocal: true,
                rejection: RejectionAlgorithm::Ransac { iterations: 600, inlier_threshold: 0.4 },
                convergence: ConvergenceCriteria { max_iterations: 40, ..Default::default() },
                ..base
            },
            DesignPoint::Dp2 => RegistrationConfig {
                normal_radius: 0.6,
                keypoint: KeypointAlgorithm::Iss { radius: 0.8 },
                descriptor: DescriptorAlgorithm::Shot { radius: 1.4 },
                kpce_reciprocal: false,
                kpce_ratio: Some(0.9),
                rejection: RejectionAlgorithm::Ransac { iterations: 400, inlier_threshold: 0.4 },
                ..base
            },
            DesignPoint::Dp3 => RegistrationConfig {
                normal_radius: 0.5,
                keypoint: KeypointAlgorithm::Harris { radius: 0.8 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 1.0 },
                kpce_reciprocal: false,
                rejection: RejectionAlgorithm::Threshold { factor: 1.0 },
                ..base
            },
            DesignPoint::Dp4 => RegistrationConfig {
                voxel_size: 0.4,
                normal_radius: 0.30,
                keypoint: KeypointAlgorithm::Uniform { voxel: 1.5 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 0.6 },
                kpce_reciprocal: false,
                rejection: RejectionAlgorithm::Threshold { factor: 1.2 },
                error_metric: ErrorMetric::PointToPlane,
                solver: SolverAlgorithm::Svd,
                convergence: ConvergenceCriteria {
                    max_iterations: 15,
                    mse_relative_epsilon: 1e-3,
                    ..Default::default()
                },
                ..base
            },
            DesignPoint::Dp5 => RegistrationConfig {
                normal_radius: 0.5,
                keypoint: KeypointAlgorithm::Sift { scale: 0.6 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 1.0 },
                kpce_reciprocal: false,
                rejection: RejectionAlgorithm::Threshold { factor: 1.0 },
                ..base
            },
            DesignPoint::Dp6 => RegistrationConfig {
                normal_radius: 0.5,
                keypoint: KeypointAlgorithm::Iss { radius: 1.0 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 0.9 },
                error_metric: ErrorMetric::PointToPlane,
                solver: SolverAlgorithm::Svd,
                ..base
            },
            DesignPoint::Dp7 => RegistrationConfig {
                voxel_size: 0.25,
                normal_radius: 0.75,
                keypoint: KeypointAlgorithm::Iss { radius: 0.9 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 1.5 },
                kpce_reciprocal: true,
                rejection: RejectionAlgorithm::Ransac { iterations: 800, inlier_threshold: 0.3 },
                error_metric: ErrorMetric::PointToPlane,
                solver: SolverAlgorithm::LevenbergMarquardt,
                convergence: ConvergenceCriteria { max_iterations: 50, ..Default::default() },
                ..base
            },
            DesignPoint::Dp8 => RegistrationConfig {
                normal_radius: 1.5,
                keypoint: KeypointAlgorithm::Uniform { voxel: 2.0 },
                descriptor: DescriptorAlgorithm::Fpfh { radius: 0.8 },
                kpce_reciprocal: false,
                rejection: RejectionAlgorithm::Threshold { factor: 1.2 },
                convergence: ConvergenceCriteria { max_iterations: 10, ..Default::default() },
                ..base
            },
        }
    }

    /// Display name ("DP1" … "DP8").
    pub fn name(self) -> &'static str {
        match self {
            DesignPoint::Dp1 => "DP1",
            DesignPoint::Dp2 => "DP2",
            DesignPoint::Dp3 => "DP3",
            DesignPoint::Dp4 => "DP4",
            DesignPoint::Dp5 => "DP5",
            DesignPoint::Dp6 => "DP6",
            DesignPoint::Dp7 => "DP7",
            DesignPoint::Dp8 => "DP8",
        }
    }
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = RegistrationConfig::default();
        assert!(c.normal_radius > 0.0);
        assert!(c.max_correspondence_distance > 0.0);
        assert!(c.convergence.max_iterations > 0);
        assert!(c.inject_ne.is_none() && c.inject_rpce.is_none());
    }

    #[test]
    fn all_design_points_have_configs() {
        for dp in DesignPoint::ALL {
            let c = dp.config();
            assert!(c.normal_radius > 0.0, "{dp}");
            assert!(c.descriptor.radius() > 0.0, "{dp}");
        }
    }

    #[test]
    fn dp4_is_cheaper_than_dp7() {
        // The performance DP must use tighter radii and fewer iterations
        // than the accuracy DP (paper Sec. 6.3: NE radius 0.30 vs 0.75).
        let dp4 = DesignPoint::Dp4.config();
        let dp7 = DesignPoint::Dp7.config();
        assert!(dp4.normal_radius < dp7.normal_radius);
        assert!((dp4.normal_radius - 0.30).abs() < 1e-12);
        assert!((dp7.normal_radius - 0.75).abs() < 1e-12);
        assert!(dp4.convergence.max_iterations < dp7.convergence.max_iterations);
    }

    #[test]
    fn dp8_is_normal_estimation_heavy() {
        let dp8 = DesignPoint::Dp8.config();
        for dp in DesignPoint::ALL {
            assert!(dp8.normal_radius >= dp.config().normal_radius, "{dp}");
        }
    }

    #[test]
    fn names_round_trip() {
        for (i, dp) in DesignPoint::ALL.iter().enumerate() {
            assert_eq!(dp.name(), format!("DP{}", i + 1));
            assert_eq!(dp.to_string(), dp.name());
        }
    }

    #[test]
    fn descriptor_radius_accessor() {
        assert_eq!(DescriptorAlgorithm::Fpfh { radius: 1.5 }.radius(), 1.5);
        assert_eq!(DescriptorAlgorithm::Shot { radius: 2.0 }.radius(), 2.0);
        assert_eq!(DescriptorAlgorithm::Sc3d { radius: 0.5 }.radius(), 0.5);
    }
}

//! Correspondence rejection (paper Fig. 2, stage 5; Tbl. 1 Thresholding /
//! RANSAC \[19\]).
//!
//! KPCE's raw matches contain outliers — feature collisions between
//! unrelated geometry. Rejection keeps a consistent subset from which the
//! initial transform is estimated.

use rand_lite::Lcg;
use tigris_geom::Vec3;

use crate::config::RejectionAlgorithm;
use crate::correspond::Correspondence;
use crate::transform::estimate_svd;

/// A tiny deterministic LCG so the rejection stage doesn't pull `rand`
/// into the pipeline crate's public dependency set.
mod rand_lite {
    /// Linear congruential generator (Numerical Recipes constants).
    #[derive(Debug, Clone)]
    pub struct Lcg(u64);

    impl Lcg {
        pub fn new(seed: u64) -> Self {
            Lcg(seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }

        /// Uniform index in `0..n`.
        pub fn index(&mut self, n: usize) -> usize {
            (self.next_u64() >> 33) as usize % n
        }
    }
}

/// Applies the configured rejector to `correspondences`, returning the
/// surviving subset (order preserved).
///
/// `source_keypoints` and `target_keypoints` are the 3D positions the
/// correspondences index into (needed by RANSAC's geometric consensus).
pub fn reject_correspondences(
    correspondences: &[Correspondence],
    source_keypoints: &[Vec3],
    target_keypoints: &[Vec3],
    algorithm: RejectionAlgorithm,
    seed: u64,
) -> Vec<Correspondence> {
    match algorithm {
        RejectionAlgorithm::Threshold { factor } => threshold_reject(correspondences, factor),
        RejectionAlgorithm::Ransac { iterations, inlier_threshold } => ransac_reject(
            correspondences,
            source_keypoints,
            target_keypoints,
            iterations,
            inlier_threshold,
            seed,
        ),
    }
}

/// Keeps correspondences whose feature distance is at most `factor` times
/// the median feature distance.
fn threshold_reject(correspondences: &[Correspondence], factor: f64) -> Vec<Correspondence> {
    if correspondences.is_empty() {
        return Vec::new();
    }
    let mut dists: Vec<f64> = correspondences.iter().map(|c| c.distance_squared).collect();
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = dists[dists.len() / 2];
    let cutoff = median * factor * factor;
    correspondences.iter().filter(|c| c.distance_squared <= cutoff).copied().collect()
}

/// Classic RANSAC over rigid transforms: repeatedly fit a transform to a
/// random 3-correspondence sample and keep the largest set of
/// correspondences whose aligned 3D error is below `inlier_threshold`.
fn ransac_reject(
    correspondences: &[Correspondence],
    source_keypoints: &[Vec3],
    target_keypoints: &[Vec3],
    iterations: usize,
    inlier_threshold: f64,
    seed: u64,
) -> Vec<Correspondence> {
    if correspondences.len() < 3 {
        return correspondences.to_vec();
    }
    let mut rng = Lcg::new(seed);
    let thr2 = inlier_threshold * inlier_threshold;
    let mut best_inliers: Vec<usize> = Vec::new();

    for _ in 0..iterations {
        // Draw 3 distinct correspondences.
        let a = rng.index(correspondences.len());
        let mut b = rng.index(correspondences.len());
        let mut c = rng.index(correspondences.len());
        if a == b || b == c || a == c {
            b = (a + 1) % correspondences.len();
            c = (a + 2) % correspondences.len();
        }
        let sample = [correspondences[a], correspondences[b], correspondences[c]];
        let Ok(t) = estimate_svd(source_keypoints, target_keypoints, &sample) else {
            continue;
        };
        let inliers: Vec<usize> = correspondences
            .iter()
            .enumerate()
            .filter(|(_, cr)| {
                t.apply(source_keypoints[cr.source]).distance_squared(target_keypoints[cr.target])
                    <= thr2
            })
            .map(|(i, _)| i)
            .collect();
        if inliers.len() > best_inliers.len() {
            best_inliers = inliers;
            // Early exit when almost everything is an inlier.
            if best_inliers.len() * 10 >= correspondences.len() * 9 {
                break;
            }
        }
    }

    if best_inliers.len() < 3 {
        // Consensus failed; fall back to the raw set rather than nothing.
        return correspondences.to_vec();
    }
    best_inliers.into_iter().map(|i| correspondences[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigris_geom::RigidTransform;

    fn corr(source: usize, target: usize, d2: f64) -> Correspondence {
        Correspondence { source, target, distance_squared: d2 }
    }

    #[test]
    fn threshold_keeps_below_median_factor() {
        let cs = vec![corr(0, 0, 1.0), corr(1, 1, 1.0), corr(2, 2, 100.0)];
        let kept = threshold_reject(&cs, 1.5);
        assert_eq!(kept.len(), 2);
        assert!(kept.iter().all(|c| c.distance_squared <= 2.25));
    }

    #[test]
    fn threshold_empty() {
        assert!(threshold_reject(&[], 1.0).is_empty());
    }

    #[test]
    fn ransac_rejects_planted_outliers() {
        // 20 inliers under a known rigid transform + 8 gross outliers.
        let gt = RigidTransform::from_axis_angle(Vec3::Z, 0.3, Vec3::new(1.0, 0.5, 0.0));
        let mut src = Vec::new();
        let mut tgt = Vec::new();
        let mut cs = Vec::new();
        for i in 0..20 {
            let p = Vec3::new((i % 5) as f64, (i / 5) as f64, (i % 3) as f64);
            src.push(p);
            tgt.push(gt.apply(p));
            cs.push(corr(i, i, 0.1));
        }
        for i in 20..28 {
            let p = Vec3::new(i as f64, -3.0, 2.0);
            src.push(p);
            tgt.push(Vec3::new(-5.0, i as f64, 7.0)); // garbage match
            cs.push(corr(i, i, 0.1));
        }
        let kept = reject_correspondences(
            &cs,
            &src,
            &tgt,
            RejectionAlgorithm::Ransac { iterations: 300, inlier_threshold: 0.2 },
            42,
        );
        assert_eq!(kept.len(), 20, "kept {} of 28", kept.len());
        assert!(kept.iter().all(|c| c.source < 20));
    }

    #[test]
    fn ransac_small_input_passthrough() {
        let cs = vec![corr(0, 0, 1.0), corr(1, 1, 1.0)];
        let kept = ransac_reject(&cs, &[Vec3::ZERO, Vec3::X], &[Vec3::ZERO, Vec3::X], 10, 0.1, 1);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn ransac_is_deterministic_per_seed() {
        let gt = RigidTransform::from_translation(Vec3::X);
        let src: Vec<Vec3> =
            (0..15).map(|i| Vec3::new(i as f64, (i * i % 7) as f64, 0.0)).collect();
        let tgt: Vec<Vec3> = src.iter().map(|&p| gt.apply(p)).collect();
        let cs: Vec<Correspondence> = (0..15).map(|i| corr(i, i, 0.1)).collect();
        let a = ransac_reject(&cs, &src, &tgt, 50, 0.1, 7);
        let b = ransac_reject(&cs, &src, &tgt, 50, 0.1, 7);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn ransac_all_inliers_keeps_everything() {
        let gt = RigidTransform::from_axis_angle(Vec3::Y, 0.2, Vec3::new(0.0, 1.0, 0.0));
        let src: Vec<Vec3> =
            (0..12).map(|i| Vec3::new(i as f64 * 0.5, (i % 4) as f64, (i % 3) as f64)).collect();
        let tgt: Vec<Vec3> = src.iter().map(|&p| gt.apply(p)).collect();
        let cs: Vec<Correspondence> = (0..12).map(|i| corr(i, i, 0.0)).collect();
        let kept = ransac_reject(&cs, &src, &tgt, 200, 0.1, 3);
        assert_eq!(kept.len(), 12);
    }
}

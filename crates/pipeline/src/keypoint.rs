//! Key-point detection (paper Fig. 2, stage 2; Tbl. 1 SIFT / NARF /
//! HARRIS, parameters scale and range).
//!
//! Key-points are the salient subset of a frame on which the expensive
//! descriptor and matching stages operate. Implemented detectors:
//!
//! * **SIFT-3D** — difference of curvature across two neighborhood scales;
//!   local extrema above a contrast threshold are key-points (the 3D
//!   adaptation of Lowe's DoG used by PCL on geometry).
//! * **Harris-3D** — corner response `det(C) − k·tr(C)²` on the covariance
//!   of neighborhood *normals* (Sipiran & Bustos).
//! * **ISS** — eigenvalue-ratio saliency (our NARF substitute; both select
//!   boundary-like geometrically stable points; see DESIGN.md).
//! * **Uniform** — voxel-grid sub-sampling, the cheap baseline.
//!
//! All detectors end with non-maximum suppression over the detection
//! radius so key-points are well spread.

use tigris_geom::{symmetric_eigen3, Mat3, Vec3};

use crate::config::KeypointAlgorithm;
use crate::search::Searcher3;

/// Detects key-points in `searcher`'s cloud; returns indices into the
/// cloud's point array, sorted ascending.
///
/// `normals` must be parallel to the cloud (used by Harris). An empty cloud
/// yields no key-points.
pub fn detect_keypoints(
    searcher: &mut Searcher3,
    normals: &[Vec3],
    algorithm: KeypointAlgorithm,
) -> Vec<usize> {
    match algorithm {
        KeypointAlgorithm::Sift { scale } => sift3d(searcher, scale),
        KeypointAlgorithm::Harris { radius } => harris3d(searcher, normals, radius),
        KeypointAlgorithm::Iss { radius } => iss(searcher, radius),
        KeypointAlgorithm::Uniform { voxel } => uniform(searcher, voxel),
    }
}

/// Curvature (λ₀ / Σλ) of the neighborhood of point `i` at `radius`.
fn curvature_at(searcher: &mut Searcher3, p: Vec3, radius: f64) -> f64 {
    let neighbors = searcher.radius(p, radius);
    if neighbors.len() < 3 {
        return 0.0;
    }
    let pts = searcher.points();
    let mut centroid = Vec3::ZERO;
    for n in &neighbors {
        centroid += pts[n.index];
    }
    centroid = centroid / neighbors.len() as f64;
    let mut cov = Mat3::ZERO;
    for n in &neighbors {
        let d = pts[n.index] - centroid;
        cov = cov + Mat3::outer(d, d);
    }
    symmetric_eigen3(&cov).curvature()
}

fn sift3d(searcher: &mut Searcher3, scale: f64) -> Vec<usize> {
    let n = searcher.len();
    // Difference of curvature between two octave-separated scales.
    let mut response = vec![0.0f64; n];
    for (i, r) in response.iter_mut().enumerate() {
        let p = searcher.points()[i];
        let c1 = curvature_at(searcher, p, scale);
        let c2 = curvature_at(searcher, p, scale * 2.0);
        *r = (c2 - c1).abs();
    }
    non_max_suppress(searcher, &response, scale * 2.0, 0.005)
}

fn harris3d(searcher: &mut Searcher3, normals: &[Vec3], radius: f64) -> Vec<usize> {
    assert_eq!(normals.len(), searcher.len(), "Harris needs normals parallel to the cloud");
    let n = searcher.len();
    let mut response = vec![0.0f64; n];
    // Harris k. Note the covariance of *unit* normals has trace 1 and
    // det ≤ 1/27 ≈ 0.037, so the image-domain default k = 0.04 would
    // suppress every response; 0.02 keeps genuine 3-plane corners positive
    // while rejecting planes and 2-plane edges (det = 0).
    const K: f64 = 0.02;
    for (i, r) in response.iter_mut().enumerate() {
        let p = searcher.points()[i];
        let neighbors = searcher.radius(p, radius);
        if neighbors.len() < 5 {
            continue;
        }
        let mut cov = Mat3::ZERO;
        for nb in &neighbors {
            let nrm = normals[nb.index];
            cov = cov + Mat3::outer(nrm, nrm);
        }
        cov = cov.scale(1.0 / neighbors.len() as f64);
        *r = cov.determinant() - K * cov.trace() * cov.trace();
    }
    non_max_suppress(searcher, &response, radius, 1e-6)
}

fn iss(searcher: &mut Searcher3, radius: f64) -> Vec<usize> {
    // ISS thresholds from Zhong 2009: γ21 = γ32 = 0.975 are the defaults in
    // PCL; saliency is the smallest eigenvalue.
    const GAMMA_21: f64 = 0.975;
    const GAMMA_32: f64 = 0.975;
    // Minimum saliency (λ₃, m²). Spinning-LiDAR ground returns form
    // concentric ring arcs whose covariance passes the ratio tests with
    // λ₃ ≈ range-noise² (~4e-4 m²) — viewpoint-dependent sampling
    // artifacts, not structure. Genuine corners/edges at meter-scale radii
    // have λ₃ ≳ 1e-2 m². The floor rejects the artifacts.
    const MIN_SALIENCY: f64 = 3e-3;
    let n = searcher.len();
    let mut response = vec![0.0f64; n];
    for (i, r) in response.iter_mut().enumerate() {
        let p = searcher.points()[i];
        let neighbors = searcher.radius(p, radius);
        if neighbors.len() < 8 {
            continue;
        }
        let pts = searcher.points();
        let mut centroid = Vec3::ZERO;
        for n in &neighbors {
            centroid += pts[n.index];
        }
        centroid = centroid / neighbors.len() as f64;
        let mut cov = Mat3::ZERO;
        for n in &neighbors {
            let d = pts[n.index] - centroid;
            cov = cov + Mat3::outer(d, d);
        }
        cov = cov.scale(1.0 / neighbors.len() as f64);
        let eig = symmetric_eigen3(&cov);
        // eig.values ascending: λ₀ ≤ λ₁ ≤ λ₂  (paper notation λ₃ ≤ λ₂ ≤ λ₁).
        let (l3, l2, l1) = (eig.values[0], eig.values[1], eig.values[2]);
        if l1 <= 0.0 {
            continue;
        }
        if l2 / l1 < GAMMA_21 && l3 / l2.max(1e-30) < GAMMA_32 {
            *r = l3;
        }
    }
    non_max_suppress(searcher, &response, radius, MIN_SALIENCY)
}

fn uniform(searcher: &mut Searcher3, voxel: f64) -> Vec<usize> {
    assert!(voxel > 0.0, "voxel size must be positive");
    use std::collections::HashMap;
    let points = searcher.points();
    // Keep, per voxel, the point closest to the voxel center.
    let mut cells: HashMap<(i64, i64, i64), (usize, f64)> = HashMap::new();
    for (i, &p) in points.iter().enumerate() {
        let kx = (p.x / voxel).floor();
        let ky = (p.y / voxel).floor();
        let kz = (p.z / voxel).floor();
        let center = Vec3::new((kx + 0.5) * voxel, (ky + 0.5) * voxel, (kz + 0.5) * voxel);
        let d = p.distance_squared(center);
        let key = (kx as i64, ky as i64, kz as i64);
        match cells.get(&key) {
            Some(&(_, best)) if best <= d => {}
            _ => {
                cells.insert(key, (i, d));
            }
        }
    }
    let mut out: Vec<usize> = cells.into_values().map(|(i, _)| i).collect();
    out.sort_unstable();
    out
}

/// Keeps indices whose response strictly dominates every neighbor within
/// `radius` and exceeds `threshold`. Returns sorted indices.
fn non_max_suppress(
    searcher: &mut Searcher3,
    response: &[f64],
    radius: f64,
    threshold: f64,
) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, &r) in response.iter().enumerate() {
        if r <= threshold {
            continue;
        }
        let p = searcher.points()[i];
        let neighbors = searcher.radius(p, radius);
        let is_max = neighbors.iter().all(|n| {
            n.index == i || response[n.index] < r || (response[n.index] == r && n.index > i)
        });
        if is_max {
            out.push(i);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NormalAlgorithm;
    use crate::normal::estimate_normals;

    /// An L-shaped wall corner on a ground patch: the corner edge should
    /// attract geometric detectors.
    fn corner_scene() -> Vec<Vec3> {
        let mut pts = Vec::new();
        let step = 0.1;
        // Ground plane 4×4 m.
        for i in 0..40 {
            for j in 0..40 {
                pts.push(Vec3::new(i as f64 * step, j as f64 * step, 0.0));
            }
        }
        // Wall along x at y = 2.
        for i in 0..40 {
            for k in 1..20 {
                pts.push(Vec3::new(i as f64 * step, 2.0, k as f64 * step));
            }
        }
        // Wall along y at x = 2.
        for j in 0..40 {
            for k in 1..20 {
                pts.push(Vec3::new(2.0, j as f64 * step, k as f64 * step));
            }
        }
        pts
    }

    #[test]
    fn uniform_spreads_keypoints() {
        let pts = corner_scene();
        let mut s = Searcher3::classic(&pts);
        let kps = detect_keypoints(&mut s, &[], KeypointAlgorithm::Uniform { voxel: 1.0 });
        assert!(!kps.is_empty());
        assert!(kps.len() < pts.len() / 10);
        // One key-point per occupied voxel: pairwise distance ≥ small bound.
        for (ai, &a) in kps.iter().enumerate() {
            for &b in &kps[ai + 1..] {
                assert_ne!(a, b);
            }
        }
        // Sorted.
        for w in kps.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn iss_prefers_corners_over_planes() {
        let pts = corner_scene();
        let mut s = Searcher3::classic(&pts);
        let kps = detect_keypoints(&mut s, &[], KeypointAlgorithm::Iss { radius: 0.4 });
        assert!(!kps.is_empty(), "ISS found nothing");
        // Key-points should lie near the corner/edge structures (y≈2, x≈2,
        // or wall/ground junctions), not in the middle of the ground plane.
        let mut near_structure = 0;
        for &k in &kps {
            let p = pts[k];
            let near_wall = (p.y - 2.0).abs() < 0.35 || (p.x - 2.0).abs() < 0.35;
            let near_ground_junction = p.z < 0.35 && near_wall;
            if near_wall || near_ground_junction {
                near_structure += 1;
            }
        }
        assert!(
            near_structure * 2 >= kps.len(),
            "{near_structure}/{} keypoints near structure",
            kps.len()
        );
    }

    #[test]
    fn harris_runs_with_normals() {
        let pts = corner_scene();
        let mut s = Searcher3::classic(&pts);
        let normals = estimate_normals(&mut s, 0.3, NormalAlgorithm::PlaneSvd);
        let kps = detect_keypoints(&mut s, &normals, KeypointAlgorithm::Harris { radius: 0.4 });
        assert!(!kps.is_empty());
        assert!(kps.len() < pts.len() / 4);
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn harris_requires_normals() {
        let pts = corner_scene();
        let mut s = Searcher3::classic(&pts);
        detect_keypoints(&mut s, &[], KeypointAlgorithm::Harris { radius: 0.4 });
    }

    #[test]
    fn sift_finds_scale_extrema() {
        let pts = corner_scene();
        let mut s = Searcher3::classic(&pts);
        let kps = detect_keypoints(&mut s, &[], KeypointAlgorithm::Sift { scale: 0.25 });
        assert!(!kps.is_empty());
        assert!(kps.len() < pts.len() / 4);
    }

    #[test]
    fn flat_plane_produces_no_saliency() {
        // A pure plane has no ISS/SIFT key-points (curvature ≈ 0 everywhere).
        let mut pts = Vec::new();
        for i in 0..30 {
            for j in 0..30 {
                pts.push(Vec3::new(i as f64 * 0.1, j as f64 * 0.1, 0.0));
            }
        }
        let mut s = Searcher3::classic(&pts);
        let sift = detect_keypoints(&mut s, &[], KeypointAlgorithm::Sift { scale: 0.3 });
        assert!(sift.len() < 8, "plane should be featureless, got {}", sift.len());
    }

    #[test]
    fn empty_cloud_no_keypoints() {
        let mut s = Searcher3::classic(&[]);
        for alg in [
            KeypointAlgorithm::Sift { scale: 0.3 },
            KeypointAlgorithm::Iss { radius: 0.3 },
            KeypointAlgorithm::Uniform { voxel: 0.5 },
        ] {
            assert!(detect_keypoints(&mut s, &[], alg).is_empty());
        }
    }
}

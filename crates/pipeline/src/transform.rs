//! Transformation estimation (paper Fig. 2 "Error Minimization" /
//! "Transformation Estimation"; Tbl. 1 error metrics point-to-point
//! \[34\] / point-to-plane \[12\], solvers SVD \[25\] /
//! Levenberg–Marquardt \[45\]).

use tigris_geom::{solve_ldlt6, svd3, Mat3, RigidTransform, Vec3};

use crate::correspond::Correspondence;

/// Error returned when a transform cannot be estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateError {
    /// Fewer correspondences than the minimum (3 for point-to-point, 6 for
    /// point-to-plane).
    TooFewCorrespondences,
    /// The normal-equation system was singular (degenerate geometry).
    Degenerate,
}

impl std::fmt::Display for EstimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimateError::TooFewCorrespondences => write!(f, "too few correspondences"),
            EstimateError::Degenerate => write!(f, "degenerate correspondence geometry"),
        }
    }
}

impl std::error::Error for EstimateError {}

/// Closed-form point-to-point estimation (Kabsch/Umeyama via SVD): the
/// rigid transform minimizing `Σ ‖T(src) − tgt‖²` over the given
/// correspondences.
///
/// # Errors
///
/// [`EstimateError::TooFewCorrespondences`] with fewer than 3 pairs.
pub fn estimate_svd(
    source: &[Vec3],
    target: &[Vec3],
    correspondences: &[Correspondence],
) -> Result<RigidTransform, EstimateError> {
    if correspondences.len() < 3 {
        return Err(EstimateError::TooFewCorrespondences);
    }
    let n = correspondences.len() as f64;
    let mut src_c = Vec3::ZERO;
    let mut tgt_c = Vec3::ZERO;
    for c in correspondences {
        src_c += source[c.source];
        tgt_c += target[c.target];
    }
    src_c = src_c / n;
    tgt_c = tgt_c / n;

    // Cross-covariance H = Σ (s − s̄)(t − t̄)ᵀ; R = V D Uᵀ from H = U Σ Vᵀ,
    // equivalently the polar rotation of Hᵀ.
    let mut h = Mat3::ZERO;
    for c in correspondences {
        h = h + Mat3::outer(source[c.source] - src_c, target[c.target] - tgt_c);
    }
    let r = svd3(&h.transpose()).polar_rotation();
    let t = tgt_c - r * src_c;
    Ok(RigidTransform::new(r, t))
}

/// One linearized point-to-plane Gauss-Newton step: solves for the small
/// twist `[α β γ tx ty tz]` minimizing `Σ (n·(R s + t − d))²` with the
/// small-angle approximation, returning the incremental transform.
///
/// `target_normals` must be parallel to `target`.
///
/// # Errors
///
/// [`EstimateError::TooFewCorrespondences`] with fewer than 6 pairs;
/// [`EstimateError::Degenerate`] when the 6×6 system is singular.
pub fn estimate_point_to_plane(
    source: &[Vec3],
    target: &[Vec3],
    target_normals: &[Vec3],
    correspondences: &[Correspondence],
) -> Result<RigidTransform, EstimateError> {
    point_to_plane_damped(source, target, target_normals, correspondences, 0.0)
}

/// Largest per-step rotation (radians) the small-angle linearization is
/// trusted for. Steps beyond this are re-solved with escalating damping
/// (a trust region): an ill-conditioned normal-equation system otherwise
/// produces huge twists along near-null directions that the quadratic
/// model says are free but that wreck the actual alignment.
const MAX_STEP_ROTATION: f64 = 0.3;

/// Point-to-plane step with Levenberg–Marquardt damping `lambda` on the
/// normal equations (`lambda = 0` is plain Gauss-Newton).
///
/// When the solved step's rotation exceeds the linearization's validity
/// range (~0.3 rad), the system is re-solved with
/// progressively stronger damping until the step is trustworthy; a system
/// so degenerate that even heavy damping cannot tame it is reported as
/// [`EstimateError::Degenerate`].
pub fn point_to_plane_damped(
    source: &[Vec3],
    target: &[Vec3],
    target_normals: &[Vec3],
    correspondences: &[Correspondence],
    lambda: f64,
) -> Result<RigidTransform, EstimateError> {
    if correspondences.len() < 6 {
        return Err(EstimateError::TooFewCorrespondences);
    }
    let mut ata = [[0.0f64; 6]; 6];
    let mut atb = [0.0f64; 6];
    for c in correspondences {
        let s = source[c.source];
        let d = target[c.target];
        let n = target_normals[c.target];
        // Residual r = n·(s − d); Jacobian row = [ (s × n)ᵀ, nᵀ ].
        let cx = s.cross(n);
        let row = [cx.x, cx.y, cx.z, n.x, n.y, n.z];
        let r = n.dot(s - d);
        for i in 0..6 {
            for j in 0..6 {
                ata[i][j] += row[i] * row[j];
            }
            atb[i] += row[i] * (-r);
        }
    }

    let mut lam = lambda;
    for _attempt in 0..8 {
        let mut damped = ata;
        if lam > 0.0 {
            for (i, row) in damped.iter_mut().enumerate() {
                row[i] *= 1.0 + lam;
            }
        }
        let x = solve_ldlt6(&damped, &atb).map_err(|_| EstimateError::Degenerate)?;
        let rotation = Vec3::new(x[0], x[1], x[2]).norm();
        if rotation <= MAX_STEP_ROTATION {
            return Ok(RigidTransform::from_euler_xyz(
                x[0],
                x[1],
                x[2],
                Vec3::new(x[3], x[4], x[5]),
            ));
        }
        lam = (lam * 10.0).max(1e-4);
    }
    Err(EstimateError::Degenerate)
}

/// Mean-square point-to-point error of the correspondences under transform
/// `t` (the quantity the ICP convergence criterion monitors).
pub fn mse_point_to_point(
    source: &[Vec3],
    target: &[Vec3],
    correspondences: &[Correspondence],
    t: &RigidTransform,
) -> f64 {
    if correspondences.is_empty() {
        return 0.0;
    }
    let sum: f64 = correspondences
        .iter()
        .map(|c| t.apply(source[c.source]).distance_squared(target[c.target]))
        .sum();
    sum / correspondences.len() as f64
}

/// Mean-square point-to-plane error under transform `t`.
pub fn mse_point_to_plane(
    source: &[Vec3],
    target: &[Vec3],
    target_normals: &[Vec3],
    correspondences: &[Correspondence],
    t: &RigidTransform,
) -> f64 {
    if correspondences.is_empty() {
        return 0.0;
    }
    let sum: f64 = correspondences
        .iter()
        .map(|c| {
            let r = target_normals[c.target].dot(t.apply(source[c.source]) - target[c.target]);
            r * r
        })
        .sum();
    sum / correspondences.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_pairs(n: usize) -> Vec<Correspondence> {
        (0..n).map(|i| Correspondence { source: i, target: i, distance_squared: 0.0 }).collect()
    }

    fn sample_points() -> Vec<Vec3> {
        vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 1.0, 0.0),
            Vec3::new(1.0, 0.0, 1.0),
            Vec3::new(0.3, 0.7, 0.4),
            Vec3::new(0.9, 0.2, 0.8),
        ]
    }

    #[test]
    fn svd_recovers_known_transform() {
        let src = sample_points();
        let gt = RigidTransform::from_axis_angle(
            Vec3::new(0.3, 1.0, -0.2),
            0.7,
            Vec3::new(2.0, -1.0, 0.5),
        );
        let tgt: Vec<Vec3> = src.iter().map(|&p| gt.apply(p)).collect();
        let est = estimate_svd(&src, &tgt, &make_pairs(src.len())).unwrap();
        assert!((est.rotation - gt.rotation).frobenius_norm() < 1e-9);
        assert!((est.translation - gt.translation).norm() < 1e-9);
    }

    #[test]
    fn svd_requires_three_pairs() {
        let src = sample_points();
        assert_eq!(
            estimate_svd(&src, &src, &make_pairs(2)),
            Err(EstimateError::TooFewCorrespondences)
        );
        assert!(estimate_svd(&src, &src, &make_pairs(3)).is_ok());
    }

    #[test]
    fn svd_identity_on_identical_clouds() {
        let src = sample_points();
        let est = estimate_svd(&src, &src, &make_pairs(src.len())).unwrap();
        assert!(est.is_identity(1e-10));
    }

    #[test]
    fn point_to_plane_recovers_small_transform() {
        // Points on varied planes with proper normals; small motion so the
        // linearization is accurate.
        let src = sample_points();
        let normals: Vec<Vec3> = vec![
            Vec3::Z,
            Vec3::X,
            Vec3::Y,
            Vec3::Z,
            Vec3::new(0.7, 0.7, 0.0).normalized().unwrap(),
            Vec3::new(0.0, 0.7, 0.7).normalized().unwrap(),
            Vec3::new(0.6, 0.0, 0.8),
            Vec3::new(0.8, 0.6, 0.0),
        ];
        let gt = RigidTransform::from_euler_xyz(0.01, -0.02, 0.015, Vec3::new(0.05, -0.03, 0.02));
        // target = gt(src): solving for the transform mapping src onto target.
        let tgt: Vec<Vec3> = src.iter().map(|&p| gt.apply(p)).collect();
        let est = estimate_point_to_plane(&src, &tgt, &normals, &make_pairs(src.len())).unwrap();
        assert!((est.translation - gt.translation).norm() < 5e-3, "t = {}", est.translation);
        assert!((est.rotation - gt.rotation).frobenius_norm() < 5e-3);
    }

    #[test]
    fn point_to_plane_needs_six_pairs() {
        let src = sample_points();
        let normals = vec![Vec3::Z; src.len()];
        assert_eq!(
            estimate_point_to_plane(&src, &src, &normals, &make_pairs(5)),
            Err(EstimateError::TooFewCorrespondences)
        );
    }

    #[test]
    fn point_to_plane_degenerate_normals() {
        // All normals identical: rotation about the normal and in-plane
        // translation are unobservable → singular system.
        let src = sample_points();
        let normals = vec![Vec3::Z; src.len()];
        let result = estimate_point_to_plane(&src, &src, &normals, &make_pairs(src.len()));
        assert_eq!(result, Err(EstimateError::Degenerate));
    }

    #[test]
    fn damping_shrinks_the_step() {
        let src = sample_points();
        // Well-spread normals so the undamped system is non-degenerate.
        let normals: Vec<Vec3> = vec![
            Vec3::Z,
            Vec3::X,
            Vec3::Y,
            Vec3::new(0.7, 0.7, 0.0).normalized().unwrap(),
            Vec3::new(0.0, 0.7, 0.7).normalized().unwrap(),
            Vec3::new(0.7, 0.0, 0.7).normalized().unwrap(),
            Vec3::new(0.6, 0.0, 0.8),
            Vec3::new(0.8, 0.6, 0.0),
        ];
        let gt = RigidTransform::from_euler_xyz(0.05, 0.0, 0.0, Vec3::new(0.2, 0.0, 0.0));
        let tgt: Vec<Vec3> = src.iter().map(|&p| gt.apply(p)).collect();
        let pairs = make_pairs(src.len());
        let free = point_to_plane_damped(&src, &tgt, &normals, &pairs, 0.0).unwrap();
        let damped = point_to_plane_damped(&src, &tgt, &normals, &pairs, 10.0).unwrap();
        assert!(damped.translation_norm() < free.translation_norm());
        assert!(damped.rotation_angle() <= free.rotation_angle() + 1e-12);
    }

    #[test]
    fn mse_zero_for_perfect_alignment() {
        let src = sample_points();
        let gt = RigidTransform::from_translation(Vec3::new(1.0, 2.0, 3.0));
        let tgt: Vec<Vec3> = src.iter().map(|&p| gt.apply(p)).collect();
        let pairs = make_pairs(src.len());
        assert!(mse_point_to_point(&src, &tgt, &pairs, &gt) < 1e-18);
        let normals = vec![Vec3::Z; src.len()];
        assert!(mse_point_to_plane(&src, &tgt, &normals, &pairs, &gt) < 1e-18);
        assert_eq!(mse_point_to_point(&src, &tgt, &[], &gt), 0.0);
    }

    #[test]
    fn mse_grows_with_misalignment() {
        let src = sample_points();
        let pairs = make_pairs(src.len());
        let near = RigidTransform::from_translation(Vec3::new(0.01, 0.0, 0.0));
        let far = RigidTransform::from_translation(Vec3::new(1.0, 0.0, 0.0));
        assert!(
            mse_point_to_point(&src, &src, &pairs, &near)
                < mse_point_to_point(&src, &src, &pairs, &far)
        );
    }

    #[test]
    fn errors_display() {
        assert!(!EstimateError::TooFewCorrespondences.to_string().is_empty());
        assert!(!EstimateError::Degenerate.to_string().is_empty());
    }
}

//! Property-based tests of the registration pipeline's numeric stages:
//! transform estimation, rejection, correspondence estimation and the
//! metered searcher.

use proptest::prelude::*;
use tigris_geom::{RigidTransform, Vec3};
use tigris_pipeline::correspond::{kpce, kpce_ratio, rpce, Correspondence};
use tigris_pipeline::descriptor::Descriptors;
use tigris_pipeline::reject::reject_correspondences;
use tigris_pipeline::transform::{
    estimate_svd, mse_point_to_plane, mse_point_to_point, point_to_plane_damped,
};
use tigris_pipeline::{RejectionAlgorithm, Searcher3};

fn point() -> impl Strategy<Value = Vec3> {
    (-20.0f64..20.0, -20.0f64..20.0, -20.0f64..20.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn rigid() -> impl Strategy<Value = RigidTransform> {
    (point(), -2.0f64..2.0, point()).prop_filter_map("axis", |(axis, angle, t)| {
        axis.normalized().map(|a| RigidTransform::from_axis_angle(a, angle, t))
    })
}

fn identity_pairs(n: usize) -> Vec<Correspondence> {
    (0..n).map(|i| Correspondence { source: i, target: i, distance_squared: 0.0 }).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn svd_recovers_arbitrary_rigid_transforms(
        pts in prop::collection::vec(point(), 4..40),
        gt in rigid(),
    ) {
        let tgt: Vec<Vec3> = pts.iter().map(|&p| gt.apply(p)).collect();
        let pairs = identity_pairs(pts.len());
        let est = estimate_svd(&pts, &tgt, &pairs).unwrap();
        // The estimate must align the clouds (it may differ from gt itself
        // when the points are degenerate, e.g. collinear).
        let mse = mse_point_to_point(&pts, &tgt, &pairs, &est);
        let spread = pts.iter().map(|p| p.norm()).fold(0.0, f64::max);
        prop_assert!(mse < 1e-12 * spread.max(1.0).powi(2) + 1e-12, "mse {mse}");
    }

    #[test]
    fn svd_estimate_is_a_proper_rigid_transform(
        pts in prop::collection::vec(point(), 3..40),
        tgt in prop::collection::vec(point(), 3..40),
    ) {
        // Even on garbage correspondences the estimate must be a rotation,
        // never a reflection or scaling.
        let n = pts.len().min(tgt.len());
        let pairs = identity_pairs(n);
        let est = estimate_svd(&pts[..n], &tgt[..n], &pairs).unwrap();
        prop_assert!(est.rotation.is_rotation(1e-7));
    }

    #[test]
    fn point_to_plane_step_never_increases_error_much(
        pts in prop::collection::vec(point(), 8..40),
        alpha in -0.05f64..0.05,
        tx in -0.2f64..0.2,
    ) {
        // Small-motion recovery: target = gt(src) with varied normals.
        let gt = RigidTransform::from_euler_xyz(alpha, -alpha * 0.5, alpha * 0.3, Vec3::new(tx, -tx, tx * 0.5));
        let tgt: Vec<Vec3> = pts.iter().map(|&p| gt.apply(p)).collect();
        let normals: Vec<Vec3> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                (p + Vec3::new((i % 3) as f64 + 0.2, ((i + 1) % 3) as f64, ((i + 2) % 3) as f64 + 0.1))
                    .normalized()
                    .unwrap_or(Vec3::Z)
            })
            .collect();
        let pairs = identity_pairs(pts.len());
        if let Ok(step) = point_to_plane_damped(&pts, &tgt, &normals, &pairs, 0.0) {
            // Gauss-Newton minimizes the point-to-*plane* objective; with
            // adversarial normals an ill-conditioned system legitimately
            // moves points far along the planes (the point-to-point error
            // is unconstrained there), so the non-blow-up guarantee is on
            // the plane error.
            let before = mse_point_to_plane(&pts, &tgt, &normals, &pairs, &RigidTransform::IDENTITY);
            let moved: Vec<Vec3> = pts.iter().map(|&p| step.apply(p)).collect();
            let after = mse_point_to_plane(&moved, &tgt, &normals, &pairs, &RigidTransform::IDENTITY);
            prop_assert!(after <= before * 4.0 + 1e-9, "before {before} after {after}");
        }
    }

    #[test]
    fn ransac_keeps_only_consistent_pairs(
        inlier_pts in prop::collection::vec(point(), 8..24),
        gt in rigid(),
        outliers in prop::collection::vec((point(), point()), 1..8),
    ) {
        let mut src: Vec<Vec3> = inlier_pts.clone();
        let mut tgt: Vec<Vec3> = inlier_pts.iter().map(|&p| gt.apply(p)).collect();
        for (s, t) in &outliers {
            src.push(*s);
            tgt.push(gt.apply(*t) + Vec3::new(50.0, 50.0, 0.0)); // gross outlier
        }
        let pairs = identity_pairs(src.len());
        let kept = reject_correspondences(
            &pairs,
            &src,
            &tgt,
            RejectionAlgorithm::Ransac { iterations: 300, inlier_threshold: 0.2 },
            7,
        );
        // All gross outliers rejected (inliers ≥ 8 dominate every sample).
        for c in &kept {
            prop_assert!(c.source < inlier_pts.len(), "outlier {} survived", c.source);
        }
        prop_assert!(kept.len() >= 3);
    }

    #[test]
    fn threshold_rejection_is_a_subset_and_keeps_median(
        dists in prop::collection::vec(0.0f64..100.0, 1..64),
        factor in 1.0f64..3.0,
    ) {
        let pairs: Vec<Correspondence> = dists
            .iter()
            .enumerate()
            .map(|(i, &d)| Correspondence { source: i, target: i, distance_squared: d })
            .collect();
        let kept = reject_correspondences(
            &pairs,
            &[],
            &[],
            RejectionAlgorithm::Threshold { factor },
            0,
        );
        prop_assert!(kept.len() <= pairs.len());
        // The median element always survives a factor ≥ 1.
        prop_assert!(!kept.is_empty());
        for c in &kept {
            prop_assert!(pairs.iter().any(|p| p.source == c.source));
        }
    }

    #[test]
    fn kpce_matches_are_mutually_consistent_under_reciprocity(
        rows in prop::collection::vec(prop::collection::vec(0.0f64..10.0, 4), 2..24),
    ) {
        let dim = 4;
        let data: Vec<f64> = rows.iter().flatten().copied().collect();
        let d = Descriptors { dim, data };
        let plain = kpce(&d, &d, false, None);
        let recip = kpce(&d, &d, true, None);
        // Self-matching: every descriptor's NN is itself (distance 0), so
        // reciprocity keeps everything plain matching found.
        prop_assert_eq!(plain.len(), rows.len());
        prop_assert_eq!(recip.len(), plain.len());
        for c in &plain {
            prop_assert_eq!(c.distance_squared, 0.0);
        }
    }

    #[test]
    fn kpce_ratio_is_a_subset_of_plain_matches(
        src_rows in prop::collection::vec(prop::collection::vec(0.0f64..10.0, 3), 1..16),
        tgt_rows in prop::collection::vec(prop::collection::vec(0.0f64..10.0, 3), 2..16),
        ratio in 0.05f64..1.0,
    ) {
        let src = Descriptors { dim: 3, data: src_rows.iter().flatten().copied().collect() };
        let tgt = Descriptors { dim: 3, data: tgt_rows.iter().flatten().copied().collect() };
        let plain = kpce(&src, &tgt, false, None);
        let filtered = kpce_ratio(&src, &tgt, ratio);
        prop_assert!(filtered.len() <= plain.len());
        // Every surviving match must agree with the plain NN match.
        for f in &filtered {
            let p = plain.iter().find(|p| p.source == f.source).unwrap();
            prop_assert_eq!(p.target, f.target);
        }
    }

    #[test]
    fn fpfh_is_rigid_invariant_given_consistent_normals(
        pts in prop::collection::vec(point(), 40..120),
        t in rigid(),
    ) {
        use tigris_pipeline::descriptor::compute_descriptors;
        use tigris_pipeline::DescriptorAlgorithm;

        // FPFH is pose-invariant when the normals transform with the cloud.
        // (Estimating normals per frame adds viewpoint-dependent orientation
        // flips — the sensor origin does NOT move with the cloud — so here
        // normals are supplied directly.)
        let radius = 8.0; // generous so most points participate
        let normals: Vec<Vec3> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                (p + Vec3::new(((i * 7) % 13) as f64 - 6.0, ((i * 5) % 11) as f64 - 5.0, 1.5))
                    .normalized()
                    .unwrap_or(Vec3::Z)
            })
            .collect();
        let mut s1 = Searcher3::classic(&pts);
        let d1 = compute_descriptors(&mut s1, &normals, &[0], DescriptorAlgorithm::Fpfh { radius });

        let moved: Vec<Vec3> = pts.iter().map(|&p| t.apply(p)).collect();
        let moved_normals: Vec<Vec3> = normals.iter().map(|&n| t.apply_direction(n)).collect();
        let mut s2 = Searcher3::classic(&moved);
        let d2 =
            compute_descriptors(&mut s2, &moved_normals, &[0], DescriptorAlgorithm::Fpfh { radius });

        // Bin-exact up to fp round-off at histogram edges: allow a small
        // number of boundary-crossing counts.
        let a = d1.row(0);
        let b = d2.row(0);
        let diff: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
        let scale: f64 = a.iter().sum::<f64>().max(1.0);
        prop_assert!(diff / scale < 0.05, "relative L1 diff {}", diff / scale);
    }

    #[test]
    fn rpce_respects_max_distance(
        target in prop::collection::vec(point(), 1..100),
        source in prop::collection::vec(point(), 1..40),
        max_d in 0.1f64..20.0,
    ) {
        let mut s = Searcher3::classic(&target);
        let pairs = rpce(&source, &mut s, max_d);
        for c in &pairs {
            prop_assert!(c.distance_squared <= max_d * max_d + 1e-12);
            let true_d2 = source[c.source].distance_squared(target[c.target]);
            prop_assert!((true_d2 - c.distance_squared).abs() < 1e-12);
        }
    }

    #[test]
    fn searcher_backends_agree(
        pts in prop::collection::vec(point(), 1..200),
        qs in prop::collection::vec(point(), 1..20),
        h in 0usize..7,
    ) {
        let mut classic = Searcher3::classic(&pts);
        let mut two = Searcher3::two_stage(&pts, h);
        for &q in &qs {
            let a = classic.nn(q).unwrap();
            let b = two.nn(q).unwrap();
            prop_assert_eq!(a.distance_squared, b.distance_squared);
            prop_assert_eq!(classic.radius(q, 2.5).len(), two.radius(q, 2.5).len());
        }
    }
}

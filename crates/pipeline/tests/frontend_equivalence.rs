//! Bit-identity of the refactored front end against verbatim copies of
//! the pre-refactor implementations.
//!
//! The SIMD/dense rewrite of normal estimation and descriptor
//! calculation promises *bit-identical* outputs — not approximately
//! equal, identical to the last ULP — so these tests carry frozen,
//! verbatim copies of the old `estimate_normals`, `fpfh` and `shot`
//! (written against the public `Searcher3` API only) and compare with
//! `assert_eq!` on the raw `f64`s.
//!
//! Under the default features the new code runs the `wide` SIMD
//! kernels; under `--features scalar-kernels` it runs the scalar
//! fallbacks. The frozen copies below use neither — plain `Vec3`
//! arithmetic — so passing this suite under *both* feature sets proves
//! scalar == wide == pre-refactor, all three bit-identical.
//!
//! Fixtures deliberately include the adversarial shapes: neighborhoods
//! too small to fit a plane, exactly coincident points, duplicated
//! key-points, and cloud/neighborhood sizes straddling the SIMD width.

use tigris_core::batch::BatchConfig;
use tigris_geom::{symmetric_eigen3, Mat3, Vec3};
use tigris_pipeline::descriptor::{compute_descriptors, Descriptors, FPFH_DIM, SHOT_DIM};
use tigris_pipeline::normal::estimate_normals;
use tigris_pipeline::{DescriptorAlgorithm, NormalAlgorithm, Searcher3};

// ==========================================================================
// Frozen pre-refactor implementations (verbatim, modulo import paths and
// using the public Searcher3 API). Do not "improve" these: their entire
// value is that they are the old code.
// ==========================================================================

mod frozen {
    use super::*;

    pub fn estimate_normals(
        searcher: &mut Searcher3,
        radius: f64,
        algorithm: NormalAlgorithm,
    ) -> Vec<Vec3> {
        assert!(radius > 0.0, "normal-estimation radius must be positive");
        let n = searcher.len();
        let parallel = searcher.parallel();
        const CHUNK: usize = 16 * 1024;
        let mut normals = Vec::with_capacity(n);
        let mut start = 0;
        while start < n {
            let end = (start + CHUNK).min(n);
            let chunk: Vec<Vec3> = searcher.points()[start..end].to_vec();
            let neighborhoods = searcher.radius_batch(&chunk, radius);
            let points = searcher.points();
            normals.extend(tigris_core::batch::parallel_map_indexed(chunk.len(), &parallel, |i| {
                let p = chunk[i];
                let neighbors = &neighborhoods[i];
                let normal = match algorithm {
                    NormalAlgorithm::PlaneSvd => plane_svd_normal(points, neighbors, p),
                    NormalAlgorithm::AreaWeighted => area_weighted_normal(points, neighbors, p),
                };
                if normal.dot(-p) < 0.0 {
                    -normal
                } else {
                    normal
                }
            }));
            start = end;
        }
        normals
    }

    fn plane_svd_normal(
        points: &[Vec3],
        neighbors: &[tigris_core::Neighbor],
        fallback_at: Vec3,
    ) -> Vec3 {
        if neighbors.len() < 3 {
            return fallback_normal(fallback_at);
        }
        let mut centroid = Vec3::ZERO;
        for n in neighbors {
            centroid += points[n.index];
        }
        centroid = centroid / neighbors.len() as f64;
        let mut cov = Mat3::ZERO;
        for n in neighbors {
            let d = points[n.index] - centroid;
            cov = cov + Mat3::outer(d, d);
        }
        let eig = symmetric_eigen3(&cov);
        eig.smallest_vector().normalized().unwrap_or(Vec3::Z)
    }

    fn area_weighted_normal(
        points: &[Vec3],
        neighbors: &[tigris_core::Neighbor],
        at: Vec3,
    ) -> Vec3 {
        if neighbors.len() < 3 {
            return fallback_normal(at);
        }
        let rough = plane_svd_normal(points, neighbors, at);
        let u = pick_perpendicular(rough);
        let v = rough.cross(u);
        let mut ordered: Vec<Vec3> = neighbors.iter().map(|n| points[n.index]).collect();
        ordered.sort_by(|a, b| {
            let da = *a - at;
            let db = *b - at;
            let ang_a = da.dot(v).atan2(da.dot(u));
            let ang_b = db.dot(v).atan2(db.dot(u));
            ang_a.partial_cmp(&ang_b).unwrap()
        });

        let mut acc = Vec3::ZERO;
        for i in 0..ordered.len() {
            let a = ordered[i] - at;
            let b = ordered[(i + 1) % ordered.len()] - at;
            let n = a.cross(b);
            acc += if n.dot(rough) < 0.0 { -n } else { n };
        }
        acc.normalized().unwrap_or(rough)
    }

    fn fallback_normal(_at: Vec3) -> Vec3 {
        Vec3::Z
    }

    fn pick_perpendicular(n: Vec3) -> Vec3 {
        let helper = if n.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
        n.cross(helper).normalized().unwrap_or(Vec3::X)
    }

    const FPFH_BINS: usize = 11;

    fn pair_features(ps: Vec3, ns: Vec3, pt: Vec3, nt: Vec3) -> Option<(f64, f64, f64)> {
        let d = pt - ps;
        let dist = d.norm();
        if dist < 1e-9 {
            return None;
        }
        let du = d / dist;
        let (p1, n1, _p2, n2, du) = if ns.dot(du).abs() >= nt.dot(-du).abs() {
            (ps, ns, pt, nt, du)
        } else {
            (pt, nt, ps, ns, -du)
        };
        let _ = p1;
        let u = n1;
        let v = du.cross(u).normalized()?;
        let w = u.cross(v);
        let alpha = v.dot(n2);
        let phi = u.dot(du);
        let theta = w.dot(n2).atan2(u.dot(n2));
        Some((alpha, phi, theta))
    }

    fn bin_index(value: f64, lo: f64, hi: f64) -> usize {
        let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
        ((t * FPFH_BINS as f64) as usize).min(FPFH_BINS - 1)
    }

    fn spfh(
        points: &[Vec3],
        normals: &[Vec3],
        center: usize,
        neighbors: &[usize],
    ) -> [f64; FPFH_DIM] {
        let mut hist = [0.0f64; FPFH_DIM];
        let mut count = 0.0;
        for &j in neighbors {
            if j == center {
                continue;
            }
            if let Some((alpha, phi, theta)) =
                pair_features(points[center], normals[center], points[j], normals[j])
            {
                hist[bin_index(alpha, -1.0, 1.0)] += 1.0;
                hist[FPFH_BINS + bin_index(phi, -1.0, 1.0)] += 1.0;
                hist[2 * FPFH_BINS
                    + bin_index(theta, -std::f64::consts::PI, std::f64::consts::PI)] += 1.0;
                count += 1.0;
            }
        }
        if count > 0.0 {
            for h in &mut hist {
                *h *= 100.0 / count;
            }
        }
        hist
    }

    pub fn fpfh(
        searcher: &mut Searcher3,
        normals: &[Vec3],
        keypoints: &[usize],
        radius: f64,
    ) -> Descriptors {
        use std::collections::{HashMap, HashSet};
        let parallel = searcher.parallel();

        let kp_pts: Vec<Vec3> = {
            let pts = searcher.points();
            keypoints.iter().map(|&k| pts[k]).collect()
        };
        let kp_neigh: Vec<Vec<usize>> = searcher
            .radius_batch(&kp_pts, radius)
            .into_iter()
            .map(|ns| ns.into_iter().map(|n| n.index).collect())
            .collect();

        let mut needed: Vec<usize> = Vec::new();
        let mut seen: HashSet<usize> = HashSet::new();
        for (&k, neigh) in keypoints.iter().zip(&kp_neigh) {
            if seen.insert(k) {
                needed.push(k);
            }
            for &j in neigh {
                if seen.insert(j) {
                    needed.push(j);
                }
            }
        }
        let mut neigh_of: HashMap<usize, Vec<usize>> = HashMap::new();
        for (&k, neigh) in keypoints.iter().zip(&kp_neigh) {
            neigh_of.entry(k).or_insert_with(|| neigh.clone());
        }
        let missing: Vec<usize> =
            needed.iter().copied().filter(|i| !neigh_of.contains_key(i)).collect();
        let missing_pts: Vec<Vec3> = {
            let pts = searcher.points();
            missing.iter().map(|&i| pts[i]).collect()
        };
        let missing_neigh = searcher.radius_batch(&missing_pts, radius);
        for (&i, ns) in missing.iter().zip(missing_neigh) {
            neigh_of.insert(i, ns.into_iter().map(|n| n.index).collect());
        }

        let points = searcher.points();
        let spfh_rows = tigris_core::batch::parallel_map(&needed, &parallel, |&i| {
            spfh(points, normals, i, &neigh_of[&i])
        });
        let spfh_of: HashMap<usize, &[f64; FPFH_DIM]> =
            needed.iter().zip(spfh_rows.iter()).map(|(&i, h)| (i, h)).collect();

        let rows = tigris_core::batch::parallel_map_indexed(keypoints.len(), &parallel, |ki| {
            let k = keypoints[ki];
            let neighbors = &kp_neigh[ki];
            let mut out = *spfh_of[&k];
            let mut weight_total = 0.0;
            let mut acc = [0.0f64; FPFH_DIM];
            for &j in neighbors {
                if j == k {
                    continue;
                }
                let d = points[k].distance(points[j]);
                if d < 1e-9 {
                    continue;
                }
                let h = spfh_of[&j];
                let w = 1.0 / d;
                for (a, v) in acc.iter_mut().zip(h.iter()) {
                    *a += w * v;
                }
                weight_total += w;
            }
            if weight_total > 0.0 {
                for (o, a) in out.iter_mut().zip(acc.iter()) {
                    *o += a / weight_total;
                }
            }
            out
        });

        let mut data = Vec::with_capacity(keypoints.len() * FPFH_DIM);
        for row in rows {
            data.extend_from_slice(&row);
        }
        Descriptors { dim: FPFH_DIM, data }
    }

    const SHOT_RADIAL: usize = 2;
    const SHOT_ELEVATION: usize = 2;
    const SHOT_AZIMUTH: usize = 4;
    const SHOT_COS_BINS: usize = 10;

    fn local_reference_frame(
        points: &[Vec3],
        center: Vec3,
        neighbors: &[usize],
        radius: f64,
    ) -> Mat3 {
        let mut cov = Mat3::ZERO;
        let mut total = 0.0;
        for &j in neighbors {
            let d = points[j] - center;
            let w = (radius - d.norm()).max(0.0);
            cov = cov + Mat3::outer(d, d).scale(w);
            total += w;
        }
        if total > 0.0 {
            cov = cov.scale(1.0 / total);
        }
        let eig = symmetric_eigen3(&cov);
        let mut x = eig.vectors.col(2);
        let mut z = eig.vectors.col(0);
        let mut x_pos = 0i64;
        let mut z_pos = 0i64;
        for &j in neighbors {
            let d = points[j] - center;
            x_pos += if d.dot(x) >= 0.0 { 1 } else { -1 };
            z_pos += if d.dot(z) >= 0.0 { 1 } else { -1 };
        }
        if x_pos < 0 {
            x = -x;
        }
        if z_pos < 0 {
            z = -z;
        }
        let y = z.cross(x);
        Mat3::from_cols(x, y, z)
    }

    pub fn shot(
        searcher: &mut Searcher3,
        normals: &[Vec3],
        keypoints: &[usize],
        radius: f64,
    ) -> Descriptors {
        let parallel = searcher.parallel();
        let kp_pts: Vec<Vec3> = {
            let pts = searcher.points();
            keypoints.iter().map(|&k| pts[k]).collect()
        };
        let neighborhoods = searcher.radius_batch(&kp_pts, radius);
        let points = searcher.points();
        let rows = tigris_core::batch::parallel_map_indexed(keypoints.len(), &parallel, |ki| {
            let k = keypoints[ki];
            let neighbors: Vec<usize> =
                neighborhoods[ki].iter().map(|n| n.index).filter(|&j| j != k).collect();
            let mut hist = vec![0.0f64; SHOT_DIM];
            if neighbors.len() >= 5 {
                let lrf = local_reference_frame(points, points[k], &neighbors, radius);
                let zn = lrf.col(2);
                for &j in &neighbors {
                    let d = points[j] - points[k];
                    let local = lrf.transpose() * d;
                    let r = local.norm();
                    if r < 1e-9 {
                        continue;
                    }
                    let radial = usize::from(r > radius * 0.5).min(SHOT_RADIAL - 1);
                    let elevation = usize::from(local.z > 0.0).min(SHOT_ELEVATION - 1);
                    let azimuth_angle = local.y.atan2(local.x) + std::f64::consts::PI;
                    let azimuth = ((azimuth_angle / std::f64::consts::TAU * SHOT_AZIMUTH as f64)
                        as usize)
                        .min(SHOT_AZIMUTH - 1);
                    let cosine = normals[j].dot(zn).clamp(-1.0, 1.0);
                    let cos_bin = (((cosine + 1.0) / 2.0 * SHOT_COS_BINS as f64) as usize)
                        .min(SHOT_COS_BINS - 1);
                    let sector = ((radial * SHOT_ELEVATION + elevation) * SHOT_AZIMUTH + azimuth)
                        * SHOT_COS_BINS;
                    hist[sector + cos_bin] += 1.0;
                }
                let norm = hist.iter().map(|v| v * v).sum::<f64>().sqrt();
                if norm > 0.0 {
                    for h in &mut hist {
                        *h /= norm;
                    }
                }
            }
            hist
        });
        let mut data = Vec::with_capacity(keypoints.len() * SHOT_DIM);
        for row in rows {
            data.extend_from_slice(&row);
        }
        Descriptors { dim: SHOT_DIM, data }
    }
}

// ==========================================================================
// Fixtures
// ==========================================================================

/// Deterministic pseudo-random scatter (splitmix64), `n` points in a box.
fn scatter(n: usize, seed: u64) -> Vec<Vec3> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        z as f64 / u64::MAX as f64
    };
    (0..n).map(|_| Vec3::new(next() * 8.0, next() * 8.0, next() * 2.0 + 1.0)).collect()
}

/// Ground plane + wall, the classic descriptor scene.
fn scene() -> Vec<Vec3> {
    let mut pts = Vec::new();
    for i in 0..25 {
        for j in 0..25 {
            pts.push(Vec3::new(i as f64 * 0.1, j as f64 * 0.1, 0.0));
        }
    }
    for i in 0..25 {
        for k in 1..15 {
            pts.push(Vec3::new(i as f64 * 0.1, 1.2, k as f64 * 0.1));
        }
    }
    pts
}

/// Adversarial cloud: a dense cluster, exact duplicates (coincident
/// points), a pair too sparse to fit a plane, and an isolated point.
fn adversarial() -> Vec<Vec3> {
    let mut pts = Vec::new();
    // Dense cluster with plenty of neighbors.
    for i in 0..6 {
        for j in 0..6 {
            pts.push(Vec3::new(i as f64 * 0.05, j as f64 * 0.05, 3.0));
        }
    }
    // Exact duplicates of a cluster point (zero-distance pairs).
    pts.push(Vec3::new(0.05, 0.05, 3.0));
    pts.push(Vec3::new(0.05, 0.05, 3.0));
    // A two-point neighborhood: fewer than 3 points, fallback normal.
    pts.push(Vec3::new(20.0, 0.0, 1.0));
    pts.push(Vec3::new(20.1, 0.0, 1.0));
    // Fully isolated.
    pts.push(Vec3::new(-30.0, -30.0, 1.0));
    pts
}

fn serial(pts: &[Vec3]) -> Searcher3 {
    Searcher3::classic(pts)
}

fn parallel(pts: &[Vec3]) -> Searcher3 {
    let mut s = Searcher3::classic(pts);
    s.set_parallel(BatchConfig { threads: 4, min_chunk: 2 });
    s
}

fn assert_rows_identical(new: &Descriptors, old: &Descriptors, what: &str) {
    assert_eq!(new.dim, old.dim, "{what}: dim");
    assert_eq!(new.data.len(), old.data.len(), "{what}: len");
    for (i, (a, b)) in new.data.iter().zip(&old.data).enumerate() {
        assert!(a.to_bits() == b.to_bits(), "{what}: value {i} differs: new {a:?} vs frozen {b:?}");
    }
}

fn assert_normals_identical(new: &[Vec3], old: &[Vec3], what: &str) {
    assert_eq!(new.len(), old.len(), "{what}: len");
    for (i, (a, b)) in new.iter().zip(old).enumerate() {
        assert!(
            a.x.to_bits() == b.x.to_bits()
                && a.y.to_bits() == b.y.to_bits()
                && a.z.to_bits() == b.z.to_bits(),
            "{what}: normal {i} differs: new {a} vs frozen {b}"
        );
    }
}

// ==========================================================================
// Normal estimation
// ==========================================================================

#[test]
fn normals_bit_identical_on_scene_both_algorithms_and_paths() {
    let pts = scene();
    for algorithm in [NormalAlgorithm::PlaneSvd, NormalAlgorithm::AreaWeighted] {
        for build in [serial as fn(&[Vec3]) -> Searcher3, parallel] {
            let new = estimate_normals(&mut build(&pts), 0.35, algorithm);
            let old = frozen::estimate_normals(&mut build(&pts), 0.35, algorithm);
            assert_normals_identical(&new, &old, &format!("{algorithm:?}"));
        }
    }
}

#[test]
fn normals_bit_identical_on_adversarial_cloud() {
    let pts = adversarial();
    for algorithm in [NormalAlgorithm::PlaneSvd, NormalAlgorithm::AreaWeighted] {
        let new = estimate_normals(&mut serial(&pts), 0.3, algorithm);
        let old = frozen::estimate_normals(&mut serial(&pts), 0.3, algorithm);
        assert_normals_identical(&new, &old, &format!("adversarial {algorithm:?}"));
    }
}

#[test]
fn normals_bit_identical_across_simd_width_straddling_counts() {
    // Neighborhood sizes 0..=18 straddle every SIMD block boundary (the
    // wide kernels process f64x4 lanes; 18 covers full blocks plus every
    // possible remainder, and n < 3 exercises the fallback).
    for n in 0..=18usize {
        let pts = scatter(n.max(1), 0x5EED ^ n as u64);
        let new = estimate_normals(&mut serial(&pts), 6.0, NormalAlgorithm::PlaneSvd);
        let old = frozen::estimate_normals(&mut serial(&pts), 6.0, NormalAlgorithm::PlaneSvd);
        assert_normals_identical(&new, &old, &format!("n = {n}"));
    }
}

// ==========================================================================
// FPFH
// ==========================================================================

fn frozen_normals(pts: &[Vec3]) -> Vec<Vec3> {
    frozen::estimate_normals(&mut serial(pts), 0.3, NormalAlgorithm::PlaneSvd)
}

#[test]
fn fpfh_bit_identical_on_scene_serial_and_parallel() {
    let pts = scene();
    let normals = frozen_normals(&pts);
    let kps: Vec<usize> = (0..pts.len()).step_by(17).collect();
    for build in [serial as fn(&[Vec3]) -> Searcher3, parallel] {
        let new = compute_descriptors(
            &mut build(&pts),
            &normals,
            &kps,
            DescriptorAlgorithm::Fpfh { radius: 0.5 },
        );
        let old = frozen::fpfh(&mut build(&pts), &normals, &kps, 0.5);
        assert_rows_identical(&new, &old, "fpfh scene");
    }
}

#[test]
fn fpfh_bit_identical_with_duplicate_keypoints() {
    let pts = scene();
    let normals = frozen_normals(&pts);
    // Duplicates, out-of-order repeats, and keypoints that are also
    // neighbors of earlier keypoints.
    let kps = vec![100, 100, 300, 101, 100, 300, 99];
    let new = compute_descriptors(
        &mut serial(&pts),
        &normals,
        &kps,
        DescriptorAlgorithm::Fpfh { radius: 0.5 },
    );
    let old = frozen::fpfh(&mut serial(&pts), &normals, &kps, 0.5);
    assert_rows_identical(&new, &old, "fpfh duplicate keypoints");
}

#[test]
fn fpfh_bit_identical_on_adversarial_cloud() {
    let pts = adversarial();
    let normals = frozen_normals(&pts);
    // Every point is a keypoint: coincident pairs, sparse neighborhoods
    // and the isolated point all produce rows.
    let kps: Vec<usize> = (0..pts.len()).collect();
    let new = compute_descriptors(
        &mut serial(&pts),
        &normals,
        &kps,
        DescriptorAlgorithm::Fpfh { radius: 0.4 },
    );
    let old = frozen::fpfh(&mut serial(&pts), &normals, &kps, 0.4);
    assert_rows_identical(&new, &old, "fpfh adversarial");
}

#[test]
fn fpfh_bit_identical_across_simd_width_straddling_counts() {
    for n in 1..=18usize {
        let pts = scatter(n, 0xF00D ^ n as u64);
        let normals = frozen_normals(&pts);
        let kps: Vec<usize> = (0..n).collect();
        let new = compute_descriptors(
            &mut serial(&pts),
            &normals,
            &kps,
            DescriptorAlgorithm::Fpfh { radius: 6.0 },
        );
        let old = frozen::fpfh(&mut serial(&pts), &normals, &kps, 6.0);
        assert_rows_identical(&new, &old, &format!("fpfh n = {n}"));
    }
}

#[test]
fn fpfh_bit_identical_on_warm_scratch() {
    // The same scratch reused across frames must not change outputs.
    use tigris_pipeline::descriptor::compute_descriptors_with;
    use tigris_pipeline::PrepareScratch;
    let mut scratch = PrepareScratch::new();
    for seed in [1u64, 2, 3] {
        let pts = scatter(120, seed);
        let normals = frozen_normals(&pts);
        let kps: Vec<usize> = (0..pts.len()).step_by(7).collect();
        let new = compute_descriptors_with(
            &mut serial(&pts),
            &normals,
            &kps,
            DescriptorAlgorithm::Fpfh { radius: 1.5 },
            &mut scratch,
        );
        let old = frozen::fpfh(&mut serial(&pts), &normals, &kps, 1.5);
        assert_rows_identical(&new, &old, &format!("fpfh warm seed {seed}"));
    }
}

// ==========================================================================
// SHOT
// ==========================================================================

#[test]
fn shot_bit_identical_on_scene_and_adversarial() {
    for (pts, radius, what) in [(scene(), 0.5, "scene"), (adversarial(), 0.4, "adversarial")] {
        let normals = frozen_normals(&pts);
        let kps: Vec<usize> = (0..pts.len()).step_by(13).collect();
        let new = compute_descriptors(
            &mut serial(&pts),
            &normals,
            &kps,
            DescriptorAlgorithm::Shot { radius },
        );
        let old = frozen::shot(&mut serial(&pts), &normals, &kps, radius);
        assert_rows_identical(&new, &old, &format!("shot {what}"));
    }
}

//! End-to-end determinism of the parallel batched pipeline: running the
//! full registration with any worker-thread count must produce the *same
//! bits* as the serial run — same transform, same iteration count, same
//! query count. Node-visit accounting is *not* compared: the serial path
//! amortizes radius fan-outs over grouped traversals, so its visit
//! counters meter less (shared) tree work than the per-query parallel
//! walks, by design.

use tigris_core::BatchConfig;
use tigris_data::{Sequence, SequenceConfig};
use tigris_geom::Vec3;
use tigris_pipeline::normal::estimate_normals;
use tigris_pipeline::{register, NormalAlgorithm, RegistrationConfig, Searcher3};

fn fast_config() -> RegistrationConfig {
    RegistrationConfig {
        keypoint: tigris_pipeline::config::KeypointAlgorithm::Uniform { voxel: 0.8 },
        ..RegistrationConfig::default()
    }
}

#[test]
fn register_is_bit_identical_across_thread_counts() {
    let seq = Sequence::generate(&SequenceConfig::tiny(), 11);
    let serial = register(seq.frame(1), seq.frame(0), &fast_config()).unwrap();

    for threads in [0usize, 2, 4] {
        let cfg = RegistrationConfig {
            parallel: BatchConfig { threads, min_chunk: 16 },
            ..fast_config()
        };
        let parallel = register(seq.frame(1), seq.frame(0), &cfg).unwrap();
        assert_eq!(
            serial.transform.translation, parallel.transform.translation,
            "translation diverged at {threads} threads"
        );
        assert_eq!(serial.transform.rotation, parallel.transform.rotation);
        assert_eq!(serial.initial_transform.rotation, parallel.initial_transform.rotation);
        assert_eq!(serial.keypoints, parallel.keypoints);
        assert_eq!(serial.inlier_correspondences, parallel.inlier_correspondences);
        assert_eq!(serial.icp_iterations, parallel.icp_iterations);
        assert_eq!(
            serial.profile.search_stats.queries, parallel.profile.search_stats.queries,
            "query accounting diverged at {threads} threads"
        );
    }
}

#[test]
fn normal_estimation_is_identical_serial_vs_parallel() {
    let seq = Sequence::generate(&SequenceConfig::tiny(), 3);
    let pts = seq.frame(0).points().to_vec();

    let mut serial = Searcher3::classic(&pts);
    let a = estimate_normals(&mut serial, 0.6, NormalAlgorithm::PlaneSvd);

    let mut parallel = Searcher3::classic(&pts);
    parallel.set_parallel(BatchConfig { threads: 4, min_chunk: 8 });
    let b = estimate_normals(&mut parallel, 0.6, NormalAlgorithm::PlaneSvd);

    assert_eq!(a, b);
    assert_eq!(serial.stats().queries, parallel.stats().queries);
}

#[test]
fn batched_searcher_respects_query_log_order() {
    let pts: Vec<Vec3> =
        (0..500).map(|i| Vec3::new((i % 25) as f64, (i / 25) as f64, 0.3)).collect();
    let queries: Vec<Vec3> = (0..64).map(|i| Vec3::new(i as f64 * 0.3, 2.0, 0.0)).collect();

    let mut s = Searcher3::two_stage(&pts, 4);
    s.set_parallel(BatchConfig { threads: 4, min_chunk: 4 });
    s.enable_query_logging();
    s.nn_batch(&queries);
    let log = s.take_query_log().unwrap();
    assert_eq!(log.len(), queries.len());
    for (rec, q) in log.iter().zip(&queries) {
        assert_eq!(rec.point, *q);
    }
}

//! The multi-session localization service: admission control, shared
//! snapshot access and service-wide metering.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use tigris_geom::Vec3;
use tigris_map::MapNeighbor;

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::session::Session;
use crate::snapshot::MapSnapshot;
use crate::stats::{LatencyRecorder, LatencySummary, ServeStats, SessionStats};

/// Mutable service-wide state, behind the core's single lock. Sessions
/// touch it only at request boundaries (admission, completion metering);
/// all heavy work runs against the lock-free snapshot.
#[derive(Debug, Default)]
struct CoreState {
    sessions_admitted: usize,
    sessions_rejected: usize,
    sessions_active: usize,
    frames_rejected: usize,
    inflight: usize,
    totals: SessionStats,
    latency: LatencyRecorder,
}

/// The state shared between a [`LocalizationService`] and its sessions.
#[derive(Debug)]
pub(crate) struct ServiceCore {
    pub(crate) snapshot: Arc<MapSnapshot>,
    pub(crate) config: ServeConfig,
    state: Mutex<CoreState>,
}

impl ServiceCore {
    fn lock(&self) -> std::sync::MutexGuard<'_, CoreState> {
        self.state.lock().expect("service state lock poisoned")
    }

    /// Admission control for one localize call: claims an in-flight slot
    /// or rejects typed, before any work runs.
    pub(crate) fn begin_request(&self) -> Result<(), ServeError> {
        let mut state = self.lock();
        if state.inflight >= self.config.max_inflight {
            state.frames_rejected += 1;
            return Err(ServeError::Saturated { limit: self.config.max_inflight });
        }
        state.inflight += 1;
        Ok(())
    }

    /// Releases the in-flight slot and meters the completed request.
    pub(crate) fn finish_request(&self, latency: Duration, delta: SessionStats) {
        let mut state = self.lock();
        state.inflight -= 1;
        state.latency.record(latency);
        let t = &mut state.totals;
        t.frames += delta.frames;
        t.relocalizations_attempted += delta.relocalizations_attempted;
        t.relocalizations_succeeded += delta.relocalizations_succeeded;
        t.frames_tracked += delta.frames_tracked;
        t.track_breaks += delta.track_breaks;
    }

    /// A session closed (dropped).
    pub(crate) fn close_session(&self) {
        self.lock().sessions_active -= 1;
    }
}

/// Serves one frozen [`MapSnapshot`] to many concurrent localization
/// sessions.
///
/// The service owns no per-frame state — that lives in each
/// [`Session`] — only the admission budgets and the service-wide
/// counters. Heavy per-request work (frame preparation, retrieval,
/// verification, tracking) runs entirely against the `Arc`-shared
/// snapshot, so sessions on separate threads proceed in parallel;
/// the service lock is touched only at request boundaries.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use tigris_data::{Sequence, SequenceConfig};
/// use tigris_map::{Mapper, MapperConfig};
/// use tigris_serve::{LocalizationService, MapSnapshot, ServeConfig};
///
/// // Build a map once…
/// let seq = Sequence::generate(&SequenceConfig::loop_circuit(60.0, 6), 7);
/// let mut mapper = Mapper::new(MapperConfig::default());
/// for i in 0..seq.len() {
///     mapper.push(seq.frame(i)).unwrap();
/// }
/// // …freeze it, and serve it.
/// let snapshot = Arc::new(MapSnapshot::freeze(mapper).unwrap());
/// let service = LocalizationService::new(snapshot, ServeConfig::default());
/// let mut session = service.open_session().unwrap();
/// let step = session.localize(seq.frame(3)).unwrap();
/// println!("cold start localized to {}", step.pose);
/// ```
#[derive(Debug)]
pub struct LocalizationService {
    core: Arc<ServiceCore>,
}

impl LocalizationService {
    /// A service over the given snapshot and budgets.
    pub fn new(snapshot: Arc<MapSnapshot>, config: ServeConfig) -> Self {
        LocalizationService {
            core: Arc::new(ServiceCore {
                snapshot,
                config,
                state: Mutex::new(CoreState::default()),
            }),
        }
    }

    /// The served snapshot.
    pub fn snapshot(&self) -> &Arc<MapSnapshot> {
        &self.core.snapshot
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.core.config
    }

    /// Admits a new localization session, or rejects it when the session
    /// budget ([`ServeConfig::max_sessions`]) is fully allocated.
    ///
    /// The returned [`Session`] is independent of the service handle: it
    /// can move to another thread, and dropping it releases its slot.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionsExhausted`] at the budget.
    pub fn open_session(&self) -> Result<Session, ServeError> {
        let id = {
            let mut state = self.core.lock();
            if state.sessions_active >= self.core.config.max_sessions {
                state.sessions_rejected += 1;
                return Err(ServeError::SessionsExhausted { limit: self.core.config.max_sessions });
            }
            state.sessions_active += 1;
            state.sessions_admitted += 1;
            state.sessions_admitted - 1
        };
        Ok(Session::new(id, Arc::clone(&self.core)))
    }

    /// Sessions currently open.
    pub fn active_sessions(&self) -> usize {
        self.core.lock().sessions_active
    }

    /// Batched map probes across sessions: many world-frame radius
    /// queries answered in one call, batched per submap through the
    /// snapshot's shared read path ([`MapSnapshot::query_batch`]). This
    /// is the service's cross-session batching entry point — callers
    /// aggregating probes from several sessions (collision checks,
    /// map-coverage telemetry) pay one fan-out instead of one per
    /// session.
    pub fn query_batch(&self, queries: &[Vec3], radius: f64) -> Vec<Vec<MapNeighbor>> {
        let batch = self.core.snapshot.registration_config().parallel;
        self.core.snapshot.query_batch(queries, radius, &batch)
    }

    /// A consistent point-in-time copy of the service-wide counters and
    /// the latency distribution.
    ///
    /// Only an O(n) copy of the recorded samples happens under the
    /// service lock; the percentile sort runs after it is released, so
    /// a stats poll never stalls in-flight admission or completion for
    /// the sort.
    pub fn stats(&self) -> ServeStats {
        let (mut stats, recorder) = {
            let state = self.core.lock();
            (
                ServeStats {
                    sessions_admitted: state.sessions_admitted,
                    sessions_rejected: state.sessions_rejected,
                    sessions_active: state.sessions_active,
                    frames_rejected: state.frames_rejected,
                    frames: state.totals.frames,
                    relocalizations_attempted: state.totals.relocalizations_attempted,
                    relocalizations_succeeded: state.totals.relocalizations_succeeded,
                    frames_tracked: state.totals.frames_tracked,
                    track_breaks: state.totals.track_breaks,
                    latency: LatencySummary::default(),
                },
                state.latency.clone(),
            )
        };
        stats.latency = recorder.summarize();
        stats
    }
}

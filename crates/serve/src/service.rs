//! The multi-session localization service: admission control, shared
//! snapshot access and service-wide metering.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use tigris_geom::Vec3;
use tigris_map::MapNeighbor;
use tigris_obs::sampler::{RequestOutcome, TailConfig, TailSampler};
use tigris_obs::{Counter, Gauge, Registry};

use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::session::Session;
use crate::snapshot::MapSnapshot;
use crate::stats::LATENCY_HISTOGRAM;
use crate::stats::{LatencyRecorder, LatencySummary, ServeStats, SessionStats, TileStats};

/// Admission control and request metering, shared by the whole-snapshot
/// [`LocalizationService`] and the sharded `shard::ShardService` — one
/// implementation of the session/in-flight budgets and the service-wide
/// counters, so both serving front ends reject, release and meter
/// identically. Callers hold it behind one service lock and touch it
/// only at request boundaries; all heavy work runs lock-free.
///
/// Every counter is a handle into the owning service's obs
/// [`Registry`] (names under `serve.`): [`ServeStats`] is assembled
/// *from* the registry, so a registry snapshot or trace summary reports
/// exactly what `stats()` reports — one backing store, two views.
#[derive(Debug)]
pub(crate) struct RequestGate {
    sessions_admitted: Arc<Counter>,
    sessions_rejected: Arc<Counter>,
    sessions_active: Arc<Gauge>,
    frames_rejected: Arc<Counter>,
    inflight: usize,
    frames: Arc<Counter>,
    reloc_attempted: Arc<Counter>,
    reloc_succeeded: Arc<Counter>,
    frames_tracked: Arc<Counter>,
    track_breaks: Arc<Counter>,
    normal_estimation_ns: Arc<Counter>,
    descriptor_ns: Arc<Counter>,
    scratch_bytes_grown: Arc<Counter>,
    scratch_reuses: Arc<Counter>,
    latency: LatencyRecorder,
}

impl Default for RequestGate {
    fn default() -> Self {
        RequestGate::new(Arc::new(Registry::new()))
    }
}

impl RequestGate {
    /// A gate metering into `registry` (one registry per service).
    pub(crate) fn new(registry: Arc<Registry>) -> Self {
        let latency = LatencyRecorder::from_histogram(
            registry.histogram_with("serve.latency_us", LATENCY_HISTOGRAM),
        );
        RequestGate {
            sessions_admitted: registry.counter("serve.sessions_admitted"),
            sessions_rejected: registry.counter("serve.sessions_rejected"),
            sessions_active: registry.gauge("serve.sessions_active"),
            frames_rejected: registry.counter("serve.frames_rejected"),
            inflight: 0,
            frames: registry.counter("serve.frames"),
            reloc_attempted: registry.counter("serve.relocalizations_attempted"),
            reloc_succeeded: registry.counter("serve.relocalizations_succeeded"),
            frames_tracked: registry.counter("serve.frames_tracked"),
            track_breaks: registry.counter("serve.track_breaks"),
            normal_estimation_ns: registry.counter("serve.normal_estimation_ns"),
            descriptor_ns: registry.counter("serve.descriptor_ns"),
            scratch_bytes_grown: registry.counter("serve.prepare_scratch_bytes_grown"),
            scratch_reuses: registry.counter("serve.prepare_scratch_reuses"),
            latency,
        }
    }

    /// Admits one session (returning its dense id in admission order) or
    /// rejects typed at the budget.
    pub(crate) fn admit_session(&mut self, max_sessions: usize) -> Result<usize, ServeError> {
        if self.sessions_active.get() >= max_sessions as i64 {
            self.sessions_rejected.inc();
            return Err(ServeError::SessionsExhausted { limit: max_sessions });
        }
        self.sessions_active.add(1);
        Ok(self.sessions_admitted.inc() as usize - 1)
    }

    /// A session closed (dropped): its slot becomes re-admittable.
    pub(crate) fn close_session(&mut self) {
        self.sessions_active.add(-1);
    }

    /// Sessions currently open.
    pub(crate) fn active_sessions(&self) -> usize {
        self.sessions_active.get().max(0) as usize
    }

    /// Claims an in-flight slot for one localize call, or rejects typed
    /// before any work runs.
    pub(crate) fn begin_request(&mut self, max_inflight: usize) -> Result<(), ServeError> {
        if self.inflight >= max_inflight {
            self.frames_rejected.inc();
            return Err(ServeError::Saturated { limit: max_inflight });
        }
        self.inflight += 1;
        Ok(())
    }

    /// Releases the in-flight slot and meters the completed request.
    pub(crate) fn finish_request(&mut self, latency: Duration, delta: SessionStats) {
        self.inflight -= 1;
        self.latency.record(latency);
        self.frames.add(delta.frames as u64);
        self.reloc_attempted.add(delta.relocalizations_attempted as u64);
        self.reloc_succeeded.add(delta.relocalizations_succeeded as u64);
        self.frames_tracked.add(delta.frames_tracked as u64);
        self.track_breaks.add(delta.track_breaks as u64);
        self.normal_estimation_ns.add(delta.normal_estimation_time.as_nanos() as u64);
        self.descriptor_ns.add(delta.descriptor_time.as_nanos() as u64);
        self.scratch_bytes_grown.add(delta.prepare_scratch_bytes_grown);
        self.scratch_reuses.add(delta.prepare_scratch_reuses);
    }

    /// The gate's registry-backed counters as a [`ServeStats`] (latency
    /// summary and tile counters left default) plus a clone of the
    /// latency recorder — a cheap shared handle, so the caller can run
    /// the percentile walk outside its service lock.
    pub(crate) fn stats_and_recorder(&self) -> (ServeStats, LatencyRecorder) {
        (
            ServeStats {
                sessions_admitted: self.sessions_admitted.get() as usize,
                sessions_rejected: self.sessions_rejected.get() as usize,
                sessions_active: self.active_sessions(),
                frames_rejected: self.frames_rejected.get() as usize,
                frames: self.frames.get() as usize,
                relocalizations_attempted: self.reloc_attempted.get() as usize,
                relocalizations_succeeded: self.reloc_succeeded.get() as usize,
                frames_tracked: self.frames_tracked.get() as usize,
                track_breaks: self.track_breaks.get() as usize,
                normal_estimation_time: Duration::from_nanos(self.normal_estimation_ns.get()),
                descriptor_time: Duration::from_nanos(self.descriptor_ns.get()),
                prepare_scratch_bytes_grown: self.scratch_bytes_grown.get(),
                prepare_scratch_reuses: self.scratch_reuses.get(),
                latency: LatencySummary::default(),
                tiles: TileStats::default(),
            },
            self.latency.clone(),
        )
    }
}

/// The state shared between a [`LocalizationService`] and its sessions.
#[derive(Debug)]
pub(crate) struct ServiceCore {
    pub(crate) snapshot: Arc<MapSnapshot>,
    pub(crate) config: ServeConfig,
    pub(crate) registry: Arc<Registry>,
    pub(crate) sampler: Arc<TailSampler>,
    state: Mutex<RequestGate>,
}

impl ServiceCore {
    fn lock(&self) -> std::sync::MutexGuard<'_, RequestGate> {
        self.state.lock().expect("service state lock poisoned")
    }

    /// Admission control for one localize call: claims an in-flight slot
    /// or rejects typed, before any work runs.
    pub(crate) fn begin_request(&self) -> Result<(), ServeError> {
        self.lock().begin_request(self.config.max_inflight)
    }

    /// Releases the in-flight slot and meters the completed request.
    pub(crate) fn finish_request(&self, latency: Duration, delta: SessionStats) {
        self.lock().finish_request(latency, delta);
    }

    /// Feeds one finished request to the tail sampler: retained (with
    /// its span subtree, if the flight recorder is on) when slow against
    /// the service's own `serve.latency_us` percentile history or when
    /// it failed; dropped otherwise. Runs after [`finish_request`]
    /// (`Self::finish_request`) so the percentile baseline already
    /// includes this request, and outside the service lock — the
    /// sampler synchronizes internally.
    pub(crate) fn observe_tail(&self, root: Option<u64>, latency: Duration, failed: bool) {
        let outcome = if failed { RequestOutcome::Failed } else { RequestOutcome::Completed };
        self.sampler.observe(root, latency, outcome, false);
    }

    /// A session closed (dropped).
    pub(crate) fn close_session(&self) {
        self.lock().close_session();
    }
}

/// Serves one frozen [`MapSnapshot`] to many concurrent localization
/// sessions.
///
/// The service owns no per-frame state — that lives in each
/// [`Session`] — only the admission budgets and the service-wide
/// counters. Heavy per-request work (frame preparation, retrieval,
/// verification, tracking) runs entirely against the `Arc`-shared
/// snapshot, so sessions on separate threads proceed in parallel;
/// the service lock is touched only at request boundaries.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use tigris_data::{Sequence, SequenceConfig};
/// use tigris_map::{Mapper, MapperConfig};
/// use tigris_serve::{LocalizationService, MapSnapshot, ServeConfig};
///
/// // Build a map once…
/// let seq = Sequence::generate(&SequenceConfig::loop_circuit(60.0, 6), 7);
/// let mut mapper = Mapper::new(MapperConfig::default());
/// for i in 0..seq.len() {
///     mapper.push(seq.frame(i)).unwrap();
/// }
/// // …freeze it, and serve it.
/// let snapshot = Arc::new(MapSnapshot::freeze(mapper).unwrap());
/// let service = LocalizationService::new(snapshot, ServeConfig::default());
/// let mut session = service.open_session().unwrap();
/// let step = session.localize(seq.frame(3)).unwrap();
/// println!("cold start localized to {}", step.pose);
/// ```
#[derive(Debug)]
pub struct LocalizationService {
    core: Arc<ServiceCore>,
}

impl LocalizationService {
    /// A service over the given snapshot and budgets.
    pub fn new(snapshot: Arc<MapSnapshot>, config: ServeConfig) -> Self {
        tigris_obs::init_from_env();
        let registry = Arc::new(Registry::new());
        let gate = RequestGate::new(Arc::clone(&registry));
        let latency = registry.histogram_with("serve.latency_us", LATENCY_HISTOGRAM);
        let sampler = Arc::new(TailSampler::new(TailConfig::from_env(latency)));
        tigris_obs::ops::register_service("serve", &registry, Some(&sampler));
        LocalizationService {
            core: Arc::new(ServiceCore {
                snapshot,
                config,
                registry,
                sampler,
                state: Mutex::new(gate),
            }),
        }
    }

    /// The served snapshot.
    pub fn snapshot(&self) -> &Arc<MapSnapshot> {
        &self.core.snapshot
    }

    /// This service's obs metrics registry — the backing store
    /// [`LocalizationService::stats`] snapshots from. Every counter the
    /// service meters (admissions, rejections, tracking, the
    /// `serve.latency_us` histogram) lives here under `serve.*` names;
    /// exporters and dashboards read it without a service lock.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.core.registry
    }

    /// This service's tail-based trace sampler: every finished localize
    /// call is offered to it, and it retains (bounded, FIFO) the span
    /// trees of requests that were slow against the service's own
    /// latency history or that failed. Inspect or drain the retained
    /// set for debugging; the ops monitor snapshots it into post-mortem
    /// bundles automatically.
    pub fn sampler(&self) -> &Arc<TailSampler> {
        &self.core.sampler
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.core.config
    }

    /// Admits a new localization session, or rejects it when the session
    /// budget ([`ServeConfig::max_sessions`]) is fully allocated.
    ///
    /// The returned [`Session`] is independent of the service handle: it
    /// can move to another thread, and dropping it releases its slot.
    ///
    /// # Errors
    ///
    /// [`ServeError::SessionsExhausted`] at the budget.
    pub fn open_session(&self) -> Result<Session, ServeError> {
        let id = self.core.lock().admit_session(self.core.config.max_sessions)?;
        Ok(Session::new(id, Arc::clone(&self.core)))
    }

    /// Sessions currently open.
    pub fn active_sessions(&self) -> usize {
        self.core.lock().active_sessions()
    }

    /// Batched map probes across sessions: many world-frame radius
    /// queries answered in one call, batched per submap through the
    /// snapshot's shared read path ([`MapSnapshot::query_batch`]). This
    /// is the service's cross-session batching entry point — callers
    /// aggregating probes from several sessions (collision checks,
    /// map-coverage telemetry) pay one fan-out instead of one per
    /// session.
    pub fn query_batch(&self, queries: &[Vec3], radius: f64) -> Vec<Vec<MapNeighbor>> {
        let batch = self.core.snapshot.registration_config().parallel;
        self.core.snapshot.query_batch(queries, radius, &batch)
    }

    /// A consistent point-in-time copy of the service-wide counters and
    /// the latency distribution.
    ///
    /// Only an O(n) copy of the recorded samples happens under the
    /// service lock; the percentile sort runs after it is released, so
    /// a stats poll never stalls in-flight admission or completion for
    /// the sort.
    pub fn stats(&self) -> ServeStats {
        let (mut stats, recorder) = self.core.lock().stats_and_recorder();
        stats.latency = recorder.summarize();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_to_the_limit_and_reuses_released_slots() {
        let mut gate = RequestGate::default();
        assert_eq!(gate.admit_session(2), Ok(0));
        assert_eq!(gate.admit_session(2), Ok(1));
        assert_eq!(gate.admit_session(2), Err(ServeError::SessionsExhausted { limit: 2 }));
        assert_eq!(gate.active_sessions(), 2);

        // A closed session's slot is re-admittable — this is the
        // invariant `Session`'s `Drop` impl relies on for abnormal
        // teardown (a panicking session thread still runs `Drop`).
        gate.close_session();
        assert_eq!(gate.active_sessions(), 1);
        assert_eq!(gate.admit_session(2), Ok(2), "ids stay dense across releases");

        let (stats, _) = gate.stats_and_recorder();
        assert_eq!(stats.sessions_admitted, 3);
        assert_eq!(stats.sessions_rejected, 1);
        assert_eq!(stats.sessions_active, 2);
    }

    #[test]
    fn gate_meters_inflight_requests_and_totals() {
        let mut gate = RequestGate::default();
        gate.begin_request(1).expect("first request fits");
        assert_eq!(gate.begin_request(1), Err(ServeError::Saturated { limit: 1 }));
        let delta = SessionStats {
            frames: 1,
            frames_tracked: 1,
            normal_estimation_time: Duration::from_millis(4),
            descriptor_time: Duration::from_millis(6),
            prepare_scratch_bytes_grown: 256,
            prepare_scratch_reuses: 1,
            ..SessionStats::default()
        };
        gate.finish_request(Duration::from_millis(3), delta);
        gate.begin_request(1).expect("slot freed by completion");
        gate.finish_request(Duration::from_millis(5), SessionStats::default());

        let (stats, recorder) = gate.stats_and_recorder();
        assert_eq!(stats.frames_rejected, 1);
        assert_eq!(stats.frames, 1);
        assert_eq!(stats.frames_tracked, 1);
        assert_eq!(stats.normal_estimation_time, Duration::from_millis(4));
        assert_eq!(stats.descriptor_time, Duration::from_millis(6));
        assert_eq!(stats.prepare_scratch_bytes_grown, 256);
        assert_eq!(stats.prepare_scratch_reuses, 1);
        assert_eq!(recorder.count(), 2, "every completion records a latency sample");
    }
}

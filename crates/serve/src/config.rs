//! Serving-layer configuration: admission budgets and relocalization
//! gates layered over the frozen map's own registration configuration.
//!
//! The front-end knobs (voxel size, descriptors, search backend …) are
//! *not* configurable here: query frames must be prepared exactly like
//! the map's frames were, so the snapshot's `MapperConfig.registration`
//! is authoritative and the service reads it from the snapshot.

/// Gates applied to a cold-start relocalization attempt.
///
/// Mirrors the geometry-vs-geometry half of
/// [`tigris_map::ClosureConfig`]: the drift-relative gates
/// (`max_expected_offset`, `max_deviation`, `deviation_rate`) have no
/// counterpart because a cold query carries no pose estimate to deviate
/// from — which is exactly why the structure-overlap gate does the heavy
/// lifting here. The candidate budget defaults higher than loop
/// closure's, too: a cold start has no drift prior narrowing the
/// plausible submaps, and single-frame signatures rank noisier than the
/// mapper's within-stream queries, so recall is bought by verifying
/// deeper into the ranking (each candidate is fully gated anyway).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelocConfig {
    /// Candidate submaps retrieved per attempt, best signature matches
    /// first (beyond two, retrieval ranks exhaustively — see
    /// [`tigris_map::retrieval::SignatureIndex::retrieve`]). `0`
    /// disables relocalization entirely.
    pub candidates: usize,
    /// Retrieval gate: a candidate's signature distance to the query
    /// frame's must not exceed this (`f64::INFINITY` keeps rank-only
    /// retrieval).
    pub max_descriptor_distance: f64,
    /// Verification gate: minimum KPCE correspondences surviving
    /// rejection. This floor guards against degenerate estimates (an
    /// SVD over two or three pairs is noise); *specificity* against
    /// aliased matches comes from the structure-overlap gate, so the
    /// floor sits lower than loop closure's — a cold query is a single
    /// frame whose key-point budget is whatever the scanner gave it.
    pub min_inliers: usize,
    /// Verification gate: the verified transform's translation must stay
    /// below this (meters) — a genuine localization is physically near
    /// the keyframe whose submap retrieval proposed.
    pub max_keyframe_offset: f64,
    /// Verification gate: minimum structure-overlap fraction (see
    /// [`tigris_map::retrieval::structure_overlap`]) — the gate that
    /// rejects high-inlier aliases across self-similar structure.
    pub min_structure_overlap: f64,
}

impl Default for RelocConfig {
    fn default() -> Self {
        RelocConfig {
            candidates: 8,
            max_descriptor_distance: f64::INFINITY,
            min_inliers: 3,
            max_keyframe_offset: 12.0,
            min_structure_overlap: 0.75,
        }
    }
}

/// Full serving configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Concurrent session budget: [`crate::LocalizationService::open_session`]
    /// rejects with [`crate::ServeError::SessionsExhausted`] beyond it.
    pub max_sessions: usize,
    /// Concurrent localization budget across all sessions: a
    /// `localize` call arriving while this many are already executing is
    /// rejected with [`crate::ServeError::Saturated`] before any work
    /// runs.
    pub max_inflight: usize,
    /// Cold-start relocalization gates.
    pub reloc: RelocConfig,
    /// Consecutive tracking failures before a session abandons its pose
    /// estimate and falls back to cold-start relocalization. `0` falls
    /// back immediately on the first failure.
    pub max_track_failures: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 64,
            max_inflight: 256,
            reloc: RelocConfig::default(),
            max_track_failures: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.max_sessions > 0);
        assert!(cfg.max_inflight >= cfg.max_sessions);
        assert!(cfg.reloc.candidates > 0);
        assert!(cfg.reloc.min_structure_overlap > 0.0 && cfg.reloc.min_structure_overlap <= 1.0);
        assert!(cfg.reloc.max_keyframe_offset > 0.0);
    }
}

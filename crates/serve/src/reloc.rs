//! Cold-start relocalization: "where in this map am I?" from one raw
//! frame and no history.
//!
//! The pipeline mirrors the mapper's loop-closure verification — the two
//! share their implementation through [`tigris_map::retrieval`] — minus
//! the drift-relative gates (a cold query has no pose estimate to
//! deviate from):
//!
//! 1. the query frame's mean descriptor is matched against the
//!    snapshot's submap signatures ([`SignatureIndex`] retrieval);
//! 2. each candidate is geometrically verified by registering the
//!    prepared query frame against the candidate's stored keyframe
//!    (no front-end rerun, keyframe briefly locked);
//! 3. survivors pass the inlier, offset and structure-overlap gates;
//! 4. the first acceptance becomes a world pose: the keyframe's frozen
//!    pose composed with the verified relative transform.
//!
//! [`SignatureIndex`]: tigris_map::retrieval::SignatureIndex

use tigris_core::BatchConfig;
use tigris_geom::RigidTransform;
use tigris_map::descriptor_mean;
use tigris_map::retrieval::RetrievalHit;
use tigris_pipeline::{PreparedFrame, RegistrationResult};

use crate::config::RelocConfig;
use crate::error::ServeError;
use crate::snapshot::MapSnapshot;

/// A map a cold start can relocalize against: signature retrieval,
/// keyframe verification, structure overlap and frozen poses.
///
/// Two backings implement it — the whole-snapshot [`MapSnapshot`] and
/// the sharded `shard` epoch view — so [`relocalize_prepared`] is *one*
/// gate pipeline however the map is stored, and "sharded relocalization
/// answers exactly like whole-snapshot relocalization" is structural.
pub trait RelocTarget {
    /// Dimension of the indexed submap signatures.
    fn signature_dim(&self) -> usize;
    /// Ranks candidate submaps by signature distance (best first).
    fn retrieve(
        &self,
        signature: &[f64],
        candidates: usize,
        max_distance: f64,
    ) -> Vec<RetrievalHit>;
    /// Registers the prepared frame against `submap`'s stored keyframe.
    fn verify_against(
        &self,
        submap: usize,
        frame: &mut PreparedFrame,
    ) -> Option<RegistrationResult>;
    /// Structure-overlap fraction of `points` against `submap` under
    /// `relative`.
    fn structure_overlap(
        &self,
        points: &[tigris_geom::Vec3],
        relative: &RigidTransform,
        submap: usize,
        cfg: &BatchConfig,
    ) -> f64;
    /// Trajectory index of `submap`'s anchor keyframe.
    fn anchor_frame(&self, submap: usize) -> usize;
    /// Frozen world pose of trajectory frame `frame`.
    fn frame_pose(&self, frame: usize) -> RigidTransform;
}

impl RelocTarget for MapSnapshot {
    fn signature_dim(&self) -> usize {
        MapSnapshot::signature_dim(self)
    }

    fn retrieve(
        &self,
        signature: &[f64],
        candidates: usize,
        max_distance: f64,
    ) -> Vec<RetrievalHit> {
        self.retrieval().retrieve(signature, candidates, max_distance)
    }

    fn verify_against(
        &self,
        submap: usize,
        frame: &mut PreparedFrame,
    ) -> Option<RegistrationResult> {
        MapSnapshot::verify_against(self, submap, frame)
    }

    fn structure_overlap(
        &self,
        points: &[tigris_geom::Vec3],
        relative: &RigidTransform,
        submap: usize,
        cfg: &BatchConfig,
    ) -> f64 {
        MapSnapshot::structure_overlap(self, points, relative, submap, cfg)
    }

    fn anchor_frame(&self, submap: usize) -> usize {
        self.submaps()[submap].anchor_frame()
    }

    fn frame_pose(&self, frame: usize) -> RigidTransform {
        self.poses()[frame]
    }
}

/// A successful cold-start relocalization, with the evidence that
/// backs it — the service's *confidence report*.
#[derive(Debug, Clone, Copy)]
pub struct Relocalization {
    /// Estimated world pose of the query frame (sensor → world).
    pub pose: RigidTransform,
    /// The submap whose keyframe the frame verified against.
    pub submap: usize,
    /// Trajectory index of that keyframe (the submap's anchor).
    pub matched_frame: usize,
    /// Verified relative transform (query coordinates into keyframe
    /// coordinates).
    pub relative: RigidTransform,
    /// KPCE correspondences surviving rejection in the verification.
    pub inliers: usize,
    /// Structure-overlap fraction under the verified transform.
    pub structure_overlap: f64,
    /// Signature distance of the accepted candidate in the KPCE feature
    /// space.
    pub signature_distance: f64,
    /// Candidates that reached geometric verification (including the
    /// accepted one).
    pub candidates_tried: usize,
    /// Scalar confidence in `[0, 1)`: the structure-overlap fraction
    /// scaled by inlier saturation `inliers / (inliers + min_inliers)`.
    /// Monotone in both pieces of evidence; deterministic.
    pub confidence: f64,
}

/// Relocalizes a prepared query frame against any [`RelocTarget`]; see
/// the [module docs](self).
///
/// # Errors
///
/// [`ServeError::RelocalizationFailed`] when retrieval yields no
/// candidate or every verified candidate fails a gate. The prepared
/// frame remains valid — callers retry with the next frame or hand the
/// preparation to tracking once a later attempt succeeds.
pub fn relocalize_prepared<T: RelocTarget + ?Sized>(
    snapshot: &T,
    frame: &mut PreparedFrame,
    cfg: &RelocConfig,
) -> Result<Relocalization, ServeError> {
    let mut candidates_tried = 0usize;
    let Some(signature) = descriptor_mean(frame.descriptors()) else {
        return Err(ServeError::RelocalizationFailed { candidates_tried });
    };
    if signature.len() != snapshot.signature_dim() {
        return Err(ServeError::RelocalizationFailed { candidates_tried });
    }

    // The gate pipeline traces structured: one span per attempt, one
    // event per candidate carrying the gate values (inliers, keyframe
    // offset, structure overlap) that the old TIGRIS_SERVE_DEBUG
    // eprintln path printed as text. Enable with TIGRIS_TRACE=chrome.
    let _span = tigris_obs::span!("serve.reloc", candidates = cfg.candidates);
    let batch = frame.config().parallel;
    let hits = snapshot.retrieve(&signature, cfg.candidates, cfg.max_descriptor_distance);
    for hit in hits {
        // Every retrieved candidate reaches geometric verification
        // (retrieval only indexes keyframed submaps), so it counts
        // whether or not the registration produces a match.
        candidates_tried += 1;
        let Some(result) = snapshot.verify_against(hit.submap, frame) else {
            tigris_obs::event!(
                "reloc.candidate",
                submap = hit.submap,
                sig_dist = hit.distance,
                matched = false,
            );
            continue;
        };

        // Cheap scalar gates first; the expensive overlap check (one NN
        // probe per elevated frame point, batched) only runs on frames
        // the scalars let through.
        let scalars_pass = result.inlier_correspondences >= cfg.min_inliers
            && result.transform.translation_norm() <= cfg.max_keyframe_offset;
        let overlap = if scalars_pass {
            snapshot.structure_overlap(frame.points(), &result.transform, hit.submap, &batch)
        } else {
            0.0
        };
        let pass = scalars_pass && overlap >= cfg.min_structure_overlap;
        tigris_obs::event!(
            "reloc.candidate",
            submap = hit.submap,
            sig_dist = hit.distance,
            matched = true,
            inliers = result.inlier_correspondences,
            offset = result.transform.translation_norm(),
            overlap = overlap,
            overlap_checked = scalars_pass,
            pass = pass,
        );
        if !pass {
            continue;
        }

        let anchor_frame = snapshot.anchor_frame(hit.submap);
        let inliers = result.inlier_correspondences;
        let saturation = inliers as f64 / (inliers + cfg.min_inliers.max(1)) as f64;
        tigris_obs::event!(
            "reloc.accept",
            submap = hit.submap,
            anchor_frame = anchor_frame,
            inliers = inliers,
            overlap = overlap,
            confidence = overlap * saturation,
            candidates_tried = candidates_tried,
        );
        return Ok(Relocalization {
            pose: snapshot.frame_pose(anchor_frame) * result.transform,
            submap: hit.submap,
            matched_frame: anchor_frame,
            relative: result.transform,
            inliers,
            structure_overlap: overlap,
            signature_distance: hit.distance,
            candidates_tried,
            confidence: overlap * saturation,
        });
    }
    tigris_obs::event!("reloc.fail", candidates_tried = candidates_tried);
    Err(ServeError::RelocalizationFailed { candidates_tried })
}

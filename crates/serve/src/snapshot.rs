//! The frozen, shareable read side of a built map.
//!
//! [`MapSnapshot::freeze`] consumes a finished [`Mapper`] and rearranges
//! it — *moving* every submap, index and keyframe, copying no points —
//! into an immutable snapshot that any number of localization sessions
//! can query through `&self`:
//!
//! * submap points and their [`DynamicMapIndex`]es answer map queries
//!   lock-free (the index's `*_batch_shared` entry points take `&self`);
//! * the submap signature retrieval structure ([`SignatureIndex`]) is
//!   built once at freeze time and shared by every cold start;
//! * stored keyframes — the geometric-verification targets, whose
//!   searchers meter their own query work and therefore need `&mut` —
//!   sit each behind its own [`Mutex`], so two sessions verifying
//!   against *different* submaps never contend.
//!
//! [`DynamicMapIndex`]: tigris_core::DynamicMapIndex

use std::sync::{Arc, Mutex};

use tigris_core::{BatchConfig, SearchStats};
use tigris_geom::{RigidTransform, Vec3};
use tigris_map::retrieval::{self, SignatureIndex};
use tigris_map::{
    sort_map_neighbors, FrozenMap, LoopClosure, MapNeighbor, Mapper, MapperConfig, MapperStats,
    Submap,
};
use tigris_pipeline::{PreparedFrame, RegistrationConfig, RegistrationResult};

use crate::error::ServeError;

/// An immutable, `Arc`-shareable snapshot of a finished map; see the
/// [module docs](self).
#[derive(Debug)]
pub struct MapSnapshot {
    config: MapperConfig,
    /// The frozen submaps, keyframes stripped (see `keyframes`).
    submaps: Vec<Submap>,
    /// Stored keyframe preparations, parallel to `submaps`, each behind
    /// its own lock (verification meters the keyframe's searcher).
    keyframes: Vec<Option<Arc<Mutex<PreparedFrame>>>>,
    /// Corrected world pose per trajectory frame, as frozen.
    poses: Vec<RigidTransform>,
    /// The closures accepted while the map was built.
    closures: Vec<LoopClosure>,
    /// The mapper's lifetime counters at freeze time.
    build_stats: MapperStats,
    /// Signature retrieval over every verifiable submap, built once.
    retrieval: SignatureIndex,
    /// Dimension of the submap signatures (and of valid query
    /// signatures).
    signature_dim: usize,
    total_points: usize,
}

impl MapSnapshot {
    /// Freezes a finished mapper into a shareable snapshot — exactly
    /// [`Mapper::freeze`] followed by [`MapSnapshot::from_frozen`].
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyMap`] when the map holds no points;
    /// [`ServeError::UnverifiableMap`] when no submap has both a stored
    /// keyframe and a signature (cold starts could never verify).
    pub fn freeze(mapper: Mapper) -> Result<Self, ServeError> {
        MapSnapshot::from_frozen(mapper.freeze())
    }

    /// Builds the snapshot from an already-frozen map; see
    /// [`MapSnapshot::freeze`].
    ///
    /// # Errors
    ///
    /// As [`MapSnapshot::freeze`].
    pub fn from_frozen(frozen: FrozenMap) -> Result<Self, ServeError> {
        let FrozenMap { config, mut submaps, poses, closures, stats, .. } = frozen;
        let total_points: usize = submaps.iter().map(Submap::len).sum();
        if total_points == 0 {
            return Err(ServeError::EmptyMap);
        }

        // Strip the keyframes out of the submaps (they are already each
        // behind their own lock); the submaps themselves stay lock-free
        // for shared queries.
        let keyframes: Vec<Option<Arc<Mutex<PreparedFrame>>>> =
            submaps.iter_mut().map(|s| s.take_keyframe()).collect();

        // Verifiable submaps: a stored keyframe plus a signature of the
        // map's common dimension. The dimension is taken from the first
        // verifiable submap (one front-end config built the whole map,
        // so disagreement means an unusable signature, not a second
        // population).
        let signature_dim = submaps
            .iter()
            .zip(&keyframes)
            .find(|(s, kf)| kf.is_some() && !s.descriptor().is_empty())
            .map(|(s, _)| s.descriptor().len())
            .ok_or(ServeError::UnverifiableMap)?;
        let eligible: Vec<usize> = submaps
            .iter()
            .zip(&keyframes)
            .filter(|(s, kf)| kf.is_some() && s.descriptor().len() == signature_dim)
            .map(|(s, _)| s.id())
            .collect();
        let retrieval = SignatureIndex::build(&submaps, &eligible, signature_dim);

        Ok(MapSnapshot {
            config,
            submaps,
            keyframes,
            poses,
            closures,
            build_stats: stats,
            retrieval,
            signature_dim,
            total_points,
        })
    }

    /// The configuration the map was built under.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// The registration configuration query frames must be prepared with
    /// (the map's own front-end knobs).
    pub fn registration_config(&self) -> &RegistrationConfig {
        &self.config.registration
    }

    /// The frozen submaps (keyframes stripped; see
    /// [`MapSnapshot::verify_against`] for keyframe access).
    pub fn submaps(&self) -> &[Submap] {
        &self.submaps
    }

    /// Corrected world pose per trajectory frame, as frozen.
    pub fn poses(&self) -> &[RigidTransform] {
        &self.poses
    }

    /// The loop closures accepted while the map was built.
    pub fn closures(&self) -> &[LoopClosure] {
        &self.closures
    }

    /// The mapper's lifetime counters at freeze time.
    pub fn build_stats(&self) -> &MapperStats {
        &self.build_stats
    }

    /// The signature retrieval structure (shared by every cold start).
    pub fn retrieval(&self) -> &SignatureIndex {
        &self.retrieval
    }

    /// Dimension of the submap signatures.
    pub fn signature_dim(&self) -> usize {
        self.signature_dim
    }

    /// Total points across all frozen submaps.
    pub fn total_points(&self) -> usize {
        self.total_points
    }

    /// Submaps a cold start can verify against (stored keyframe plus
    /// signature).
    pub fn verifiable_submaps(&self) -> usize {
        self.retrieval.len()
    }

    /// All map points within `radius` of the world-frame `point`, fanned
    /// out across every overlapping submap — the snapshot's serial map
    /// query, answering exactly like `Mapper::query` on the map that was
    /// frozen. Results ascend by `(distance, submap, index)`.
    pub fn query(&self, point: Vec3, radius: f64) -> Vec<MapNeighbor> {
        let mut out: Vec<MapNeighbor> = Vec::new();
        for submap in &self.submaps {
            out.extend(submap.query(point, radius));
        }
        sort_map_neighbors(&mut out);
        out
    }

    /// Batched [`MapSnapshot::query`]: many world-frame queries answered
    /// in one call, batched *per submap* through the dynamic index's
    /// shared read-only batch path ([`DynamicMapIndex::radius_batch_shared`])
    /// instead of one index probe per (query, submap) pair. This is the
    /// cross-session batching seam: the service can merge map probes
    /// from any number of sessions into one call. Results are
    /// bit-identical to calling [`MapSnapshot::query`] per element.
    ///
    /// [`DynamicMapIndex::radius_batch_shared`]: tigris_core::DynamicMapIndex::radius_batch_shared
    pub fn query_batch(
        &self,
        points: &[Vec3],
        radius: f64,
        cfg: &BatchConfig,
    ) -> Vec<Vec<MapNeighbor>> {
        let mut out: Vec<Vec<MapNeighbor>> = vec![Vec::new(); points.len()];
        let mut stats = SearchStats::new();
        for submap in &self.submaps {
            let Some(bounds) = submap.local_bounds() else {
                continue;
            };
            // Gather the queries whose sphere overlaps this submap, in
            // the submap's local frame.
            let inverse = submap.anchor_pose().inverse();
            let mut hit_ids: Vec<usize> = Vec::new();
            let mut local_queries: Vec<Vec3> = Vec::new();
            for (i, &p) in points.iter().enumerate() {
                let local = inverse.apply(p);
                if bounds.intersects_sphere(local, radius) {
                    hit_ids.push(i);
                    local_queries.push(local);
                }
            }
            if hit_ids.is_empty() {
                continue;
            }
            let answers =
                submap.index().radius_batch_shared(&local_queries, radius, cfg, &mut stats);
            let all_points = submap.index().all_points();
            for (&qi, neighbors) in hit_ids.iter().zip(answers) {
                out[qi].extend(neighbors.into_iter().map(|n| MapNeighbor {
                    submap: submap.id(),
                    index: n.index,
                    point: submap.anchor_pose().apply(all_points[n.index]),
                    distance_squared: n.distance_squared,
                }));
            }
        }
        for neighbors in &mut out {
            sort_map_neighbors(neighbors);
        }
        out
    }

    /// Registers a prepared query frame against `submap_id`'s stored
    /// keyframe (locking that keyframe for the duration) — the geometric
    /// half of relocalization. Returns `None` when the submap stores no
    /// keyframe or the pair fails to match.
    pub fn verify_against(
        &self,
        submap_id: usize,
        frame: &mut PreparedFrame,
    ) -> Option<RegistrationResult> {
        let keyframe = self.keyframes.get(submap_id)?.as_ref()?;
        let mut keyframe = keyframe.lock().expect("keyframe lock poisoned");
        retrieval::verify_geometry(frame, &mut keyframe, &self.config.registration)
    }

    /// The structure-overlap fraction of `points` against `submap_id`
    /// under `relative`, NN lookups batched through the shared read path;
    /// see [`retrieval::structure_overlap_batched`].
    pub fn structure_overlap(
        &self,
        points: &[Vec3],
        relative: &RigidTransform,
        submap_id: usize,
        cfg: &BatchConfig,
    ) -> f64 {
        retrieval::structure_overlap_batched(points, relative, &self.submaps[submap_id], cfg)
    }
}

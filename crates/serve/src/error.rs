//! Typed failure modes of the serving layer.

use tigris_pipeline::RegistrationError;

/// Everything that can go wrong between a request arriving at the
/// service and a pose leaving it.
///
/// The admission variants ([`ServeError::SessionsExhausted`],
/// [`ServeError::Saturated`]) are *backpressure*, not bugs: a loaded
/// service rejects typed and fast instead of queueing unboundedly, and
/// callers retry or shed load. The others are per-request outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeError {
    /// The session budget (`ServeConfig::max_sessions`) is fully
    /// allocated; no new session can be admitted until one closes.
    SessionsExhausted {
        /// The configured budget that was hit.
        limit: usize,
    },
    /// The in-flight request budget (`ServeConfig::max_inflight`) is
    /// exhausted: this many localizations are already executing across
    /// all sessions. The frame was rejected without any work done.
    Saturated {
        /// The configured budget that was hit.
        limit: usize,
    },
    /// Cold-start relocalization ran out of candidates: either retrieval
    /// returned none, or every retrieved candidate failed geometric
    /// verification or its gates.
    RelocalizationFailed {
        /// Candidates that reached geometric verification.
        candidates_tried: usize,
    },
    /// The query frame failed in the registration pipeline (empty cloud,
    /// unknown backend, mismatched preparation…).
    Registration(RegistrationError),
    /// The map offered for freezing holds no points.
    EmptyMap,
    /// The map offered for freezing has no submap with both a stored
    /// keyframe and a signature — nothing could ever verify a cold-start
    /// query against it.
    UnverifiableMap,
    /// The sharded service has no published epoch installed yet: there
    /// is no map version to pin a session or a query to.
    NoEpoch,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::SessionsExhausted { limit } => {
                write!(f, "session budget exhausted ({limit} sessions active)")
            }
            ServeError::Saturated { limit } => {
                write!(f, "service saturated ({limit} localizations already in flight)")
            }
            ServeError::RelocalizationFailed { candidates_tried } => {
                write!(
                    f,
                    "cold-start relocalization failed ({candidates_tried} candidates verified, none accepted)"
                )
            }
            ServeError::Registration(err) => write!(f, "registration failed: {err}"),
            ServeError::EmptyMap => write!(f, "cannot freeze an empty map"),
            ServeError::UnverifiableMap => {
                write!(f, "cannot freeze a map with no verifiable (keyframed, signed) submap")
            }
            ServeError::NoEpoch => {
                write!(f, "no epoch installed: the sharded service has nothing to serve yet")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Registration(err) => Some(err),
            _ => None,
        }
    }
}

impl From<RegistrationError> for ServeError {
    fn from(err: RegistrationError) -> Self {
        ServeError::Registration(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        for err in [
            ServeError::SessionsExhausted { limit: 4 },
            ServeError::Saturated { limit: 8 },
            ServeError::RelocalizationFailed { candidates_tried: 2 },
            ServeError::Registration(RegistrationError::EmptyCloud),
            ServeError::EmptyMap,
            ServeError::UnverifiableMap,
            ServeError::NoEpoch,
        ] {
            assert!(!err.to_string().is_empty());
        }
        assert_eq!(
            ServeError::from(RegistrationError::IcpStarved),
            ServeError::Registration(RegistrationError::IcpStarved)
        );
    }

    #[test]
    fn registration_errors_expose_their_source() {
        use std::error::Error;
        let err = ServeError::Registration(RegistrationError::EmptyCloud);
        assert!(err.source().is_some());
        assert!(ServeError::EmptyMap.source().is_none());
    }
}

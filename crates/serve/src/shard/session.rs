//! A sharded localization session: the whole-snapshot session's state
//! machine, pinned to one epoch and relocalizing through tiles.

use std::sync::Arc;
use std::time::Instant;

use tigris_geom::{PointCloud, RigidTransform, Vec3};
use tigris_map::MapNeighbor;

use super::router::EpochView;
use super::service::{query_batch_view, query_view, EpochTarget, ShardCore};
use crate::error::ServeError;
use crate::reloc::relocalize_prepared;
use crate::session::{SessionPhase, SessionStep, TrackCore};
use crate::stats::SessionStats;

/// One client's localization session against a [`super::ShardService`].
///
/// Behaviorally a [`crate::Session`] — both drive the *same* internal
/// state machine (cold start → velocity-prior tracking → loss budget →
/// cold start) and the same relocalization gate pipeline — but pinned
/// to the epoch that was current at admission: the session's answers
/// are those of that epoch however many newer epochs are installed
/// while it runs. Dropping the session releases its admission slot and
/// its epoch pin.
#[derive(Debug)]
pub struct ShardSession {
    id: usize,
    core: Arc<ShardCore>,
    view: Arc<EpochView>,
    track: TrackCore,
}

impl ShardSession {
    pub(crate) fn new(id: usize, core: Arc<ShardCore>, view: Arc<EpochView>) -> Self {
        ShardSession { id, core, view, track: TrackCore::new() }
    }

    /// The session's service-assigned id (dense, in admission order).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Version of the epoch this session is pinned to.
    pub fn epoch_version(&self) -> u64 {
        self.view.epoch().version()
    }

    /// The session's current phase.
    pub fn phase(&self) -> SessionPhase {
        self.track.phase()
    }

    /// The current world-pose estimate (`None` while cold).
    pub fn pose(&self) -> Option<&RigidTransform> {
        self.track.pose()
    }

    /// This session's lifetime counters.
    pub fn stats(&self) -> &SessionStats {
        self.track.stats()
    }

    /// Localizes one raw frame against the pinned epoch — the sharded
    /// counterpart of [`crate::Session::localize`]: cold-start
    /// relocalization when the session has no pose (retrieval over the
    /// epoch, verification against shared keyframes, structure overlap
    /// through the candidate's tile), velocity-prior tracking otherwise
    /// (tracking registers against the session's own previous frame and
    /// touches no tile at all).
    ///
    /// # Errors
    ///
    /// As [`crate::Session::localize`].
    pub fn localize(&mut self, frame: &PointCloud) -> Result<SessionStep, ServeError> {
        self.core.begin_request()?;
        // Root of the request's trace tree, as in the whole-snapshot
        // session; the pinned epoch version rides along as a field.
        let _span = tigris_obs::span!(
            "serve.localize",
            session = self.id,
            points = frame.len(),
            epoch = self.view.epoch().version(),
        );
        let t0 = Instant::now();
        let before = *self.track.stats();
        let core = &self.core;
        let view = &self.view;
        let result = self.track.localize_with(
            frame,
            view.epoch().registration_config(),
            core.config.serve.max_track_failures,
            |prepared| {
                relocalize_prepared(&EpochTarget { core, view }, prepared, &core.config.serve.reloc)
            },
        );
        let delta = self.track.stats().delta_since(&before);
        let latency = t0.elapsed();
        self.core.finish_request(latency, delta);
        // Tail sampling after metering and after the root span closes,
        // as in the whole-snapshot session.
        let root = _span.id();
        drop(_span);
        self.core.observe_tail(root, latency, result.is_err());
        result
    }

    /// A tile-routed map query against the *pinned* epoch; answers
    /// exactly like [`crate::MapSnapshot::query`] over the same map.
    pub fn query(&self, point: Vec3, radius: f64) -> Vec<MapNeighbor> {
        query_view(&self.core, &self.view, point, radius)
    }

    /// Batched [`ShardSession::query`], batched per submap through the
    /// shared read path — bit-identical to per-element queries.
    pub fn query_batch(&self, points: &[Vec3], radius: f64) -> Vec<Vec<MapNeighbor>> {
        let batch = self.view.epoch().registration_config().parallel;
        query_batch_view(&self.core, &self.view, points, radius, &batch)
    }
}

impl Drop for ShardSession {
    fn drop(&mut self) {
        self.core.release_session(self.view.epoch().version());
    }
}

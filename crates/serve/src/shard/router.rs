//! Query routing: which tiles can answer a query, and the pinned
//! epoch-plus-routing view a session drains on.

use std::sync::Arc;

use tigris_geom::Vec3;

use super::epoch::SnapshotEpoch;
use super::tile::{partition, TileMeta, TilingConfig};

/// Maps world-frame query spheres to the tiles that could answer them.
///
/// Built once per published epoch (tiles ride on publish-time anchor
/// poses, which are immutable within an epoch). Routing is conservative
/// by construction — see the [tiling docs](super::tile) — so fanning a
/// query out to only the covering tiles answers bit-identically to
/// whole-map fan-out.
#[derive(Debug)]
pub struct TileRouter {
    tiles: Vec<TileMeta>,
    /// Submap id → tile index (`None` for empty submaps, which no tile
    /// serves).
    tile_of: Vec<Option<usize>>,
}

impl TileRouter {
    /// Partitions the epoch under `config` and indexes the result.
    pub fn build(epoch: &SnapshotEpoch, config: &TilingConfig) -> Self {
        let tiles = partition(epoch, config);
        let mut tile_of = vec![None; epoch.payloads().len()];
        for (t, tile) in tiles.iter().enumerate() {
            for &member in tile.members() {
                tile_of[member] = Some(t);
            }
        }
        TileRouter { tiles, tile_of }
    }

    /// The epoch's tiles, in deterministic grid-cell order.
    pub fn tiles(&self) -> &[TileMeta] {
        &self.tiles
    }

    /// The tile serving submap `id`, or `None` for an empty submap.
    pub fn tile_of(&self, id: usize) -> Option<usize> {
        self.tile_of.get(id).copied().flatten()
    }

    /// Indices of every tile whose bounds intersect the query sphere —
    /// a superset of the tiles holding actual answers.
    pub fn covering(&self, point: Vec3, radius: f64) -> Vec<usize> {
        self.tiles
            .iter()
            .enumerate()
            .filter(|(_, tile)| tile.bounds().intersects_sphere(point, radius))
            .map(|(t, _)| t)
            .collect()
    }
}

/// One epoch plus its router — the immutable view a session pins at
/// admission and drains on, however many newer epochs are published
/// while it runs.
#[derive(Debug)]
pub struct EpochView {
    epoch: Arc<SnapshotEpoch>,
    router: TileRouter,
}

impl EpochView {
    /// Builds the routing view for `epoch` under `config`.
    pub fn new(epoch: Arc<SnapshotEpoch>, config: &TilingConfig) -> Self {
        let router = TileRouter::build(&epoch, config);
        EpochView { epoch, router }
    }

    /// The pinned epoch.
    pub fn epoch(&self) -> &Arc<SnapshotEpoch> {
        &self.epoch
    }

    /// The epoch's tile router.
    pub fn router(&self) -> &TileRouter {
        &self.router
    }
}

//! The sharded localization service: tile-routed queries, lazy
//! residency and versioned epoch hot-swap over one live map.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tigris_core::{BatchConfig, SearchStats};
use tigris_geom::{RigidTransform, Vec3};
use tigris_map::retrieval::{self, RetrievalHit};
use tigris_map::{sort_map_neighbors, MapNeighbor};
use tigris_obs::sampler::{RequestOutcome, TailConfig, TailSampler};
use tigris_obs::Registry;
use tigris_pipeline::{PreparedFrame, RegistrationResult};

use super::epoch::SnapshotEpoch;
use super::residency::TileCache;
use super::router::EpochView;
use super::session::ShardSession;
use super::tile::TilingConfig;
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::reloc::RelocTarget;
use crate::service::RequestGate;
use crate::stats::{ServeStats, SessionStats};

/// Configuration of a [`ShardService`]: the serving budgets, the
/// tiling, and the residency byte budget.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Session/in-flight budgets and relocalization gates — shared with
    /// the whole-snapshot service, so both front ends admit and gate
    /// identically.
    pub serve: ServeConfig,
    /// How published epochs are cut into tiles.
    pub tiling: TilingConfig,
    /// Byte budget for resident rebuilt tile indices (reclaimable bytes
    /// only; see [`crate::stats::TileStats`]). `usize::MAX` — the
    /// default — keeps every touched tile resident.
    pub tile_budget_bytes: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            serve: ServeConfig::default(),
            tiling: TilingConfig::default(),
            tile_budget_bytes: usize::MAX,
        }
    }
}

/// Epoch bookkeeping behind the service's state lock: the current view
/// plus the pin count of every epoch still draining sessions.
#[derive(Debug, Default)]
struct EpochState {
    current: Option<Arc<EpochView>>,
    /// Epoch version → sessions pinned on it.
    pins: HashMap<u64, usize>,
}

/// The state shared between a [`ShardService`] and its sessions.
#[derive(Debug)]
pub(crate) struct ShardCore {
    pub(crate) config: ShardConfig,
    /// This service's metrics registry: the request gate and the tile
    /// cache both write into it, so one snapshot covers the service.
    pub(crate) registry: Arc<Registry>,
    /// Tail-based trace sampler: retains the span trees of slow or
    /// failed requests, judged against this service's own latency
    /// history.
    pub(crate) sampler: Arc<TailSampler>,
    /// Admission gate + epoch bookkeeping; touched only at request and
    /// session boundaries.
    state: Mutex<(RequestGate, EpochState)>,
    /// Tile residency; touched per tile lookup, never while holding the
    /// state lock.
    cache: Mutex<TileCache>,
}

impl ShardCore {
    fn lock_state(&self) -> std::sync::MutexGuard<'_, (RequestGate, EpochState)> {
        self.state.lock().expect("shard state lock poisoned")
    }

    fn lock_cache(&self) -> std::sync::MutexGuard<'_, TileCache> {
        self.cache.lock().expect("tile cache lock poisoned")
    }

    /// The tile at `tile_idx` of the view's epoch, resident (loading it
    /// now when cold). The load runs under the cache lock; queries on
    /// already-resident tiles only pay the lookup.
    pub(crate) fn resident(
        &self,
        view: &EpochView,
        tile_idx: usize,
    ) -> Arc<super::residency::LoadedTile> {
        self.lock_cache().fetch(view, tile_idx)
    }

    pub(crate) fn begin_request(&self) -> Result<(), ServeError> {
        self.lock_state().0.begin_request(self.config.serve.max_inflight)
    }

    pub(crate) fn finish_request(&self, latency: Duration, delta: SessionStats) {
        self.lock_state().0.finish_request(latency, delta);
    }

    /// Feeds one finished request to the tail sampler (same contract as
    /// `ServiceCore::observe_tail` in the whole-snapshot service): runs
    /// after `finish_request`, outside the service lock.
    pub(crate) fn observe_tail(&self, root: Option<u64>, latency: Duration, failed: bool) {
        let outcome = if failed { RequestOutcome::Failed } else { RequestOutcome::Completed };
        self.sampler.observe(root, latency, outcome, false);
    }

    /// A session closed: release its admission slot and unpin its epoch.
    /// When the last session of a superseded epoch unpins, that epoch's
    /// resident tiles are purged (its payload archives free with the
    /// session's `Arc`).
    pub(crate) fn release_session(&self, version: u64) {
        let purge = {
            let mut state = self.lock_state();
            state.0.close_session();
            let pinned =
                state.1.pins.get_mut(&version).expect("session unpinned an epoch it never pinned");
            *pinned -= 1;
            if *pinned == 0 {
                state.1.pins.remove(&version);
                state.1.current.as_ref().map(|v| v.epoch().version()) != Some(version)
            } else {
                false
            }
        };
        if purge {
            self.lock_cache().purge_version(version);
        }
    }
}

/// Serves a live, growing map to many concurrent localization sessions
/// through spatial tiles and versioned copy-on-write epochs.
///
/// Where [`crate::LocalizationService`] serves one frozen
/// [`crate::MapSnapshot`] forever, a `ShardService` serves whatever
/// epoch was last [installed](ShardService::install_epoch):
///
/// * **sessions pin their epoch** — a session admitted on epoch N
///   drains on N however many newer epochs arrive, so its pose stream
///   is exactly what a frozen-snapshot session over the same map would
///   produce; new sessions pin the newest epoch;
/// * **queries route by tile** — the router fans a query sphere out to
///   only the covering tiles (bit-identical to whole-map fan-out by the
///   conservative-bounds argument in the [tiling docs](super::tile));
/// * **tiles load lazily and evict under a byte budget** — see the
///   [residency docs](super::residency).
#[derive(Debug)]
pub struct ShardService {
    core: Arc<ShardCore>,
}

impl ShardService {
    /// A service with no epoch installed yet (sessions are rejected
    /// until the first [`ShardService::install_epoch`]).
    pub fn new(config: ShardConfig) -> Self {
        tigris_obs::init_from_env();
        let registry = Arc::new(Registry::new());
        let gate = RequestGate::new(Arc::clone(&registry));
        let cache = TileCache::new(config.tile_budget_bytes, &registry);
        let latency = registry.histogram_with("serve.latency_us", crate::stats::LATENCY_HISTOGRAM);
        let sampler = Arc::new(TailSampler::new(TailConfig::from_env(latency)));
        tigris_obs::ops::register_service("shard", &registry, Some(&sampler));
        ShardService {
            core: Arc::new(ShardCore {
                config,
                registry,
                sampler,
                state: Mutex::new((gate, EpochState::default())),
                cache: Mutex::new(cache),
            }),
        }
    }

    /// A service already serving `epoch`.
    pub fn with_epoch(epoch: Arc<SnapshotEpoch>, config: ShardConfig) -> Self {
        let service = ShardService::new(config);
        service.install_epoch(epoch);
        service
    }

    /// The serving configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.core.config
    }

    /// This service's metrics registry: every `serve.*` counter, gauge
    /// and latency histogram the service maintains, including the
    /// `serve.tiles.*` residency counters. Snapshot it at any time for
    /// export; the same atomics back [`ShardService::stats`].
    pub fn registry(&self) -> &Arc<Registry> {
        &self.core.registry
    }

    /// This service's tail-based trace sampler (see
    /// [`crate::LocalizationService::sampler`] — the sharded front end
    /// samples identically).
    pub fn sampler(&self) -> &Arc<TailSampler> {
        &self.core.sampler
    }

    /// Hot-swaps the served epoch: sessions opened after this call pin
    /// `epoch`; sessions already open keep draining on theirs. A
    /// superseded epoch with no pinned sessions has its resident tiles
    /// purged immediately.
    pub fn install_epoch(&self, epoch: Arc<SnapshotEpoch>) {
        let view = Arc::new(EpochView::new(epoch, &self.core.config.tiling));
        tigris_obs::event!(
            "epoch.install",
            version = view.epoch().version(),
            submaps = view.epoch().payloads().len(),
            tiles = view.router().tiles().len(),
        );
        let retired = {
            let mut state = self.core.lock_state();
            let old = state.1.current.replace(view);
            old.map(|v| v.epoch().version()).filter(|version| !state.1.pins.contains_key(version))
        };
        if let Some(version) = retired {
            self.core.lock_cache().purge_version(version);
        }
    }

    /// The currently served epoch, or `None` before the first install.
    pub fn current_epoch(&self) -> Option<Arc<SnapshotEpoch>> {
        self.core.lock_state().1.current.as_ref().map(|v| Arc::clone(v.epoch()))
    }

    /// Admits a new localization session pinned to the current epoch.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoEpoch`] before the first
    /// [`ShardService::install_epoch`];
    /// [`ServeError::SessionsExhausted`] at the session budget.
    pub fn open_session(&self) -> Result<ShardSession, ServeError> {
        let (id, view) = {
            let mut state = self.core.lock_state();
            let view = Arc::clone(state.1.current.as_ref().ok_or(ServeError::NoEpoch)?);
            let id = state.0.admit_session(self.core.config.serve.max_sessions)?;
            *state.1.pins.entry(view.epoch().version()).or_insert(0) += 1;
            (id, view)
        };
        Ok(ShardSession::new(id, Arc::clone(&self.core), view))
    }

    /// Sessions currently open.
    pub fn active_sessions(&self) -> usize {
        self.core.lock_state().0.active_sessions()
    }

    /// A tile-routed map query against the *current* epoch; answers
    /// exactly like [`crate::MapSnapshot::query`] over the same map.
    /// Session-pinned queries live on [`ShardSession::query`].
    ///
    /// # Errors
    ///
    /// [`ServeError::NoEpoch`] before the first epoch install.
    pub fn query(&self, point: Vec3, radius: f64) -> Result<Vec<MapNeighbor>, ServeError> {
        let view = self.current_view()?;
        Ok(query_view(&self.core, &view, point, radius))
    }

    /// Batched tile-routed map queries against the current epoch,
    /// batched per submap through the shared read path — bit-identical
    /// to calling [`ShardService::query`] per element.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoEpoch`] before the first epoch install.
    pub fn query_batch(
        &self,
        points: &[Vec3],
        radius: f64,
    ) -> Result<Vec<Vec<MapNeighbor>>, ServeError> {
        let view = self.current_view()?;
        let batch = view.epoch().registration_config().parallel;
        Ok(query_batch_view(&self.core, &view, points, radius, &batch))
    }

    fn current_view(&self) -> Result<Arc<EpochView>, ServeError> {
        self.core.lock_state().1.current.as_ref().map(Arc::clone).ok_or(ServeError::NoEpoch)
    }

    /// A consistent point-in-time copy of the service-wide counters,
    /// the latency distribution and the tile residency counters. The
    /// percentile sort runs outside both service locks.
    pub fn stats(&self) -> ServeStats {
        let (mut stats, recorder) = self.core.lock_state().0.stats_and_recorder();
        stats.tiles = self.core.lock_cache().stats();
        stats.latency = recorder.summarize();
        stats
    }
}

/// The [`RelocTarget`] over a pinned epoch view: retrieval and keyframe
/// verification read the epoch directly; structure overlap touches the
/// candidate submap's tile (loading it when cold). Driving the *same*
/// `relocalize_prepared` gate pipeline as the whole-snapshot service is
/// what makes sharded cold starts structurally identical to frozen ones.
pub(crate) struct EpochTarget<'a> {
    pub(crate) core: &'a ShardCore,
    pub(crate) view: &'a EpochView,
}

impl RelocTarget for EpochTarget<'_> {
    fn signature_dim(&self) -> usize {
        self.view.epoch().signature_dim()
    }

    fn retrieve(
        &self,
        signature: &[f64],
        candidates: usize,
        max_distance: f64,
    ) -> Vec<RetrievalHit> {
        self.view.epoch().retrieval().retrieve(signature, candidates, max_distance)
    }

    fn verify_against(
        &self,
        submap: usize,
        frame: &mut PreparedFrame,
    ) -> Option<RegistrationResult> {
        let epoch = self.view.epoch();
        let keyframe = epoch.payloads().get(submap)?.keyframe()?;
        let mut keyframe = keyframe.lock().expect("keyframe lock poisoned");
        retrieval::verify_geometry(frame, &mut keyframe, epoch.registration_config())
    }

    fn structure_overlap(
        &self,
        points: &[Vec3],
        relative: &RigidTransform,
        submap: usize,
        cfg: &BatchConfig,
    ) -> f64 {
        let Some(tile_idx) = self.view.router().tile_of(submap) else {
            return 0.0; // empty submap: nothing to overlap with
        };
        let tile = self.core.resident(self.view, tile_idx);
        let Some(loaded) = tile.submap(submap) else {
            return 0.0;
        };
        let Some(bounds) = loaded.payload.local_bounds() else {
            return 0.0;
        };
        retrieval::structure_overlap_indexed(points, relative, &loaded.index, bounds, cfg)
    }

    fn anchor_frame(&self, submap: usize) -> usize {
        self.view.epoch().payloads()[submap].anchor_frame()
    }

    fn frame_pose(&self, frame: usize) -> RigidTransform {
        self.view.epoch().poses()[frame]
    }
}

/// Tile-routed serial map query over a pinned view: fan out to the
/// covering tiles, apply each member submap's own local-bounds gate,
/// and merge in the canonical order. Bit-identical to
/// [`crate::MapSnapshot::query`] over the same map (conservative
/// routing + the rebuild-identical index contract + the one shared
/// [`sort_map_neighbors`] comparator).
pub(crate) fn query_view(
    core: &ShardCore,
    view: &EpochView,
    point: Vec3,
    radius: f64,
) -> Vec<MapNeighbor> {
    let mut out: Vec<MapNeighbor> = Vec::new();
    for tile_idx in view.router().covering(point, radius) {
        let tile = core.resident(view, tile_idx);
        for loaded in &tile.submaps {
            let Some(bounds) = loaded.payload.local_bounds() else {
                continue;
            };
            let anchor = view.epoch().anchor_pose(loaded.payload.id());
            let local_q = anchor.inverse().apply(point);
            if !bounds.intersects_sphere(local_q, radius) {
                continue;
            }
            out.extend(loaded.index.radius_query(local_q, radius).into_iter().map(|n| {
                MapNeighbor {
                    submap: loaded.payload.id(),
                    index: n.index,
                    point: anchor.apply(loaded.index.all_points()[n.index]),
                    distance_squared: n.distance_squared,
                }
            }));
        }
    }
    sort_map_neighbors(&mut out);
    out
}

/// Batched [`query_view`]: queries grouped per covering tile, then
/// batched per member submap through the shared read path — the sharded
/// analogue of [`crate::MapSnapshot::query_batch`], bit-identical to
/// per-element [`query_view`].
pub(crate) fn query_batch_view(
    core: &ShardCore,
    view: &EpochView,
    points: &[Vec3],
    radius: f64,
    cfg: &BatchConfig,
) -> Vec<Vec<MapNeighbor>> {
    let mut out: Vec<Vec<MapNeighbor>> = vec![Vec::new(); points.len()];
    // Queries per covering tile (each submap belongs to exactly one
    // tile, so no query meets a submap twice).
    let mut per_tile: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (qi, &p) in points.iter().enumerate() {
        for tile_idx in view.router().covering(p, radius) {
            per_tile.entry(tile_idx).or_default().push(qi);
        }
    }
    let mut stats = SearchStats::new();
    for (tile_idx, query_ids) in per_tile {
        let tile = core.resident(view, tile_idx);
        for loaded in &tile.submaps {
            let Some(bounds) = loaded.payload.local_bounds() else {
                continue;
            };
            let anchor = view.epoch().anchor_pose(loaded.payload.id());
            let inverse = anchor.inverse();
            let mut hit_ids: Vec<usize> = Vec::new();
            let mut local_queries: Vec<Vec3> = Vec::new();
            for &qi in &query_ids {
                let local = inverse.apply(points[qi]);
                if bounds.intersects_sphere(local, radius) {
                    hit_ids.push(qi);
                    local_queries.push(local);
                }
            }
            if hit_ids.is_empty() {
                continue;
            }
            let answers = loaded.index.radius_batch_shared(&local_queries, radius, cfg, &mut stats);
            for (&qi, neighbors) in hit_ids.iter().zip(answers) {
                out[qi].extend(neighbors.into_iter().map(|n| MapNeighbor {
                    submap: loaded.payload.id(),
                    index: n.index,
                    point: anchor.apply(loaded.index.all_points()[n.index]),
                    distance_squared: n.distance_squared,
                }));
            }
        }
    }
    for neighbors in &mut out {
        sort_map_neighbors(neighbors);
    }
    out
}

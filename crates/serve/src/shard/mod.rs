//! tigris-shard: spatially tiled snapshot serving with versioned epoch
//! hot-swap.
//!
//! The whole-snapshot serving layer ([`crate::LocalizationService`])
//! answers one question well — *serve a finished map, forever* — at two
//! costs that grow with the map: every session holds the entire map
//! resident, and picking up new mapping work means freezing a whole new
//! snapshot and restarting every session. This module removes both:
//!
//! * **Spatial tiling** ([`tile`], [`router`]) — an epoch's submaps are
//!   partitioned into grid tiles; a query fans out only to the tiles
//!   whose conservative world bounds its sphere intersects. Routing is
//!   provably conservative, so tile-routed answers are bit-identical to
//!   whole-map fan-out.
//! * **Lazy residency** ([`residency`]) — a tile's search indices are
//!   rebuilt on first session demand and evicted least-recently-touched
//!   under an explicit byte budget; correctness never depends on what is
//!   resident, only latency does.
//! * **Versioned epochs** ([`epoch`]) — a live, still-mapping
//!   [`tigris_map::Mapper`] is published copy-on-write at submap
//!   granularity: unchanged submaps are shared by `Arc` across epochs,
//!   and only changed ones are re-archived. [`ShardService::install_epoch`]
//!   hot-swaps the served version: new sessions pin the newest epoch,
//!   in-flight sessions drain on the epoch they started with, and a
//!   superseded epoch frees when its last session unpins.
//!
//! Sessions ([`ShardSession`]) drive the exact state machine and
//! relocalization gates of the whole-snapshot [`crate::Session`] — the
//! implementations are shared, not parallel — so a sharded session's
//! pose stream over epoch N is bit-identical to a frozen-snapshot
//! session over the same map.

pub mod epoch;
pub mod residency;
pub mod router;
pub mod service;
pub mod session;
pub mod tile;

pub use epoch::{EpochPublisher, SnapshotEpoch, SubmapPayload};
pub use router::{EpochView, TileRouter};
pub use service::{ShardConfig, ShardService};
pub use session::ShardSession;
pub use tile::{TileMeta, TilingConfig};

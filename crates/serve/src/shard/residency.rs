//! Lazy tile residency: rebuild-on-demand search indices under an
//! explicit byte budget.
//!
//! An epoch's payload archives are compact (bare point arrays); what
//! costs real memory per *servable* tile is the rebuilt per-submap
//! search index. The (crate-internal) `TileCache` loads a tile's indices on first
//! session demand, keyed by `(epoch version, tile index)`, and evicts
//! least-recently-touched tiles when the resident rebuilt-index bytes
//! exceed the budget. Only reclaimable bytes are charged: the payload
//! archives (and `Arc`-shared keyframes) survive eviction by design, so
//! charging them would make the budget double-count memory eviction
//! cannot free.
//!
//! Loaded tiles are handed out as `Arc`s — eviction drops the cache's
//! reference while in-flight queries keep theirs, so a query never
//! observes a half-freed tile. Correctness does not depend on residency:
//! a rebuilt index answers bit-identically to the live submap's index
//! (the `DynamicMapIndex` rebuild contract), so load/evict churn can
//! change only latency, never results.

use std::collections::HashMap;
use std::sync::Arc;

use tigris_core::DynamicMapIndex;
use tigris_obs::{Counter, Gauge, Registry};

use super::epoch::{SnapshotEpoch, SubmapPayload};
use super::router::EpochView;
use super::tile::TileMeta;
use crate::stats::TileStats;

/// One member submap of a resident tile: its archived payload plus the
/// rebuilt search index over it.
#[derive(Debug)]
pub(crate) struct LoadedSubmap {
    pub(crate) payload: Arc<SubmapPayload>,
    pub(crate) index: DynamicMapIndex,
}

/// A resident tile: rebuilt indices for every member submap.
#[derive(Debug)]
pub(crate) struct LoadedTile {
    pub(crate) submaps: Vec<LoadedSubmap>,
    /// Reclaimable bytes: the rebuilt indices only.
    bytes: usize,
}

impl LoadedTile {
    fn load(epoch: &SnapshotEpoch, tile: &TileMeta) -> Self {
        let submaps: Vec<LoadedSubmap> = tile
            .members()
            .iter()
            .map(|&id| {
                let payload = Arc::clone(&epoch.payloads()[id]);
                let index = DynamicMapIndex::build(payload.points());
                LoadedSubmap { payload, index }
            })
            .collect();
        let bytes = submaps.iter().map(|s| s.index.memory_bytes()).sum();
        LoadedTile { submaps, bytes }
    }

    /// The member entry for submap `id`, when this tile serves it.
    pub(crate) fn submap(&self, id: usize) -> Option<&LoadedSubmap> {
        self.submaps.iter().find(|s| s.payload.id() == id)
    }
}

#[derive(Debug)]
struct CacheEntry {
    tile: Arc<LoadedTile>,
    last_touch: u64,
}

/// The LRU-by-touch tile cache; see the [module docs](self). The
/// residency counters are handles into the owning service's obs
/// registry (`serve.tiles.*` names), so [`TileCache::stats`] and a
/// registry snapshot report the same numbers.
#[derive(Debug)]
pub(crate) struct TileCache {
    budget_bytes: usize,
    entries: HashMap<(u64, usize), CacheEntry>,
    /// Logical clock: bumped per lookup, stamped on the touched entry.
    clock: u64,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    loads: Arc<Counter>,
    evictions: Arc<Counter>,
    resident_tiles: Arc<Gauge>,
    resident_bytes: Arc<Gauge>,
    peak_resident_bytes: Arc<Gauge>,
}

impl TileCache {
    pub(crate) fn new(budget_bytes: usize, registry: &Registry) -> Self {
        TileCache {
            budget_bytes,
            entries: HashMap::new(),
            clock: 0,
            hits: registry.counter("serve.tiles.hits"),
            misses: registry.counter("serve.tiles.misses"),
            loads: registry.counter("serve.tiles.loads"),
            evictions: registry.counter("serve.tiles.evictions"),
            resident_tiles: registry.gauge("serve.tiles.resident_tiles"),
            resident_bytes: registry.gauge("serve.tiles.resident_bytes"),
            peak_resident_bytes: registry.gauge("serve.tiles.peak_resident_bytes"),
        }
    }

    /// The tile at `tile_idx` of the view's epoch, resident: returns the
    /// cached load (a hit refreshes its LRU stamp) or rebuilds it, then
    /// evicts least-recently-touched tiles while over budget. The tile
    /// just fetched is never evicted by its own fetch, so a single tile
    /// larger than the whole budget still serves (the budget bounds
    /// *steady-state* residency).
    pub(crate) fn fetch(&mut self, view: &EpochView, tile_idx: usize) -> Arc<LoadedTile> {
        self.clock += 1;
        let key = (view.epoch().version(), tile_idx);
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_touch = self.clock;
            self.hits.inc();
            return Arc::clone(&entry.tile);
        }
        self.misses.inc();
        let span = tigris_obs::span!(
            "tile.load",
            epoch = key.0,
            tile = tile_idx,
            members = view.router().tiles()[tile_idx].members().len(),
        );
        let tile = Arc::new(LoadedTile::load(view.epoch(), &view.router().tiles()[tile_idx]));
        drop(span);
        self.loads.inc();
        self.resident_tiles.add(1);
        let resident = self.resident_bytes.add(tile.bytes as i64);
        self.peak_resident_bytes.set_max(resident);
        self.entries.insert(key, CacheEntry { tile: Arc::clone(&tile), last_touch: self.clock });
        self.evict_over_budget(key);
        tile
    }

    fn evict_over_budget(&mut self, keep: (u64, usize)) {
        while self.resident_bytes.get().max(0) as usize > self.budget_bytes {
            let Some((&victim, _)) =
                self.entries.iter().filter(|(&k, _)| k != keep).min_by_key(|(_, e)| e.last_touch)
            else {
                break;
            };
            let entry = self.entries.remove(&victim).expect("victim was just found");
            self.evictions.inc();
            self.resident_tiles.add(-1);
            self.resident_bytes.add(-(entry.tile.bytes as i64));
            tigris_obs::event!(
                "tile.evict",
                epoch = victim.0,
                tile = victim.1,
                bytes = entry.tile.bytes,
            );
        }
    }

    /// Drops every resident tile of a retired epoch version (the last
    /// session unpinned it and it is not current). Not counted as
    /// budget evictions.
    pub(crate) fn purge_version(&mut self, version: u64) {
        let (resident_tiles, resident_bytes) =
            (Arc::clone(&self.resident_tiles), Arc::clone(&self.resident_bytes));
        let mut purged = 0usize;
        self.entries.retain(|&(v, _), entry| {
            if v == version {
                resident_tiles.add(-1);
                resident_bytes.add(-(entry.tile.bytes as i64));
                purged += 1;
                false
            } else {
                true
            }
        });
        if purged > 0 {
            tigris_obs::event!("tile.purge", epoch = version, tiles = purged);
        }
    }

    /// A point-in-time copy of the residency counters, assembled from
    /// the registry handles.
    pub(crate) fn stats(&self) -> TileStats {
        TileStats {
            hits: self.hits.get() as usize,
            misses: self.misses.get() as usize,
            loads: self.loads.get() as usize,
            evictions: self.evictions.get() as usize,
            resident_tiles: self.resident_tiles.get().max(0) as usize,
            resident_bytes: self.resident_bytes.get().max(0) as usize,
            peak_resident_bytes: self.peak_resident_bytes.get().max(0) as usize,
        }
    }
}

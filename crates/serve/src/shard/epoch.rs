//! Versioned copy-on-write map epochs: the publishable unit of the
//! sharded serving layer.
//!
//! A live [`Mapper`] keeps growing and correcting its map while serving
//! continues. [`EpochPublisher::publish`] snapshots it *by reference*
//! into an immutable [`SnapshotEpoch`] — version N+1 — copying at
//! **submap granularity**: a submap whose content [`revision`] is
//! unchanged since the previous publish shares its archived
//! [`SubmapPayload`] by `Arc` with every earlier epoch that holds it;
//! only changed submaps are re-archived. Pose-graph corrections move
//! submaps rigidly without touching their payload, so after a loop
//! closure an epoch re-publish copies *poses* (cheap, per-epoch
//! manifest data) and shares every point archive.
//!
//! Sessions pin the epoch they started on and drain on it; new sessions
//! pin the newest. When the last session unpins a superseded epoch its
//! uniquely-held payloads free with it.
//!
//! [`revision`]: Submap::revision

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use tigris_geom::{Aabb, RigidTransform, Vec3};
use tigris_map::retrieval::SignatureIndex;
use tigris_map::{Mapper, MapperConfig, Submap};
use tigris_pipeline::{PreparedFrame, RegistrationConfig};

use crate::error::ServeError;

/// The immutable archive of one submap's content at one revision: its
/// points (anchor-local frame, settled order), bounds, signature and
/// shared keyframe. Pose data deliberately lives *outside* the payload
/// (in the epoch manifest), so pose-graph corrections never invalidate
/// an archive.
#[derive(Debug)]
pub struct SubmapPayload {
    id: usize,
    anchor_frame: usize,
    revision: u64,
    /// Points in the submap's anchor-local frame, in the source index's
    /// settled order — rebuilding a `DynamicMapIndex` over this slice
    /// reproduces the live submap's answers (and indices) bit-identically.
    points: Vec<Vec3>,
    local_bounds: Option<Aabb>,
    signature: Vec<f64>,
    /// The submap's stored keyframe preparation, `Arc`-shared with the
    /// live mapper (and with every other epoch archiving this revision).
    keyframe: Option<Arc<Mutex<PreparedFrame>>>,
}

impl SubmapPayload {
    fn archive(submap: &Submap) -> Self {
        SubmapPayload {
            id: submap.id(),
            anchor_frame: submap.anchor_frame(),
            revision: submap.revision(),
            points: submap.index().all_points().to_vec(),
            local_bounds: submap.local_bounds().copied(),
            signature: submap.descriptor().to_vec(),
            keyframe: submap.keyframe().cloned(),
        }
    }

    /// The archived submap's id (its index in the epoch's payload list).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Trajectory index of the submap's anchor keyframe.
    pub fn anchor_frame(&self) -> usize {
        self.anchor_frame
    }

    /// Content revision this payload archives.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The archived points (anchor-local frame, settled order).
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Archived points in this payload.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the submap held no points at archive time.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The submap's bounding box in its anchor-local frame.
    pub fn local_bounds(&self) -> Option<&Aabb> {
        self.local_bounds.as_ref()
    }

    /// The archived submap signature (empty when the submap had none).
    pub fn signature(&self) -> &[f64] {
        &self.signature
    }

    /// Whether the payload carries the submap's keyframe preparation.
    pub fn has_keyframe(&self) -> bool {
        self.keyframe.is_some()
    }

    /// The shared keyframe preparation, when present.
    pub fn keyframe(&self) -> Option<&Arc<Mutex<PreparedFrame>>> {
        self.keyframe.as_ref()
    }

    /// Heap bytes of the archived point set and signature. This is the
    /// *unavoidable* per-epoch cost of a payload — the rebuilt search
    /// index a resident tile adds on top is what eviction reclaims.
    pub fn memory_bytes(&self) -> usize {
        self.points.capacity() * std::mem::size_of::<Vec3>()
            + self.signature.capacity() * std::mem::size_of::<f64>()
    }
}

/// One immutable, versioned publication of a live map: `Arc`-shared
/// submap payloads plus this version's pose manifest and retrieval
/// index; see the [module docs](self).
#[derive(Debug)]
pub struct SnapshotEpoch {
    version: u64,
    config: MapperConfig,
    /// Payload archives, indexed by submap id.
    payloads: Vec<Arc<SubmapPayload>>,
    /// World pose of each submap's anchor at publish time (parallel to
    /// `payloads`) — per-epoch manifest data, *not* part of the payload.
    anchor_poses: Vec<RigidTransform>,
    /// Corrected world pose per trajectory frame at publish time.
    poses: Vec<RigidTransform>,
    retrieval: SignatureIndex,
    signature_dim: usize,
    total_points: usize,
}

impl SnapshotEpoch {
    /// The epoch's version (monotone per publisher, starting at 1).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The configuration the map was built under.
    pub fn config(&self) -> &MapperConfig {
        &self.config
    }

    /// The registration configuration query frames must be prepared
    /// with.
    pub fn registration_config(&self) -> &RegistrationConfig {
        &self.config.registration
    }

    /// The archived submap payloads, indexed by submap id.
    pub fn payloads(&self) -> &[Arc<SubmapPayload>] {
        &self.payloads
    }

    /// World pose of submap `id`'s anchor at publish time.
    pub fn anchor_pose(&self, id: usize) -> &RigidTransform {
        &self.anchor_poses[id]
    }

    /// Corrected world pose per trajectory frame at publish time.
    pub fn poses(&self) -> &[RigidTransform] {
        &self.poses
    }

    /// The signature retrieval structure over every verifiable submap.
    pub fn retrieval(&self) -> &SignatureIndex {
        &self.retrieval
    }

    /// Dimension of the submap signatures.
    pub fn signature_dim(&self) -> usize {
        self.signature_dim
    }

    /// Total points across all archived payloads.
    pub fn total_points(&self) -> usize {
        self.total_points
    }

    /// Submaps a cold start can verify against (stored keyframe plus
    /// signature).
    pub fn verifiable_submaps(&self) -> usize {
        self.retrieval.len()
    }

    /// Heap bytes of every payload archive reachable from this epoch
    /// (shared payloads are counted here once per epoch that holds
    /// them; the process-wide cost of a shared payload is paid once).
    pub fn archive_bytes(&self) -> usize {
        self.payloads.iter().map(|p| p.memory_bytes()).sum()
    }
}

/// Publishes copy-on-write [`SnapshotEpoch`]s from a live [`Mapper`];
/// see the [module docs](self).
///
/// The publisher caches the payload it archived for each submap's last
/// seen revision; [`EpochPublisher::publish`] re-archives only submaps
/// whose revision moved. One publisher per live mapper.
#[derive(Debug, Default)]
pub struct EpochPublisher {
    /// Last archived payload per submap id.
    cache: HashMap<usize, Arc<SubmapPayload>>,
    next_version: u64,
    payloads_shared: usize,
    payloads_copied: usize,
}

impl EpochPublisher {
    /// A fresh publisher; its first publish is epoch version 1.
    pub fn new() -> Self {
        EpochPublisher::default()
    }

    /// Payloads re-used from the previous publish by revision equality,
    /// over the publisher's lifetime.
    pub fn payloads_shared(&self) -> usize {
        self.payloads_shared
    }

    /// Payloads (re-)archived because their submap's revision moved,
    /// over the publisher's lifetime.
    pub fn payloads_copied(&self) -> usize {
        self.payloads_copied
    }

    /// Publishes the mapper's current map as the next epoch, sharing
    /// every payload whose submap revision is unchanged since the last
    /// publish. The mapper is read through `&` — it keeps mapping.
    ///
    /// # Errors
    ///
    /// [`ServeError::EmptyMap`] when the map holds no points;
    /// [`ServeError::UnverifiableMap`] when no submap has both a stored
    /// keyframe and a signature (cold starts could never verify).
    pub fn publish(&mut self, mapper: &Mapper) -> Result<Arc<SnapshotEpoch>, ServeError> {
        let _span = tigris_obs::span!("epoch.publish", version = self.next_version + 1);
        let submaps = mapper.submaps();
        let total_points: usize = submaps.iter().map(Submap::len).sum();
        if total_points == 0 {
            return Err(ServeError::EmptyMap);
        }

        let shared_before = self.payloads_shared;
        let copied_before = self.payloads_copied;
        let payloads: Vec<Arc<SubmapPayload>> = submaps
            .iter()
            .map(|submap| {
                if let Some(cached) = self.cache.get(&submap.id()) {
                    if cached.revision == submap.revision() {
                        self.payloads_shared += 1;
                        return Arc::clone(cached);
                    }
                }
                let payload = Arc::new(SubmapPayload::archive(submap));
                self.cache.insert(submap.id(), Arc::clone(&payload));
                self.payloads_copied += 1;
                payload
            })
            .collect();

        // Verifiable payloads: a keyframe plus a signature of the map's
        // common dimension (same eligibility rule as the whole-map
        // freeze in `MapSnapshot::from_frozen`).
        let signature_dim = payloads
            .iter()
            .find(|p| p.has_keyframe() && !p.signature.is_empty())
            .map(|p| p.signature.len())
            .ok_or(ServeError::UnverifiableMap)?;
        let retrieval = SignatureIndex::from_signatures(
            payloads
                .iter()
                .filter(|p| p.has_keyframe() && p.signature.len() == signature_dim)
                .map(|p| (p.id, p.signature.as_slice())),
            signature_dim,
        );

        self.next_version += 1;
        tigris_obs::event!(
            "epoch.published",
            version = self.next_version,
            shared = self.payloads_shared - shared_before,
            copied = self.payloads_copied - copied_before,
            total_points = total_points,
        );
        Ok(Arc::new(SnapshotEpoch {
            version: self.next_version,
            config: mapper.config().clone(),
            anchor_poses: submaps.iter().map(|s| *s.anchor_pose()).collect(),
            poses: mapper.poses().to_vec(),
            payloads,
            retrieval,
            signature_dim,
            total_points,
        }))
    }
}

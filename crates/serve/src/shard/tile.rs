//! Spatial tiling of an epoch: submap-granularity tiles on a world-frame
//! grid.
//!
//! A tile is a set of submap payloads whose world-frame bounding-box
//! centers fall in the same grid cell, plus the union of their
//! conservative world bounds. The bounds make routing *conservative*:
//! a submap's own query gate is `local_bounds.intersects_sphere` in its
//! anchor frame, rigid transforms preserve distances, and the tile
//! bounds contain every member's rotated local box — so any query
//! sphere that could reach a member's points intersects the tile
//! bounds. Routing by tile therefore never drops an answering submap,
//! which is what makes tile-routed queries bit-identical to
//! whole-snapshot fan-out.

use std::collections::BTreeMap;

use tigris_geom::Aabb;

use super::epoch::SnapshotEpoch;

/// How an epoch is cut into tiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TilingConfig {
    /// Grid cell edge length (meters). Submaps are assigned to the cell
    /// containing their world-bounds center; one cell's submaps form one
    /// tile. Smaller tiles localize residency more finely but load more
    /// often under a roaming query stream.
    pub tile_size: f64,
}

impl Default for TilingConfig {
    fn default() -> Self {
        // A handful of serving-profile submaps (anchors every ~6 m of
        // travel) per tile.
        TilingConfig { tile_size: 32.0 }
    }
}

/// One tile: its member submaps and their conservative world bounds.
#[derive(Debug, Clone)]
pub struct TileMeta {
    /// Member submap ids (indices into the epoch's payload list),
    /// ascending.
    members: Vec<usize>,
    /// Union of the members' conservative world-frame bounds.
    bounds: Aabb,
}

impl TileMeta {
    /// Member submap ids, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Union of the members' conservative world-frame bounds.
    pub fn bounds(&self) -> &Aabb {
        &self.bounds
    }
}

/// Partitions an epoch's submaps into grid tiles; see the
/// [module docs](self).
pub fn partition(epoch: &SnapshotEpoch, config: &TilingConfig) -> Vec<TileMeta> {
    assert!(
        config.tile_size.is_finite() && config.tile_size > 0.0,
        "tile_size must be a positive length"
    );
    // BTreeMap: tiles come out in deterministic cell order.
    let mut cells: BTreeMap<(i64, i64, i64), TileMeta> = BTreeMap::new();
    for payload in epoch.payloads() {
        let Some(local) = payload.local_bounds() else {
            continue; // empty submap: nothing to serve
        };
        let world = local.transformed(epoch.anchor_pose(payload.id()));
        let center = world.center();
        let cell = (
            (center.x / config.tile_size).floor() as i64,
            (center.y / config.tile_size).floor() as i64,
            (center.z / config.tile_size).floor() as i64,
        );
        cells
            .entry(cell)
            .and_modify(|tile| {
                tile.members.push(payload.id());
                tile.bounds.union(&world);
            })
            .or_insert_with(|| TileMeta { members: vec![payload.id()], bounds: world });
    }
    cells.into_values().collect()
}

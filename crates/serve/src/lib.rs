//! Tigris serving subsystem: one frozen map, many concurrent
//! localization clients.
//!
//! The mapping subsystem (`tigris-map`) builds a drift-corrected map as
//! a *single-owner* object: one `Mapper`, one stream, and the map dies
//! with it. Production localization inverts that shape — a map is built
//! (or updated) rarely and *read* constantly, by every vehicle, robot or
//! headset in the area. This crate is that read side:
//!
//! * **[`MapSnapshot`]** — [`MapSnapshot::freeze`] consumes a finished
//!   [`tigris_map::Mapper`] and rearranges it, moving every submap,
//!   index and keyframe (zero point copies), into an immutable snapshot
//!   shared behind an `Arc`. Map queries and signature retrieval run
//!   lock-free through `&self`; stored keyframes (whose searchers meter
//!   their own queries) each sit behind their own lock, so sessions
//!   verifying against different submaps never contend.
//! * **Cold-start relocalization** ([`relocalize_prepared`]) — a client
//!   submits one raw frame with no history; the service prepares it
//!   (the standard pipeline front end, run exactly once), retrieves
//!   candidate submaps by signature ([`tigris_map::retrieval`], the same
//!   implementation loop closure uses), verifies geometrically against
//!   stored keyframes, gates on inliers/offset/structure-overlap, and
//!   returns a world pose with a [`Relocalization`] confidence report.
//! * **Sessions** ([`Session`]) — after a cold start, a session tracks
//!   frame-to-frame with the constant-velocity prior (the odometer's
//!   streaming pattern), chaining poses from the relocalized origin, and
//!   falls back to relocalization on tracking loss.
//! * **[`LocalizationService`]** — admits up to a budget of concurrent
//!   sessions and a budget of in-flight requests, rejecting typed
//!   ([`ServeError`]) beyond either; meters per-session and
//!   service-wide [`ServeStats`] including p50/p99 request latency; and
//!   batches cross-session map probes through the snapshot's shared
//!   batch path ([`MapSnapshot::query_batch`]).
//! * **Sharded serving** ([`shard`]) — the same serving contract over a
//!   *live, growing* map: spatially tiled queries, lazy tile residency
//!   under a byte budget, and versioned copy-on-write epoch hot-swap
//!   ([`shard::ShardService`]).
//!
//! Determinism: with an exact search backend (the default), every
//! answer a snapshot serves — map queries, retrieval, verification —
//! is bit-identical regardless of how many sessions share it or how
//! requests interleave: all shared state is immutable, and the only
//! locked mutation (keyframe search metering) never affects results.
//!
//! # Example
//!
//! ```no_run
//! use std::sync::Arc;
//! use tigris_data::{Sequence, SequenceConfig};
//! use tigris_map::{Mapper, MapperConfig};
//! use tigris_serve::{LocalizationService, MapSnapshot, ServeConfig, StepKind};
//!
//! // Build and freeze a map once…
//! let seq = Sequence::generate(&SequenceConfig::loop_circuit(60.0, 6), 7);
//! let mut mapper = Mapper::new(MapperConfig::default());
//! for i in 0..seq.len() {
//!     mapper.push(seq.frame(i)).unwrap();
//! }
//! let snapshot = Arc::new(MapSnapshot::freeze(mapper).unwrap());
//!
//! // …then serve it to any number of sessions.
//! let service = LocalizationService::new(snapshot, ServeConfig::default());
//! let mut session = service.open_session().unwrap();
//! for i in [10, 11, 12] {
//!     let step = session.localize(seq.frame(i)).unwrap();
//!     match step.kind {
//!         StepKind::Relocalized(r) => {
//!             println!("cold start: {} (confidence {:.2})", step.pose, r.confidence)
//!         }
//!         StepKind::Tracked { .. } => println!("tracked: {}", step.pose),
//!     }
//! }
//! println!("{:?}", service.stats());
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod reloc;
pub mod service;
pub mod session;
pub mod shard;
pub mod snapshot;
pub mod stats;

pub use config::{RelocConfig, ServeConfig};
pub use error::ServeError;
pub use reloc::{relocalize_prepared, RelocTarget, Relocalization};
pub use service::LocalizationService;
pub use session::{Session, SessionPhase, SessionStep, StepKind};
pub use snapshot::MapSnapshot;
pub use stats::{LatencyRecorder, LatencySummary, ServeStats, SessionStats, TileStats};

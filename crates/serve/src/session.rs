//! One client's localization stream: cold start → tracking → (on loss)
//! cold start again.
//!
//! A [`Session`] is the per-client state machine of the serving layer:
//!
//! ```text
//!             ┌────────────────────────────────────────────┐
//!             ▼                                            │
//!        ┌─────────┐  relocalize ok   ┌──────────┐  loss beyond
//!        │  Cold   │ ───────────────▶ │ Tracking │  budget, reloc
//!        │  start  │ ◀─────────────── │          │  failed too
//!        └─────────┘  reloc failed    └──────────┘
//!                                       │     ▲
//!                                       └─────┘
//!                             frame-to-frame match
//!                             (velocity prior), or loss
//!                             within the failure budget
//! ```
//!
//! Cold: the next frame runs cold-start relocalization against the
//! snapshot ([`crate::reloc`]). Tracking: the next frame registers
//! against the session's previous frame with the constant-velocity
//! prior — the same prepare-once/reuse streaming pattern as the
//! odometer, with the pose chained from the relocalized world pose. A
//! tracking loss beyond [`crate::ServeConfig::max_track_failures`]
//! falls back to relocalization with the already-prepared frame.

use std::sync::Arc;
use std::time::Instant;

use tigris_geom::{PointCloud, RigidTransform};
use tigris_pipeline::{
    prepare_frame_with, register_prepared_with_prior, PrepareScratch, PreparedFrame, Stage,
};

use crate::error::ServeError;
use crate::reloc::{relocalize_prepared, Relocalization};
use crate::service::ServiceCore;
use crate::stats::SessionStats;

/// Which public phase a session is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPhase {
    /// No pose estimate: the next frame cold-starts.
    ColdStart,
    /// Tracking frame-to-frame from a relocalized pose.
    Tracking,
}

/// Private tracking state (the `Tracking` variant owns the previous
/// frame's preparation, boxed — it carries a whole prepared frame).
enum TrackState {
    Cold,
    Tracking(Box<Tracking>),
}

/// The payload of a tracking session.
struct Tracking {
    prev: PreparedFrame,
    pose: RigidTransform,
    velocity: Option<RigidTransform>,
    failures: usize,
}

impl std::fmt::Debug for TrackState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrackState::Cold => write!(f, "Cold"),
            TrackState::Tracking(t) => {
                write!(f, "Tracking {{ pose: {}, failures: {} }}", t.pose, t.failures)
            }
        }
    }
}

/// How one localized frame got its pose.
#[derive(Debug, Clone, Copy)]
pub enum StepKind {
    /// Cold-start relocalization against the snapshot, with its
    /// confidence report.
    Relocalized(Relocalization),
    /// Frame-to-frame tracking from the previous pose.
    Tracked {
        /// Relative transform from this frame to the previous one.
        relative: RigidTransform,
        /// KPCE correspondences surviving rejection.
        inliers: usize,
        /// ICP iterations the fine-tuning ran.
        icp_iterations: usize,
    },
}

/// One successfully localized frame.
#[derive(Debug, Clone, Copy)]
pub struct SessionStep {
    /// Session-local index of the frame (0-based over admitted frames).
    pub frame: usize,
    /// Estimated world pose of the frame (sensor → world, in the frozen
    /// map's frame).
    pub pose: RigidTransform,
    /// How the pose was obtained.
    pub kind: StepKind,
}

/// The session state machine itself — cold start, velocity-prior
/// tracking, loss budgets and per-session counters — detached from any
/// particular map backing. The whole-snapshot [`Session`] and the
/// sharded `shard::ShardSession` both drive this one implementation,
/// supplying only their own relocalization closure; "the two serving
/// front ends track identically" is therefore structural, not a pair of
/// hand-copied state machines kept in sync.
#[derive(Debug)]
pub(crate) struct TrackCore {
    state: TrackState,
    stats: SessionStats,
    /// Front-end scratch reused across every frame this session
    /// prepares, so steady-state preparation allocates nothing.
    scratch: PrepareScratch,
}

impl TrackCore {
    pub(crate) fn new() -> Self {
        TrackCore {
            state: TrackState::Cold,
            stats: SessionStats::default(),
            scratch: PrepareScratch::new(),
        }
    }

    pub(crate) fn phase(&self) -> SessionPhase {
        match self.state {
            TrackState::Cold => SessionPhase::ColdStart,
            TrackState::Tracking(_) => SessionPhase::Tracking,
        }
    }

    pub(crate) fn pose(&self) -> Option<&RigidTransform> {
        match &self.state {
            TrackState::Cold => None,
            TrackState::Tracking(t) => Some(&t.pose),
        }
    }

    pub(crate) fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Localizes one raw frame: prepare exactly once, then cold-start
    /// through `reloc` or track against the previous frame with the
    /// constant-velocity prior. `reloc` is the only map access — it is
    /// what distinguishes whole-snapshot from sharded serving.
    pub(crate) fn localize_with<R>(
        &mut self,
        frame: &PointCloud,
        registration: &tigris_pipeline::RegistrationConfig,
        max_track_failures: usize,
        mut reloc: R,
    ) -> Result<SessionStep, ServeError>
    where
        R: FnMut(&mut PreparedFrame) -> Result<Relocalization, ServeError>,
    {
        // One preparation per admitted frame — the query front end —
        // through the session-owned scratch, so a warm session prepares
        // without transient allocation.
        let mut prepared = prepare_frame_with(frame, registration, &mut self.scratch)?;
        let prof = prepared.prepare_profile();
        self.stats.normal_estimation_time += prof.time(Stage::NormalEstimation);
        self.stats.descriptor_time += prof.time(Stage::DescriptorCalculation);
        self.stats.prepare_scratch_bytes_grown += prof.scratch_bytes_grown;
        self.stats.prepare_scratch_reuses += prof.scratch_reuses;
        let index = self.stats.frames;
        self.stats.frames += 1;

        match std::mem::replace(&mut self.state, TrackState::Cold) {
            TrackState::Cold => self.cold_start(prepared, index, &mut reloc),
            TrackState::Tracking(mut tracking) => {
                let track_span = tigris_obs::span!("serve.track", frame = index);
                let matched = register_prepared_with_prior(
                    &mut prepared,
                    &mut tracking.prev,
                    registration,
                    tracking.velocity.as_ref(),
                );
                drop(track_span);
                match matched {
                    Ok(result) => {
                        let new_pose = tracking.pose * result.transform;
                        let step = SessionStep {
                            frame: index,
                            pose: new_pose,
                            kind: StepKind::Tracked {
                                relative: result.transform,
                                inliers: result.inlier_correspondences,
                                icp_iterations: result.icp_iterations,
                            },
                        };
                        self.stats.frames_tracked += 1;
                        self.state = TrackState::Tracking(Box::new(Tracking {
                            prev: prepared,
                            pose: new_pose,
                            velocity: Some(result.transform),
                            failures: 0,
                        }));
                        Ok(step)
                    }
                    Err(err) => {
                        self.stats.track_breaks += 1;
                        if tracking.failures < max_track_failures {
                            // Within the loss budget: keep the old
                            // reference and pose, drop the failed frame,
                            // surface the loss typed.
                            tracking.velocity = None;
                            tracking.failures += 1;
                            self.state = TrackState::Tracking(tracking);
                            Err(ServeError::Registration(err))
                        } else {
                            // Beyond the budget: the pose estimate is
                            // gone — fall back to cold start with the
                            // already-prepared frame.
                            self.cold_start(prepared, index, &mut reloc)
                        }
                    }
                }
            }
        }
    }

    /// Cold-start relocalization with an already-prepared frame; on
    /// success the frame becomes the tracking reference.
    fn cold_start<R>(
        &mut self,
        mut prepared: PreparedFrame,
        index: usize,
        reloc: &mut R,
    ) -> Result<SessionStep, ServeError>
    where
        R: FnMut(&mut PreparedFrame) -> Result<Relocalization, ServeError>,
    {
        let _span = tigris_obs::span!("serve.cold_start", frame = index);
        self.stats.relocalizations_attempted += 1;
        match reloc(&mut prepared) {
            Ok(reloc) => {
                self.stats.relocalizations_succeeded += 1;
                self.state = TrackState::Tracking(Box::new(Tracking {
                    prev: prepared,
                    pose: reloc.pose,
                    velocity: None,
                    failures: 0,
                }));
                Ok(SessionStep {
                    frame: index,
                    pose: reloc.pose,
                    kind: StepKind::Relocalized(reloc),
                })
            }
            Err(err) => {
                self.state = TrackState::Cold;
                Err(err)
            }
        }
    }
}

/// One client's localization session; see the [module docs](self).
///
/// Obtained from [`crate::LocalizationService::open_session`]; dropping
/// it releases its admission slot. Sessions are independent and `Send`:
/// move each to its own thread and localize concurrently — all shared
/// access goes through the `Arc`-shared snapshot.
#[derive(Debug)]
pub struct Session {
    id: usize,
    core: Arc<ServiceCore>,
    track: TrackCore,
}

impl Session {
    pub(crate) fn new(id: usize, core: Arc<ServiceCore>) -> Self {
        Session { id, core, track: TrackCore::new() }
    }

    /// The session's service-assigned id (dense, in admission order).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The session's current phase.
    pub fn phase(&self) -> SessionPhase {
        self.track.phase()
    }

    /// The current world-pose estimate (`None` while cold).
    pub fn pose(&self) -> Option<&RigidTransform> {
        self.track.pose()
    }

    /// This session's lifetime counters.
    pub fn stats(&self) -> &SessionStats {
        self.track.stats()
    }

    /// Localizes one raw frame (sensor coordinates) against the shared
    /// map: cold-start relocalization when the session has no pose,
    /// velocity-prior tracking otherwise. The frame's front end runs
    /// exactly once either way, and a successful frame's preparation is
    /// carried as the next step's tracking reference.
    ///
    /// # Errors
    ///
    /// [`ServeError::Saturated`] when the service's in-flight budget
    /// rejects the call (no work done);
    /// [`ServeError::Registration`] when the frame fails to prepare (the
    /// session state is unchanged) or a within-budget tracking loss
    /// occurred (the session keeps its previous reference);
    /// [`ServeError::RelocalizationFailed`] when a cold start (initial
    /// or after tracking loss) finds no verifiable pose — the session is
    /// cold afterwards.
    pub fn localize(&mut self, frame: &PointCloud) -> Result<SessionStep, ServeError> {
        self.core.begin_request()?;
        // The root of the request's trace tree: everything the frame
        // touches — preparation, relocalization gates, tracking, map
        // search — nests under this span.
        let _span = tigris_obs::span!("serve.localize", session = self.id, points = frame.len());
        let t0 = Instant::now();
        let before = *self.track.stats();
        let core = &self.core;
        let result = self.track.localize_with(
            frame,
            core.snapshot.registration_config(),
            core.config.max_track_failures,
            |prepared| relocalize_prepared(&*core.snapshot, prepared, &core.config.reloc),
        );
        let delta = self.track.stats().delta_since(&before);
        let latency = t0.elapsed();
        self.core.finish_request(latency, delta);
        // Tail sampling runs after metering (so the percentile baseline
        // includes this request) and after the root span is closed (so
        // its End record is in the flight ring when the subtree is cut).
        let root = _span.id();
        drop(_span);
        self.core.observe_tail(root, latency, result.is_err());
        result
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.core.close_session();
    }
}

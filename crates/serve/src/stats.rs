//! Serving metrics: admission, relocalization and tracking counters plus
//! request-latency percentiles, per session and service-wide.

use std::time::Duration;

/// Counters for one session's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Frames submitted to [`crate::Session::localize`] (admitted ones;
    /// saturation rejections are counted service-wide only).
    pub frames: usize,
    /// Cold-start relocalizations attempted.
    pub relocalizations_attempted: usize,
    /// Cold-start relocalizations that produced a pose.
    pub relocalizations_succeeded: usize,
    /// Frames tracked against the previous frame (velocity-prior path).
    pub frames_tracked: usize,
    /// Tracking failures that sent the session back toward cold start.
    pub track_breaks: usize,
}

/// Service-wide counters and latency summary, as returned by
/// [`crate::LocalizationService::stats`] (a consistent point-in-time
/// copy).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Sessions admitted over the service's lifetime.
    pub sessions_admitted: usize,
    /// Session opens rejected by the session budget.
    pub sessions_rejected: usize,
    /// Sessions currently open.
    pub sessions_active: usize,
    /// Localize calls rejected by the in-flight budget (no work done).
    pub frames_rejected: usize,
    /// Sum of every closed and open session's [`SessionStats::frames`].
    pub frames: usize,
    /// Cold-start relocalizations attempted, service-wide.
    pub relocalizations_attempted: usize,
    /// Cold-start relocalizations succeeded, service-wide.
    pub relocalizations_succeeded: usize,
    /// Frames tracked, service-wide.
    pub frames_tracked: usize,
    /// Tracking breaks, service-wide.
    pub track_breaks: usize,
    /// Latency distribution over every completed localize call.
    pub latency: LatencySummary,
}

/// Percentile summary of recorded request latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Completed requests recorded.
    pub count: usize,
    /// Median latency (nearest-rank).
    pub p50: Duration,
    /// 99th-percentile latency (nearest-rank).
    pub p99: Duration,
    /// Maximum observed latency.
    pub max: Duration,
    /// Mean latency.
    pub mean: Duration,
}

/// Accumulates per-request latencies and summarizes them on demand.
///
/// Samples are kept raw (one `Duration` per completed request) — at
/// serving scale a bounded reservoir would replace this, but exact
/// percentiles keep the tests and benches honest.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<Duration>,
}

impl LatencyRecorder {
    /// A recorder with no samples.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records one completed request.
    pub fn record(&mut self, latency: Duration) {
        self.samples.push(latency);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Summarizes the recorded samples (zeros when empty).
    ///
    /// Percentiles are nearest-rank over the sorted samples: `p50` is
    /// the smallest sample ≥ half the population, `p99` the smallest
    /// sample ≥ 99% of it.
    pub fn summarize(&self) -> LatencySummary {
        if self.samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let nearest_rank = |p: f64| {
            let rank = (p * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        let total: Duration = sorted.iter().sum();
        LatencySummary {
            count: sorted.len(),
            p50: nearest_rank(0.50),
            p99: nearest_rank(0.99),
            max: *sorted.last().expect("non-empty"),
            mean: total / sorted.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_summarizes_to_zeros() {
        let summary = LatencyRecorder::new().summarize();
        assert_eq!(summary, LatencySummary::default());
        assert_eq!(summary.count, 0);
    }

    #[test]
    fn percentiles_follow_nearest_rank() {
        let mut rec = LatencyRecorder::new();
        // 1..=100 ms, shuffled order must not matter.
        for i in (1..=100u64).rev() {
            rec.record(Duration::from_millis(i));
        }
        let s = rec.summarize();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p99, Duration::from_millis(99));
        assert_eq!(s.max, Duration::from_millis(100));
        assert_eq!(s.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut rec = LatencyRecorder::new();
        rec.record(Duration::from_millis(7));
        let s = rec.summarize();
        assert_eq!(s.p50, Duration::from_millis(7));
        assert_eq!(s.p99, Duration::from_millis(7));
        assert_eq!(s.max, Duration::from_millis(7));
        assert_eq!(s.mean, Duration::from_millis(7));
    }
}

//! Serving metrics: admission, relocalization and tracking counters plus
//! request-latency percentiles, per session and service-wide.

use std::sync::Arc;
use std::time::Duration;

use tigris_obs::{Histogram, HistogramConfig};

/// Counters for one session's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Frames submitted to [`crate::Session::localize`] (admitted ones;
    /// saturation rejections are counted service-wide only).
    pub frames: usize,
    /// Cold-start relocalizations attempted.
    pub relocalizations_attempted: usize,
    /// Cold-start relocalizations that produced a pose.
    pub relocalizations_succeeded: usize,
    /// Frames tracked against the previous frame (velocity-prior path).
    pub frames_tracked: usize,
    /// Tracking failures that sent the session back toward cold start.
    pub track_breaks: usize,
    /// Wall-clock spent in the normal-estimation stage of this session's
    /// frame preparations.
    pub normal_estimation_time: Duration,
    /// Wall-clock spent in the descriptor stage of this session's frame
    /// preparations.
    pub descriptor_time: Duration,
    /// Heap capacity (bytes) the session's reused front-end scratch grew
    /// by. Stops growing once the scratch is warm.
    pub prepare_scratch_bytes_grown: u64,
    /// Frame preparations that completed without growing any scratch
    /// buffer — allocation-free steady state.
    pub prepare_scratch_reuses: u64,
}

impl SessionStats {
    /// The per-counter increments between `before` and `self` — what one
    /// request contributed, for service-wide metering.
    pub fn delta_since(&self, before: &SessionStats) -> SessionStats {
        SessionStats {
            frames: self.frames - before.frames,
            relocalizations_attempted: self.relocalizations_attempted
                - before.relocalizations_attempted,
            relocalizations_succeeded: self.relocalizations_succeeded
                - before.relocalizations_succeeded,
            frames_tracked: self.frames_tracked - before.frames_tracked,
            track_breaks: self.track_breaks - before.track_breaks,
            normal_estimation_time: self.normal_estimation_time - before.normal_estimation_time,
            descriptor_time: self.descriptor_time - before.descriptor_time,
            prepare_scratch_bytes_grown: self.prepare_scratch_bytes_grown
                - before.prepare_scratch_bytes_grown,
            prepare_scratch_reuses: self.prepare_scratch_reuses - before.prepare_scratch_reuses,
        }
    }
}

/// Service-wide counters and latency summary, as returned by
/// [`crate::LocalizationService::stats`] (a consistent point-in-time
/// copy).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStats {
    /// Sessions admitted over the service's lifetime.
    pub sessions_admitted: usize,
    /// Session opens rejected by the session budget.
    pub sessions_rejected: usize,
    /// Sessions currently open.
    pub sessions_active: usize,
    /// Localize calls rejected by the in-flight budget (no work done).
    pub frames_rejected: usize,
    /// Sum of every closed and open session's [`SessionStats::frames`].
    pub frames: usize,
    /// Cold-start relocalizations attempted, service-wide.
    pub relocalizations_attempted: usize,
    /// Cold-start relocalizations succeeded, service-wide.
    pub relocalizations_succeeded: usize,
    /// Frames tracked, service-wide.
    pub frames_tracked: usize,
    /// Tracking breaks, service-wide.
    pub track_breaks: usize,
    /// Wall-clock in the normal-estimation stage of admitted frames'
    /// front ends, service-wide — with [`ServeStats::descriptor_time`]
    /// it attributes how much of the cold-start p50/p99 is the query
    /// front end rather than retrieval or verification.
    pub normal_estimation_time: Duration,
    /// Wall-clock in the descriptor stage of admitted frames' front
    /// ends, service-wide.
    pub descriptor_time: Duration,
    /// Bytes of front-end scratch growth across all sessions — flat once
    /// every session's scratch is warm.
    pub prepare_scratch_bytes_grown: u64,
    /// Allocation-free frame preparations across all sessions.
    pub prepare_scratch_reuses: u64,
    /// Latency distribution over every completed localize call.
    pub latency: LatencySummary,
    /// Tile residency counters — all zero for the whole-snapshot
    /// [`crate::LocalizationService`], live for the sharded
    /// [`crate::shard::ShardService`].
    pub tiles: TileStats,
}

/// Tile residency counters for the sharded serving layer: how often the
/// router's covering tiles were already resident, how much load/evict
/// churn the byte budget caused, and the resident footprint itself.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileStats {
    /// Tile lookups answered by an already-resident tile.
    pub hits: usize,
    /// Tile lookups that had to load the tile first.
    pub misses: usize,
    /// Tiles loaded (indices rebuilt) over the service's lifetime.
    pub loads: usize,
    /// Tiles evicted by the byte budget over the service's lifetime.
    pub evictions: usize,
    /// Tiles currently resident.
    pub resident_tiles: usize,
    /// Reclaimable bytes currently resident (the rebuilt per-submap
    /// indices; epoch payload archives are not charged — eviction cannot
    /// free them).
    pub resident_bytes: usize,
    /// High-water mark of [`TileStats::resident_bytes`].
    pub peak_resident_bytes: usize,
}

/// Percentile summary of recorded request latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Completed requests recorded.
    pub count: usize,
    /// Median latency (nearest-rank).
    pub p50: Duration,
    /// 99th-percentile latency (nearest-rank).
    pub p99: Duration,
    /// Maximum observed latency.
    pub max: Duration,
    /// Mean latency.
    pub mean: Duration,
}

/// The latency histogram's shape: microsecond ticks with 17 sub-bucket
/// bits — every latency below 2^17 µs (≈131 ms) lands in a width-1
/// bucket and is reported back **exactly**; above that, buckets widen
/// geometrically and a reported percentile is the bucket's lower bound,
/// low by a relative error below 2^-16 (≈0.0015%). Resolution is 1 µs
/// throughout (sub-microsecond latency detail truncates).
pub(crate) const LATENCY_HISTOGRAM: HistogramConfig = HistogramConfig { sub_bucket_bits: 17 };

/// Accumulates per-request latencies and summarizes them on demand.
///
/// Backed by the obs layer's lock-free, log-bucketed [`Histogram`]
/// in microsecond ticks (see `LATENCY_HISTOGRAM` in this module for
/// the exactness/error bound), registered in
/// the owning service's metrics registry as `serve.latency_us` — the
/// same distribution a registry snapshot or trace summary reports.
///
/// Cloning is cheap and **shares** the underlying histogram: the
/// service hands out clones so percentile walks can run outside its
/// request lock.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    hist: Arc<Histogram>,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        LatencyRecorder::new()
    }
}

impl LatencyRecorder {
    /// A recorder with no samples (standalone — not registered in any
    /// metrics registry).
    pub fn new() -> Self {
        LatencyRecorder { hist: Arc::new(Histogram::new(LATENCY_HISTOGRAM)) }
    }

    /// A recorder over an existing (typically registry-owned)
    /// histogram; must be shaped by [`LATENCY_HISTOGRAM`] for the
    /// documented exactness bound to hold.
    pub(crate) fn from_histogram(hist: Arc<Histogram>) -> Self {
        LatencyRecorder { hist }
    }

    /// Records one completed request (at microsecond resolution).
    pub fn record(&mut self, latency: Duration) {
        self.hist.record(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> usize {
        self.hist.count() as usize
    }

    /// The nearest-rank percentile of the recorded samples: the smallest
    /// sample ≥ `p` of the population (`None` when no sample was
    /// recorded). `p` outside `(0, 1]` is clamped — `p <= 0` answers the
    /// minimum, `p >= 1` (and a NaN `p`) the maximum, so a caller can
    /// never index out of the sample range on a tiny count.
    ///
    /// Exact for samples below ≈131 ms; above, the answer is the
    /// holding bucket's lower bound (see `LATENCY_HISTOGRAM`).
    pub fn percentile(&self, p: f64) -> Option<Duration> {
        self.hist.percentile(p).map(Duration::from_micros)
    }

    /// Summarizes the recorded samples (zeros when empty).
    ///
    /// Percentiles are nearest-rank over the histogram: `p50` is the
    /// smallest sample ≥ half the population, `p99` the smallest
    /// sample ≥ 99% of it. On tiny counts the rank degenerates safely:
    /// with one sample every percentile is that sample, and p99 equals
    /// the maximum for any count below 100. The maximum and mean are
    /// tracked exactly (to the recorder's 1 µs resolution) regardless
    /// of bucketing.
    pub fn summarize(&self) -> LatencySummary {
        let count = self.hist.count();
        if count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            count: count as usize,
            p50: self.percentile(0.50).unwrap_or_default(),
            p99: self.percentile(0.99).unwrap_or_default(),
            max: Duration::from_micros(self.hist.max()),
            mean: Duration::from_micros(self.hist.sum())
                / u32::try_from(count).unwrap_or(u32::MAX).max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_summarizes_to_zeros() {
        let summary = LatencyRecorder::new().summarize();
        assert_eq!(summary, LatencySummary::default());
        assert_eq!(summary.count, 0);
    }

    #[test]
    fn percentiles_follow_nearest_rank() {
        let mut rec = LatencyRecorder::new();
        // 1..=100 ms, shuffled order must not matter.
        for i in (1..=100u64).rev() {
            rec.record(Duration::from_millis(i));
        }
        let s = rec.summarize();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, Duration::from_millis(50));
        assert_eq!(s.p99, Duration::from_millis(99));
        assert_eq!(s.max, Duration::from_millis(100));
        assert_eq!(s.mean, Duration::from_micros(50_500));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut rec = LatencyRecorder::new();
        rec.record(Duration::from_millis(7));
        let s = rec.summarize();
        assert_eq!(s.p50, Duration::from_millis(7));
        assert_eq!(s.p99, Duration::from_millis(7));
        assert_eq!(s.max, Duration::from_millis(7));
        assert_eq!(s.mean, Duration::from_millis(7));
        // The percentile API agrees, at every p — including clamped ones.
        for p in [-1.0, 0.0, 0.01, 0.5, 0.99, 1.0, 2.0, f64::NAN] {
            assert_eq!(rec.percentile(p), Some(Duration::from_millis(7)), "p = {p}");
        }
    }

    #[test]
    fn empty_recorder_has_no_percentile() {
        let rec = LatencyRecorder::new();
        assert_eq!(rec.count(), 0);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(rec.percentile(p), None, "p = {p}");
        }
    }

    #[test]
    fn tiny_counts_degenerate_to_the_extremes() {
        // Two samples: nearest-rank p50 is the *lower* one (rank
        // ceil(0.5·2) = 1), p99 the upper (rank ceil(0.99·2) = 2).
        let mut rec = LatencyRecorder::new();
        rec.record(Duration::from_millis(30));
        rec.record(Duration::from_millis(10));
        let s = rec.summarize();
        assert_eq!(s.count, 2);
        assert_eq!(s.p50, Duration::from_millis(10));
        assert_eq!(s.p99, Duration::from_millis(30));
        assert_eq!(s.max, Duration::from_millis(30));
        assert_eq!(s.mean, Duration::from_millis(20));

        // Three samples: p50 is the median (rank 2), p99 still the max.
        rec.record(Duration::from_millis(20));
        let s = rec.summarize();
        assert_eq!(s.p50, Duration::from_millis(20));
        assert_eq!(s.p99, Duration::from_millis(30));

        // p99 equals the maximum for ANY count below 100: rank
        // ceil(0.99·n) = n exactly when n < 100.
        let mut rec = LatencyRecorder::new();
        for n in 1..=99u64 {
            rec.record(Duration::from_millis(n));
            assert_eq!(
                rec.percentile(0.99),
                Some(Duration::from_millis(n)),
                "p99 of {n} ascending samples"
            );
        }
        // …and at exactly 100 samples p99 is the 99th, not the max.
        rec.record(Duration::from_millis(100));
        assert_eq!(rec.summarize().p99, Duration::from_millis(99));
    }

    #[test]
    fn pathological_percentile_arguments_clamp_to_the_sample_range() {
        let mut rec = LatencyRecorder::new();
        for ms in [5u64, 15, 25] {
            rec.record(Duration::from_millis(ms));
        }
        assert_eq!(rec.percentile(-3.0), Some(Duration::from_millis(5)));
        assert_eq!(rec.percentile(0.0), Some(Duration::from_millis(5)));
        assert_eq!(rec.percentile(1.0), Some(Duration::from_millis(25)));
        assert_eq!(rec.percentile(7.5), Some(Duration::from_millis(25)));
        assert_eq!(rec.percentile(f64::NAN), Some(Duration::from_millis(25)));
    }

    #[test]
    fn percentiles_are_exact_on_bucket_boundaries_above_the_exact_region() {
        // Above the 2^17 µs exact region the histogram's buckets widen,
        // but a sample sitting exactly on a bucket boundary must come
        // back bit-for-bit: 2^18 µs and 2^18 + 2^2 µs are both slot
        // lower bounds of the second log group (width 4 µs).
        let mut rec = LatencyRecorder::new();
        for us in [1u64 << 18, (1 << 18) + 4, 1 << 20] {
            rec.record(Duration::from_micros(us));
        }
        assert_eq!(rec.percentile(0.0), Some(Duration::from_micros(1 << 18)));
        assert_eq!(rec.percentile(0.5), Some(Duration::from_micros((1 << 18) + 4)));
        assert_eq!(rec.percentile(1.0), Some(Duration::from_micros(1 << 20)));
        // Max and mean stay exact regardless of bucketing.
        let s = rec.summarize();
        assert_eq!(s.max, Duration::from_micros(1 << 20));
        assert_eq!(s.mean, Duration::from_micros((1 << 18) + ((1 << 18) + 4) + (1 << 20)) / 3);
    }

    #[test]
    fn off_boundary_samples_stay_within_the_documented_error_bound() {
        // An arbitrary (non-boundary) sample above the exact region is
        // reported as its bucket's lower bound: never above the true
        // value, and low by a relative error below 2^-16.
        let us = 300_007u64; // ≈300 ms, above the 131 ms exact region
        let mut rec = LatencyRecorder::new();
        rec.record(Duration::from_micros(us));
        let got = rec.percentile(0.5).unwrap().as_micros() as u64;
        assert!(got <= us);
        assert!((us - got) as f64 / us as f64 <= 1.0 / 65_536.0, "got {got} for {us}");
    }

    #[test]
    fn duplicate_samples_keep_percentiles_well_defined() {
        let mut rec = LatencyRecorder::new();
        for _ in 0..8 {
            rec.record(Duration::from_millis(4));
        }
        let s = rec.summarize();
        assert_eq!(s.p50, Duration::from_millis(4));
        assert_eq!(s.p99, Duration::from_millis(4));
        assert_eq!(s.max, Duration::from_millis(4));
        assert_eq!(s.mean, Duration::from_millis(4));
    }
}

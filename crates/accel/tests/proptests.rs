//! Property-based tests of the accelerator model: whatever the point set,
//! query stream and hardware configuration, the simulator must return
//! exact results (in exact mode), obey conservation laws, and respond
//! monotonically to resources.

use proptest::prelude::*;
use tigris_accel::{AcceleratorConfig, AcceleratorSim, BackendPolicy, MappingPolicy, SearchKind};
use tigris_core::{ApproxConfig, TwoStageKdTree};
use tigris_geom::Vec3;

fn point() -> impl Strategy<Value = Vec3> {
    (-30.0f64..30.0, -30.0f64..30.0, -5.0f64..5.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn cloud() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(point(), 16..400)
}

fn queries() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(point(), 1..60)
}

fn config() -> impl Strategy<Value = AcceleratorConfig> {
    (
        1usize..16,
        1usize..8,
        1usize..16,
        any::<bool>(),
        any::<bool>(),
        prop::bool::ANY,
        prop::bool::ANY,
        0usize..2048,
    )
        .prop_map(|(rus, sus, pes, fwd, byp, mqmn, hash, cache)| AcceleratorConfig {
            num_rus: rus,
            num_sus: sus,
            pes_per_su: pes,
            forwarding: fwd,
            bypassing: byp,
            backend: if mqmn { BackendPolicy::Mqmn } else { BackendPolicy::Mqsn },
            mapping: if hash { MappingPolicy::Hash } else { MappingPolicy::LowOrderBits },
            node_cache_points: cache,
            ..AcceleratorConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_nn_matches_software_for_any_config(
        pts in cloud(), qs in queries(), h in 0usize..8, cfg in config(),
    ) {
        let tree = TwoStageKdTree::build(&pts, h);
        let mut sim = AcceleratorSim::new(&tree, cfg);
        let report = sim.run(&qs, SearchKind::Nn);
        for (q, hw) in qs.iter().zip(&report.nn_results) {
            let sw = tree.nn(*q).unwrap();
            prop_assert_eq!(hw.unwrap().distance_squared, sw.distance_squared);
        }
    }

    #[test]
    fn exact_radius_counts_match_software(
        pts in cloud(), qs in queries(), h in 0usize..6, r in 0.1f64..10.0, cfg in config(),
    ) {
        let tree = TwoStageKdTree::build(&pts, h);
        let mut sim = AcceleratorSim::new(&tree, cfg);
        let report = sim.run(&qs, SearchKind::Radius(r));
        for (q, &count) in qs.iter().zip(&report.radius_result_counts) {
            prop_assert_eq!(count, tree.radius(*q, r).len());
        }
    }

    #[test]
    fn cycles_bound_both_ends(pts in cloud(), qs in queries(), h in 0usize..6, cfg in config()) {
        let tree = TwoStageKdTree::build(&pts, h);
        let mut sim = AcceleratorSim::new(&tree, cfg);
        let report = sim.run(&qs, SearchKind::Nn);
        prop_assert_eq!(report.cycles, report.fe_cycles.max(report.be_cycles));
        prop_assert!(report.pe_utilization >= 0.0 && report.pe_utilization <= 1.0 + 1e-12);
        if !qs.is_empty() && !pts.is_empty() {
            prop_assert!(report.cycles > 0);
        }
    }

    #[test]
    fn more_rus_never_hurt_the_front_end(
        pts in cloud(), qs in queries(), h in 1usize..6,
    ) {
        let tree = TwoStageKdTree::build(&pts, h);
        let mut prev = u64::MAX;
        for rus in [1usize, 2, 4, 8, 32] {
            let cfg = AcceleratorConfig { num_rus: rus, ..AcceleratorConfig::default() };
            let mut sim = AcceleratorSim::new(&tree, cfg);
            let fe = sim.run(&qs, SearchKind::Nn).fe_cycles;
            prop_assert!(fe <= prev, "{rus} RUs: {fe} > {prev}");
            prev = fe;
        }
    }

    #[test]
    fn optimization_flags_order_fe_cycles(
        pts in cloud(), qs in queries(), h in 1usize..7,
    ) {
        let tree = TwoStageKdTree::build(&pts, h);
        let fe = |fwd: bool, byp: bool| {
            let cfg = AcceleratorConfig {
                forwarding: fwd,
                bypassing: byp,
                num_rus: 4,
                ..AcceleratorConfig::default()
            };
            let mut sim = AcceleratorSim::new(&tree, cfg);
            sim.run(&qs, SearchKind::Nn).fe_cycles
        };
        let no_opt = fe(false, false);
        let bypass = fe(false, true);
        let both = fe(true, true);
        prop_assert!(bypass <= no_opt);
        prop_assert!(both <= bypass);
    }

    #[test]
    fn node_cache_redirects_but_conserves_traffic(
        pts in cloud(), qs in queries(), h in 1usize..5,
    ) {
        let tree = TwoStageKdTree::build(&pts, h);
        let run = |cache: usize| {
            let cfg = AcceleratorConfig {
                node_cache_points: cache,
                ..AcceleratorConfig::default()
            };
            let mut sim = AcceleratorSim::new(&tree, cfg);
            sim.run(&qs, SearchKind::Nn).traffic
        };
        let cold = run(0);
        let warm = run(100_000);
        // The cache redirects node-set bytes, never creates or destroys them.
        prop_assert_eq!(
            warm.points_buffer + warm.node_cache,
            cold.points_buffer + cold.node_cache
        );
        prop_assert_eq!(cold.node_cache, 0);
        // Non-node traffic identical.
        prop_assert_eq!(warm.query_stacks, cold.query_stacks);
        prop_assert_eq!(warm.fe_query_queue, cold.fe_query_queue);
    }

    #[test]
    fn approximate_nn_respects_triangle_bound(
        pts in prop::collection::vec(point(), 64..400),
        qs in queries(),
        thd in 0.0f64..4.0,
    ) {
        let tree = TwoStageKdTree::build(&pts, 3);
        let cfg = AcceleratorConfig {
            approx: Some(ApproxConfig { nn_threshold: thd, ..Default::default() }),
            ..AcceleratorConfig::default()
        };
        let mut sim = AcceleratorSim::new(&tree, cfg);
        let report = sim.run(&qs, SearchKind::Nn);
        for (q, hw) in qs.iter().zip(&report.nn_results) {
            let sw = tree.nn(*q).unwrap();
            let hw = hw.unwrap();
            prop_assert!(hw.distance() <= sw.distance() + 2.0 * thd + 1e-9);
        }
    }

    #[test]
    fn approximate_radius_is_sound(
        pts in prop::collection::vec(point(), 64..400),
        qs in queries(),
        r in 0.5f64..8.0,
    ) {
        let tree = TwoStageKdTree::build(&pts, 3);
        let cfg = AcceleratorConfig {
            approx: Some(ApproxConfig::default()),
            ..AcceleratorConfig::default()
        };
        let mut sim = AcceleratorSim::new(&tree, cfg);
        let report = sim.run(&qs, SearchKind::Radius(r));
        for (q, &count) in qs.iter().zip(&report.radius_result_counts) {
            // Followers can only miss points, never invent them.
            prop_assert!(count <= tree.radius(*q, r).len());
        }
    }

    #[test]
    fn energy_is_positive_and_finite(pts in cloud(), qs in queries(), cfg in config()) {
        let tree = TwoStageKdTree::build(&pts, 3);
        let mut sim = AcceleratorSim::new(&tree, cfg);
        let report = sim.run(&qs, SearchKind::Nn);
        let e = report.energy.total_joules();
        prop_assert!(e.is_finite() && e >= 0.0);
        if report.cycles > 0 {
            prop_assert!(e > 0.0);
            prop_assert!(report.power_watts().is_finite());
        }
    }

    #[test]
    fn backend_policies_agree_on_results(
        pts in cloud(), qs in queries(), h in 0usize..6,
    ) {
        let tree = TwoStageKdTree::build(&pts, h);
        let run = |backend| {
            let cfg = AcceleratorConfig { backend, ..AcceleratorConfig::default() };
            let mut sim = AcceleratorSim::new(&tree, cfg);
            sim.run(&qs, SearchKind::Nn).nn_results
        };
        let mqsn = run(BackendPolicy::Mqsn);
        let mqmn = run(BackendPolicy::Mqmn);
        for (a, b) in mqsn.iter().zip(&mqmn) {
            prop_assert_eq!(a.unwrap().index, b.unwrap().index);
        }
    }
}

//! Front-end recursion-unit timing model (paper Sec. 5.2, Fig. 9).
//!
//! An RU processes one query at a time, iteratively popping top-tree nodes
//! from the query's stack through six stages — FQ (fetch query), RS (read
//! stack), RN (read node), CD (compute distance), PI (push & insert), CL
//! (cleanup/issue). The PI→RS dependency stalls the pipeline 3 cycles
//! between consecutive nodes:
//!
//! * **No optimization** — every popped node occupies 1 + 3 stall cycles.
//! * **Node bypassing** — a popped node whose recorded bound proves it
//!   prunable exits after RN (1 cycle), skipping CD/PI.
//! * **Node forwarding** — PI forwards the next node directly to RN, and
//!   the push-order decision moves into CD, removing all remaining stalls:
//!   expanded nodes take 1 cycle each.

/// Per-node cycle cost of the RU under given optimization flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuCost {
    /// Cycles per expanded (distance-computed) node.
    pub per_expanded: u64,
    /// Cycles per bypassed (popped-but-pruned) node.
    pub per_bypassed: u64,
    /// Fixed per-query overhead (FQ + CL).
    pub per_query: u64,
}

impl RuCost {
    /// Derives the per-node costs from the optimization flags.
    pub fn from_flags(forwarding: bool, bypassing: bool) -> Self {
        // Full iteration: RS RN CD PI = 4 cycles with the 3-cycle stall
        // folded in (1 issue + 3 stall); forwarding collapses it to 1.
        let per_expanded = if forwarding { 1 } else { 4 };
        // A bypassed node is identified at RN; with bypassing it frees the
        // pipeline immediately (1 cycle), otherwise it flows through like a
        // normal node.
        let per_bypassed = if bypassing { 1 } else { per_expanded };
        RuCost { per_expanded, per_bypassed, per_query: 2 }
    }

    /// Cycles for one query that expanded `expanded` nodes and bypassed
    /// `bypassed` nodes in the top-tree.
    pub fn query_cycles(&self, expanded: u64, bypassed: u64) -> u64 {
        self.per_query + expanded * self.per_expanded + bypassed * self.per_bypassed
    }
}

/// Front-end makespan: schedules per-query cycle costs over `num_rus`
/// units, each processing one query at a time, queries dispatched in order
/// to the earliest-free RU (the FE Query Queue discipline).
///
/// # Panics
///
/// Panics when `num_rus == 0`.
pub fn fe_makespan(query_costs: &[u64], num_rus: usize) -> u64 {
    assert!(num_rus > 0, "need at least one RU");
    let mut free_at = vec![0u64; num_rus.min(query_costs.len()).max(1)];
    for &cost in query_costs {
        // Earliest-free RU takes the next query.
        let (idx, &t) = free_at.iter().enumerate().min_by_key(|(_, &t)| t).unwrap();
        let _ = t;
        free_at[idx] += cost;
    }
    free_at.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_combinations_order_costs() {
        let no_opt = RuCost::from_flags(false, false);
        let bypass = RuCost::from_flags(false, true);
        let both = RuCost::from_flags(true, true);
        assert_eq!(no_opt.per_expanded, 4);
        assert_eq!(no_opt.per_bypassed, 4);
        assert_eq!(bypass.per_bypassed, 1);
        assert_eq!(both.per_expanded, 1);
        assert_eq!(both.per_bypassed, 1);

        // For a mixed workload: no-opt ≥ bypass ≥ both.
        let q = |c: RuCost| c.query_cycles(10, 5);
        assert!(q(no_opt) > q(bypass));
        assert!(q(bypass) > q(both));
    }

    #[test]
    fn query_cycles_formula() {
        let c = RuCost { per_expanded: 4, per_bypassed: 1, per_query: 2 };
        assert_eq!(c.query_cycles(3, 2), 2 + 12 + 2);
        assert_eq!(c.query_cycles(0, 0), 2);
    }

    #[test]
    fn makespan_single_ru_is_sum() {
        assert_eq!(fe_makespan(&[3, 4, 5], 1), 12);
    }

    #[test]
    fn makespan_many_rus_is_max() {
        assert_eq!(fe_makespan(&[3, 4, 5], 8), 5);
    }

    #[test]
    fn makespan_balances_load() {
        // Two RUs, costs 5,1,1,1,1,1 in order: RU0 gets 5; RU1 gets the 1s.
        assert_eq!(fe_makespan(&[5, 1, 1, 1, 1, 1], 2), 5);
        // Greedy in-order: 4,4,1,1 on 2 RUs → 4+1 = 5.
        assert_eq!(fe_makespan(&[4, 4, 1, 1], 2), 5);
    }

    #[test]
    fn makespan_empty() {
        assert_eq!(fe_makespan(&[], 4), 0);
    }

    #[test]
    #[should_panic(expected = "at least one RU")]
    fn makespan_zero_rus_panics() {
        fe_makespan(&[1], 0);
    }

    #[test]
    fn more_rus_never_slower() {
        let costs: Vec<u64> = (0..100).map(|i| (i % 17) + 1).collect();
        let mut prev = u64::MAX;
        for rus in [1, 2, 4, 8, 16, 32] {
            let m = fe_makespan(&costs, rus);
            assert!(m <= prev);
            prev = m;
        }
    }
}

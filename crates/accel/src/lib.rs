//! Cycle-level model of the Tigris KD-tree search accelerator (paper
//! Sec. 5, Fig. 8–10).
//!
//! The accelerator has a **front-end** of Recursion Units (RUs), each
//! walking one query through the top-tree via a six-stage pipeline
//! (FQ/RS/RN/CD/PI/CL) with *node forwarding* and *node bypassing*
//! eliminating the stack-dependency stalls, and a **back-end** of Search
//! Units (SUs), each a systolic array of Processing Elements (PEs)
//! exhaustively scanning leaf node-sets in a query-stationary dataflow.
//! A query-distribution network routes queries from RUs to SUs by leaf id;
//! a node cache captures node-set reuse; per-leaf leader buffers implement
//! the approximate search of Algorithm 1 in hardware.
//!
//! This crate models that machine at cycle granularity:
//!
//! * [`ru`] — replays each query's top-tree traversal exactly as the RU
//!   executes it (pop-time pruning, DFS stack) and derives its cycle cost
//!   under the chosen optimization flags.
//! * [`su`] — schedules leaf scans over SUs/PEs under the MQSN or MQMN
//!   issue policy, models batching, pipeline fill, the leader check and the
//!   node cache.
//! * [`sim`] — ties both together into end-to-end search simulation,
//!   returning cycles, per-buffer memory traffic, energy and the actual
//!   search results (bit-identical to the software two-stage search in
//!   exact mode).
//! * [`energy`]/[`area`] — the analytic energy and area models substituting
//!   for the paper's synthesis flow (constants calibrated to the published
//!   breakdowns; see DESIGN.md).
//! * [`baseline`] — CPU/GPU cost models for the comparison systems.
//! * [`backend`] — the accelerator as an **online** search backend:
//!   [`AccelBackend`] implements `tigris_core::SearchIndex` and registers
//!   as `"accelerator"`, so the registration pipeline, odometer and DSE
//!   sweeps can run end-to-end *on* the simulated machine (not just replay
//!   its logs), accumulating cycles/energy in an [`AccelMeter`].
//!
//! # Example
//!
//! ```
//! use tigris_accel::{AcceleratorConfig, AcceleratorSim, SearchKind};
//! use tigris_core::TwoStageKdTree;
//! use tigris_geom::Vec3;
//!
//! let pts: Vec<Vec3> = (0..4096)
//!     .map(|i| Vec3::new((i % 64) as f64, (i / 64) as f64, 0.0))
//!     .collect();
//! let tree = TwoStageKdTree::build(&pts, 6);
//! let queries: Vec<Vec3> = (0..256).map(|i| Vec3::new(i as f64 * 0.2, 3.0, 0.5)).collect();
//!
//! let mut sim = AcceleratorSim::new(&tree, AcceleratorConfig::default());
//! let report = sim.run_nn(&queries);
//! assert!(report.cycles > 0);
//! // Results are exact: identical to the software search.
//! assert_eq!(report.nn_results[0].unwrap().index, tree.nn(queries[0]).unwrap().index);
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod backend;
pub mod baseline;
pub mod cache;
pub mod config;
pub mod energy;
pub mod memory;
pub mod ru;
pub mod sim;
pub mod su;

pub use area::{area_report, AreaReport};
pub use backend::{
    register_accelerator_backend, register_accelerator_backend_as, AccelBackend, AccelMeter,
};
pub use baseline::{BaselineModel, BaselineReport};
pub use config::{AcceleratorConfig, BackendPolicy, MappingPolicy};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use memory::TrafficReport;
pub use sim::{AcceleratorSim, SearchKind, SimReport};

//! Analytic energy model (substituting the paper's PrimeTime-PX +
//! SRAM-compiler + Micron DDR4 flow; see DESIGN.md).
//!
//! Energy is events × per-event constants. The constants are calibrated so
//! the breakdown on a representative dense workload reproduces the paper's
//! Sec. 6.3 numbers — PE ≈ 53.7%, SRAM read ≈ 34.8%, SRAM write ≈ 8.0%,
//! leakage ≈ 3.3%, DRAM ≈ 0.2% — and the absolute power lands in the
//! 4–36 W envelope of Fig. 14a.

use crate::memory::TrafficReport;

/// Energy per category, joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Distance-datapath (PE + RU compute) energy.
    pub pe: f64,
    /// SRAM read energy.
    pub sram_read: f64,
    /// SRAM write energy.
    pub sram_write: f64,
    /// Leakage energy (power × time).
    pub leakage: f64,
    /// DRAM energy.
    pub dram: f64,
}

impl EnergyBreakdown {
    /// Total energy, joules.
    pub fn total_joules(&self) -> f64 {
        self.pe + self.sram_read + self.sram_write + self.leakage + self.dram
    }

    /// Fraction of total in each category: `(pe, sram_read, sram_write,
    /// leakage, dram)`; zeros when total is zero.
    pub fn fractions(&self) -> (f64, f64, f64, f64, f64) {
        let t = self.total_joules();
        if t == 0.0 {
            return (0.0, 0.0, 0.0, 0.0, 0.0);
        }
        (self.pe / t, self.sram_read / t, self.sram_write / t, self.leakage / t, self.dram / t)
    }
}

/// Per-event energy constants (16 nm class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Joules per distance operation (one point through a PE / one RU CD).
    pub per_distance_op: f64,
    /// Joules per byte read from the large SRAM buffers.
    pub per_sram_read_byte: f64,
    /// Joules per byte written to SRAM.
    pub per_sram_write_byte: f64,
    /// Joules per byte of DRAM traffic.
    pub per_dram_byte: f64,
    /// Leakage power, watts.
    pub leakage_watts: f64,
    /// Fraction of each buffer's traffic that is writes (reads get the
    /// rest): stacks see pushes, results see result stores; the rest of
    /// the buffers are read-dominated.
    pub stack_write_fraction: f64,
    /// Write fraction of Result Buffer traffic.
    pub result_write_fraction: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            per_distance_op: 20e-12,
            per_sram_read_byte: 9.6e-12,
            per_sram_write_byte: 6.0e-12,
            per_dram_byte: 20e-12,
            leakage_watts: 0.32,
            stack_write_fraction: 2.0 / 3.0, // 2 pushes per pop
            result_write_fraction: 0.8,
        }
    }
}

impl EnergyModel {
    /// Computes the breakdown for `distance_ops` datapath operations, the
    /// given memory traffic, and `seconds` of elapsed time.
    pub fn compute(
        &self,
        distance_ops: u64,
        traffic: &TrafficReport,
        seconds: f64,
    ) -> EnergyBreakdown {
        let read_bytes = (traffic.fe_query_queue / 2)
            + traffic.query_buffer
            + (traffic.query_stacks as f64 * (1.0 - self.stack_write_fraction)) as u64
            + (traffic.result_buffer as f64 * (1.0 - self.result_write_fraction)) as u64
            + traffic.be_query_buffer / 2
            + traffic.node_cache
            + traffic.points_buffer;
        let write_bytes = traffic.total_sram() - read_bytes;

        EnergyBreakdown {
            pe: distance_ops as f64 * self.per_distance_op,
            sram_read: read_bytes as f64 * self.per_sram_read_byte,
            sram_write: write_bytes as f64 * self.per_sram_write_byte,
            leakage: self.leakage_watts * seconds,
            dram: traffic.dram as f64 * self.per_dram_byte,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_inputs_zero_energy() {
        let m = EnergyModel::default();
        let e = m.compute(0, &TrafficReport::default(), 0.0);
        assert_eq!(e.total_joules(), 0.0);
        assert_eq!(e.fractions(), (0.0, 0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn energy_scales_with_work() {
        let m = EnergyModel::default();
        let t = TrafficReport { points_buffer: 1000, ..Default::default() };
        let a = m.compute(1000, &t, 1e-6);
        let t2 = TrafficReport { points_buffer: 2000, ..Default::default() };
        let b = m.compute(2000, &t2, 2e-6);
        assert!((b.total_joules() - 2.0 * a.total_joules()).abs() < 1e-15);
    }

    #[test]
    fn fractions_sum_to_one() {
        let m = EnergyModel::default();
        let t = TrafficReport {
            points_buffer: 5000,
            query_stacks: 2000,
            result_buffer: 500,
            dram: 100,
            ..Default::default()
        };
        let e = m.compute(10_000, &t, 1e-5);
        let (a, b, c, d, f) = e.fractions();
        assert!((a + b + c + d + f - 1.0).abs() < 1e-12);
        assert!(a > 0.0 && b > 0.0 && c > 0.0 && d > 0.0 && f > 0.0);
    }

    #[test]
    fn representative_workload_breakdown_shape() {
        // A DP4-like dense workload: PE energy dominates, then SRAM reads,
        // then writes; leakage small; DRAM tiny (paper Sec. 6.3).
        let m = EnergyModel::default();
        // 1024 PEs at ~50% utilization for 100 µs at 500 MHz ≈ 2.6e7 ops.
        let ops = 26_000_000u64;
        // Node streams shared ~16-wide: bytes ≈ ops/16 × 16 B ≈ 2.6e7.
        let traffic = TrafficReport {
            points_buffer: 20_000_000,
            node_cache: 6_000_000,
            query_stacks: 9_000_000,
            query_buffer: 3_000_000,
            fe_query_queue: 3_000_000,
            be_query_buffer: 3_000_000,
            result_buffer: 4_000_000,
            dram: 100_000,
        };
        let e = m.compute(ops, &traffic, 100e-6);
        let (pe, rd, wr, leak, dram) = e.fractions();
        assert!(pe > 0.45 && pe < 0.65, "pe = {pe}");
        assert!(rd > 0.2 && rd < 0.45, "sram read = {rd}");
        assert!(wr > 0.03 && wr < 0.15, "sram write = {wr}");
        assert!(leak > 0.01 && leak < 0.10, "leakage = {leak}");
        assert!(dram < 0.01, "dram = {dram}");
    }
}

//! Back-end search-unit timing model (paper Sec. 5.3, Fig. 10).
//!
//! Each SU owns a BE Query Buffer, query-issue logic, and a 1D systolic
//! array of PEs in a query-stationary dataflow: queries pin to PEs and the
//! leaf's node-set streams through, one point per cycle, with no stalls
//! (no inter-node dependencies). Leaf-to-SU mapping uses the leaf id's
//! low-order bits (the paper finds performance insensitive to the policy).
//!
//! Under **MQSN** the issue logic gathers up to `pes_per_su` queries bound
//! for the *same* leaf from a bounded window of the BQB, so one node-set
//! stream feeds all PEs; under **MQMN** any query can issue to any free PE
//! at the cost of a node-set stream per query (≈4× traffic).

use crate::cache::NodeCache;
use crate::config::{AcceleratorConfig, BackendPolicy};
use crate::memory::{TrafficReport, POINT_BYTES};

/// One unit of back-end work: a query scanning one leaf (exhaustively or
/// via its leader's result set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafTask {
    /// Query index (for bookkeeping).
    pub query: u32,
    /// Target leaf id.
    pub leaf: u32,
    /// Points the PE streams for this task: the leaf-set size on the
    /// precise path, the leader's result count on the follower path.
    pub scan_points: u32,
    /// Leader-distance checks performed before the path decision
    /// (Algorithm 1's `getMinDist`), executed on the PEs.
    pub leader_checks: u32,
    /// `true` when the scan streams from the Result Buffer (follower path)
    /// instead of the Input Point Buffer.
    pub follower: bool,
}

/// Back-end simulation outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BackendReport {
    /// Back-end makespan in cycles (max over SUs).
    pub cycles: u64,
    /// PE-cycles actually spent streaming points.
    pub pe_busy_cycles: u64,
    /// PE-cycles available during the makespan (`total PEs × cycles`).
    pub pe_capacity_cycles: u64,
    /// Batches issued (MQSN) or tasks issued (MQMN).
    pub batches: u64,
    /// Node-cache hits (MQSN only).
    pub cache_hits: u64,
    /// Memory traffic attributable to the back-end.
    pub traffic: TrafficReport,
}

impl BackendReport {
    /// PE utilization in `[0, 1]`.
    pub fn pe_utilization(&self) -> f64 {
        if self.pe_capacity_cycles == 0 {
            0.0
        } else {
            self.pe_busy_cycles as f64 / self.pe_capacity_cycles as f64
        }
    }
}

/// Pipeline fill/drain of the 3-stage PE datapath.
const PIPE_FILL: u64 = 3;
/// Amortized query-issue overhead per batch (the associative BQB search,
/// performed 32 entries at a time, costs two orders of magnitude less than
/// the scans it feeds — paper Sec. 5.3).
const ISSUE_OVERHEAD: u64 = 2;

/// Schedules `tasks` (in arrival order) over the back-end and returns the
/// timing/traffic report. `leaf_sizes[leaf]` gives each leaf's node-set
/// size (for cache accounting).
pub fn run_backend(
    tasks: &[LeafTask],
    leaf_sizes: &[usize],
    cfg: &AcceleratorConfig,
    cache: &mut NodeCache,
) -> BackendReport {
    let mut report = BackendReport::default();
    if tasks.is_empty() || cfg.num_sus == 0 || cfg.pes_per_su == 0 {
        return report;
    }

    // Distribute to SUs per the configured mapping policy.
    let mut per_su: Vec<Vec<LeafTask>> = vec![Vec::new(); cfg.num_sus];
    for t in tasks {
        per_su[cfg.mapping.su_for(t.leaf, cfg.num_sus)].push(*t);
    }

    let mut su_cycles = vec![0u64; cfg.num_sus];
    for (su, queue) in per_su.iter().enumerate() {
        match cfg.backend {
            BackendPolicy::Mqsn => {
                su_cycles[su] = run_su_mqsn(queue, leaf_sizes, cfg, cache, &mut report);
            }
            BackendPolicy::Mqmn => {
                su_cycles[su] = run_su_mqmn(queue, leaf_sizes, cfg, &mut report);
            }
        }
    }

    report.cycles = su_cycles.into_iter().max().unwrap_or(0);
    report.pe_capacity_cycles = report.cycles * cfg.total_pes() as u64;
    report
}

/// MQSN: batch same-leaf queries from a bounded issue window; one node-set
/// stream per batch feeds all batched PEs.
fn run_su_mqsn(
    queue: &[LeafTask],
    leaf_sizes: &[usize],
    cfg: &AcceleratorConfig,
    cache: &mut NodeCache,
    report: &mut BackendReport,
) -> u64 {
    let mut cycles = 0u64;
    let mut pending: std::collections::VecDeque<LeafTask> = queue.iter().copied().collect();
    while let Some(head) = pending.pop_front() {
        // Gather same-leaf, same-path companions from the issue window.
        let mut batch = vec![head];
        let window = cfg.issue_window.min(pending.len());
        let mut kept: Vec<LeafTask> = Vec::with_capacity(pending.len());
        for (scanned, t) in pending.drain(..).enumerate() {
            if scanned < window
                && batch.len() < cfg.pes_per_su
                && t.leaf == head.leaf
                && t.follower == head.follower
                && t.scan_points == head.scan_points
            {
                batch.push(t);
            } else {
                kept.push(t);
            }
        }
        pending = kept.into();

        let leader_checks = batch.iter().map(|t| t.leader_checks as u64).max().unwrap_or(0);
        let scan = head.scan_points as u64;
        let batch_cycles = ISSUE_OVERHEAD + PIPE_FILL + leader_checks + scan;
        cycles += batch_cycles;
        report.batches += 1;
        for t in &batch {
            report.pe_busy_cycles += t.scan_points as u64 + t.leader_checks as u64;
            // Per-task bookkeeping traffic: BQB write+read, query-point read.
            report.traffic.be_query_buffer += 2 * POINT_BYTES;
            report.traffic.query_buffer += POINT_BYTES;
        }
        // One node-set stream per batch.
        let bytes = scan * POINT_BYTES;
        if head.follower {
            // Follower scans stream from the Result Buffer.
            report.traffic.result_buffer += bytes;
        } else {
            let size = leaf_sizes.get(head.leaf as usize).copied().unwrap_or(scan as usize);
            if cache.access(head.leaf, size) {
                report.cache_hits += 1;
                report.traffic.node_cache += bytes;
            } else {
                report.traffic.points_buffer += bytes;
            }
        }
    }
    cycles
}

/// MQMN: every task issues independently to the next free PE; each task
/// streams its own node set (no sharing, no node cache benefit).
fn run_su_mqmn(
    queue: &[LeafTask],
    leaf_sizes: &[usize],
    cfg: &AcceleratorConfig,
    report: &mut BackendReport,
) -> u64 {
    let _ = leaf_sizes;
    let mut pe_free = vec![0u64; cfg.pes_per_su];
    for t in queue {
        let (idx, &at) = pe_free.iter().enumerate().min_by_key(|(_, &v)| v).unwrap();
        let cost = ISSUE_OVERHEAD + PIPE_FILL + t.leader_checks as u64 + t.scan_points as u64;
        pe_free[idx] = at + cost;
        report.batches += 1;
        report.pe_busy_cycles += t.scan_points as u64 + t.leader_checks as u64;
        report.traffic.be_query_buffer += 2 * POINT_BYTES;
        report.traffic.query_buffer += POINT_BYTES;
        let bytes = t.scan_points as u64 * POINT_BYTES;
        if t.follower {
            report.traffic.result_buffer += bytes;
        } else {
            report.traffic.points_buffer += bytes;
        }
    }
    pe_free.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(query: u32, leaf: u32, scan: u32) -> LeafTask {
        LeafTask { query, leaf, scan_points: scan, leader_checks: 0, follower: false }
    }

    fn cfg(sus: usize, pes: usize, backend: BackendPolicy) -> AcceleratorConfig {
        AcceleratorConfig {
            num_sus: sus,
            pes_per_su: pes,
            backend,
            node_cache_points: 0,
            ..AcceleratorConfig::default()
        }
    }

    #[test]
    fn empty_tasks() {
        let mut cache = NodeCache::new(0);
        let r = run_backend(&[], &[], &cfg(4, 4, BackendPolicy::Mqsn), &mut cache);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.pe_utilization(), 0.0);
    }

    #[test]
    fn mqsn_batches_same_leaf_queries() {
        // 4 queries to the same leaf, 4 PEs: one batch.
        let tasks: Vec<LeafTask> = (0..4).map(|q| task(q, 0, 100)).collect();
        let mut cache = NodeCache::new(0);
        let r = run_backend(&tasks, &[100], &cfg(1, 4, BackendPolicy::Mqsn), &mut cache);
        assert_eq!(r.batches, 1);
        assert_eq!(r.cycles, ISSUE_OVERHEAD + PIPE_FILL + 100);
        assert_eq!(r.pe_busy_cycles, 400);
        // One stream of the node set.
        assert_eq!(r.traffic.points_buffer, 100 * POINT_BYTES);
    }

    #[test]
    fn mqsn_splits_batches_beyond_pe_count() {
        let tasks: Vec<LeafTask> = (0..6).map(|q| task(q, 0, 50)).collect();
        let mut cache = NodeCache::new(0);
        let r = run_backend(&tasks, &[50], &cfg(1, 4, BackendPolicy::Mqsn), &mut cache);
        assert_eq!(r.batches, 2, "6 same-leaf queries on 4 PEs = 2 batches");
        assert_eq!(r.traffic.points_buffer, 2 * 50 * POINT_BYTES);
    }

    #[test]
    fn mqsn_different_leaves_do_not_batch() {
        let tasks = vec![task(0, 0, 50), task(1, 2, 50)]; // both map to SU 0 of 2 SUs
        let mut cache = NodeCache::new(0);
        let r = run_backend(&tasks, &[50, 50, 50], &cfg(2, 4, BackendPolicy::Mqsn), &mut cache);
        assert_eq!(r.batches, 2);
    }

    #[test]
    fn mqmn_is_faster_but_streams_more() {
        // Many distinct leaves: MQSN can't batch; MQMN runs them in
        // parallel on separate PEs.
        let tasks: Vec<LeafTask> = (0..8).map(|q| task(q, q * 2, 100)).collect(); // all even leaves → SU 0 of 2? leaf%2==0 → SU0.
        let leaf_sizes = vec![100; 16];
        let mut c1 = NodeCache::new(0);
        let mqsn = run_backend(&tasks, &leaf_sizes, &cfg(2, 8, BackendPolicy::Mqsn), &mut c1);
        let mut c2 = NodeCache::new(0);
        let mqmn = run_backend(&tasks, &leaf_sizes, &cfg(2, 8, BackendPolicy::Mqmn), &mut c2);
        assert!(mqmn.cycles < mqsn.cycles, "mqmn {} !< mqsn {}", mqmn.cycles, mqsn.cycles);
        // Same number of node-set streams here (MQSN couldn't share), but
        // with shared leaves MQSN wins on traffic:
        let shared: Vec<LeafTask> = (0..8).map(|q| task(q, 0, 100)).collect();
        let mut c3 = NodeCache::new(0);
        let mqsn_shared =
            run_backend(&shared, &leaf_sizes, &cfg(2, 8, BackendPolicy::Mqsn), &mut c3);
        let mut c4 = NodeCache::new(0);
        let mqmn_shared =
            run_backend(&shared, &leaf_sizes, &cfg(2, 8, BackendPolicy::Mqmn), &mut c4);
        assert!(mqsn_shared.traffic.points_buffer < mqmn_shared.traffic.points_buffer);
    }

    #[test]
    fn node_cache_redirects_traffic() {
        let tasks = vec![task(0, 0, 100), task(1, 4, 100), task(2, 0, 100), task(3, 4, 100)];
        // Force separate batches (different arrival interleaving, same SU).
        let leaf_sizes = vec![100; 8];
        let mut cache = NodeCache::new(1000);
        let c = AcceleratorConfig {
            num_sus: 4,
            pes_per_su: 1, // one task per batch
            backend: BackendPolicy::Mqsn,
            ..AcceleratorConfig::default()
        };
        let r = run_backend(&tasks, &leaf_sizes, &c, &mut cache);
        assert_eq!(r.cache_hits, 2, "second visit to each leaf hits");
        assert_eq!(r.traffic.node_cache, 2 * 100 * POINT_BYTES);
        assert_eq!(r.traffic.points_buffer, 2 * 100 * POINT_BYTES);
    }

    #[test]
    fn follower_tasks_read_result_buffer() {
        let t = LeafTask { query: 0, leaf: 0, scan_points: 8, leader_checks: 3, follower: true };
        let mut cache = NodeCache::new(1000);
        let r = run_backend(&[t], &[100], &cfg(1, 4, BackendPolicy::Mqsn), &mut cache);
        assert_eq!(r.traffic.result_buffer, 8 * POINT_BYTES);
        assert_eq!(r.traffic.points_buffer, 0);
        assert_eq!(r.cycles, ISSUE_OVERHEAD + PIPE_FILL + 3 + 8);
    }

    #[test]
    fn utilization_bounded_by_one() {
        let tasks: Vec<LeafTask> = (0..64).map(|q| task(q, q % 8, 64)).collect();
        let leaf_sizes = vec![64; 8];
        let mut cache = NodeCache::new(0);
        let r = run_backend(&tasks, &leaf_sizes, &cfg(8, 8, BackendPolicy::Mqsn), &mut cache);
        let u = r.pe_utilization();
        assert!(u > 0.0 && u <= 1.0, "utilization {u}");
    }
}

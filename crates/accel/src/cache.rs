//! The node cache (paper Sec. 5.3, "Node Cache").
//!
//! Queries issued consecutively from the FE tend to target a small set of
//! leaves; caching whole node-sets captures that locality and moves over
//! half of the Points-Buffer traffic into a small memory. Entries are whole
//! node-sets (the nodes within an entry stream as a FIFO); entry lookup is
//! associative; replacement is LRU.

use std::collections::VecDeque;

/// A node cache holding whole leaf node-sets, capacity measured in points.
#[derive(Debug, Clone)]
pub struct NodeCache {
    capacity_points: usize,
    /// (leaf id, size in points), most-recently-used at the back.
    entries: VecDeque<(u32, usize)>,
    used_points: usize,
    hits: u64,
    misses: u64,
}

impl NodeCache {
    /// Creates a cache with the given capacity in points; 0 disables it
    /// (everything misses).
    pub fn new(capacity_points: usize) -> Self {
        NodeCache { capacity_points, entries: VecDeque::new(), used_points: 0, hits: 0, misses: 0 }
    }

    /// Looks up the node-set of `leaf` (`size` points), inserting it on
    /// miss. Returns `true` on hit.
    ///
    /// Sets larger than the whole cache bypass it (never inserted).
    pub fn access(&mut self, leaf: u32, size: usize) -> bool {
        if self.capacity_points == 0 {
            self.misses += 1;
            return false;
        }
        if let Some(pos) = self.entries.iter().position(|&(l, _)| l == leaf) {
            // LRU touch.
            let e = self.entries.remove(pos).unwrap();
            self.entries.push_back(e);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if size > self.capacity_points {
            return false;
        }
        while self.used_points + size > self.capacity_points {
            let (_, evicted) = self.entries.pop_front().expect("used > 0 implies entries");
            self.used_points -= evicted;
        }
        self.entries.push_back((leaf, size));
        self.used_points += size;
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Points currently resident.
    pub fn resident_points(&self) -> usize {
        self.used_points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_cache_always_misses() {
        let mut c = NodeCache::new(0);
        assert!(!c.access(1, 10));
        assert!(!c.access(1, 10));
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = NodeCache::new(100);
        assert!(!c.access(1, 10));
        assert!(c.access(1, 10));
        assert!(c.access(1, 10));
        assert_eq!(c.hits(), 2);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction() {
        let mut c = NodeCache::new(30);
        c.access(1, 10);
        c.access(2, 10);
        c.access(3, 10); // full: 1,2,3
        c.access(1, 10); // touch 1 → LRU order 2,3,1
        c.access(4, 10); // evicts 2
        assert!(!c.access(2, 10), "2 must have been evicted");
        // Re-inserting 2 (cap 30, resident was 3,1,4=30) evicts 3.
        assert!(!c.access(3, 10));
    }

    #[test]
    fn oversized_sets_bypass() {
        let mut c = NodeCache::new(10);
        assert!(!c.access(1, 50));
        assert!(!c.access(1, 50), "oversized set must not be cached");
        assert_eq!(c.resident_points(), 0);
    }

    #[test]
    fn capacity_respected() {
        let mut c = NodeCache::new(25);
        c.access(1, 10);
        c.access(2, 10);
        c.access(3, 10); // evicts 1 (10+10+10 > 25)
        assert!(c.resident_points() <= 25);
        assert!(c.access(3, 10));
        assert!(c.access(2, 10));
        assert!(!c.access(1, 10));
    }
}

//! Accelerator configuration (paper Sec. 6.2: 64 RUs, 32 SUs, 32 PEs/SU,
//! 500 MHz, 16 nm).

use tigris_core::ApproxConfig;

/// Leaf-to-SU mapping policy of the Query Distribution Network.
///
/// The paper: "the overall performance is relatively insensitive to how
/// exactly the leaf nodes are mapped to each SU. Thus, we use a simple
/// policy that uses the low-order bits as the target SU ID." Both
/// policies are modeled so that claim can be verified (ablation
/// `mapping` in the figure harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MappingPolicy {
    /// `leaf id mod SU count` (the paper's hard-wired choice).
    LowOrderBits,
    /// A multiplicative hash of the leaf id — decorrelates spatially
    /// adjacent leaves from SU assignment.
    Hash,
}

impl MappingPolicy {
    /// The SU index for `leaf` under this policy.
    pub fn su_for(self, leaf: u32, num_sus: usize) -> usize {
        match self {
            MappingPolicy::LowOrderBits => leaf as usize % num_sus,
            MappingPolicy::Hash => {
                // Fibonacci hashing: spreads consecutive ids uniformly.
                let h = (leaf as u64).wrapping_mul(11400714819323198485);
                (h >> 32) as usize % num_sus
            }
        }
    }
}

/// Back-end query-issue policy (paper Sec. 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendPolicy {
    /// Multiple Query Single NodeSet: all PEs of an SU process queries from
    /// the *same* leaf, sharing one node-set stream (memory-efficient; the
    /// adopted design).
    Mqsn,
    /// Multiple Query Multiple NodeSet: PEs process arbitrary queries, each
    /// streaming its own node set (faster, ~4× the traffic/power).
    Mqmn,
}

/// Full accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcceleratorConfig {
    /// Number of front-end Recursion Units (paper design point: 64).
    pub num_rus: usize,
    /// Number of back-end Search Units (paper: 32).
    pub num_sus: usize,
    /// Processing Elements per SU (paper: 32).
    pub pes_per_su: usize,
    /// Datapath clock, Hz (paper: 500 MHz in 16 nm).
    pub clock_hz: f64,
    /// RU node forwarding (PI→RN forward of the next node; eliminates the
    /// remaining stall cycles).
    pub forwarding: bool,
    /// RU node bypassing (pruned nodes exit the pipeline early).
    pub bypassing: bool,
    /// Back-end issue policy.
    pub backend: BackendPolicy,
    /// Leaf-to-SU mapping of the query distribution network.
    pub mapping: MappingPolicy,
    /// Node cache capacity in *points* (paper: 128 KB ⇒ 8192 points at
    /// 16 B/point). 0 disables the cache.
    pub node_cache_points: usize,
    /// MQSN associative-search window: how far into the BE Query Buffer the
    /// issue logic looks for same-leaf queries (paper: groups of 32, BQB
    /// holds 128).
    pub issue_window: usize,
    /// Approximate (Algorithm 1) search in the SUs; `None` = exact.
    pub approx: Option<ApproxConfig>,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            num_rus: 64,
            num_sus: 32,
            pes_per_su: 32,
            clock_hz: 500e6,
            forwarding: true,
            bypassing: true,
            backend: BackendPolicy::Mqsn,
            mapping: MappingPolicy::LowOrderBits,
            node_cache_points: 8192,
            issue_window: 128,
            approx: None,
        }
    }
}

impl AcceleratorConfig {
    /// The paper's evaluated design point (64/32/32, all optimizations on).
    pub fn paper() -> Self {
        AcceleratorConfig::default()
    }

    /// Baseline without RU optimizations or node cache (the "No-Opt" bar of
    /// paper Fig. 12).
    pub fn no_opt() -> Self {
        AcceleratorConfig {
            forwarding: false,
            bypassing: false,
            node_cache_points: 0,
            ..AcceleratorConfig::default()
        }
    }

    /// Seconds for `cycles` at the configured clock.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// Total PEs across the back-end.
    pub fn total_pes(&self) -> usize {
        self.num_sus * self.pes_per_su
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_6_2() {
        let c = AcceleratorConfig::paper();
        assert_eq!(c.num_rus, 64);
        assert_eq!(c.num_sus, 32);
        assert_eq!(c.pes_per_su, 32);
        assert_eq!(c.total_pes(), 1024);
        assert_eq!(c.clock_hz, 500e6);
        assert_eq!(c.backend, BackendPolicy::Mqsn);
        assert_eq!(c.mapping, MappingPolicy::LowOrderBits);
        assert!(c.forwarding && c.bypassing);
    }

    #[test]
    fn mapping_policies_stay_in_range_and_differ() {
        let mut diff = 0;
        for leaf in 0..256u32 {
            let a = MappingPolicy::LowOrderBits.su_for(leaf, 32);
            let b = MappingPolicy::Hash.su_for(leaf, 32);
            assert!(a < 32 && b < 32);
            if a != b {
                diff += 1;
            }
        }
        assert!(diff > 128, "hash should disagree with modulo most of the time");
    }

    #[test]
    fn hash_mapping_spreads_consecutive_leaves() {
        // Consecutive leaves should not all land on consecutive SUs.
        use std::collections::HashSet;
        let sus: HashSet<usize> = (0..16u32).map(|l| MappingPolicy::Hash.su_for(l, 32)).collect();
        assert!(sus.len() > 8);
    }

    #[test]
    fn no_opt_strips_optimizations() {
        let c = AcceleratorConfig::no_opt();
        assert!(!c.forwarding && !c.bypassing);
        assert_eq!(c.node_cache_points, 0);
    }

    #[test]
    fn seconds_conversion() {
        let c = AcceleratorConfig::default();
        assert!((c.seconds(500_000_000) - 1.0).abs() < 1e-12);
        assert_eq!(c.seconds(0), 0.0);
    }
}

//! Analytic area model (paper Sec. 6.2).
//!
//! The paper's 64-RU / 32-SU / 32-PE configuration synthesizes to
//! 8.38 mm² of SRAM and 7.19 mm² of combinational logic in 16 nm
//! (53.8% / 46.2%). This model reproduces those numbers from per-unit
//! constants and scales with the configuration, enabling the Fig. 14
//! sensitivity sweeps to report area alongside performance.

use crate::config::AcceleratorConfig;

/// SRAM sizing of the global buffer (paper Sec. 6.2), bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramSizing {
    /// Input Point Buffer (1.5 MB: ~130k points/frame).
    pub input_point_buffer: usize,
    /// Query Buffer (1.5 MB).
    pub query_buffer: usize,
    /// Query Stack Buffer (1.2 MB: max top-tree height 18).
    pub query_stack_buffer: usize,
    /// FE Query Queue (1.5 MB).
    pub fe_query_queue: usize,
    /// BE Query Buffer per SU (1 KB: 128 queries).
    pub be_query_buffer_per_su: usize,
    /// Node Cache (128 KB).
    pub node_cache: usize,
    /// Result Buffer (3 MB, double-buffered against DRAM).
    pub result_buffer: usize,
}

impl Default for SramSizing {
    fn default() -> Self {
        const MB: usize = 1024 * 1024;
        const KB: usize = 1024;
        SramSizing {
            input_point_buffer: 3 * MB / 2,
            query_buffer: 3 * MB / 2,
            query_stack_buffer: 6 * MB / 5,
            fe_query_queue: 3 * MB / 2,
            be_query_buffer_per_su: KB,
            node_cache: 128 * KB,
            result_buffer: 3 * MB,
        }
    }
}

impl SramSizing {
    /// Total SRAM bytes for a configuration with `num_sus` SUs.
    pub fn total_bytes(&self, num_sus: usize) -> usize {
        self.input_point_buffer
            + self.query_buffer
            + self.query_stack_buffer
            + self.fe_query_queue
            + self.be_query_buffer_per_su * num_sus
            + self.node_cache
            + self.result_buffer
    }
}

/// Area results, mm² in a 16 nm-class process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// SRAM area.
    pub sram_mm2: f64,
    /// Combinational-logic area (RUs + PEs + control).
    pub logic_mm2: f64,
}

impl AreaReport {
    /// Total area.
    pub fn total_mm2(&self) -> f64 {
        self.sram_mm2 + self.logic_mm2
    }

    /// SRAM share of total area.
    pub fn sram_fraction(&self) -> f64 {
        self.sram_mm2 / self.total_mm2()
    }
}

/// SRAM density, mm² per byte. Calibrated so the paper's ~8.8 MB of
/// buffers occupy 8.38 mm².
const SRAM_MM2_PER_BYTE: f64 = 8.38 / (9_218_048.0);
/// One PE's datapath (fp32 distance + compare + result insert), mm².
const PE_MM2: f64 = 0.00615;
/// One RU's datapath (six-stage pipeline, fp32 distance, stack logic), mm².
const RU_MM2: f64 = 0.0130;
/// Fixed control overhead (query distribution network, issue logic), mm².
const CONTROL_MM2: f64 = 0.06;

/// Computes the area of `cfg` with the given SRAM sizing.
pub fn area_report(cfg: &AcceleratorConfig, sram: &SramSizing) -> AreaReport {
    let sram_mm2 = sram.total_bytes(cfg.num_sus) as f64 * SRAM_MM2_PER_BYTE;
    let logic_mm2 = cfg.total_pes() as f64 * PE_MM2 + cfg.num_rus as f64 * RU_MM2 + CONTROL_MM2;
    AreaReport { sram_mm2, logic_mm2 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_published_area() {
        let report = area_report(&AcceleratorConfig::paper(), &SramSizing::default());
        // Paper: SRAM 8.38 mm², logic 7.19 mm², split 53.8% / 46.2%.
        assert!((report.sram_mm2 - 8.38).abs() < 0.1, "sram = {}", report.sram_mm2);
        assert!((report.logic_mm2 - 7.19).abs() < 0.15, "logic = {}", report.logic_mm2);
        assert!((report.sram_fraction() - 0.538).abs() < 0.02);
    }

    #[test]
    fn area_scales_with_units() {
        let small = AcceleratorConfig {
            num_rus: 16,
            num_sus: 16,
            pes_per_su: 16,
            ..AcceleratorConfig::default()
        };
        let big = AcceleratorConfig {
            num_rus: 128,
            num_sus: 128,
            pes_per_su: 128,
            ..AcceleratorConfig::default()
        };
        let s = area_report(&small, &SramSizing::default());
        let b = area_report(&big, &SramSizing::default());
        assert!(b.logic_mm2 > s.logic_mm2 * 10.0);
        assert!(b.sram_mm2 > s.sram_mm2, "BQBs scale with SU count");
    }

    #[test]
    fn sram_sizing_totals() {
        let s = SramSizing::default();
        let t32 = s.total_bytes(32);
        let t64 = s.total_bytes(64);
        assert_eq!(t64 - t32, 32 * 1024);
        // ~8.8 MB for the paper configuration.
        assert!(t32 > 8 * 1024 * 1024 && t32 < 10 * 1024 * 1024);
    }

    #[test]
    fn report_accessors() {
        let r = AreaReport { sram_mm2: 6.0, logic_mm2: 4.0 };
        assert_eq!(r.total_mm2(), 10.0);
        assert!((r.sram_fraction() - 0.6).abs() < 1e-12);
    }
}

//! Per-buffer memory traffic accounting (paper Fig. 13).
//!
//! Data sizes follow the paper's global-buffer layout: points and queries
//! are 16 B (four 32-bit floats: x, y, z, pad/index), stack entries and
//! result records 8 B.

/// Bytes per stored point / query.
pub const POINT_BYTES: u64 = 16;
/// Bytes per query-stack entry (node address + bound).
pub const STACK_ENTRY_BYTES: u64 = 8;
/// Bytes per result record (index + distance).
pub const RESULT_BYTES: u64 = 8;

/// Byte counts per buffer of the global memory system (read + write
/// combined, like the paper's Fig. 13 distribution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// FE Query Queue traffic.
    pub fe_query_queue: u64,
    /// Query Buffer traffic (query-point reads by RUs and PEs).
    pub query_buffer: u64,
    /// Query Stack Buffer traffic (pushes + pops).
    pub query_stacks: u64,
    /// Result Buffer traffic (result writes; follower reads).
    pub result_buffer: u64,
    /// BE Query Buffer traffic.
    pub be_query_buffer: u64,
    /// Node Cache traffic (hits served from the cache).
    pub node_cache: u64,
    /// Input Point Buffer traffic (top-tree node reads + node-set loads
    /// that missed the cache).
    pub points_buffer: u64,
    /// DRAM traffic (result write-back through the double buffer).
    pub dram: u64,
}

impl TrafficReport {
    /// Total on-chip traffic (everything except DRAM).
    pub fn total_sram(&self) -> u64 {
        self.fe_query_queue
            + self.query_buffer
            + self.query_stacks
            + self.result_buffer
            + self.be_query_buffer
            + self.node_cache
            + self.points_buffer
    }

    /// Fraction of on-chip traffic hitting the Points Buffer — the quantity
    /// the node cache reduces (paper: 53% → 35% in ACC-2SKD).
    pub fn points_buffer_fraction(&self) -> f64 {
        let total = self.total_sram();
        if total == 0 {
            0.0
        } else {
            self.points_buffer as f64 / total as f64
        }
    }

    /// Named (label, bytes) rows for reporting, in the paper's Fig. 13
    /// legend order.
    pub fn rows(&self) -> [(&'static str, u64); 7] {
        [
            ("FE Query Q", self.fe_query_queue),
            ("Query Buf", self.query_buffer),
            ("Query Stacks", self.query_stacks),
            ("Res. Buf", self.result_buffer),
            ("BE Query Q", self.be_query_buffer),
            ("Node Cache", self.node_cache),
            ("Points Buf", self.points_buffer),
        ]
    }
}

impl std::ops::Add for TrafficReport {
    type Output = TrafficReport;
    fn add(self, o: TrafficReport) -> TrafficReport {
        TrafficReport {
            fe_query_queue: self.fe_query_queue + o.fe_query_queue,
            query_buffer: self.query_buffer + o.query_buffer,
            query_stacks: self.query_stacks + o.query_stacks,
            result_buffer: self.result_buffer + o.result_buffer,
            be_query_buffer: self.be_query_buffer + o.be_query_buffer,
            node_cache: self.node_cache + o.node_cache,
            points_buffer: self.points_buffer + o.points_buffer,
            dram: self.dram + o.dram,
        }
    }
}

impl std::ops::AddAssign for TrafficReport {
    fn add_assign(&mut self, o: TrafficReport) {
        *self = *self + o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_fractions() {
        let t = TrafficReport {
            points_buffer: 50,
            query_stacks: 30,
            node_cache: 20,
            ..Default::default()
        };
        assert_eq!(t.total_sram(), 100);
        assert!((t.points_buffer_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report() {
        let t = TrafficReport::default();
        assert_eq!(t.total_sram(), 0);
        assert_eq!(t.points_buffer_fraction(), 0.0);
    }

    #[test]
    fn rows_cover_all_sram_buffers() {
        let t = TrafficReport {
            fe_query_queue: 1,
            query_buffer: 2,
            query_stacks: 3,
            result_buffer: 4,
            be_query_buffer: 5,
            node_cache: 6,
            points_buffer: 7,
            dram: 100,
        };
        let sum: u64 = t.rows().iter().map(|(_, b)| b).sum();
        assert_eq!(sum, t.total_sram());
        assert_eq!(t.rows().len(), 7);
    }

    #[test]
    fn add_accumulates() {
        let a = TrafficReport { dram: 5, points_buffer: 10, ..Default::default() };
        let mut b = a;
        b += a;
        assert_eq!(b.dram, 10);
        assert_eq!(b.points_buffer, 20);
        assert_eq!(b, a + a);
    }
}

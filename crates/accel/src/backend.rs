//! The accelerator as an **online search backend**: `AccelBackend`
//! implements `tigris_core::SearchIndex`, so the simulated machine can
//! *serve* the registration pipeline's queries (through `Searcher3`,
//! `register()`, the odometer and the DSE sweeps) instead of only
//! replaying logs after the fact.
//!
//! Every query batch runs through the same cycle-level engine as
//! [`crate::AcceleratorSim`] — per-query top-tree traversal with pop-time
//! pruning, SU leaf scans, optional leader/follower approximation — and
//! the hardware cost (cycles, simulated seconds, energy) accumulates in an
//! [`AccelMeter`] alongside the answers. In exact mode the answers are
//! bit-identical to the software two-stage search, so swapping
//! `SearchBackendConfig::TwoStage` for the accelerator changes *when* the
//! result would be ready, never *what* it is.
//!
//! # Example
//!
//! ```
//! use tigris_accel::{AccelBackend, AcceleratorConfig};
//! use tigris_core::{SearchIndex, SearchStats};
//! use tigris_geom::Vec3;
//!
//! let pts: Vec<Vec3> = (0..2048)
//!     .map(|i| Vec3::new((i % 32) as f64, (i / 32) as f64, 0.0))
//!     .collect();
//! let mut backend = AccelBackend::build(&pts, 5, AcceleratorConfig::default());
//! let mut stats = SearchStats::new();
//! let n = backend.nn(Vec3::new(3.3, 7.8, 0.1), &mut stats).unwrap();
//! assert_eq!(pts[n.index], Vec3::new(3.0, 8.0, 0.0));
//! // The simulated hardware cost of serving that query:
//! assert!(backend.meter().cycles > 0);
//! ```

use tigris_core::batch::parallel_queries;
use tigris_core::twostage::default_top_height;
use tigris_core::{
    register_backend, BatchConfig, IndexSize, Neighbor, SearchIndex, SearchStats, TwoStageKdTree,
};
use tigris_geom::Vec3;

use crate::config::AcceleratorConfig;
use crate::energy::EnergyModel;
use crate::sim::{Engine, LeaderBooks, SearchKind, SimReport};

/// Accumulated hardware cost of the searches an [`AccelBackend`] served.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccelMeter {
    /// Query batches executed (serial queries count as batches of one).
    pub batches: u64,
    /// Queries served.
    pub queries: u64,
    /// Total accelerator cycles (batches run back-to-back).
    pub cycles: u64,
    /// Simulated wall-clock seconds at the configured clock.
    pub seconds: f64,
    /// Total energy, joules.
    pub energy_joules: f64,
    /// Queries served by the approximate follower path.
    pub follower_hits: u64,
}

impl AccelMeter {
    /// Average simulated power (W), or 0 when nothing ran.
    pub fn power_watts(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.energy_joules / self.seconds
        }
    }
}

/// Cached handles into the global obs registry for the accelerator's
/// cycle accounting, resolved once per process.
struct AccelMetrics {
    batches: std::sync::Arc<tigris_obs::Counter>,
    queries: std::sync::Arc<tigris_obs::Counter>,
    cycles: std::sync::Arc<tigris_obs::Counter>,
    energy_uj: std::sync::Arc<tigris_obs::Counter>,
    follower_hits: std::sync::Arc<tigris_obs::Counter>,
}

fn accel_metrics() -> &'static AccelMetrics {
    static METRICS: std::sync::OnceLock<AccelMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = tigris_obs::global();
        AccelMetrics {
            batches: registry.counter("accel.batches"),
            queries: registry.counter("accel.queries"),
            cycles: registry.counter("accel.cycles"),
            energy_uj: registry.counter("accel.energy_uj"),
            follower_hits: registry.counter("accel.follower_hits"),
        }
    })
}

/// The simulated Tigris accelerator as a pluggable search backend.
///
/// Owns its two-stage tree and per-leaf leader buffers (no borrowed tree,
/// no self-reference), implements `SearchIndex`, and registers under the
/// name `"accelerator"` via [`register_accelerator_backend`]. With
/// `config.approx = None` (the default) every search is exact and
/// bit-identical to [`TwoStageKdTree`]; with approximation enabled it
/// follows Algorithm 1 exactly as the hardware leader buffers would.
///
/// k-NN queries are served by the exact top-tree path (the hardware treats
/// k-NN as an NN search retaining k results; Algorithm 1 covers only NN
/// and radius), so they are always exact.
#[derive(Debug)]
pub struct AccelBackend {
    tree: TwoStageKdTree,
    config: AcceleratorConfig,
    energy_model: EnergyModel,
    books: LeaderBooks,
    meter: AccelMeter,
}

impl AccelBackend {
    /// Builds a two-stage tree of the given top height over `points` and
    /// wraps it in an accelerator with the given configuration.
    pub fn build(points: &[Vec3], top_height: usize, config: AcceleratorConfig) -> Self {
        AccelBackend::from_tree(TwoStageKdTree::build(points, top_height), config)
    }

    /// Wraps an already-built tree, taking ownership.
    pub fn from_tree(tree: TwoStageKdTree, config: AcceleratorConfig) -> Self {
        let books = LeaderBooks::new(tree.leaves().len());
        AccelBackend {
            tree,
            config,
            energy_model: EnergyModel::default(),
            books,
            meter: AccelMeter::default(),
        }
    }

    /// The owned two-stage tree.
    pub fn tree(&self) -> &TwoStageKdTree {
        &self.tree
    }

    /// The accelerator configuration in effect.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The hardware cost accumulated so far.
    pub fn meter(&self) -> &AccelMeter {
        &self.meter
    }

    /// Takes the accumulated meter, restarting from zero — e.g. once per
    /// frame, to attribute simulated cycles to pipeline stages.
    pub fn take_meter(&mut self) -> AccelMeter {
        std::mem::take(&mut self.meter)
    }

    /// Runs one batch through the cycle-level engine, folds its hardware
    /// cost into the meter — and, when tracing is enabled, mirrors the
    /// cycle accounting into the global obs registry (`accel.*`) with a
    /// span per batch — and returns the report (with results).
    fn run(&mut self, queries: &[Vec3], kind: SearchKind, collect: bool) -> SimReport {
        let span = tigris_obs::span!("accel.batch", queries = queries.len());
        let report = Engine {
            tree: &self.tree,
            config: &self.config,
            energy_model: &self.energy_model,
            books: &mut self.books,
            collect_radius_results: collect,
        }
        .run(queries, kind);
        drop(span);
        self.meter.batches += 1;
        self.meter.queries += queries.len() as u64;
        self.meter.cycles += report.cycles;
        self.meter.seconds += report.seconds;
        self.meter.energy_joules += report.energy.total_joules();
        self.meter.follower_hits += report.follower_hits;
        if tigris_obs::enabled() {
            tigris_obs::event!(
                "accel.cycles",
                cycles = report.cycles,
                energy_uj = report.energy.total_joules() * 1e6,
                follower_hits = report.follower_hits,
            );
            let m = accel_metrics();
            m.batches.inc();
            m.queries.add(queries.len() as u64);
            m.cycles.add(report.cycles);
            m.energy_uj.add((report.energy.total_joules() * 1e6) as u64);
            m.follower_hits.add(report.follower_hits);
        }
        report
    }

    /// Folds a report's work counters into software-visible search stats.
    ///
    /// The mapping mirrors the software backends: top-tree expansions are
    /// tree-node visits, bypasses are pruned sub-trees, PE point-streams
    /// are leaf scans. All are per-task sums, so batched accounting equals
    /// the serial accounting exactly.
    fn absorb_stats(stats: &mut SearchStats, report: &SimReport, queries: u64) {
        stats.queries += queries;
        stats.tree_nodes_visited += report.nodes_expanded;
        stats.subtrees_pruned += report.nodes_bypassed;
        stats.leaf_points_scanned += report.leaf_points_scanned;
        stats.follower_hits += report.follower_hits;
    }
}

impl SearchIndex for AccelBackend {
    fn from_points(points: &[Vec3]) -> Self {
        AccelBackend::build(points, default_top_height(points.len()), AcceleratorConfig::default())
    }

    fn name(&self) -> &'static str {
        "accelerator"
    }

    fn points(&self) -> &[Vec3] {
        self.tree.points()
    }

    fn size(&self) -> IndexSize {
        IndexSize {
            points: self.tree.len(),
            interior_nodes: self.tree.top_nodes().len(),
            leaf_sets: self.tree.leaves().len(),
        }
    }

    fn nn(&mut self, query: Vec3, stats: &mut SearchStats) -> Option<Neighbor> {
        let report = self.run(&[query], SearchKind::Nn, false);
        Self::absorb_stats(stats, &report, 1);
        report.nn_results.into_iter().next().flatten()
    }

    fn knn(&mut self, query: Vec3, k: usize, stats: &mut SearchStats) -> Vec<Neighbor> {
        self.tree.knn_with_stats(query, k, stats)
    }

    fn radius(&mut self, query: Vec3, radius: f64, stats: &mut SearchStats) -> Vec<Neighbor> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let mut report = self.run(&[query], SearchKind::Radius(radius), true);
        Self::absorb_stats(stats, &report, 1);
        report.radius_results.pop().unwrap_or_default()
    }

    /// The whole batch executes as one hardware run — query-level
    /// parallelism is the machine's own (RUs × SUs), so the software
    /// [`BatchConfig`] is ignored. Results are identical to the serial
    /// loop: the engine traces queries in order and the leader buffers
    /// evolve identically.
    fn nn_batch(
        &mut self,
        queries: &[Vec3],
        _cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Option<Neighbor>> {
        let report = self.run(queries, SearchKind::Nn, false);
        Self::absorb_stats(stats, &report, queries.len() as u64);
        report.nn_results
    }

    fn knn_batch(
        &mut self,
        queries: &[Vec3],
        k: usize,
        cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        let tree = &self.tree;
        parallel_queries(queries, cfg, stats, |q, s| tree.knn_with_stats(q, k, s))
    }

    /// See [`AccelBackend::nn_batch`]: one hardware run per batch.
    fn radius_batch(
        &mut self,
        queries: &[Vec3],
        radius: f64,
        _cfg: &BatchConfig,
        stats: &mut SearchStats,
    ) -> Vec<Vec<Neighbor>> {
        assert!(radius >= 0.0, "radius must be non-negative");
        let report = self.run(queries, SearchKind::Radius(radius), true);
        Self::absorb_stats(stats, &report, queries.len() as u64);
        report.radius_results
    }

    fn reset(&mut self) {
        self.books.reset();
    }
}

/// Registers the accelerator (default [`AcceleratorConfig`], default
/// top-tree height) under the name `"accelerator"` in `tigris-core`'s
/// backend registry, making it selectable from the pipeline via
/// `SearchBackendConfig::Custom { name: "accelerator" }`.
///
/// Idempotent; returns `true` on first registration. For a non-default
/// machine, use [`register_accelerator_backend_as`].
pub fn register_accelerator_backend() -> bool {
    register_accelerator_backend_as("accelerator", AcceleratorConfig::default())
}

/// Registers an accelerator with an explicit configuration under a caller
/// chosen name — e.g. one registry entry per DSE hardware point.
pub fn register_accelerator_backend_as(name: &'static str, config: AcceleratorConfig) -> bool {
    register_backend(name, move |pts| {
        Box::new(AccelBackend::build(pts, default_top_height(pts.len()), config))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tigris_core::ApproxConfig;

    fn lcg_cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 40.0 - 20.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    #[test]
    fn exact_mode_is_bit_identical_to_two_stage_software() {
        let pts = lcg_cloud(3000, 1);
        let queries = lcg_cloud(250, 2);
        let mut backend = AccelBackend::build(&pts, 5, AcceleratorConfig::default());
        let tree = TwoStageKdTree::build(&pts, 5);
        let mut stats = SearchStats::new();
        for &q in &queries {
            let hw = backend.nn(q, &mut stats).unwrap();
            let sw = tree.nn(q).unwrap();
            assert_eq!((hw.index, hw.distance_squared), (sw.index, sw.distance_squared));

            let hw_ball = backend.radius(q, 2.5, &mut stats);
            let sw_ball = tree.radius(q, 2.5);
            assert_eq!(hw_ball, sw_ball, "radius results must match bit-for-bit");

            assert_eq!(backend.knn(q, 6, &mut stats), tree.knn(q, 6));
        }
    }

    #[test]
    fn batched_equals_serial_including_leader_state() {
        let pts = lcg_cloud(4000, 3);
        // Clustered queries so the follower path engages.
        let queries: Vec<Vec3> = (0..200)
            .map(|i| Vec3::new((i % 10) as f64 * 0.05, (i / 10) as f64 * 0.05, 1.0))
            .collect();
        let cfg = AcceleratorConfig {
            approx: Some(ApproxConfig { nn_threshold: 2.0, ..Default::default() }),
            ..AcceleratorConfig::default()
        };
        let mut serial = AccelBackend::build(&pts, 4, cfg);
        let mut batched = AccelBackend::build(&pts, 4, cfg);
        let mut s_stats = SearchStats::new();
        let mut b_stats = SearchStats::new();
        let s_out: Vec<_> = queries.iter().map(|&q| serial.nn(q, &mut s_stats)).collect();
        let b_out = batched.nn_batch(&queries, &BatchConfig::serial(), &mut b_stats);
        assert_eq!(s_out, b_out);
        assert_eq!(s_stats, b_stats);
        assert!(b_stats.follower_hits > 0, "workload should produce followers");
    }

    #[test]
    fn meter_accumulates_hardware_cost() {
        let pts = lcg_cloud(2000, 4);
        let mut backend = AccelBackend::build(&pts, 4, AcceleratorConfig::default());
        let mut stats = SearchStats::new();
        backend.nn_batch(&lcg_cloud(100, 5), &BatchConfig::serial(), &mut stats);
        let meter = *backend.meter();
        assert_eq!(meter.queries, 100);
        assert_eq!(meter.batches, 1);
        assert!(meter.cycles > 0);
        assert!(meter.seconds > 0.0);
        assert!(meter.energy_joules > 0.0);
        assert!(meter.power_watts() > 0.0);
        let taken = backend.take_meter();
        assert_eq!(taken, meter);
        assert_eq!(backend.meter().cycles, 0);
    }

    #[test]
    fn reset_clears_leader_buffers() {
        let pts = lcg_cloud(1500, 6);
        let cfg = AcceleratorConfig {
            approx: Some(ApproxConfig { nn_threshold: 5.0, ..Default::default() }),
            ..AcceleratorConfig::default()
        };
        let mut backend = AccelBackend::build(&pts, 3, cfg);
        let mut stats = SearchStats::new();
        let q = vec![Vec3::new(0.1, 0.1, 0.1); 10];
        backend.nn_batch(&q, &BatchConfig::serial(), &mut stats);
        assert!(stats.follower_hits > 0);
        backend.reset();
        let mut post = SearchStats::new();
        backend.nn(q[0], &mut post);
        assert_eq!(post.follower_hits, 0, "first query after reset must be a leader");
    }

    #[test]
    fn registry_name_round_trips() {
        register_accelerator_backend();
        let pts = lcg_cloud(500, 7);
        let mut index = tigris_core::build_backend("accelerator", &pts).unwrap();
        assert_eq!(index.name(), "accelerator");
        let mut stats = SearchStats::new();
        let hw = index.nn(Vec3::ZERO, &mut stats).unwrap();
        let sw = tigris_core::nn_brute_force(&pts, Vec3::ZERO).unwrap();
        assert_eq!(hw.index, sw.index);
    }

    #[test]
    fn empty_tree_serves_empty_results() {
        let mut backend = AccelBackend::build(&[], 3, AcceleratorConfig::default());
        let mut stats = SearchStats::new();
        assert!(backend.nn(Vec3::ZERO, &mut stats).is_none());
        assert!(backend.radius(Vec3::ZERO, 1.0, &mut stats).is_empty());
        let out = backend.nn_batch(&[Vec3::ZERO], &BatchConfig::serial(), &mut stats);
        assert_eq!(out, vec![None]);
    }
}

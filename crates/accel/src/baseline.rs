//! Baseline cost models: the CPU (Xeon-class, PCL/FLANN software KD-tree)
//! and GPU (RTX-2080-Ti-class, FLANN CUDA) systems the paper compares
//! against (Sec. 6.1).
//!
//! We do not have the authors' testbed; these are analytic throughput
//! models calibrated against the paper's own cross-platform ratios
//! (DESIGN.md). What matters for the reproduction is the *shape*: the GPU
//! beats the CPU by roughly an order of magnitude; the two-stage structure
//! buys the GPU a modest win (its leaf scans coalesce); the accelerator
//! beats the GPU by a further ~1.5–2 orders of magnitude.
//!
//! Model: tree traversal is divergent pointer chasing (low SIMT
//! efficiency, cache-hostile on the CPU); leaf-set scans are streaming
//! (coalesced on the GPU, prefetch-friendly on the CPU).
//!
//! The software reference in `tigris-core` now banks leaf points as
//! structure-of-arrays and scans them with SIMD kernels
//! (`tigris_core::simd`), which is exactly the streaming behaviour
//! `cpu_ns_per_scan_point` models — the per-point scan constant assumes
//! vectorized, prefetch-friendly lanes, not per-point pointer chasing.
//! The accelerator's advantage in the model therefore comes from the
//! traversal side and from fixed-function scan density, not from the CPU
//! being artificially handicapped on leaf scans.

use tigris_core::SearchStats;

/// A KD-tree search workload, characterized by its operation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Workload {
    /// Recursive tree-node visits (distance + branch).
    pub tree_node_visits: u64,
    /// Leaf-set points scanned exhaustively.
    pub leaf_points_scanned: u64,
    /// Number of queries.
    pub queries: u64,
}

impl Workload {
    /// Builds a workload description from software search statistics.
    pub fn from_stats(stats: &SearchStats) -> Self {
        Workload {
            tree_node_visits: stats.tree_nodes_visited,
            leaf_points_scanned: stats.leaf_points_scanned
                + stats.leader_checks
                + stats.leader_result_points_scanned,
            queries: stats.queries,
        }
    }
}

/// Time and power of a baseline run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineReport {
    /// Execution time, seconds.
    pub seconds: f64,
    /// Average power during the run, watts.
    pub power_watts: f64,
}

impl BaselineReport {
    /// Energy, joules.
    pub fn joules(&self) -> f64 {
        self.seconds * self.power_watts
    }
}

/// Throughput/power constants for the two baseline platforms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineModel {
    /// CPU nanoseconds per tree-node visit (pointer chase + distance;
    /// cache-miss dominated on 100k-point trees).
    pub cpu_ns_per_visit: f64,
    /// CPU nanoseconds per leaf point scanned (streaming).
    pub cpu_ns_per_scan_point: f64,
    /// GPU throughput on divergent tree traversal, node visits per second.
    pub gpu_divergent_visits_per_s: f64,
    /// GPU throughput on coalesced leaf scans, points per second.
    pub gpu_coalesced_points_per_s: f64,
    /// Fixed GPU per-batch overhead (kernel launch + transfer), seconds.
    pub gpu_batch_overhead_s: f64,
    /// CPU package power during KD-tree search, watts.
    pub cpu_power_w: f64,
    /// GPU board power during KD-tree search, watts.
    pub gpu_power_w: f64,
}

impl Default for BaselineModel {
    fn default() -> Self {
        BaselineModel {
            cpu_ns_per_visit: 30.0,
            cpu_ns_per_scan_point: 3.0,
            gpu_divergent_visits_per_s: 6.0e8,
            gpu_coalesced_points_per_s: 4.5e9,
            gpu_batch_overhead_s: 30e-6,
            cpu_power_w: 60.0,
            gpu_power_w: 110.0,
        }
    }
}

impl BaselineModel {
    /// CPU execution time for `w`.
    pub fn cpu_seconds(&self, w: &Workload) -> f64 {
        (w.tree_node_visits as f64 * self.cpu_ns_per_visit
            + w.leaf_points_scanned as f64 * self.cpu_ns_per_scan_point)
            * 1e-9
    }

    /// GPU execution time for `w` (one batched kernel).
    pub fn gpu_seconds(&self, w: &Workload) -> f64 {
        if w.queries == 0 {
            return 0.0;
        }
        self.gpu_batch_overhead_s
            + w.tree_node_visits as f64 / self.gpu_divergent_visits_per_s
            + w.leaf_points_scanned as f64 / self.gpu_coalesced_points_per_s
    }

    /// CPU run report.
    pub fn cpu(&self, w: &Workload) -> BaselineReport {
        BaselineReport { seconds: self.cpu_seconds(w), power_watts: self.cpu_power_w }
    }

    /// GPU run report.
    pub fn gpu(&self, w: &Workload) -> BaselineReport {
        BaselineReport { seconds: self.gpu_seconds(w), power_watts: self.gpu_power_w }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A classic-tree workload: pure traversal, ~40 visits per query.
    fn classic_workload() -> Workload {
        Workload { tree_node_visits: 4_000_000, leaf_points_scanned: 0, queries: 100_000 }
    }

    /// A two-stage workload: short traversal + coalesced leaf scans
    /// (~120 points scanned per query at leaf-set ≈ 128).
    fn two_stage_workload() -> Workload {
        Workload { tree_node_visits: 1_500_000, leaf_points_scanned: 12_000_000, queries: 100_000 }
    }

    #[test]
    fn gpu_beats_cpu_by_about_an_order_of_magnitude() {
        let m = BaselineModel::default();
        let w = classic_workload();
        let ratio = m.cpu_seconds(&w) / m.gpu_seconds(&w);
        // Paper: "KD-tree search on the GPU is about 8–20× faster than on
        // the CPU".
        assert!(ratio > 8.0 && ratio < 20.0, "ratio = {ratio}");
    }

    #[test]
    fn two_stage_helps_the_gpu() {
        // Paper: Base-2SKD is ~28.3% faster than Base-KD on the GPU: the
        // exhaustive scans coalesce. (Exact gain depends on workload mix.)
        let m = BaselineModel::default();
        let classic = m.gpu_seconds(&classic_workload());
        let two_stage = m.gpu_seconds(&two_stage_workload());
        assert!(two_stage < classic, "two-stage {two_stage} !< classic {classic}");
        let gain = classic / two_stage;
        assert!(gain > 1.1 && gain < 2.5, "gain = {gain}");
    }

    #[test]
    fn two_stage_hurts_the_cpu() {
        // On the CPU the redundant scans outweigh the streaming advantage.
        let m = BaselineModel::default();
        assert!(m.cpu_seconds(&two_stage_workload()) > m.cpu_seconds(&classic_workload()) * 0.5);
    }

    #[test]
    fn workload_from_stats_folds_all_scan_work() {
        let stats = SearchStats {
            queries: 10,
            tree_nodes_visited: 100,
            leaf_points_scanned: 500,
            leader_checks: 30,
            leader_result_points_scanned: 70,
            ..Default::default()
        };
        let w = Workload::from_stats(&stats);
        assert_eq!(w.tree_node_visits, 100);
        assert_eq!(w.leaf_points_scanned, 600);
        assert_eq!(w.queries, 10);
    }

    #[test]
    fn zero_queries_zero_gpu_time() {
        let m = BaselineModel::default();
        assert_eq!(m.gpu_seconds(&Workload::default()), 0.0);
    }

    #[test]
    fn reports_carry_power() {
        let m = BaselineModel::default();
        let w = classic_workload();
        let cpu = m.cpu(&w);
        let gpu = m.gpu(&w);
        assert_eq!(cpu.power_watts, 60.0);
        assert_eq!(gpu.power_watts, 110.0);
        assert!(cpu.joules() > gpu.joules(), "GPU is faster enough to win on energy");
    }
}

//! Whole-accelerator simulation: drives batches of queries through the
//! front-end and back-end models, producing cycle counts, memory traffic,
//! energy, and the actual search results.
//!
//! The simulator executes each query's traversal exactly as the hardware
//! does — an explicit per-query stack over the top-tree with *pop-time*
//! pruning (the RU checks a popped node's recorded bound against the
//! query's current best), leaf scans interleaved with traversal (the BE
//! returns refined bounds to the FE), and optional leader/follower
//! approximation in the SUs. Results are therefore bit-identical to the
//! software two-stage search in exact mode.

use tigris_core::{ApproxConfig, Neighbor, TopChild, TwoStageKdTree};
use tigris_geom::Vec3;

use crate::cache::NodeCache;
use crate::config::AcceleratorConfig;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::memory::{TrafficReport, POINT_BYTES, RESULT_BYTES, STACK_ENTRY_BYTES};
use crate::ru::{fe_makespan, RuCost};
use crate::su::{run_backend, LeafTask};

/// The kind of search a batch performs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SearchKind {
    /// Nearest-neighbor search.
    Nn,
    /// Radius search with the given radius (meters).
    Radius(f64),
}

/// Simulation outcome for one batch of queries.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Total cycles: the slower of the (pipelined) front- and back-ends.
    pub cycles: u64,
    /// Front-end makespan.
    pub fe_cycles: u64,
    /// Back-end makespan.
    pub be_cycles: u64,
    /// Wall-clock seconds at the configured clock.
    pub seconds: f64,
    /// PE utilization during the back-end makespan.
    pub pe_utilization: f64,
    /// Top-tree nodes expanded (distance computed) across all queries.
    pub nodes_expanded: u64,
    /// Top-tree nodes popped but bypassed (pruned).
    pub nodes_bypassed: u64,
    /// Leaf points streamed through PEs.
    pub leaf_points_scanned: u64,
    /// Queries served by the approximate follower path.
    pub follower_hits: u64,
    /// Node-cache hits.
    pub cache_hits: u64,
    /// Per-buffer memory traffic.
    pub traffic: TrafficReport,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// NN results (when [`SearchKind::Nn`]); one per query.
    pub nn_results: Vec<Option<Neighbor>>,
    /// Radius result counts (when [`SearchKind::Radius`]); one per query.
    pub radius_result_counts: Vec<usize>,
    /// Full radius results, ascending by distance (when
    /// [`SearchKind::Radius`] *and* result collection was requested — the
    /// online `AccelBackend` path; empty for plain simulation runs, which
    /// only need the counts).
    pub radius_results: Vec<Vec<Neighbor>>,
}

impl SimReport {
    /// Average power (W) over the simulated interval.
    pub fn power_watts(&self) -> f64 {
        if self.seconds == 0.0 {
            0.0
        } else {
            self.energy.total_joules() / self.seconds
        }
    }
}

/// A leader recorded in an SU's Leader Buffer.
#[derive(Debug, Clone)]
struct Leader {
    query: Vec3,
    results: Vec<u32>,
}

/// Per-leaf Leader Buffer contents for both query kinds, decoupled from
/// tree ownership so the borrowing [`AcceleratorSim`] and the owning
/// online backend (`crate::backend::AccelBackend`) share one engine.
#[derive(Debug, Clone, Default)]
pub(crate) struct LeaderBooks {
    nn: Vec<Vec<Leader>>,
    radius: Vec<Vec<Leader>>,
}

impl LeaderBooks {
    pub(crate) fn new(n_leaves: usize) -> Self {
        LeaderBooks { nn: vec![Vec::new(); n_leaves], radius: vec![Vec::new(); n_leaves] }
    }

    pub(crate) fn reset(&mut self) {
        for l in &mut self.nn {
            l.clear();
        }
        for l in &mut self.radius {
            l.clear();
        }
    }
}

/// The cycle-level execution engine: one batch of queries through the
/// front-end and back-end models against caller-provided tree, config and
/// leader state. [`AcceleratorSim`] (borrowed tree, offline runs/replay)
/// and `AccelBackend` (owned tree, online pipeline backend) both drive
/// this.
pub(crate) struct Engine<'a> {
    pub(crate) tree: &'a TwoStageKdTree,
    pub(crate) config: &'a AcceleratorConfig,
    pub(crate) energy_model: &'a EnergyModel,
    pub(crate) books: &'a mut LeaderBooks,
    /// Collect full radius results (index + distance) per query, not just
    /// counts — required when the engine *serves* searches online.
    pub(crate) collect_radius_results: bool,
}

/// The accelerator simulator. Holds per-leaf leader books across calls
/// (reset per frame via [`AcceleratorSim::reset_leaders`]).
#[derive(Debug)]
pub struct AcceleratorSim<'t> {
    tree: &'t TwoStageKdTree,
    config: AcceleratorConfig,
    energy_model: EnergyModel,
    books: LeaderBooks,
}

impl<'t> AcceleratorSim<'t> {
    /// Creates a simulator over `tree` with the given configuration.
    pub fn new(tree: &'t TwoStageKdTree, config: AcceleratorConfig) -> Self {
        AcceleratorSim {
            tree,
            config,
            energy_model: EnergyModel::default(),
            books: LeaderBooks::new(tree.leaves().len()),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Clears the leader buffers (between frames).
    pub fn reset_leaders(&mut self) {
        self.books.reset();
    }

    /// Simulates a batch of NN queries.
    pub fn run_nn(&mut self, queries: &[Vec3]) -> SimReport {
        self.run(queries, SearchKind::Nn)
    }

    /// Simulates a batch of radius queries.
    ///
    /// # Panics
    ///
    /// Panics when `radius` is negative.
    pub fn run_radius(&mut self, queries: &[Vec3], radius: f64) -> SimReport {
        assert!(radius >= 0.0, "radius must be non-negative");
        self.run(queries, SearchKind::Radius(radius))
    }

    /// Replays a logged query stream (e.g. captured from the registration
    /// pipeline via `Searcher3::enable_query_logging`), returning the
    /// aggregate report: cycles and energy sum over the stream's batches,
    /// traffic accumulates, results are dropped.
    ///
    /// k-NN records are timed as NN queries (the hardware serves k-NN as an
    /// NN search retaining k results; the traversal/scan work is the same
    /// to first order).
    pub fn replay(&mut self, records: &[tigris_core::QueryRecord]) -> SimReport {
        use tigris_core::{segment_by_kind, QueryKind};
        let mut total: Option<SimReport> = None;
        for (kind, points) in segment_by_kind(records) {
            let sk = match kind {
                QueryKind::Nn | QueryKind::Knn(_) => SearchKind::Nn,
                QueryKind::Radius(r) => SearchKind::Radius(r),
            };
            let report = self.run(&points, sk);
            total = Some(match total {
                None => report,
                Some(acc) => merge_reports(acc, report),
            });
        }
        total.unwrap_or_else(|| self.run(&[], SearchKind::Nn))
    }

    /// Simulates a batch of queries of the given kind.
    pub fn run(&mut self, queries: &[Vec3], kind: SearchKind) -> SimReport {
        Engine {
            tree: self.tree,
            config: &self.config,
            energy_model: &self.energy_model,
            books: &mut self.books,
            collect_radius_results: false,
        }
        .run(queries, kind)
    }
}

impl Engine<'_> {
    /// Executes a batch of queries of the given kind, exactly as the
    /// hardware would, and reports cycles, traffic, energy and results.
    pub(crate) fn run(&mut self, queries: &[Vec3], kind: SearchKind) -> SimReport {
        let mut traffic = TrafficReport::default();
        let mut tasks: Vec<LeafTask> = Vec::new();
        let mut fe_costs = Vec::with_capacity(queries.len());
        let ru_cost = RuCost::from_flags(self.config.forwarding, self.config.bypassing);

        let mut nodes_expanded = 0u64;
        let mut nodes_bypassed = 0u64;
        let mut follower_hits = 0u64;
        let mut nn_results = Vec::new();
        let mut radius_result_counts = Vec::new();
        let mut radius_results = Vec::new();

        for (qi, &q) in queries.iter().enumerate() {
            let mut trace = self.trace_query(qi as u32, q, kind, &mut tasks);
            nodes_expanded += trace.expanded;
            nodes_bypassed += trace.bypassed;
            follower_hits += trace.follower_hits;
            fe_costs.push(ru_cost.query_cycles(trace.expanded, trace.bypassed));

            // FE traffic: query fetch + enqueue, stack pops/pushes, node reads.
            traffic.fe_query_queue += 2 * POINT_BYTES;
            traffic.query_buffer += POINT_BYTES;
            traffic.query_stacks += (trace.expanded + trace.bypassed) * STACK_ENTRY_BYTES // pops
                + 2 * trace.expanded * STACK_ENTRY_BYTES; // pushes
            traffic.points_buffer += trace.expanded * POINT_BYTES;

            match kind {
                SearchKind::Nn => {
                    traffic.result_buffer += RESULT_BYTES;
                    traffic.dram += RESULT_BYTES;
                    nn_results.push(trace.nn_best);
                }
                SearchKind::Radius(_) => {
                    let n = trace.radius_count as u64;
                    traffic.result_buffer += n * RESULT_BYTES;
                    traffic.dram += n * RESULT_BYTES;
                    radius_result_counts.push(trace.radius_count);
                    if self.collect_radius_results {
                        // Match the software contract: ascending by
                        // (distance, index).
                        trace.radius_hits.sort();
                        radius_results.push(std::mem::take(&mut trace.radius_hits));
                    }
                }
            }
        }

        // Front-end makespan.
        let fe_cycles = fe_makespan(&fe_costs, self.config.num_rus);

        // Back-end makespan.
        let leaf_sizes: Vec<usize> = self.tree.leaves().iter().map(|l| l.points.len()).collect();
        let mut cache = NodeCache::new(self.config.node_cache_points);
        let be = run_backend(&tasks, &leaf_sizes, self.config, &mut cache);
        traffic += be.traffic;

        // FE and BE overlap (queries stream through); the slower side
        // bounds throughput.
        let cycles = fe_cycles.max(be.cycles);
        let seconds = self.config.seconds(cycles);
        let leaf_points_scanned = be.pe_busy_cycles;

        let energy = self.energy_model.compute(
            be.pe_busy_cycles + nodes_expanded, // distance datapath ops
            &traffic,
            seconds,
        );

        SimReport {
            cycles,
            fe_cycles,
            be_cycles: be.cycles,
            seconds,
            pe_utilization: be.pe_utilization(),
            nodes_expanded,
            nodes_bypassed,
            leaf_points_scanned,
            follower_hits,
            cache_hits: be.cache_hits,
            traffic,
            energy,
            nn_results,
            radius_result_counts,
            radius_results,
        }
    }

    /// Executes one query exactly as the hardware would, appending its
    /// back-end leaf tasks to `tasks` and returning its trace.
    ///
    /// With approximation enabled, the Leader Check fires at the query's
    /// *primary* leaf (the first one the descent reaches): a follower's
    /// whole search terminates there, inheriting the closest leader's
    /// recorded full result; non-followers complete the exact search and —
    /// buffer space permitting — record their final result as a new leader
    /// (Algorithm 1).
    fn trace_query(
        &mut self,
        qi: u32,
        q: Vec3,
        kind: SearchKind,
        tasks: &mut Vec<LeafTask>,
    ) -> QueryTrace {
        let mut trace = QueryTrace::default();
        let tree = self.tree;
        if tree.is_empty() {
            return trace;
        }
        let points = tree.points();
        let mut best = Neighbor::new(usize::MAX, f64::INFINITY);
        let mut radius_results: Vec<u32> = Vec::new();
        let mut radius_count = 0usize;
        let r = match kind {
            SearchKind::Radius(r) => r,
            SearchKind::Nn => 0.0,
        };
        let r2 = r * r;
        let record_radius = self.config.approx.is_some() && matches!(kind, SearchKind::Radius(_));
        let collect = self.collect_radius_results && matches!(kind, SearchKind::Radius(_));
        let mut primary_leaf: Option<usize> = None;

        // Explicit stack of (child, bound²): bound is the squared distance
        // from the query to the splitting plane that guards this subtree.
        let mut stack: Vec<(TopChild, f64)> = vec![(tree.root(), 0.0)];
        'search: while let Some((child, bound2)) = stack.pop() {
            // Pop-time prune check (the RU bypass test).
            let prunable = match kind {
                SearchKind::Nn => bound2 > best.distance_squared,
                SearchKind::Radius(_) => bound2 > r2,
            };
            if prunable {
                trace.bypassed += 1;
                continue;
            }
            match child {
                TopChild::None => {}
                TopChild::Node(n) => {
                    trace.expanded += 1;
                    let node = tree.top_nodes()[n as usize];
                    let p = points[node.point as usize];
                    let d2 = q.distance_squared(p);
                    match kind {
                        SearchKind::Nn => {
                            if d2 < best.distance_squared
                                || (d2 == best.distance_squared
                                    && (node.point as usize) < best.index)
                            {
                                best = Neighbor::new(node.point as usize, d2);
                            }
                        }
                        SearchKind::Radius(_) => {
                            if d2 <= r2 {
                                radius_count += 1;
                                if record_radius {
                                    radius_results.push(node.point);
                                }
                                if collect {
                                    trace.radius_hits.push(Neighbor::new(node.point as usize, d2));
                                }
                            }
                        }
                    }
                    let delta = q.axis(node.axis as usize) - node.split;
                    let (near, far) =
                        if delta < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
                    // Far first so near pops next (DFS order).
                    if far != TopChild::None {
                        stack.push((far, delta * delta));
                    }
                    if near != TopChild::None {
                        stack.push((near, 0.0));
                    }
                }
                TopChild::Leaf(l) => {
                    let leaf = l as usize;
                    let is_primary = primary_leaf.is_none();
                    if is_primary {
                        primary_leaf = Some(leaf);
                        // Leader Check at the primary leaf only.
                        if let Some(cfg) = self.config.approx {
                            let book = match kind {
                                SearchKind::Nn => &self.books.nn[leaf],
                                SearchKind::Radius(_) => &self.books.radius[leaf],
                            };
                            let leader_checks = book.len() as u32;
                            let threshold = match kind {
                                SearchKind::Nn => cfg.nn_threshold,
                                SearchKind::Radius(_) => cfg.radius_threshold_frac * r,
                            };
                            let closest = book
                                .iter()
                                .enumerate()
                                .min_by(|(_, a), (_, b)| {
                                    q.distance_squared(a.query)
                                        .partial_cmp(&q.distance_squared(b.query))
                                        .unwrap()
                                })
                                .map(|(i, l)| (i, q.distance(l.query)));
                            if let Some((li, dist)) = closest {
                                if dist < threshold {
                                    // Follower: the whole search resolves
                                    // from the leader's recorded results.
                                    let leader = match kind {
                                        SearchKind::Nn => &self.books.nn[leaf][li],
                                        SearchKind::Radius(_) => &self.books.radius[leaf][li],
                                    };
                                    trace.follower_hits += 1;
                                    best = Neighbor::new(usize::MAX, f64::INFINITY);
                                    radius_count = 0;
                                    trace.radius_hits.clear();
                                    for &i in &leader.results {
                                        let d2 = q.distance_squared(points[i as usize]);
                                        match kind {
                                            SearchKind::Nn => {
                                                if d2 < best.distance_squared {
                                                    best = Neighbor::new(i as usize, d2);
                                                }
                                            }
                                            SearchKind::Radius(_) => {
                                                if d2 <= r2 {
                                                    radius_count += 1;
                                                    if collect {
                                                        trace
                                                            .radius_hits
                                                            .push(Neighbor::new(i as usize, d2));
                                                    }
                                                }
                                            }
                                        }
                                    }
                                    tasks.push(LeafTask {
                                        query: qi,
                                        leaf: leaf as u32,
                                        scan_points: leader.results.len() as u32,
                                        leader_checks,
                                        follower: true,
                                    });
                                    break 'search;
                                }
                            }
                        }
                    }

                    // Precise path: exhaustive scan of the leaf set.
                    let set = &tree.leaves()[leaf];
                    for &i in &set.points {
                        let d2 = q.distance_squared(points[i as usize]);
                        match kind {
                            SearchKind::Nn => {
                                if d2 < best.distance_squared
                                    || (d2 == best.distance_squared && (i as usize) < best.index)
                                {
                                    best = Neighbor::new(i as usize, d2);
                                }
                            }
                            SearchKind::Radius(_) => {
                                if d2 <= r2 {
                                    radius_count += 1;
                                    if record_radius {
                                        radius_results.push(i);
                                    }
                                    if collect {
                                        trace.radius_hits.push(Neighbor::new(i as usize, d2));
                                    }
                                }
                            }
                        }
                    }
                    let leader_checks = if self.config.approx.is_some() && is_primary {
                        match kind {
                            SearchKind::Nn => self.books.nn[leaf].len() as u32,
                            SearchKind::Radius(_) => self.books.radius[leaf].len() as u32,
                        }
                    } else {
                        0
                    };
                    tasks.push(LeafTask {
                        query: qi,
                        leaf: leaf as u32,
                        scan_points: set.points.len() as u32,
                        leader_checks,
                        follower: false,
                    });
                }
            }
        }

        // Non-followers may become leaders at their primary leaf,
        // recording their *final* (complete) result.
        if let (Some(cfg), Some(leaf)) = (self.config.approx, primary_leaf) {
            if trace.follower_hits == 0 {
                match kind {
                    SearchKind::Nn => {
                        if best.index != usize::MAX && self.books.nn[leaf].len() < cfg.leader_cap {
                            self.books.nn[leaf]
                                .push(Leader { query: q, results: vec![best.index as u32] });
                        }
                    }
                    SearchKind::Radius(_) => {
                        if self.books.radius[leaf].len() < cfg.leader_cap {
                            self.books.radius[leaf]
                                .push(Leader { query: q, results: radius_results });
                        }
                    }
                }
            }
        }

        trace.nn_best = (best.index != usize::MAX).then_some(best);
        trace.radius_count = radius_count;
        trace
    }
}

/// Convenience: the default approximate configuration the paper evaluates
/// (thd = 1.2 m NN, 40% radius, 16-entry leader buffer).
pub fn paper_approx_config() -> ApproxConfig {
    ApproxConfig::default()
}

/// Accumulates two sequential batch reports (batches run back-to-back:
/// cycles/energy/traffic add; utilizations combine cycle-weighted;
/// per-query result vectors concatenate).
fn merge_reports(a: SimReport, b: SimReport) -> SimReport {
    let cycles = a.cycles + b.cycles;
    let pe_utilization = if cycles == 0 {
        0.0
    } else {
        (a.pe_utilization * a.cycles as f64 + b.pe_utilization * b.cycles as f64) / cycles as f64
    };
    let mut nn_results = a.nn_results;
    nn_results.extend(b.nn_results);
    let mut radius_result_counts = a.radius_result_counts;
    radius_result_counts.extend(b.radius_result_counts);
    let mut radius_results = a.radius_results;
    radius_results.extend(b.radius_results);
    SimReport {
        cycles,
        fe_cycles: a.fe_cycles + b.fe_cycles,
        be_cycles: a.be_cycles + b.be_cycles,
        seconds: a.seconds + b.seconds,
        pe_utilization,
        nodes_expanded: a.nodes_expanded + b.nodes_expanded,
        nodes_bypassed: a.nodes_bypassed + b.nodes_bypassed,
        leaf_points_scanned: a.leaf_points_scanned + b.leaf_points_scanned,
        follower_hits: a.follower_hits + b.follower_hits,
        cache_hits: a.cache_hits + b.cache_hits,
        traffic: a.traffic + b.traffic,
        energy: EnergyBreakdown {
            pe: a.energy.pe + b.energy.pe,
            sram_read: a.energy.sram_read + b.energy.sram_read,
            sram_write: a.energy.sram_write + b.energy.sram_write,
            leakage: a.energy.leakage + b.energy.leakage,
            dram: a.energy.dram + b.energy.dram,
        },
        nn_results,
        radius_result_counts,
        radius_results,
    }
}

#[derive(Debug, Default)]
struct QueryTrace {
    expanded: u64,
    bypassed: u64,
    follower_hits: u64,
    nn_best: Option<Neighbor>,
    radius_count: usize,
    /// Full radius hits, populated only when the engine collects results.
    radius_hits: Vec<Neighbor>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BackendPolicy;

    fn lcg_cloud(n: usize, seed: u64) -> Vec<Vec3> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 40.0 - 20.0
        };
        (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
    }

    fn small_config() -> AcceleratorConfig {
        AcceleratorConfig { num_rus: 8, num_sus: 4, pes_per_su: 8, ..AcceleratorConfig::default() }
    }

    #[test]
    fn exact_nn_matches_software_search() {
        let pts = lcg_cloud(4000, 1);
        let tree = TwoStageKdTree::build(&pts, 5);
        let queries = lcg_cloud(300, 2);
        let mut sim = AcceleratorSim::new(&tree, small_config());
        let report = sim.run_nn(&queries);
        for (q, r) in queries.iter().zip(&report.nn_results) {
            let sw = tree.nn(*q).unwrap();
            let hw = r.unwrap();
            assert_eq!(hw.index, sw.index);
            assert_eq!(hw.distance_squared, sw.distance_squared);
        }
    }

    #[test]
    fn exact_radius_counts_match_software() {
        let pts = lcg_cloud(3000, 3);
        let tree = TwoStageKdTree::build(&pts, 4);
        let queries = lcg_cloud(100, 4);
        let mut sim = AcceleratorSim::new(&tree, small_config());
        let report = sim.run_radius(&queries, 3.0);
        for (q, &count) in queries.iter().zip(&report.radius_result_counts) {
            assert_eq!(count, tree.radius(*q, 3.0).len());
        }
    }

    #[test]
    fn cycles_are_positive_and_composed() {
        let pts = lcg_cloud(2000, 5);
        let tree = TwoStageKdTree::build(&pts, 4);
        let mut sim = AcceleratorSim::new(&tree, small_config());
        let report = sim.run_nn(&lcg_cloud(200, 6));
        assert!(report.cycles > 0);
        assert_eq!(report.cycles, report.fe_cycles.max(report.be_cycles));
        assert!(report.seconds > 0.0);
        assert!(report.power_watts() > 0.0);
        assert!(report.pe_utilization > 0.0 && report.pe_utilization <= 1.0);
    }

    #[test]
    fn optimizations_reduce_cycles() {
        let pts = lcg_cloud(4000, 7);
        // Deep top-tree so the front-end matters.
        let tree = TwoStageKdTree::build(&pts, 9);
        let queries = lcg_cloud(400, 8);

        let run_with = |fwd: bool, byp: bool| {
            let cfg = AcceleratorConfig { forwarding: fwd, bypassing: byp, ..small_config() };
            let mut sim = AcceleratorSim::new(&tree, cfg);
            sim.run_nn(&queries).fe_cycles
        };
        let no_opt = run_with(false, false);
        let bypass = run_with(false, true);
        let both = run_with(true, true);
        assert!(bypass < no_opt, "bypass {bypass} !< no_opt {no_opt}");
        assert!(both < bypass, "both {both} !< bypass {bypass}");
    }

    #[test]
    fn classic_tree_mode_bottlenecks_on_front_end() {
        // A very deep top-tree (≈ classic KD-tree, leaf sets ~1) keeps the
        // SUs idle — paper's Acc-KD observation.
        let pts = lcg_cloud(4000, 9);
        let deep = TwoStageKdTree::build(&pts, 12);
        let shallow = TwoStageKdTree::build(&pts, 5);
        let queries = lcg_cloud(200, 10);

        let mut sim_deep = AcceleratorSim::new(&deep, small_config());
        let deep_report = sim_deep.run_nn(&queries);
        let mut sim_shallow = AcceleratorSim::new(&shallow, small_config());
        let shallow_report = sim_shallow.run_nn(&queries);

        assert!(deep_report.fe_cycles >= deep_report.be_cycles);
        assert!(
            shallow_report.pe_utilization > deep_report.pe_utilization,
            "shallow {} !> deep {}",
            shallow_report.pe_utilization,
            deep_report.pe_utilization
        );
    }

    #[test]
    fn approximate_search_reduces_work() {
        let pts = lcg_cloud(8000, 11);
        let tree = TwoStageKdTree::build(&pts, 4);
        // Clustered queries so followers appear.
        let queries: Vec<Vec3> = (0..300)
            .map(|i| Vec3::new((i % 10) as f64 * 0.05, (i / 10) as f64 * 0.05, 1.0))
            .collect();

        let mut exact_sim = AcceleratorSim::new(&tree, small_config());
        let exact = exact_sim.run_nn(&queries);
        let approx_cfg = AcceleratorConfig {
            approx: Some(ApproxConfig { nn_threshold: 2.0, ..Default::default() }),
            ..small_config()
        };
        let mut approx_sim = AcceleratorSim::new(&tree, approx_cfg);
        let approx = approx_sim.run_nn(&queries);

        assert!(approx.follower_hits > 0);
        assert!(
            approx.leaf_points_scanned < exact.leaf_points_scanned,
            "approx {} !< exact {}",
            approx.leaf_points_scanned,
            exact.leaf_points_scanned
        );
    }

    #[test]
    fn mqmn_streams_more_bytes_than_mqsn() {
        let pts = lcg_cloud(4000, 13);
        let tree = TwoStageKdTree::build(&pts, 4);
        // Clustered queries → same-leaf batching is possible.
        let queries: Vec<Vec3> =
            (0..200).map(|i| Vec3::new((i % 20) as f64 * 0.1, 0.5, 0.5)).collect();
        let mqsn_cfg = AcceleratorConfig { node_cache_points: 0, ..small_config() };
        let mut s1 = AcceleratorSim::new(&tree, mqsn_cfg);
        let mqsn = s1.run_nn(&queries);
        let mqmn_cfg = AcceleratorConfig {
            backend: BackendPolicy::Mqmn,
            node_cache_points: 0,
            ..small_config()
        };
        let mut s2 = AcceleratorSim::new(&tree, mqmn_cfg);
        let mqmn = s2.run_nn(&queries);

        assert!(mqmn.traffic.points_buffer > mqsn.traffic.points_buffer);
        assert!(mqmn.be_cycles <= mqsn.be_cycles);
        // Results identical either way.
        for (a, b) in mqsn.nn_results.iter().zip(&mqmn.nn_results) {
            assert_eq!(a.unwrap().index, b.unwrap().index);
        }
    }

    #[test]
    fn node_cache_moves_traffic_off_points_buffer() {
        let pts = lcg_cloud(4000, 15);
        let tree = TwoStageKdTree::build(&pts, 4);
        let queries: Vec<Vec3> =
            (0..300).map(|i| Vec3::new((i % 3) as f64, (i % 7) as f64, 0.0)).collect();
        let no_cache = AcceleratorConfig { node_cache_points: 0, pes_per_su: 1, ..small_config() };
        let mut s1 = AcceleratorSim::new(&tree, no_cache);
        let cold = s1.run_nn(&queries);
        let cached = AcceleratorConfig { node_cache_points: 8192, pes_per_su: 1, ..small_config() };
        let mut s2 = AcceleratorSim::new(&tree, cached);
        let warm = s2.run_nn(&queries);
        assert!(warm.cache_hits > 0);
        assert!(warm.traffic.points_buffer < cold.traffic.points_buffer);
        assert_eq!(
            warm.traffic.points_buffer + warm.traffic.node_cache,
            cold.traffic.points_buffer,
            "cache redirects, not removes, traffic"
        );
    }

    #[test]
    fn leader_reset_restores_exactness() {
        let pts = lcg_cloud(2000, 17);
        let tree = TwoStageKdTree::build(&pts, 3);
        let cfg = AcceleratorConfig {
            approx: Some(ApproxConfig { nn_threshold: 5.0, ..Default::default() }),
            ..small_config()
        };
        let mut sim = AcceleratorSim::new(&tree, cfg);
        let q = vec![Vec3::new(0.1, 0.1, 0.1); 10];
        let first = sim.run_nn(&q);
        assert!(first.follower_hits > 0);
        sim.reset_leaders();
        let second = sim.run_nn(&q[..1]);
        assert_eq!(second.follower_hits, 0, "first query after reset must be a leader");
    }

    #[test]
    fn empty_inputs() {
        let tree = TwoStageKdTree::build(&[], 3);
        let mut sim = AcceleratorSim::new(&tree, small_config());
        let r = sim.run_nn(&[]);
        assert_eq!(r.cycles, 0);
        let pts = lcg_cloud(100, 19);
        let tree = TwoStageKdTree::build(&pts, 2);
        let mut sim = AcceleratorSim::new(&tree, small_config());
        let r = sim.run_nn(&[]);
        assert_eq!(r.nn_results.len(), 0);
    }

    #[test]
    fn replay_matches_equivalent_direct_runs() {
        use tigris_core::QueryRecord;
        let pts = lcg_cloud(2000, 23);
        let tree = TwoStageKdTree::build(&pts, 4);
        let nn_queries = lcg_cloud(50, 24);
        let rad_queries = lcg_cloud(30, 25);

        let mut log = Vec::new();
        log.extend(nn_queries.iter().map(|&q| QueryRecord::nn(q)));
        log.extend(rad_queries.iter().map(|&q| QueryRecord::radius(q, 2.0)));

        let mut replay_sim = AcceleratorSim::new(&tree, small_config());
        let replayed = replay_sim.replay(&log);

        let mut direct_sim = AcceleratorSim::new(&tree, small_config());
        let nn = direct_sim.run(&nn_queries, SearchKind::Nn);
        let rad = direct_sim.run(&rad_queries, SearchKind::Radius(2.0));

        assert_eq!(replayed.cycles, nn.cycles + rad.cycles);
        assert_eq!(replayed.nodes_expanded, nn.nodes_expanded + rad.nodes_expanded);
        assert_eq!(replayed.nn_results.len(), 50);
        assert_eq!(replayed.radius_result_counts.len(), 30);
        assert!(
            (replayed.energy.total_joules()
                - (nn.energy.total_joules() + rad.energy.total_joules()))
            .abs()
                < 1e-15
        );
    }

    #[test]
    fn replay_empty_log() {
        let pts = lcg_cloud(100, 26);
        let tree = TwoStageKdTree::build(&pts, 3);
        let mut sim = AcceleratorSim::new(&tree, small_config());
        let report = sim.replay(&[]);
        assert_eq!(report.cycles, 0);
    }

    #[test]
    fn traffic_is_nonzero_everywhere_expected() {
        let pts = lcg_cloud(2000, 21);
        let tree = TwoStageKdTree::build(&pts, 4);
        let mut sim = AcceleratorSim::new(&tree, small_config());
        let r = sim.run_nn(&lcg_cloud(100, 22));
        assert!(r.traffic.fe_query_queue > 0);
        assert!(r.traffic.query_buffer > 0);
        assert!(r.traffic.query_stacks > 0);
        assert!(r.traffic.result_buffer > 0);
        assert!(r.traffic.be_query_buffer > 0);
        assert!(r.traffic.points_buffer > 0);
        assert!(r.traffic.dram > 0);
    }
}

//! Property tests for the parallel batch engine: batched execution must be
//! *indistinguishable* from serial — identical neighbor indices, identical
//! distances, and per-thread [`SearchStats`] that merge to the serial
//! totals — on all four backends (canonical KD-tree, two-stage KD-tree,
//! approximate leader/follower search, brute force).

use proptest::prelude::*;
use tigris_core::batch::{BatchConfig, BatchSearcher};
use tigris_core::simd::{LANES, LANES_HALF};
use tigris_core::{
    ApproxConfig, ApproxSearcher, BruteForceIndex, KdTree, SearchStats, TwoStageKdTree,
};
use tigris_geom::Vec3;

fn point() -> impl Strategy<Value = Vec3> {
    (-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn cloud() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(point(), 1..400)
}

fn queries() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(point(), 1..80)
}

/// Thread counts worth exercising: serial, oversubscribed small, auto.
fn batch_cfg() -> impl Strategy<Value = BatchConfig> {
    (0usize..9, 1usize..64).prop_map(|(threads, min_chunk)| BatchConfig { threads, min_chunk })
}

/// Runs the serial kernel loop and the batched call on the same backend
/// and asserts bit-identical results and stats.
macro_rules! assert_batch_equals_serial {
    ($make:expr, $queries:expr, $cfg:expr, $serial:expr, $batched:expr) => {{
        let mut serial_backend = $make;
        let mut serial_stats = SearchStats::new();
        let serial_out: Vec<_> =
            $queries.iter().map(|&q| $serial(&mut serial_backend, q, &mut serial_stats)).collect();

        let mut batch_backend = $make;
        let mut batch_stats = SearchStats::new();
        let batch_out = $batched(&mut batch_backend, &$queries, &$cfg, &mut batch_stats);

        prop_assert_eq!(serial_out, batch_out);
        prop_assert_eq!(serial_stats, batch_stats);
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kdtree_nn_batch_equals_serial(pts in cloud(), qs in queries(), cfg in batch_cfg()) {
        assert_batch_equals_serial!(
            KdTree::build(&pts),
            qs,
            cfg,
            |t: &mut KdTree, q, s: &mut SearchStats| t.nn_single(q, s),
            |t: &mut KdTree, qs: &[Vec3], c: &BatchConfig, s: &mut SearchStats| t.nn_batch(qs, c, s)
        );
    }

    #[test]
    fn kdtree_knn_batch_equals_serial(
        pts in cloud(), qs in queries(), k in 1usize..12, cfg in batch_cfg(),
    ) {
        assert_batch_equals_serial!(
            KdTree::build(&pts),
            qs,
            cfg,
            |t: &mut KdTree, q, s: &mut SearchStats| t.knn_single(q, k, s),
            |t: &mut KdTree, qs: &[Vec3], c: &BatchConfig, s: &mut SearchStats| {
                t.knn_batch(qs, k, c, s)
            }
        );
    }

    #[test]
    fn kdtree_radius_batch_equals_serial(
        pts in cloud(), qs in queries(), r in 0.0f64..30.0, cfg in batch_cfg(),
    ) {
        assert_batch_equals_serial!(
            KdTree::build(&pts),
            qs,
            cfg,
            |t: &mut KdTree, q, s: &mut SearchStats| t.radius_single(q, r, s),
            |t: &mut KdTree, qs: &[Vec3], c: &BatchConfig, s: &mut SearchStats| {
                t.radius_batch(qs, r, c, s)
            }
        );
    }

    #[test]
    fn two_stage_batches_equal_serial(
        pts in cloud(), qs in queries(), h in 0usize..8, r in 0.0f64..30.0, cfg in batch_cfg(),
    ) {
        assert_batch_equals_serial!(
            TwoStageKdTree::build(&pts, h),
            qs,
            cfg,
            |t: &mut TwoStageKdTree, q, s: &mut SearchStats| t.nn_single(q, s),
            |t: &mut TwoStageKdTree, qs: &[Vec3], c: &BatchConfig, s: &mut SearchStats| {
                t.nn_batch(qs, c, s)
            }
        );
        assert_batch_equals_serial!(
            TwoStageKdTree::build(&pts, h),
            qs,
            cfg,
            |t: &mut TwoStageKdTree, q, s: &mut SearchStats| t.radius_single(q, r, s),
            |t: &mut TwoStageKdTree, qs: &[Vec3], c: &BatchConfig, s: &mut SearchStats| {
                t.radius_batch(qs, r, c, s)
            }
        );
    }

    #[test]
    fn brute_force_batches_equal_serial(
        pts in cloud(), qs in queries(), k in 1usize..8, cfg in batch_cfg(),
    ) {
        assert_batch_equals_serial!(
            pts.clone(),
            qs,
            cfg,
            |t: &mut Vec<Vec3>, q, s: &mut SearchStats| t.as_mut_slice().knn_single(q, k, s),
            |t: &mut Vec<Vec3>, qs: &[Vec3], c: &BatchConfig, s: &mut SearchStats| {
                t.as_mut_slice().knn_batch(qs, k, c, s)
            }
        );
    }

    /// The stateful backend: leader books must evolve identically, so
    /// results, stats, *and* final leader counts are compared.
    #[test]
    fn approx_batches_equal_serial(
        pts in prop::collection::vec(point(), 32..400),
        qs in queries(),
        h in 1usize..6,
        thd in 0.0f64..6.0,
        r in 0.5f64..10.0,
        cfg in batch_cfg(),
    ) {
        let tree = TwoStageKdTree::build(&pts, h);
        let acfg = ApproxConfig { nn_threshold: thd, ..ApproxConfig::default() };

        let mut serial = ApproxSearcher::new(&tree, acfg);
        let mut serial_stats = SearchStats::new();
        let serial_nn: Vec<_> =
            qs.iter().map(|&q| serial.nn_single(q, &mut serial_stats)).collect();
        let serial_radius: Vec<_> =
            qs.iter().map(|&q| serial.radius_single(q, r, &mut serial_stats)).collect();

        let mut batched = ApproxSearcher::new(&tree, acfg);
        let mut batch_stats = SearchStats::new();
        let batch_nn = batched.nn_batch(&qs, &cfg, &mut batch_stats);
        let batch_radius = batched.radius_batch(&qs, r, &cfg, &mut batch_stats);

        prop_assert_eq!(serial_nn, batch_nn);
        prop_assert_eq!(serial_radius, batch_radius);
        prop_assert_eq!(serial_stats, batch_stats);
        prop_assert_eq!(serial.leader_count(), batched.leader_count());
    }

    /// The SoA scan path under worker splits that straddle the SIMD block
    /// widths: every combination of a work-chunk size and a query count one
    /// step around 4 / 8 / 16 forces remainder lanes inside the kernels
    /// while the batch engine splits the stream at awkward offsets.
    #[test]
    fn soa_chunks_straddling_simd_widths_equal_serial(
        pts in cloud(), r in 0.0f64..30.0, threads in 0usize..5,
    ) {
        for min_chunk in [LANES_HALF - 1, LANES_HALF, LANES_HALF + 1,
                          LANES - 1, LANES, LANES + 1,
                          2 * LANES - 1, 2 * LANES, 2 * LANES + 1] {
            let cfg = BatchConfig { threads, min_chunk };
            for n_queries in [LANES - 1, LANES, LANES + 1, 2 * LANES + 1] {
                let qs: Vec<Vec3> = (0..n_queries)
                    .map(|i| Vec3::new(i as f64 * 1.7 - 10.0, (i % 5) as f64, -2.0))
                    .collect();
                assert_batch_equals_serial!(
                    KdTree::build(&pts),
                    qs,
                    cfg,
                    |t: &mut KdTree, q, s: &mut SearchStats| t.radius_single(q, r, s),
                    |t: &mut KdTree, qs: &[Vec3], c: &BatchConfig, s: &mut SearchStats| {
                        t.radius_batch(qs, r, c, s)
                    }
                );
                assert_batch_equals_serial!(
                    BruteForceIndex::new(pts.clone()),
                    qs,
                    cfg,
                    |t: &mut BruteForceIndex, q, s: &mut SearchStats| t.nn_single(q, s),
                    |t: &mut BruteForceIndex, qs: &[Vec3], c: &BatchConfig, s: &mut SearchStats| {
                        t.nn_batch(qs, c, s)
                    }
                );
            }
        }
    }

    /// Cloud sizes one step around the SoA leaf capacity (2 × LANES) and
    /// the block widths: the tree build emits leaves with every remainder
    /// occupancy, and batched queries must stay bit-identical to serial.
    #[test]
    fn clouds_straddling_leaf_capacity_equal_serial(
        qs in queries(), k in 1usize..6, cfg in batch_cfg(), seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 40.0 - 20.0
        };
        for n in [LANES_HALF, LANES - 1, LANES, LANES + 1,
                  2 * LANES - 1, 2 * LANES, 2 * LANES + 1,
                  4 * LANES - 1, 4 * LANES + 1] {
            let pts: Vec<Vec3> = (0..n).map(|_| Vec3::new(next(), next(), next())).collect();
            assert_batch_equals_serial!(
                KdTree::build(&pts),
                qs,
                cfg,
                |t: &mut KdTree, q, s: &mut SearchStats| t.knn_single(q, k, s),
                |t: &mut KdTree, qs: &[Vec3], c: &BatchConfig, s: &mut SearchStats| {
                    t.knn_batch(qs, k, c, s)
                }
            );
        }
    }

    /// Per-thread stats merge losslessly: summing arbitrary partitions of
    /// a query stream equals the unpartitioned totals.
    #[test]
    fn merged_stats_equal_serial_totals(
        pts in cloud(), qs in queries(), split in 0usize..80,
    ) {
        let tree = KdTree::build(&pts);
        let split = split.min(qs.len());

        let mut whole = SearchStats::new();
        for &q in &qs {
            tree.nn_with_stats(q, &mut whole);
        }

        let (left, right) = qs.split_at(split);
        let mut a = SearchStats::new();
        let mut b = SearchStats::new();
        for &q in left {
            tree.nn_with_stats(q, &mut a);
        }
        for &q in right {
            tree.nn_with_stats(q, &mut b);
        }
        a.merge(&b);
        prop_assert_eq!(whole, a);
    }
}

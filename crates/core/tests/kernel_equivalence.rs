//! Differential property tests for the SIMD kernel seam: the blocked
//! [`tigris_core::simd::wide`] kernels must be **bit-identical** to the
//! [`tigris_core::simd::scalar`] reference — not merely close — on
//! adversarial inputs: exact duplicates, exact distance ties, remainder
//! lane counts (`n % 8 ≠ 0`, with and without a half block), subnormal
//! coordinates, and radius hits exactly on the boundary.
//!
//! Both modules are always compiled regardless of the `scalar-kernels`
//! feature, so one binary exercises the pair differentially; a final test
//! pins the build-time re-exports to whichever module
//! [`tigris_core::simd::wide_kernels_selected`] reports.

use proptest::prelude::*;
use tigris_core::simd::{self, scalar, wide, LANES, LANES_HALF};
use tigris_core::{Neighbor, PointSoA};
use tigris_geom::Vec3;

/// Coordinates weighted toward the values that break sloppy kernels:
/// signed zeros, subnormals, and magnitudes whose squares underflow.
fn coord() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => -100.0f64..100.0,
        1 => Just(0.0),
        1 => Just(-0.0),
        1 => Just(f64::MIN_POSITIVE),       // smallest normal
        1 => Just(f64::MIN_POSITIVE / 8.0), // subnormal
        1 => Just(-1.0e-160),               // square is subnormal
        1 => Just(1.0e-300),
    ]
}

fn point() -> impl Strategy<Value = Vec3> {
    (coord(), coord(), coord()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

/// Clouds drawn from a small palette, so exact duplicates (and therefore
/// exact distance ties) occur constantly, at every length `0..67` —
/// covering every `n % 8` remainder, with and without a half block.
fn palette_cloud() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(point(), 1..8).prop_flat_map(|palette| {
        let m = palette.len();
        prop::collection::vec(0..m, 0..67)
            .prop_map(move |idx| idx.into_iter().map(|i| palette[i]).collect())
    })
}

/// A shuffled id permutation, as the two-stage leaf arenas produce:
/// kernels must not assume ids arrive sorted.
fn ids_for(n: usize) -> impl Strategy<Value = Vec<u32>> {
    Just((0..n as u32).collect::<Vec<u32>>()).prop_shuffle()
}

/// A palette cloud paired with a shuffled id permutation.
fn cloud_with_ids() -> impl Strategy<Value = (Vec<Vec3>, Vec<u32>)> {
    palette_cloud().prop_flat_map(|p| {
        let n = p.len();
        (Just(p), ids_for(n))
    })
}

/// A palette cloud, shuffled ids, and the index of a candidate whose
/// distance will serve as the exact radius boundary.
fn cloud_ids_pick() -> impl Strategy<Value = (Vec<Vec3>, Vec<u32>, usize)> {
    palette_cloud().prop_flat_map(|p| {
        let n = p.len();
        (Just(p), ids_for(n), 0..n.max(1))
    })
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #[test]
    fn squared_distances_are_bitwise_identical(pts in palette_cloud(), q in point()) {
        let soa = PointSoA::from_points(&pts);
        let mut a = vec![0.0; pts.len()];
        let mut b = vec![0.0; pts.len()];
        scalar::squared_distances(q, soa.view(), &mut a);
        wide::squared_distances(q, soa.view(), &mut b);
        prop_assert_eq!(bits(&a), bits(&b));
    }
}

proptest! {
    #[test]
    fn nn_reduce_is_bitwise_identical_under_shuffled_ids(
        cloud in cloud_with_ids(),
        q in point(),
    ) {
        let (pts, ids) = cloud;
        let soa = PointSoA::from_points(&pts);
        let a = scalar::nn_reduce(q, soa.view(), &ids);
        let b = wide::nn_reduce(q, soa.view(), &ids);
        prop_assert_eq!(a.map(|(d2, i)| (d2.to_bits(), i)), b.map(|(d2, i)| (d2.to_bits(), i)));
    }
}

proptest! {
    #[test]
    fn radius_collect_is_bitwise_identical_at_exact_boundaries(
        cloud in cloud_ids_pick(),
        q in point(),
        jitter in -1i64..2,
    ) {
        let (pts, ids, pick) = cloud;
        let soa = PointSoA::from_points(&pts);
        // r² exactly equal to one candidate's d² (a boundary hit), or one
        // ulp to either side of it — the `d² ≤ r²` mask must flip in
        // lockstep between the two implementations.
        let r2 = if pts.is_empty() {
            1.0
        } else {
            let mut d2s = vec![0.0; pts.len()];
            scalar::squared_distances(q, soa.view(), &mut d2s);
            let base = d2s[pick];
            if base.is_finite() && base > 0.0 {
                f64::from_bits((base.to_bits() as i64 + jitter) as u64)
            } else {
                base.max(0.0)
            }
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        scalar::radius_collect(q, soa.view(), &ids, r2, &mut a);
        wide::radius_collect(q, soa.view(), &ids, r2, &mut b);
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #[test]
    fn selected_kernels_match_the_reference(pts in palette_cloud(), q in point()) {
        // Whichever module the build selected, the crate-level re-exports
        // must agree with the scalar reference bit for bit.
        let soa = PointSoA::from_points(&pts);
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let mut a = vec![0.0; pts.len()];
        let mut b = vec![0.0; pts.len()];
        scalar::squared_distances(q, soa.view(), &mut a);
        simd::squared_distances(q, soa.view(), &mut b);
        prop_assert_eq!(bits(&a), bits(&b));
        prop_assert_eq!(
            scalar::nn_reduce(q, soa.view(), &ids),
            simd::nn_reduce(q, soa.view(), &ids)
        );
    }
}

#[test]
fn all_remainder_lane_counts_with_subnormal_coords() {
    // n = 0..=33 walks every n % 8 twice, crossing the 8-block, the
    // half-block, and the scalar-tail paths, with coordinates whose
    // differences and squares are subnormal.
    for n in 0..=33usize {
        let pts: Vec<Vec3> = (0..n)
            .map(|i| {
                let t = f64::MIN_POSITIVE * (i as f64 + 1.0) / 16.0; // subnormal ladder
                Vec3::new(t, -t, 1.0e-160 * i as f64)
            })
            .collect();
        let soa = PointSoA::from_points(&pts);
        let ids: Vec<u32> = (0..n as u32).collect();
        let q = Vec3::new(f64::MIN_POSITIVE / 2.0, 0.0, -1.0e-160);

        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        scalar::squared_distances(q, soa.view(), &mut a);
        wide::squared_distances(q, soa.view(), &mut b);
        assert_eq!(bits(&a), bits(&b), "n = {n}");
        assert_eq!(
            scalar::nn_reduce(q, soa.view(), &ids),
            wide::nn_reduce(q, soa.view(), &ids),
            "n = {n}"
        );
    }
}

#[test]
fn duplicate_points_tie_to_the_smallest_id_in_every_block_position() {
    // Place the duplicated nearest point at every slot of a 17-point view
    // (8-block, half-block and tail all covered); ties must always resolve
    // to the smaller id, wherever the lanes land.
    const N: usize = 17;
    for slot in 0..N {
        for other in 0..N {
            if other == slot {
                continue;
            }
            let mut pts = vec![Vec3::new(9.0, 9.0, 9.0); N];
            pts[slot] = Vec3::X;
            pts[other] = Vec3::X;
            let soa = PointSoA::from_points(&pts);
            let ids: Vec<u32> = (0..N as u32).collect();
            let expect = Some((1.0, slot.min(other) as u32));
            assert_eq!(scalar::nn_reduce(Vec3::ZERO, soa.view(), &ids), expect);
            assert_eq!(wide::nn_reduce(Vec3::ZERO, soa.view(), &ids), expect);
        }
    }
}

#[test]
fn boundary_hit_flips_with_one_ulp_in_both_implementations() {
    // A point at distance² = 9.0 exactly: included at r² = 9.0, excluded
    // one ulp below, in both implementations, at a lane position inside an
    // 8-block and in the scalar tail.
    for n in [9usize, 12] {
        let mut pts = vec![Vec3::new(100.0, 0.0, 0.0); n];
        pts[n - 1] = Vec3::new(3.0, 0.0, 0.0);
        let soa = PointSoA::from_points(&pts);
        let ids: Vec<u32> = (0..n as u32).collect();
        let r2 = 9.0f64;
        let r2_below = f64::from_bits(r2.to_bits() - 1);

        for (r2, expect_hit) in [(r2, true), (r2_below, false)] {
            let mut a = Vec::new();
            let mut b = Vec::new();
            scalar::radius_collect(Vec3::ZERO, soa.view(), &ids, r2, &mut a);
            wide::radius_collect(Vec3::ZERO, soa.view(), &ids, r2, &mut b);
            assert_eq!(a, b, "n = {n}, r2 = {r2}");
            let expected: Vec<Neighbor> =
                if expect_hit { vec![Neighbor::new(n - 1, 9.0)] } else { Vec::new() };
            assert_eq!(a, expected, "n = {n}, r2 = {r2}");
        }
    }
}

#[test]
fn block_widths_are_what_the_leaves_are_sized_for() {
    // The KD-tree sizes leaves as 2 × LANES; a drift in either constant
    // silently changes every leaf layout, so pin them.
    assert_eq!(LANES, 8);
    assert_eq!(LANES_HALF, 4);
    assert_eq!(tigris_core::kdtree::LEAF_SIZE, 2 * LANES);
}

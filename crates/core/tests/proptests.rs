//! Property-based tests for the KD-tree structures: the canonical tree, the
//! two-stage tree, the approximate searcher and the injection instruments
//! are all checked against the brute-force oracle.

use proptest::prelude::*;
use tigris_core::inject::{kth_nn, shell_radius};
use tigris_core::{
    nn_brute_force, radius_brute_force, ApproxConfig, ApproxSearcher, KdTree, SearchStats,
    TwoStageKdTree,
};
use tigris_geom::Vec3;

fn point() -> impl Strategy<Value = Vec3> {
    (-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn cloud() -> impl Strategy<Value = Vec<Vec3>> {
    prop::collection::vec(point(), 1..300)
}

proptest! {
    #[test]
    fn kdtree_nn_equals_brute_force(pts in cloud(), q in point()) {
        let tree = KdTree::build(&pts);
        let a = tree.nn(q).unwrap();
        let b = nn_brute_force(&pts, q).unwrap();
        prop_assert_eq!(a.distance_squared, b.distance_squared);
        prop_assert_eq!(pts[a.index], pts[b.index]);
    }

    #[test]
    fn kdtree_radius_equals_brute_force(pts in cloud(), q in point(), r in 0.0f64..30.0) {
        let tree = KdTree::build(&pts);
        let a = tree.radius(q, r);
        let b = radius_brute_force(&pts, q, r);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.index, y.index);
            prop_assert_eq!(x.distance_squared, y.distance_squared);
        }
    }

    #[test]
    fn kdtree_knn_distances_match_brute_force(pts in cloud(), q in point(), k in 1usize..20) {
        let tree = KdTree::build(&pts);
        let a = tree.knn(q, k);
        let mut expected: Vec<f64> = pts.iter().map(|&p| q.distance_squared(p)).collect();
        expected.sort_by(|x, y| x.partial_cmp(y).unwrap());
        expected.truncate(k);
        prop_assert_eq!(a.len(), expected.len());
        for (x, &d) in a.iter().zip(&expected) {
            prop_assert!((x.distance_squared - d).abs() < 1e-12);
        }
    }

    #[test]
    fn two_stage_is_exact_at_any_height(pts in cloud(), q in point(), h in 0usize..10) {
        let tree = TwoStageKdTree::build(&pts, h);
        let a = tree.nn(q).unwrap();
        let b = nn_brute_force(&pts, q).unwrap();
        prop_assert_eq!(a.distance_squared, b.distance_squared);
    }

    #[test]
    fn two_stage_radius_is_exact(pts in cloud(), q in point(), h in 0usize..8, r in 0.0f64..30.0) {
        let tree = TwoStageKdTree::build(&pts, h);
        let a = tree.radius(q, r);
        let b = radius_brute_force(&pts, q, r);
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.index, y.index);
        }
    }

    #[test]
    fn two_stage_never_visits_fewer_nodes_than_fully_split(
        pts in prop::collection::vec(point(), 64..400),
        queries in prop::collection::vec(point(), 1..20),
        h in 0usize..6,
    ) {
        // The redundancy ratio of Fig. 6a is ≥ 1 by construction: shrinking
        // the top tree can only add work relative to the fully split tree.
        // The baseline is a two-stage tree whose top tree is deep enough to
        // isolate every point (one point per node) — the classic layout the
        // paper compares against. The bucketized `KdTree` is no longer that
        // baseline: it bills whole SoA leaf scans, so its totals are not
        // comparable node-for-node.
        let deep = TwoStageKdTree::build(&pts, 12);
        let two = TwoStageKdTree::build(&pts, h);
        let mut sc = SearchStats::new();
        let mut st = SearchStats::new();
        for &q in &queries {
            deep.nn_with_stats(q, &mut sc);
            two.nn_with_stats(q, &mut st);
        }
        // Allow equality (deep top-trees degenerate to the baseline).
        prop_assert!(st.total_nodes_visited() + 8 >= sc.total_nodes_visited());
    }

    #[test]
    fn approx_nn_error_is_bounded(
        pts in prop::collection::vec(point(), 32..300),
        queries in prop::collection::vec(point(), 1..30),
        thd in 0.0f64..5.0,
    ) {
        let tree = TwoStageKdTree::build(&pts, 3);
        let mut searcher = ApproxSearcher::new(
            &tree,
            ApproxConfig { nn_threshold: thd, ..Default::default() },
        );
        for &q in &queries {
            let approx = searcher.nn(q).unwrap();
            let exact = tree.nn(q).unwrap();
            // Triangle-inequality bound: follower ≤ exact + 2·thd.
            prop_assert!(approx.distance() <= exact.distance() + 2.0 * thd + 1e-9);
            // The approximate result always refers to a real point.
            prop_assert!(approx.index < pts.len());
        }
    }

    #[test]
    fn approx_radius_is_sound(
        pts in prop::collection::vec(point(), 32..300),
        queries in prop::collection::vec(point(), 1..30),
        r in 0.1f64..20.0,
    ) {
        let tree = TwoStageKdTree::build(&pts, 3);
        let mut searcher = ApproxSearcher::new(&tree, ApproxConfig::default());
        for &q in &queries {
            for n in searcher.radius(q, r) {
                prop_assert!(n.distance_squared <= r * r + 1e-12);
                prop_assert!((q.distance_squared(pts[n.index]) - n.distance_squared).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn kth_nn_is_monotone_in_k(pts in prop::collection::vec(point(), 10..200), q in point()) {
        let tree = KdTree::build(&pts);
        let mut prev = -1.0f64;
        for k in 1..=pts.len().min(10) {
            let n = kth_nn(&tree, q, k).unwrap();
            prop_assert!(n.distance_squared >= prev);
            prev = n.distance_squared;
        }
    }

    #[test]
    fn shell_is_ball_minus_inner_ball(
        pts in cloud(), q in point(),
        r1 in 0.0f64..10.0, extra in 0.0f64..10.0,
    ) {
        let r2 = r1 + extra;
        let tree = KdTree::build(&pts);
        let shell = shell_radius(&tree, q, r1, r2);
        let outer = tree.radius(q, r2);
        let inner_strict = outer
            .iter()
            .filter(|n| n.distance_squared < r1 * r1)
            .count();
        prop_assert_eq!(shell.len() + inner_strict, outer.len());
        for n in &shell {
            prop_assert!(n.distance_squared >= r1 * r1);
            prop_assert!(n.distance_squared <= r2 * r2);
        }
    }

    #[test]
    fn primary_leaf_is_stable_under_duplicate_queries(pts in prop::collection::vec(point(), 16..200), q in point()) {
        let tree = TwoStageKdTree::build(&pts, 3);
        prop_assert_eq!(tree.primary_leaf(q), tree.primary_leaf(q));
    }
}

//! The `SearchIndex` trait contract, verified generically for every
//! backend (see the contract section of `tigris_core::index::SearchIndex`):
//!
//! * exact backends agree with brute force **bit-for-bit** (indices and
//!   squared distances, tie-break and ordering included);
//! * the approximate backend stays within Algorithm 1's bound (NN distance
//!   at most `2·thd` beyond exact; radius results a sound subset);
//! * every `*_batch` entry point is equivalent to the serial loop —
//!   results in query order and `SearchStats` merged losslessly;
//! * the registry instantiates every built-in by name, and `name()`
//!   round-trips.
//!
//! New backends registered from other crates (e.g. `tigris-accel`'s
//! `"accelerator"`) are exercised by the same logic through the
//! workspace-level tests.

use proptest::prelude::*;
use tigris_core::index::{backend_names, build_backend, SearchIndex};
use tigris_core::{
    knn_brute_force, nn_brute_force, radius_brute_force, ApproxConfig, ApproxIndex, BatchConfig,
    DynamicMapIndex, KdTree, SearchStats,
};
use tigris_geom::Vec3;

fn lcg_cloud(n: usize, seed: u64) -> Vec<Vec3> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) * 20.0 - 10.0
    };
    (0..n).map(|_| Vec3::new(next(), next(), next())).collect()
}

const EXACT_BACKENDS: [&str; 4] = ["classic", "two-stage", "brute-force", "dynamic"];
const ALL_BACKENDS: [&str; 5] =
    ["classic", "two-stage", "two-stage-approx", "brute-force", "dynamic"];

#[test]
fn registry_instantiates_every_builtin() {
    let names = backend_names();
    let pts = lcg_cloud(100, 1);
    for name in ALL_BACKENDS {
        assert!(names.iter().any(|n| n == name), "{name} not registered");
        let index = build_backend(name, &pts).expect(name);
        assert_eq!(index.name(), name, "name() must match the registry key");
        assert_eq!(index.len(), pts.len());
        assert_eq!(index.size().points, pts.len());
    }
}

#[test]
fn exact_backends_agree_with_brute_force_bit_for_bit() {
    let pts = lcg_cloud(1500, 2);
    let queries = lcg_cloud(200, 3);
    for name in EXACT_BACKENDS {
        let mut index = build_backend(name, &pts).unwrap();
        let mut stats = SearchStats::new();
        for &q in &queries {
            let nn = index.nn(q, &mut stats).unwrap();
            let oracle = nn_brute_force(&pts, q).unwrap();
            assert_eq!(
                (nn.index, nn.distance_squared),
                (oracle.index, oracle.distance_squared),
                "{name}: nn mismatch"
            );

            let knn = index.knn(q, 7, &mut stats);
            assert_eq!(knn, knn_brute_force(&pts, q, 7), "{name}: knn mismatch");

            let ball = index.radius(q, 2.5, &mut stats);
            assert_eq!(ball, radius_brute_force(&pts, q, 2.5), "{name}: radius mismatch");
        }
        assert_eq!(stats.queries, 3 * queries.len() as u64, "{name}: query accounting");
    }
}

#[test]
fn knn_boundary_ties_break_to_lower_index_on_every_exact_backend() {
    // A regular grid puts many points at identical distances; the k-th
    // boundary then holds ties, and every exact backend must resolve them
    // exactly like brute force (lower index wins).
    let pts: Vec<Vec3> = (0..512)
        .map(|i| Vec3::new((i % 8) as f64, ((i / 8) % 8) as f64, (i / 64) as f64))
        .collect();
    let queries: Vec<Vec3> =
        (0..64).map(|i| Vec3::new((i % 8) as f64 + 0.5, (i / 8) as f64, 2.0)).collect();
    for name in EXACT_BACKENDS {
        let mut index = build_backend(name, &pts).unwrap();
        let mut stats = SearchStats::new();
        for &q in &queries {
            for k in [1, 3, 6, 13] {
                assert_eq!(
                    index.knn(q, k, &mut stats),
                    knn_brute_force(&pts, q, k),
                    "{name}: knn tie-break mismatch at k={k}"
                );
            }
        }
    }
}

/// Degenerate geometries that collapse one or more split dimensions: the
/// median-split build must still terminate, partition soundly, and answer
/// exactly. Each fixture pairs a cloud with probe queries on and off the
/// degenerate subspace.
fn degenerate_fixtures() -> Vec<(&'static str, Vec<Vec3>, Vec<Vec3>)> {
    let collinear: Vec<Vec3> = (0..97).map(|i| Vec3::new(i as f64 * 0.25, 3.0, -1.0)).collect();
    let coincident = vec![Vec3::new(0.5, -0.5, 2.0); 64];
    let single = vec![Vec3::new(-7.0, 0.0, 1.0)];
    let plane_xy: Vec<Vec3> =
        (0..144).map(|i| Vec3::new((i % 12) as f64, (i / 12) as f64, 4.0)).collect();
    let plane_yz: Vec<Vec3> =
        (0..100).map(|i| Vec3::new(-2.0, (i % 10) as f64 * 0.5, (i / 10) as f64 * 0.5)).collect();
    let two_planes: Vec<Vec3> = (0..80)
        .map(|i| {
            Vec3::new((i % 8) as f64, ((i / 8) % 5) as f64, if i % 2 == 0 { 0.0 } else { 9.0 })
        })
        .collect();
    vec![
        (
            "all-collinear",
            collinear,
            vec![
                Vec3::new(5.1, 3.0, -1.0),
                Vec3::new(12.0, 10.0, 10.0),
                Vec3::new(-1.0, 3.0, -1.0),
            ],
        ),
        (
            "all-coincident",
            coincident,
            vec![Vec3::new(0.5, -0.5, 2.0), Vec3::new(1.5, -0.5, 2.0), Vec3::ZERO],
        ),
        ("single-point", single, vec![Vec3::new(-7.0, 0.0, 1.0), Vec3::ZERO]),
        (
            "axis-aligned-plane-xy",
            plane_xy,
            vec![Vec3::new(5.5, 5.5, 4.0), Vec3::new(5.5, 5.5, -30.0), Vec3::new(0.0, 11.0, 4.5)],
        ),
        (
            "axis-aligned-plane-yz",
            plane_yz,
            vec![Vec3::new(-2.0, 2.2, 2.2), Vec3::new(40.0, 0.0, 0.0)],
        ),
        (
            "two-parallel-planes",
            two_planes,
            vec![Vec3::new(3.0, 2.0, 4.5), Vec3::new(3.0, 2.0, 4.6), Vec3::new(7.0, 4.0, 9.0)],
        ),
    ]
}

#[test]
fn exact_backends_survive_degenerate_geometry_bit_for_bit() {
    for (fixture, pts, probes) in degenerate_fixtures() {
        for name in EXACT_BACKENDS {
            let mut index = build_backend(name, &pts).unwrap();
            let mut stats = SearchStats::new();
            for &q in &probes {
                let nn = index.nn(q, &mut stats).unwrap();
                let oracle = nn_brute_force(&pts, q).unwrap();
                assert_eq!(
                    (nn.index, nn.distance_squared),
                    (oracle.index, oracle.distance_squared),
                    "{name} on {fixture}: nn mismatch"
                );
                // k at, below and beyond the cloud size; coincident clouds
                // make every candidate an exact tie.
                for k in [1, 2, pts.len(), pts.len() + 5] {
                    assert_eq!(
                        index.knn(q, k, &mut stats),
                        knn_brute_force(&pts, q, k),
                        "{name} on {fixture}: knn mismatch at k={k}"
                    );
                }
                // Radii from zero through "covers everything".
                for r in [0.0, 0.5, 3.0, 1000.0] {
                    assert_eq!(
                        index.radius(q, r, &mut stats),
                        radius_brute_force(&pts, q, r),
                        "{name} on {fixture}: radius mismatch at r={r}"
                    );
                }
            }
        }
    }
}

#[test]
fn degenerate_geometry_batches_match_serial() {
    // The SoA leaf arenas see pathological layouts here (every point in
    // one leaf chain, duplicated coordinates across all lanes); batched
    // execution must still be a pure reordering of the serial scan.
    let cfg = BatchConfig { threads: 3, min_chunk: 2 };
    for (fixture, pts, probes) in degenerate_fixtures() {
        for name in EXACT_BACKENDS {
            let mut serial = build_backend(name, &pts).unwrap();
            let mut batched = build_backend(name, &pts).unwrap();
            let mut s_stats = SearchStats::new();
            let mut b_stats = SearchStats::new();
            let s_nn: Vec<_> = probes.iter().map(|&q| serial.nn(q, &mut s_stats)).collect();
            let b_nn = batched.nn_batch(&probes, &cfg, &mut b_stats);
            assert_eq!(s_nn, b_nn, "{name} on {fixture}: batched nn differs");
            assert_eq!(s_stats, b_stats, "{name} on {fixture}: stats merge");
        }
    }
}

#[test]
fn approx_backend_stays_within_algorithm1_bound() {
    let pts = lcg_cloud(4000, 4);
    let queries = lcg_cloud(400, 5);
    let cfg = ApproxConfig::default();
    let mut index: Box<dyn SearchIndex> = Box::new(ApproxIndex::build(&pts, 5, cfg));
    let mut stats = SearchStats::new();
    for &q in &queries {
        // NN: the follower inherits its leader's NN; triangle inequality
        // bounds the reported distance by exact + 2·thd.
        let approx = index.nn(q, &mut stats).unwrap();
        let exact = nn_brute_force(&pts, q).unwrap();
        assert!(
            approx.distance() <= exact.distance() + 2.0 * cfg.nn_threshold + 1e-9,
            "approx {} exceeds exact {} + 2·thd",
            approx.distance(),
            exact.distance()
        );

        // Radius: a follower filters the leader's ball by its own radius,
        // so results are always sound (within r) and a subset of exact.
        let r = 2.0;
        let exact_ball = radius_brute_force(&pts, q, r);
        let approx_ball = index.radius(q, r, &mut stats);
        assert!(approx_ball.len() <= exact_ball.len(), "approx radius over-complete");
        for n in &approx_ball {
            assert!(n.distance_squared <= r * r + 1e-12, "unsound radius result");
            assert!(exact_ball.iter().any(|e| e.index == n.index), "result not in exact ball");
        }
    }
    assert!(stats.follower_hits > 0, "workload should exercise the follower path");
}

#[test]
fn batched_equals_serial_for_every_backend() {
    let pts = lcg_cloud(2500, 6);
    let queries = lcg_cloud(333, 7);
    let cfg = BatchConfig { threads: 4, min_chunk: 8 };
    for name in ALL_BACKENDS {
        // Fresh instances so stateful leader books start identical.
        let mut serial = build_backend(name, &pts).unwrap();
        let mut batched = build_backend(name, &pts).unwrap();
        let mut s_stats = SearchStats::new();
        let mut b_stats = SearchStats::new();

        let s_nn: Vec<_> = queries.iter().map(|&q| serial.nn(q, &mut s_stats)).collect();
        let b_nn = batched.nn_batch(&queries, &cfg, &mut b_stats);
        assert_eq!(s_nn, b_nn, "{name}: batched nn differs from serial");

        let s_knn: Vec<_> = queries.iter().map(|&q| serial.knn(q, 5, &mut s_stats)).collect();
        let b_knn = batched.knn_batch(&queries, 5, &cfg, &mut b_stats);
        assert_eq!(s_knn, b_knn, "{name}: batched knn differs from serial");

        let s_rad: Vec<_> = queries.iter().map(|&q| serial.radius(q, 1.5, &mut s_stats)).collect();
        let b_rad = batched.radius_batch(&queries, 1.5, &cfg, &mut b_stats);
        assert_eq!(s_rad, b_rad, "{name}: batched radius differs from serial");

        // Lossless stats merge: per-worker counters must recombine into
        // exactly the serial totals.
        assert_eq!(s_stats, b_stats, "{name}: batched stats differ from serial");
    }
}

#[test]
fn stats_merge_is_lossless_across_chunked_runs() {
    // Issuing the same stream in chunks with separately merged stats must
    // reproduce the one-shot totals, for stateless and stateful backends.
    let pts = lcg_cloud(1200, 8);
    let queries = lcg_cloud(240, 9);
    for name in ALL_BACKENDS {
        let mut whole = build_backend(name, &pts).unwrap();
        let mut whole_stats = SearchStats::new();
        let whole_out: Vec<_> = queries.iter().map(|&q| whole.nn(q, &mut whole_stats)).collect();

        let mut chunked = build_backend(name, &pts).unwrap();
        let mut merged = SearchStats::new();
        let mut chunked_out = Vec::new();
        for chunk in queries.chunks(64) {
            let mut local = SearchStats::new();
            chunked_out.extend(chunk.iter().map(|&q| chunked.nn(q, &mut local)));
            merged += local;
        }
        assert_eq!(whole_out, chunked_out, "{name}: chunked results differ");
        assert_eq!(whole_stats, merged, "{name}: chunked stats merge is lossy");
    }
}

#[test]
fn reset_clears_approximation_state_only() {
    let pts = lcg_cloud(800, 10);
    let queries = lcg_cloud(50, 11);
    for name in ALL_BACKENDS {
        let mut index = build_backend(name, &pts).unwrap();
        let mut stats = SearchStats::new();
        for &q in &queries {
            index.nn(q, &mut stats);
        }
        index.reset();
        // After reset the first query is served fresh (for the approximate
        // backend: as a leader, i.e. exactly).
        let q = queries[0];
        let mut post = SearchStats::new();
        let n = index.nn(q, &mut post).unwrap();
        let oracle = nn_brute_force(&pts, q).unwrap();
        assert_eq!(n.index, oracle.index, "{name}: first query after reset must be exact");
        assert_eq!(post.follower_hits, 0, "{name}: reset must clear follower state");
    }
}

#[test]
fn empty_index_behaves_uniformly() {
    for name in ALL_BACKENDS {
        let mut index = build_backend(name, &[]).unwrap();
        let mut stats = SearchStats::new();
        assert!(index.is_empty(), "{name}");
        assert!(index.nn(Vec3::ZERO, &mut stats).is_none(), "{name}");
        assert!(index.knn(Vec3::ZERO, 3, &mut stats).is_empty(), "{name}");
        assert!(index.radius(Vec3::ZERO, 1.0, &mut stats).is_empty(), "{name}");
        let out = index.nn_batch(&[Vec3::ZERO], &BatchConfig::serial(), &mut stats);
        assert_eq!(out, vec![None], "{name}");
    }
}

// ---- DynamicMapIndex: incremental inserts vs. from-scratch rebuild -------

/// One step of an interleaved insert/query schedule.
#[derive(Debug, Clone)]
enum DynOp {
    Insert(Vec3),
    InsertBatch(Vec<Vec3>),
    Nn(Vec3),
    Knn(Vec3, usize),
    Radius(Vec3, f64),
}

fn dyn_point() -> impl Strategy<Value = Vec3> {
    (-30.0f64..30.0, -30.0f64..30.0, -30.0f64..30.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn dyn_op() -> impl Strategy<Value = DynOp> {
    (0usize..5, dyn_point(), 1usize..12, 0.1f64..8.0, prop::collection::vec(dyn_point(), 1..40))
        .prop_map(|(kind, p, k, r, batch)| match kind {
            0 => DynOp::Insert(p),
            1 => DynOp::InsertBatch(batch),
            2 => DynOp::Nn(p),
            3 => DynOp::Knn(p, k),
            _ => DynOp::Radius(p, r),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After ANY interleaving of single inserts, batch inserts and queries
    /// — across rebuild boundaries (tiny fresh capacity) — every query
    /// answers bit-identically to a KD-tree rebuilt from scratch over the
    /// same points at that instant.
    #[test]
    fn dynamic_index_is_bit_identical_to_full_rebuild(
        ops in prop::collection::vec(dyn_op(), 1..60),
        cap in 1usize..48,
    ) {
        let mut index = DynamicMapIndex::with_fresh_capacity(cap);
        let mut mirror: Vec<Vec3> = Vec::new();
        for op in &ops {
            match op {
                DynOp::Insert(p) => {
                    index.insert(*p);
                    mirror.push(*p);
                }
                DynOp::InsertBatch(batch) => {
                    index.extend(batch);
                    mirror.extend_from_slice(batch);
                }
                DynOp::Nn(q) => {
                    let rebuilt = KdTree::build(&mirror);
                    prop_assert_eq!(index.nn_query(*q), rebuilt.nn(*q));
                }
                DynOp::Knn(q, k) => {
                    let rebuilt = KdTree::build(&mirror);
                    prop_assert_eq!(index.knn_query(*q, *k), rebuilt.knn(*q, *k));
                }
                DynOp::Radius(q, r) => {
                    let rebuilt = KdTree::build(&mirror);
                    prop_assert_eq!(index.radius_query(*q, *r), rebuilt.radius(*q, *r));
                }
            }
            prop_assert_eq!(index.all_points(), &mirror[..]);
            prop_assert!(index.fresh_len() < cap.max(1),
                "fresh buffer {} must stay below its capacity {}", index.fresh_len(), cap);
        }
    }
}

#[test]
fn dynamic_index_through_the_trait_matches_growing_brute_force() {
    // The registry-built backend answers over its build-time points;
    // inserts through the concrete type keep it exact afterwards.
    let pts = lcg_cloud(400, 20);
    let (initial, growth) = pts.split_at(150);
    let mut index = DynamicMapIndex::with_fresh_capacity(37);
    index.extend(initial);
    let queries = lcg_cloud(40, 21);
    for (i, grow) in growth.chunks(11).enumerate() {
        index.extend(grow);
        let have = &pts[..150 + (i * 11 + grow.len()).min(growth.len())];
        let q = queries[i % queries.len()];
        let mut stats = SearchStats::new();
        let nn = SearchIndex::nn(&mut index, q, &mut stats).unwrap();
        let oracle = nn_brute_force(have, q).unwrap();
        assert_eq!((nn.index, nn.distance_squared), (oracle.index, oracle.distance_squared));
    }
}

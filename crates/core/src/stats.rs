//! Node-visit accounting for KD-tree searches.
//!
//! The paper's redundancy analysis (Fig. 6) and the accelerator's memory
//! traffic model both need exact counts of how much work each search does;
//! every search entry point has a `*_with_stats` variant that accumulates
//! into a [`SearchStats`].

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Counters accumulated over one or more KD-tree searches.
///
/// "Node visits" counts every point whose distance to the query is computed
/// — the unit of work the paper uses to quantify redundancy (Fig. 6) — and
/// is split into visits during recursive (top-)tree traversal and visits
/// during exhaustive leaf scans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of queries run.
    pub queries: u64,
    /// Points visited (distance computed) during recursive tree traversal.
    pub tree_nodes_visited: u64,
    /// Points visited during exhaustive scans of two-stage leaf sets.
    pub leaf_points_scanned: u64,
    /// Sub-trees skipped by bounding-box pruning.
    pub subtrees_pruned: u64,
    /// Two-stage leaf sets exhaustively scanned.
    pub leaves_scanned: u64,
    /// Leader-distance checks performed by the approximate search.
    pub leader_checks: u64,
    /// Follower queries served from a leader's result set (approximate path).
    pub follower_hits: u64,
    /// Queries that became leaders (exhaustive path of Algorithm 1).
    pub leader_promotions: u64,
    /// Points scanned inside leaders' result sets by follower queries.
    pub leader_result_points_scanned: u64,
}

impl SearchStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        SearchStats::default()
    }

    /// Total points visited: tree traversal + leaf scans + leader
    /// bookkeeping. This is the `Operations` metric of paper Fig. 6b.
    pub fn total_nodes_visited(&self) -> u64 {
        self.tree_nodes_visited
            + self.leaf_points_scanned
            + self.leader_checks
            + self.leader_result_points_scanned
    }

    /// Redundancy of this workload relative to `baseline` (typically the
    /// canonical KD-tree running the same queries): the ratio of total node
    /// visits. This is the y-axis of paper Fig. 6a.
    ///
    /// Returns `f64::INFINITY` when the baseline did no work.
    pub fn redundancy_vs(&self, baseline: &SearchStats) -> f64 {
        let base = baseline.total_nodes_visited();
        if base == 0 {
            f64::INFINITY
        } else {
            self.total_nodes_visited() as f64 / base as f64
        }
    }

    /// Mean points visited per query, or 0 when no queries ran.
    pub fn visits_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total_nodes_visited() as f64 / self.queries as f64
        }
    }

    /// Fraction of queries served by the approximate follower path.
    pub fn follower_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.follower_hits as f64 / self.queries as f64
        }
    }

    /// Folds another counter set into this one (named form of `+=`).
    ///
    /// Every field is a plain sum, so merging per-thread stats from a
    /// batched search ([`crate::batch`]) in any order reproduces the
    /// serial totals exactly — the merge is lossless and commutative.
    /// `SearchStats` is `Copy + Send`, so workers move their local
    /// counters out of `std::thread::scope` by value.
    pub fn merge(&mut self, other: &SearchStats) {
        *self += *other;
    }
}

// Batched search relies on per-thread stats crossing thread boundaries;
// keep that guaranteed at compile time.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SearchStats>();
};

impl Add for SearchStats {
    type Output = SearchStats;
    fn add(self, o: SearchStats) -> SearchStats {
        SearchStats {
            queries: self.queries + o.queries,
            tree_nodes_visited: self.tree_nodes_visited + o.tree_nodes_visited,
            leaf_points_scanned: self.leaf_points_scanned + o.leaf_points_scanned,
            subtrees_pruned: self.subtrees_pruned + o.subtrees_pruned,
            leaves_scanned: self.leaves_scanned + o.leaves_scanned,
            leader_checks: self.leader_checks + o.leader_checks,
            follower_hits: self.follower_hits + o.follower_hits,
            leader_promotions: self.leader_promotions + o.leader_promotions,
            leader_result_points_scanned: self.leader_result_points_scanned
                + o.leader_result_points_scanned,
        }
    }
}

impl AddAssign for SearchStats {
    fn add_assign(&mut self, o: SearchStats) {
        *self = *self + o;
    }
}

impl Sub for SearchStats {
    type Output = SearchStats;

    /// Field-wise difference between two snapshots of the same
    /// monotonically-growing counter set — the delta accounting used to
    /// attribute a reused searcher's work to the registration that caused
    /// it. Saturates at zero so a stale snapshot can never underflow.
    fn sub(self, o: SearchStats) -> SearchStats {
        SearchStats {
            queries: self.queries.saturating_sub(o.queries),
            tree_nodes_visited: self.tree_nodes_visited.saturating_sub(o.tree_nodes_visited),
            leaf_points_scanned: self.leaf_points_scanned.saturating_sub(o.leaf_points_scanned),
            subtrees_pruned: self.subtrees_pruned.saturating_sub(o.subtrees_pruned),
            leaves_scanned: self.leaves_scanned.saturating_sub(o.leaves_scanned),
            leader_checks: self.leader_checks.saturating_sub(o.leader_checks),
            follower_hits: self.follower_hits.saturating_sub(o.follower_hits),
            leader_promotions: self.leader_promotions.saturating_sub(o.leader_promotions),
            leader_result_points_scanned: self
                .leader_result_points_scanned
                .saturating_sub(o.leader_result_points_scanned),
        }
    }
}

impl fmt::Display for SearchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queries: {}, tree visits: {}, leaf scans: {}, pruned: {}, followers: {}",
            self.queries,
            self.tree_nodes_visited,
            self.leaf_points_scanned,
            self.subtrees_pruned,
            self.follower_hits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_components() {
        let s = SearchStats {
            queries: 2,
            tree_nodes_visited: 10,
            leaf_points_scanned: 20,
            leader_checks: 3,
            leader_result_points_scanned: 7,
            ..SearchStats::default()
        };
        assert_eq!(s.total_nodes_visited(), 40);
        assert_eq!(s.visits_per_query(), 20.0);
    }

    #[test]
    fn redundancy_ratio() {
        let base = SearchStats { tree_nodes_visited: 100, ..SearchStats::default() };
        let two_stage = SearchStats {
            tree_nodes_visited: 50,
            leaf_points_scanned: 250,
            ..SearchStats::default()
        };
        assert_eq!(two_stage.redundancy_vs(&base), 3.0);
        assert_eq!(base.redundancy_vs(&SearchStats::default()), f64::INFINITY);
    }

    #[test]
    fn add_accumulates_all_fields() {
        let a = SearchStats {
            queries: 1,
            tree_nodes_visited: 2,
            leaf_points_scanned: 3,
            subtrees_pruned: 4,
            leaves_scanned: 5,
            leader_checks: 6,
            follower_hits: 7,
            leader_promotions: 8,
            leader_result_points_scanned: 9,
        };
        let mut b = a;
        b += a;
        assert_eq!(b.queries, 2);
        assert_eq!(b.leader_result_points_scanned, 18);
        assert_eq!(b, a + a);
    }

    #[test]
    fn sub_yields_snapshot_delta() {
        let before = SearchStats { queries: 3, tree_nodes_visited: 10, ..SearchStats::default() };
        let after = SearchStats { queries: 8, tree_nodes_visited: 25, ..SearchStats::default() };
        let delta = after - before;
        assert_eq!(delta.queries, 5);
        assert_eq!(delta.tree_nodes_visited, 15);
        // Saturation, never underflow.
        assert_eq!((before - after).queries, 0);
    }

    #[test]
    fn rates_handle_zero_queries() {
        let s = SearchStats::default();
        assert_eq!(s.visits_per_query(), 0.0);
        assert_eq!(s.follower_rate(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!SearchStats::default().to_string().is_empty());
    }
}
